//! Property tests for the frame codec: hostile byte streams must
//! never panic and must surface typed protocol errors.

use busserve::{read_frame, write_frame, FrameError, MAX_FRAME_BYTES};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes fed to the reader: any outcome is fine, a
    /// panic is not — and whatever comes back is one of the typed
    /// results.
    #[test]
    fn arbitrary_streams_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let mut r = &bytes[..];
        match read_frame(&mut r, 256) {
            Ok(None) => prop_assert!(bytes.is_empty()),
            Ok(Some(payload)) => {
                prop_assert!(payload.len() <= 256);
                prop_assert!(bytes.len() >= 4 + payload.len());
            }
            Err(FrameError::Truncated { got, want }) => prop_assert!(got < want),
            Err(FrameError::Oversize { len, limit }) => prop_assert!(len > limit as u64),
            Err(FrameError::Io(_)) => prop_assert!(false, "slices do not fail i/o"),
        }
    }

    /// Every payload round-trips exactly, consuming exactly its bytes.
    #[test]
    fn roundtrip_is_identity(payload in prop::collection::vec(any::<u8>(), 0..2048)) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload, MAX_FRAME_BYTES).unwrap();
        prop_assert_eq!(wire.len(), 4 + payload.len());
        let mut r = &wire[..];
        let back = read_frame(&mut r, MAX_FRAME_BYTES).unwrap().unwrap();
        prop_assert_eq!(back, payload);
        prop_assert!(r.is_empty());
    }

    /// Pipelined frames decode in order; any clean prefix truncation
    /// yields either fewer complete frames or a typed `Truncated`.
    #[test]
    fn pipelined_frames_decode_in_order_and_truncate_typed(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..8),
        cut_back in 0usize..32,
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            write_frame(&mut wire, p, MAX_FRAME_BYTES).unwrap();
        }
        // Intact stream: every frame comes back, in order.
        let mut r = &wire[..];
        for expected in &payloads {
            let got = read_frame(&mut r, MAX_FRAME_BYTES).unwrap().unwrap();
            prop_assert_eq!(&got, expected);
        }
        prop_assert!(read_frame(&mut r, MAX_FRAME_BYTES).unwrap().is_none());

        // Truncated stream: decode until the cut; the tail is either a
        // clean end or a typed truncation, never a panic or bogus frame.
        let cut = wire.len().saturating_sub(cut_back);
        let mut r = &wire[..cut];
        let mut decoded = 0usize;
        loop {
            match read_frame(&mut r, MAX_FRAME_BYTES) {
                Ok(None) => break,
                Ok(Some(p)) => {
                    prop_assert_eq!(&p, &payloads[decoded]);
                    decoded += 1;
                }
                Err(FrameError::Truncated { got, want }) => {
                    prop_assert!(got < want);
                    break;
                }
                Err(e) => prop_assert!(false, "unexpected error: {e}"),
            }
        }
        prop_assert!(decoded <= payloads.len());
    }

    /// A length prefix above the cap is always the typed `Oversize`,
    /// and rejecting it consumes no payload bytes.
    #[test]
    fn oversize_prefixes_are_typed(
        excess in 1u64..=1024,
        limit in 0usize..4096,
    ) {
        let len = limit as u64 + excess;
        prop_assume!(len <= u64::from(u32::MAX));
        let mut wire = (len as u32).to_be_bytes().to_vec();
        wire.extend_from_slice(&[0xEE; 8]);
        let mut r = &wire[..];
        match read_frame(&mut r, limit) {
            Err(FrameError::Oversize { len: l, limit: cap }) => {
                prop_assert_eq!(l, len);
                prop_assert_eq!(cap, limit);
            }
            other => prop_assert!(false, "expected Oversize, got {other:?}"),
        }
        // The reader stopped at the header: payload bytes still there.
        prop_assert_eq!(r.len(), 8);
    }
}
