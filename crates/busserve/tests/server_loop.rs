//! End-to-end runtime tests against a toy service: concurrency,
//! backpressure (`busy`), per-client quotas, and drain.

#![cfg(unix)]

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use busprobe::json::JsonValue;
use busserve::{Client, Server, ServerConfig, Service, ServiceError};

fn temp_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("busserve-{tag}-{}.sock", std::process::id()))
}

fn request(verb: &str, extra: Vec<(String, JsonValue)>) -> JsonValue {
    let mut pairs = vec![
        ("v".to_string(), JsonValue::Int(1)),
        ("verb".to_string(), JsonValue::Str(verb.into())),
    ];
    pairs.extend(extra);
    JsonValue::Obj(pairs)
}

/// A service that can echo, sleep, and count invocations.
struct Toy {
    calls: AtomicUsize,
}

impl Service for Toy {
    fn handle(&self, verb: &str, body: &JsonValue) -> Result<JsonValue, ServiceError> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        match verb {
            "echo" => Ok(body.get("payload").cloned().unwrap_or(JsonValue::Null)),
            "sleep" => {
                let ms = body.get("ms").and_then(JsonValue::as_u64).unwrap_or(50);
                std::thread::sleep(Duration::from_millis(ms));
                Ok(JsonValue::Int(ms as i64))
            }
            other => Err(ServiceError::new(
                "unknown_verb",
                format!("no such verb `{other}`"),
            )),
        }
    }

    fn route(&self, _verb: &str, body: &JsonValue) -> Option<u64> {
        body.get("key").and_then(JsonValue::as_u64)
    }
}

/// Spawns a server on a fresh socket; returns the socket path, the
/// shutdown flag, and the join handle yielding the stats.
fn spawn_server(
    tag: &str,
    config: ServerConfig,
) -> (
    PathBuf,
    Arc<AtomicBool>,
    std::thread::JoinHandle<std::io::Result<busserve::ServeStats>>,
) {
    let path = temp_socket(tag);
    let _ = std::fs::remove_file(&path);
    let shutdown = Arc::new(AtomicBool::new(false));
    let handle = {
        let path = path.clone();
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || {
            let server = Server::new(
                Toy {
                    calls: AtomicUsize::new(0),
                },
                config,
            );
            server.serve_unix(&path, &shutdown)
        })
    };
    // Wait for the socket to exist before clients connect.
    let deadline = Instant::now() + Duration::from_secs(5);
    while !path.exists() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(path.exists(), "server never bound {}", path.display());
    (path, shutdown, handle)
}

fn stop(
    shutdown: &AtomicBool,
    handle: std::thread::JoinHandle<std::io::Result<busserve::ServeStats>>,
) -> busserve::ServeStats {
    shutdown.store(true, Ordering::Release);
    handle.join().expect("server thread").expect("serve_unix")
}

#[test]
fn concurrent_clients_get_correct_answers() {
    let (path, shutdown, handle) = spawn_server("conc", ServerConfig::default());
    let workers: Vec<_> = (0..8)
        .map(|i| {
            let path = path.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&path).unwrap();
                for round in 0..10 {
                    let tag = (i * 100 + round) as i64;
                    let resp = client
                        .call(&request(
                            "echo",
                            vec![("payload".into(), JsonValue::Int(tag))],
                        ))
                        .unwrap();
                    assert_eq!(resp.get("ok"), Some(&JsonValue::Bool(true)), "{resp}");
                    assert_eq!(resp.get("result"), Some(&JsonValue::Int(tag)));
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let stats = stop(&shutdown, handle);
    assert_eq!(stats.connections, 8);
    assert_eq!(stats.requests, 80);
    assert_eq!(stats.busy, 0);
}

#[test]
fn overload_yields_typed_busy_not_blocking() {
    // One shard, queue depth 1, slow service: concurrent callers must
    // see `busy` errors while the shard is occupied, and the server
    // must keep answering (the accept loop never blocks).
    let config = ServerConfig {
        shards: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    };
    let (path, shutdown, handle) = spawn_server("busy", config);
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let path = path.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&path).unwrap();
                let resp = client
                    .call(&request("sleep", vec![("ms".into(), JsonValue::Int(300))]))
                    .unwrap();
                match resp.get("ok") {
                    Some(JsonValue::Bool(true)) => "ok",
                    _ => {
                        let kind = resp
                            .get("error")
                            .and_then(|e| e.get("kind"))
                            .and_then(JsonValue::as_str)
                            .unwrap_or("?")
                            .to_string();
                        assert_eq!(kind, "busy", "{resp}");
                        "busy"
                    }
                }
            })
        })
        .collect();
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let ok = outcomes.iter().filter(|o| **o == "ok").count();
    let busy = outcomes.iter().filter(|o| **o == "busy").count();
    assert!(ok >= 1, "at least one request must be served: {outcomes:?}");
    assert!(busy >= 1, "overload must surface busy: {outcomes:?}");
    let stats = stop(&shutdown, handle);
    assert_eq!(stats.busy, busy as u64);
}

#[test]
fn quota_closes_the_connection_with_a_typed_error() {
    let config = ServerConfig {
        client_quota: 3,
        ..ServerConfig::default()
    };
    let (path, shutdown, handle) = spawn_server("quota", config);
    let mut client = Client::connect(&path).unwrap();
    for _ in 0..3 {
        let resp = client.call(&request("echo", vec![])).unwrap();
        assert_eq!(resp.get("ok"), Some(&JsonValue::Bool(true)));
    }
    let resp = client.call(&request("echo", vec![])).unwrap();
    let kind = resp
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(JsonValue::as_str);
    assert_eq!(kind, Some("quota"), "{resp}");
    // The connection is closed after the quota response; a fresh
    // connection gets a fresh allowance.
    assert!(client.call(&request("echo", vec![])).is_err());
    let mut fresh = Client::connect(&path).unwrap();
    let resp = fresh.call(&request("echo", vec![])).unwrap();
    assert_eq!(resp.get("ok"), Some(&JsonValue::Bool(true)));
    let stats = stop(&shutdown, handle);
    assert_eq!(stats.quota, 1);
    assert_eq!(stats.requests, 4);
}

#[test]
fn drain_finishes_in_flight_requests_and_exits_clean() {
    let (path, shutdown, handle) = spawn_server("drain", ServerConfig::default());
    // Park a slow request, then request shutdown while it runs.
    let in_flight = {
        let path = path.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&path).unwrap();
            client.call(&request("sleep", vec![("ms".into(), JsonValue::Int(400))]))
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    shutdown.store(true, Ordering::Release);
    // The in-flight request still completes successfully.
    let resp = in_flight.join().unwrap().expect("in-flight call survives drain");
    assert_eq!(resp.get("ok"), Some(&JsonValue::Bool(true)), "{resp}");
    assert_eq!(resp.get("result"), Some(&JsonValue::Int(400)));
    // The server exits Ok and removes its socket file.
    let stats = handle.join().unwrap().expect("clean drain");
    assert_eq!(stats.requests, 1);
    assert!(!path.exists(), "socket file must be removed on drain");
    // New connections are refused after drain.
    assert!(Client::connect(&path).is_err());
}

#[test]
fn same_key_requests_land_on_one_shard() {
    // Not directly observable from outside, but routing must at least
    // be deterministic: equal keys → equal responses with no errors
    // under concurrency.
    let config = ServerConfig {
        shards: 4,
        ..ServerConfig::default()
    };
    let (path, shutdown, handle) = spawn_server("route", config);
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let path = path.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&path).unwrap();
                for _ in 0..5 {
                    let resp = client
                        .call(&request(
                            "echo",
                            vec![
                                ("key".into(), JsonValue::Int(7)),
                                ("payload".into(), JsonValue::Int(7)),
                            ],
                        ))
                        .unwrap();
                    assert_eq!(resp.get("result"), Some(&JsonValue::Int(7)), "{resp}");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let stats = stop(&shutdown, handle);
    assert_eq!(stats.requests, 20);
}
