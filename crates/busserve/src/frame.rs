//! The wire framing: a 4-byte big-endian length prefix followed by
//! that many payload bytes (in practice one JSON document rendered by
//! `busprobe::json`).
//!
//! The codec is deliberately tiny — the interesting part is the error
//! discipline. Reads never panic on hostile input: a stream can end
//! cleanly between frames ([`read_frame`] returns `Ok(None)`), end
//! inside a header or payload ([`FrameError::Truncated`]), or claim a
//! payload larger than the caller's cap ([`FrameError::Oversize`] —
//! the same bounded-ingest idiom as `bustrace::io`'s 64Mi-word cap,
//! and the reason [`MAX_FRAME_BYTES`] is 64MiB). A lying length prefix
//! costs nothing: the payload is read through `Read::take`, so memory
//! grows only with bytes actually received, never with the advertised
//! length.

use std::io::{self, Read, Write};

/// Hard ceiling on a frame payload, mirroring `bustrace::io`'s
/// `DEFAULT_MAX_WORDS` bound: large enough for any real request
/// (inline traces included), small enough that a hostile prefix cannot
/// commit the server to an absurd read.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (including read timeouts).
    Io(io::Error),
    /// The stream ended inside a header or payload: `got` of the
    /// `want` bytes arrived before EOF.
    Truncated {
        /// Bytes received before the stream ended.
        got: usize,
        /// Bytes the header (4) or the length prefix promised.
        want: usize,
    },
    /// The length prefix exceeds the configured cap.
    Oversize {
        /// The advertised payload length.
        len: u64,
        /// The cap it exceeded.
        limit: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::Truncated { got, want } => {
                write!(f, "truncated frame: got {got} of {want} byte(s)")
            }
            FrameError::Oversize { len, limit } => {
                write!(f, "oversized frame: {len} byte(s) exceeds the {limit}-byte cap")
            }
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame: the length prefix, the payload, and a flush.
///
/// # Errors
///
/// [`FrameError::Oversize`] when the payload exceeds `max`;
/// [`FrameError::Io`] on transport failure.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8], max: usize) -> Result<(), FrameError> {
    if payload.len() > max {
        return Err(FrameError::Oversize {
            len: payload.len() as u64,
            limit: max,
        });
    }
    let len = u32::try_from(payload.len()).map_err(|_| FrameError::Oversize {
        len: payload.len() as u64,
        limit: u32::MAX as usize,
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. `Ok(None)` means the stream ended cleanly on a
/// frame boundary (no header byte arrived) — the normal end of a
/// connection.
///
/// # Errors
///
/// [`FrameError::Truncated`] when the stream ends mid-header or
/// mid-payload, [`FrameError::Oversize`] when the prefix exceeds
/// `max`, [`FrameError::Io`] on transport failure.
pub fn read_frame<R: Read>(r: &mut R, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 4];
    match fill(r, &mut header)? {
        0 => return Ok(None),
        4 => {}
        got => return Err(FrameError::Truncated { got, want: 4 }),
    }
    read_body(r, u32::from_be_bytes(header), max).map(Some)
}

/// Completes a frame whose first header byte was already consumed —
/// the server's poll loop reads one byte with a short timeout (so it
/// can notice shutdown between frames) and hands it here once traffic
/// arrives.
///
/// # Errors
///
/// As [`read_frame`], except a clean EOF after the first byte is
/// already a [`FrameError::Truncated`].
pub fn read_frame_after<R: Read>(
    r: &mut R,
    first: u8,
    max: usize,
) -> Result<Vec<u8>, FrameError> {
    let mut rest = [0u8; 3];
    let got = fill(r, &mut rest)?;
    if got < 3 {
        return Err(FrameError::Truncated {
            got: 1 + got,
            want: 4,
        });
    }
    let header = [first, rest[0], rest[1], rest[2]];
    read_body(r, u32::from_be_bytes(header), max)
}

/// Reads `len` payload bytes after an accepted header. The allocation
/// is driven by received bytes (`Read::take` + `read_to_end`), so a
/// prefix advertising `max` commits no memory until the data shows up.
fn read_body<R: Read>(r: &mut R, len: u32, max: usize) -> Result<Vec<u8>, FrameError> {
    let want = len as usize;
    if (len as u64) > max as u64 {
        return Err(FrameError::Oversize {
            len: len as u64,
            limit: max,
        });
    }
    let mut buf = Vec::with_capacity(want.min(64 * 1024));
    let got = r.take(len as u64).read_to_end(&mut buf)?;
    if got < want {
        return Err(FrameError::Truncated { got, want });
    }
    Ok(buf)
}

/// Reads until `buf` is full or EOF; returns how many bytes arrived.
fn fill<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(got)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(payload: &[u8]) -> Vec<u8> {
        let mut wire = Vec::new();
        write_frame(&mut wire, payload, MAX_FRAME_BYTES).unwrap();
        let mut r = &wire[..];
        let back = read_frame(&mut r, MAX_FRAME_BYTES).unwrap().unwrap();
        assert!(r.is_empty(), "frame must consume exactly its bytes");
        back
    }

    #[test]
    fn frames_roundtrip() {
        assert_eq!(roundtrip(b""), b"");
        assert_eq!(roundtrip(b"{\"v\":1}"), b"{\"v\":1}");
        let big = vec![0xA5u8; 100_000];
        assert_eq!(roundtrip(&big), big);
    }

    #[test]
    fn clean_eof_is_none() {
        let mut r: &[u8] = &[];
        assert!(read_frame(&mut r, MAX_FRAME_BYTES).unwrap().is_none());
    }

    #[test]
    fn truncated_header_and_payload_are_typed() {
        let mut r: &[u8] = &[0, 0];
        match read_frame(&mut r, MAX_FRAME_BYTES) {
            Err(FrameError::Truncated { got: 2, want: 4 }) => {}
            other => panic!("wrong result: {other:?}"),
        }
        let mut r: &[u8] = &[0, 0, 0, 9, b'a', b'b'];
        match read_frame(&mut r, MAX_FRAME_BYTES) {
            Err(FrameError::Truncated { got: 2, want: 9 }) => {}
            other => panic!("wrong result: {other:?}"),
        }
    }

    #[test]
    fn oversize_prefix_is_rejected_before_any_allocation() {
        // A 4GiB-1 claim against a 1KiB cap: must fail fast with the
        // typed error, not attempt the read.
        let mut r: &[u8] = &[0xFF, 0xFF, 0xFF, 0xFF];
        match read_frame(&mut r, 1024) {
            Err(FrameError::Oversize { len, limit: 1024 }) => {
                assert_eq!(len, u64::from(u32::MAX));
            }
            other => panic!("wrong result: {other:?}"),
        }
    }

    #[test]
    fn oversized_write_is_rejected() {
        let mut wire = Vec::new();
        match write_frame(&mut wire, &[0u8; 100], 10) {
            Err(FrameError::Oversize { len: 100, limit: 10 }) => {}
            other => panic!("wrong result: {other:?}"),
        }
        assert!(wire.is_empty(), "a rejected frame writes nothing");
    }

    #[test]
    fn read_after_first_byte_reassembles_the_header() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello", MAX_FRAME_BYTES).unwrap();
        let first = wire[0];
        let mut rest = &wire[1..];
        let body = read_frame_after(&mut rest, first, MAX_FRAME_BYTES).unwrap();
        assert_eq!(body, b"hello");
    }

    #[test]
    fn pipelined_frames_come_out_in_order() {
        let mut wire = Vec::new();
        for p in [&b"one"[..], b"two", b"three"] {
            write_frame(&mut wire, p, MAX_FRAME_BYTES).unwrap();
        }
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r, MAX_FRAME_BYTES).unwrap().unwrap(), b"one");
        assert_eq!(read_frame(&mut r, MAX_FRAME_BYTES).unwrap().unwrap(), b"two");
        assert_eq!(
            read_frame(&mut r, MAX_FRAME_BYTES).unwrap().unwrap(),
            b"three"
        );
        assert!(read_frame(&mut r, MAX_FRAME_BYTES).unwrap().is_none());
    }
}
