//! The daemon runtime: accept loop, shard workers, backpressure,
//! quotas, and graceful drain.
//!
//! `busserve` knows nothing about traces or coding schemes — it speaks
//! the frame protocol and routes requests to a [`Service`]
//! implementation (the evaluation service lives in `bench::api`, which
//! keeps the dependency arrow pointing one way). Each request frame is
//! one JSON object `{"v":1,"verb":"...", ...}`; each response frame is
//! `{"v":1,"ok":true,"result":...}` or
//! `{"v":1,"ok":false,"error":{"kind","message",...}}`.
//!
//! Concurrency model: one worker thread per shard, each behind a
//! *bounded* `sync_channel`. Connection threads submit with `try_send`
//! — a full shard answers immediately with a typed `busy` error
//! instead of blocking, so the accept loop and every other client stay
//! live no matter how slow one evaluation is. Requests carrying a
//! routing key (the trace key) always land on the same shard, so two
//! clients asking for the same trace serialize onto one worker and the
//! second hits the session cache instead of racing the first.
//!
//! Drain: when the shutdown flag is set (see [`crate::signal`]) the
//! accept loop stops accepting, connection threads finish the request
//! they are reading or serving and close, workers drain their queues,
//! and `serve_unix` returns `Ok` — exit code 0 for the daemon.

use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Duration;

use busprobe::json::{self, JsonValue};

use crate::frame::{self, FrameError};

/// The protocol generation this server speaks; requests may omit `v`
/// (treated as current) but a different explicit version is rejected.
pub const PROTOCOL_VERSION: i64 = 1;

/// How often idle connection reads and the accept loop wake up to
/// check the shutdown flag.
const POLL: Duration = Duration::from_millis(25);

/// How long a client may dally mid-frame once its header byte arrived
/// before the connection is dropped as dead.
const FRAME_TIMEOUT: Duration = Duration::from_secs(30);

static CONNECTIONS: busprobe::StaticCounter = busprobe::StaticCounter::new("busserve.connections");
static REQUESTS: busprobe::StaticCounter = busprobe::StaticCounter::new("busserve.requests");
static BUSY: busprobe::StaticCounter = busprobe::StaticCounter::new("busserve.busy");
static QUOTA: busprobe::StaticCounter = busprobe::StaticCounter::new("busserve.quota");
static PROTOCOL_ERRORS: busprobe::StaticCounter =
    busprobe::StaticCounter::new("busserve.protocol_errors");

/// What a daemon serves: one verb dispatcher plus an optional routing
/// key. Implementations must be callable from many threads at once.
pub trait Service: Send + Sync {
    /// Handles one request. `body` is the whole request object (the
    /// envelope fields `v` and `verb` included), so a service can keep
    /// one schema for the daemon and any single-shot front end.
    ///
    /// # Errors
    ///
    /// A [`ServiceError`] becomes the typed `error` object of the
    /// response frame.
    fn handle(&self, verb: &str, body: &JsonValue) -> Result<JsonValue, ServiceError>;

    /// A stable routing key for this request, if it has one. Equal
    /// keys are served by the same shard worker, which turns
    /// same-trace races into cache hits.
    fn route(&self, _verb: &str, _body: &JsonValue) -> Option<u64> {
        None
    }
}

/// A typed service-level failure: a short machine-readable `kind`, a
/// human message, and optional extra fields merged into the `error`
/// object (e.g. an `candidates` array on an unknown-scheme miss).
#[derive(Debug)]
pub struct ServiceError {
    /// Machine-readable category, e.g. `bad_request`, `unknown_scheme`.
    pub kind: String,
    /// Human-readable explanation.
    pub message: String,
    /// Extra key/value pairs appended to the `error` object.
    pub detail: Vec<(String, JsonValue)>,
}

impl ServiceError {
    /// An error of the given kind.
    pub fn new(kind: impl Into<String>, message: impl Into<String>) -> Self {
        ServiceError {
            kind: kind.into(),
            message: message.into(),
            detail: Vec::new(),
        }
    }

    /// The everyday malformed-request error.
    pub fn bad_request(message: impl Into<String>) -> Self {
        ServiceError::new("bad_request", message)
    }

    /// Appends one extra field to the `error` object.
    #[must_use]
    pub fn with_detail(mut self, key: impl Into<String>, value: JsonValue) -> Self {
        self.detail.push((key.into(), value));
        self
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl std::error::Error for ServiceError {}

/// Tunables for one serving run.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (and bounded queues) requests are sharded over.
    pub shards: usize,
    /// In-flight + queued requests a shard holds before `try_send`
    /// fails and the client gets a typed `busy` response.
    pub queue_depth: usize,
    /// Requests one connection may issue before a typed `quota` error
    /// closes it.
    pub client_quota: u64,
    /// Per-frame payload cap (bytes) for reads and writes.
    pub max_frame: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        ServerConfig {
            shards: cores.clamp(1, 4),
            queue_depth: 16,
            client_quota: 1024,
            max_frame: frame::MAX_FRAME_BYTES,
        }
    }
}

/// What one serving run did — returned by the serve entry points so
/// the daemon can log an honest exit line.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ServeStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests admitted to a shard (busy/quota rejections excluded).
    pub requests: u64,
    /// Requests rejected with `busy`.
    pub busy: u64,
    /// Requests rejected with `quota`.
    pub quota: u64,
    /// Frames that failed to parse as protocol requests.
    pub protocol_errors: u64,
}

/// Shared mutable tally behind the stats (connection threads update it
/// concurrently).
#[derive(Default)]
struct Tally {
    connections: AtomicU64,
    requests: AtomicU64,
    busy: AtomicU64,
    quota: AtomicU64,
    protocol_errors: AtomicU64,
}

impl Tally {
    fn snapshot(&self) -> ServeStats {
        ServeStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            busy: self.busy.load(Ordering::Relaxed),
            quota: self.quota.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

/// One queued request: the parsed envelope plus the channel the
/// connection thread is blocked on.
struct Job {
    verb: String,
    body: JsonValue,
    reply: mpsc::Sender<JsonValue>,
}

/// The daemon: a [`Service`] plus its [`ServerConfig`]. One `Server`
/// value can serve a socket or stdio (not both at once).
pub struct Server<S: Service> {
    service: S,
    config: ServerConfig,
}

impl<S: Service> Server<S> {
    /// Wraps `service` with the given tunables.
    pub fn new(service: S, config: ServerConfig) -> Self {
        Server { service, config }
    }

    /// The service, for in-process callers (tests, single-shot mode).
    pub fn service(&self) -> &S {
        &self.service
    }

    /// Processes one raw request payload into one raw response payload
    /// — the single-threaded core shared by stdio mode and tests. The
    /// response is always a well-formed envelope, whatever the input.
    pub fn handle_frame(&self, bytes: &[u8]) -> Vec<u8> {
        let response = match parse_request(bytes) {
            Ok((verb, body)) => dispatch(&self.service, &verb, &body),
            Err(e) => {
                PROTOCOL_ERRORS.inc();
                error_envelope(&e)
            }
        };
        response.to_string().into_bytes()
    }

    /// Single-shot mode: serves frames from stdin to stdout until EOF.
    /// No sharding and no quota — the caller owns both ends of the
    /// pipe. A framing error is answered with a typed `protocol` error
    /// frame and ends the stream (there is no way to resynchronize).
    ///
    /// # Errors
    ///
    /// Propagates transport failures on stdin/stdout.
    pub fn serve_stdio(&self) -> io::Result<ServeStats> {
        let stdin = io::stdin();
        let stdout = io::stdout();
        let mut input = stdin.lock();
        let mut output = stdout.lock();
        let mut stats = ServeStats::default();
        loop {
            match frame::read_frame(&mut input, self.config.max_frame) {
                Ok(None) => break,
                Ok(Some(bytes)) => {
                    REQUESTS.inc();
                    stats.requests += 1;
                    let response = self.handle_frame(&bytes);
                    write_response(&mut output, &response, self.config.max_frame)?;
                }
                Err(FrameError::Io(e)) => return Err(e),
                Err(e) => {
                    PROTOCOL_ERRORS.inc();
                    stats.protocol_errors += 1;
                    let response = error_envelope(&ServiceError::new("protocol", e.to_string()))
                        .to_string()
                        .into_bytes();
                    write_response(&mut output, &response, self.config.max_frame)?;
                    break;
                }
            }
        }
        Ok(stats)
    }

    /// Binds `path` and serves until `shutdown` goes true, then drains:
    /// stops accepting, lets every connection finish its in-flight
    /// request, joins the shard workers, removes the socket file, and
    /// returns the tally. A stale socket file from a previous run is
    /// replaced.
    ///
    /// # Errors
    ///
    /// Propagates bind/listen failures; per-connection I/O errors only
    /// end that connection.
    pub fn serve_unix(&self, path: &Path, shutdown: &AtomicBool) -> io::Result<ServeStats> {
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let tally = Tally::default();
        let rr = AtomicUsize::new(0);
        let result: io::Result<()> = std::thread::scope(|scope| {
            let mut senders: Vec<mpsc::SyncSender<Job>> = Vec::with_capacity(self.config.shards);
            for _ in 0..self.config.shards.max(1) {
                let (tx, rx) = mpsc::sync_channel::<Job>(self.config.queue_depth.max(1));
                senders.push(tx);
                let service = &self.service;
                scope.spawn(move || {
                    for job in rx {
                        let response = dispatch(service, &job.verb, &job.body);
                        // A vanished requester is not the worker's
                        // problem; keep draining the queue.
                        let _ = job.reply.send(response);
                    }
                });
            }
            let mut conns = Vec::new();
            loop {
                if shutdown.load(Ordering::Acquire) {
                    break;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        CONNECTIONS.inc();
                        tally.connections.fetch_add(1, Ordering::Relaxed);
                        let senders = senders.clone();
                        let service = &self.service;
                        let config = &self.config;
                        let (tally, rr) = (&tally, &rr);
                        conns.push(scope.spawn(move || {
                            serve_connection(stream, service, config, &senders, rr, shutdown, tally);
                        }));
                        conns.retain(|h| !h.is_finished());
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            // Drain: no new connections; existing ones notice the flag
            // after their current request and hang up.
            drop(listener);
            for h in conns {
                let _ = h.join();
            }
            // Workers exit once the queues empty and the senders drop.
            drop(senders);
            Ok(())
        });
        let _ = std::fs::remove_file(path);
        result.map(|()| tally.snapshot())
    }
}

/// One connection: poll for a header byte (so shutdown is noticed
/// between frames), complete the frame, submit to a shard, relay the
/// response.
fn serve_connection<S: Service>(
    mut stream: UnixStream,
    service: &S,
    config: &ServerConfig,
    shards: &[mpsc::SyncSender<Job>],
    rr: &AtomicUsize,
    shutdown: &AtomicBool,
    tally: &Tally,
) {
    let mut served: u64 = 0;
    loop {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        if stream.set_read_timeout(Some(POLL)).is_err() {
            return;
        }
        let mut first = [0u8; 1];
        match stream.read(&mut first) {
            Ok(0) => return, // client hung up
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
        if stream.set_read_timeout(Some(FRAME_TIMEOUT)).is_err() {
            return;
        }
        let bytes = match frame::read_frame_after(&mut stream, first[0], config.max_frame) {
            Ok(b) => b,
            Err(e @ (FrameError::Truncated { .. } | FrameError::Oversize { .. })) => {
                // The stream is out of sync; answer once, then hang up.
                PROTOCOL_ERRORS.inc();
                tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let response = error_envelope(&ServiceError::new("protocol", e.to_string()));
                let _ = write_response(
                    &mut stream,
                    response.to_string().as_bytes(),
                    config.max_frame,
                );
                return;
            }
            Err(FrameError::Io(_)) => return,
        };
        let (response, close) = process_request(
            &bytes,
            service,
            config,
            shards,
            rr,
            &mut served,
            tally,
        );
        if write_response(&mut stream, response.to_string().as_bytes(), config.max_frame).is_err()
            || close
        {
            return;
        }
    }
}

/// Envelope-validates one request and runs it through quota check and
/// shard submission. Returns the response and whether the connection
/// must close afterwards (quota exhausted).
fn process_request<S: Service>(
    bytes: &[u8],
    service: &S,
    config: &ServerConfig,
    shards: &[mpsc::SyncSender<Job>],
    rr: &AtomicUsize,
    served: &mut u64,
    tally: &Tally,
) -> (JsonValue, bool) {
    let (verb, body) = match parse_request(bytes) {
        Ok(parsed) => parsed,
        Err(e) => {
            PROTOCOL_ERRORS.inc();
            tally.protocol_errors.fetch_add(1, Ordering::Relaxed);
            return (error_envelope(&e), false);
        }
    };
    if *served >= config.client_quota {
        QUOTA.inc();
        tally.quota.fetch_add(1, Ordering::Relaxed);
        let e = ServiceError::new(
            "quota",
            format!(
                "per-client quota of {} request(s) exhausted; reconnect for a fresh allowance",
                config.client_quota
            ),
        );
        return (error_envelope(&e), true);
    }
    *served += 1;
    let shard = match service.route(&verb, &body) {
        Some(key) => (key % shards.len() as u64) as usize,
        None => rr.fetch_add(1, Ordering::Relaxed) % shards.len(),
    };
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        verb,
        body,
        reply: reply_tx,
    };
    match shards[shard].try_send(job) {
        Ok(()) => {
            REQUESTS.inc();
            tally.requests.fetch_add(1, Ordering::Relaxed);
            let response = reply_rx.recv().unwrap_or_else(|_| {
                error_envelope(&ServiceError::new(
                    "internal",
                    "worker dropped the reply channel",
                ))
            });
            (response, false)
        }
        Err(mpsc::TrySendError::Full(_)) => {
            BUSY.inc();
            tally.busy.fetch_add(1, Ordering::Relaxed);
            let e = ServiceError::new(
                "busy",
                format!(
                    "shard {shard} has {} request(s) in flight; retry later",
                    config.queue_depth
                ),
            );
            (error_envelope(&e), false)
        }
        Err(mpsc::TrySendError::Disconnected(_)) => {
            let e = ServiceError::new("shutting_down", "server is draining; reconnect later");
            (error_envelope(&e), true)
        }
    }
}

/// Runs the service, converting a panic into a typed `internal` error
/// so one poisonous request cannot take the daemon down.
fn dispatch<S: Service>(service: &S, verb: &str, body: &JsonValue) -> JsonValue {
    let _span = busprobe::span("busserve.request");
    let result = catch_unwind(AssertUnwindSafe(|| service.handle(verb, body)));
    match result {
        Ok(Ok(value)) => ok_envelope(value),
        Ok(Err(e)) => error_envelope(&e),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            error_envelope(&ServiceError::new(
                "internal",
                format!("request handler panicked: {msg}"),
            ))
        }
    }
}

/// Decodes and envelope-validates one request frame.
fn parse_request(bytes: &[u8]) -> Result<(String, JsonValue), ServiceError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| ServiceError::new("protocol", format!("request is not UTF-8: {e}")))?;
    let value = json::parse(text)
        .map_err(|e| ServiceError::new("protocol", format!("request is not valid JSON: {e}")))?;
    match value.get("v") {
        None => {}
        Some(v) if v.as_u64() == Some(PROTOCOL_VERSION as u64) => {}
        Some(v) => {
            return Err(ServiceError::new(
                "version",
                format!("unsupported protocol version {v}; this server speaks v{PROTOCOL_VERSION}"),
            ));
        }
    }
    let verb = value
        .get("verb")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ServiceError::new("protocol", "request has no string `verb` field"))?
        .to_string();
    Ok((verb, value))
}

fn ok_envelope(result: JsonValue) -> JsonValue {
    JsonValue::Obj(vec![
        ("v".into(), JsonValue::Int(PROTOCOL_VERSION)),
        ("ok".into(), JsonValue::Bool(true)),
        ("result".into(), result),
    ])
}

fn error_envelope(e: &ServiceError) -> JsonValue {
    let mut err = vec![
        ("kind".into(), JsonValue::Str(e.kind.clone())),
        ("message".into(), JsonValue::Str(e.message.clone())),
    ];
    err.extend(e.detail.iter().cloned());
    JsonValue::Obj(vec![
        ("v".into(), JsonValue::Int(PROTOCOL_VERSION)),
        ("ok".into(), JsonValue::Bool(false)),
        ("error".into(), JsonValue::Obj(err)),
    ])
}

fn write_response<W: Write>(w: &mut W, payload: &[u8], max: usize) -> io::Result<()> {
    // A response the codec refuses (oversize) still must not leave the
    // client hanging mid-protocol: degrade to a minimal typed error.
    match frame::write_frame(w, payload, max) {
        Ok(()) => Ok(()),
        Err(FrameError::Io(e)) => Err(e),
        Err(_) => {
            let fallback =
                error_envelope(&ServiceError::new("oversize", "response exceeded the frame cap"));
            match frame::write_frame(w, fallback.to_string().as_bytes(), max) {
                Ok(()) => Ok(()),
                Err(FrameError::Io(e)) => Err(e),
                Err(_) => Ok(()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl Service for Echo {
        fn handle(&self, verb: &str, body: &JsonValue) -> Result<JsonValue, ServiceError> {
            match verb {
                "echo" => Ok(body.get("payload").cloned().unwrap_or(JsonValue::Null)),
                "boom" => panic!("kaboom"),
                "fail" => Err(ServiceError::bad_request("told to fail")
                    .with_detail("candidates", JsonValue::Arr(vec![]))),
                other => Err(ServiceError::new(
                    "unknown_verb",
                    format!("no such verb `{other}`"),
                )),
            }
        }
    }

    fn call(server: &Server<Echo>, request: &str) -> JsonValue {
        let raw = server.handle_frame(request.as_bytes());
        json::parse(std::str::from_utf8(&raw).unwrap()).unwrap()
    }

    #[test]
    fn ok_and_error_envelopes_are_versioned() {
        let server = Server::new(Echo, ServerConfig::default());
        let ok = call(&server, r#"{"v":1,"verb":"echo","payload":42}"#);
        assert_eq!(ok.get("v").unwrap().as_u64(), Some(1));
        assert_eq!(ok.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(ok.get("result").unwrap().as_u64(), Some(42));

        let err = call(&server, r#"{"verb":"nope"}"#);
        assert_eq!(err.get("ok"), Some(&JsonValue::Bool(false)));
        let e = err.get("error").unwrap();
        assert_eq!(e.get("kind").unwrap().as_str(), Some("unknown_verb"));
    }

    #[test]
    fn missing_verb_bad_json_and_wrong_version_are_protocol_errors() {
        let server = Server::new(Echo, ServerConfig::default());
        for (request, kind) in [
            (r#"{"v":1}"#, "protocol"),
            ("not json", "protocol"),
            (r#"{"v":9,"verb":"echo"}"#, "version"),
        ] {
            let resp = call(&server, request);
            assert_eq!(resp.get("ok"), Some(&JsonValue::Bool(false)));
            let got = resp.get("error").unwrap().get("kind").unwrap().as_str();
            assert_eq!(got, Some(kind), "request {request:?}");
        }
    }

    #[test]
    fn handler_panic_becomes_a_typed_internal_error() {
        let server = Server::new(Echo, ServerConfig::default());
        let resp = call(&server, r#"{"verb":"boom"}"#);
        let e = resp.get("error").unwrap();
        assert_eq!(e.get("kind").unwrap().as_str(), Some("internal"));
        assert!(e
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("kaboom"));
    }

    #[test]
    fn error_detail_fields_are_merged() {
        let server = Server::new(Echo, ServerConfig::default());
        let resp = call(&server, r#"{"verb":"fail"}"#);
        let e = resp.get("error").unwrap();
        assert!(matches!(e.get("candidates"), Some(JsonValue::Arr(_))));
    }
}
