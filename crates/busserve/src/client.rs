//! A minimal blocking client for the frame protocol — used by the CI
//! smoke clients, the integration tests, and anyone scripting the
//! daemon from Rust.

use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;

use busprobe::json::{self, JsonValue};

use crate::frame::{self, FrameError};

/// Why a call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The response frame was malformed.
    Frame(FrameError),
    /// The response payload was not valid UTF-8 JSON.
    Json(String),
    /// The server closed the connection instead of responding.
    Closed,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "client frame error: {e}"),
            ClientError::Json(e) => write!(f, "client could not parse response: {e}"),
            ClientError::Closed => f.write_str("server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => ClientError::Io(io),
            other => ClientError::Frame(other),
        }
    }
}

/// One connection to a daemon socket; requests are strictly
/// call-and-response (the protocol permits pipelining, this helper
/// does not bother).
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to the daemon socket at `path`.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(path: &Path) -> io::Result<Client> {
        Ok(Client {
            stream: UnixStream::connect(path)?,
        })
    }

    /// Sends one request object and waits for the response object.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; [`ClientError::Closed`] when the server
    /// hung up before responding (e.g. drain).
    pub fn call(&mut self, request: &JsonValue) -> Result<JsonValue, ClientError> {
        frame::write_frame(
            &mut self.stream,
            request.to_string().as_bytes(),
            frame::MAX_FRAME_BYTES,
        )?;
        let bytes = frame::read_frame(&mut self.stream, frame::MAX_FRAME_BYTES)?
            .ok_or(ClientError::Closed)?;
        let text = std::str::from_utf8(&bytes)
            .map_err(|e| ClientError::Json(format!("response is not UTF-8: {e}")))?;
        json::parse(text).map_err(|e| ClientError::Json(e.to_string()))
    }
}
