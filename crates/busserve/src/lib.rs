//! `busserve` — the resident evaluation-service runtime.
//!
//! The batch `repro` binary answers "what does scheme X cost on trace
//! Y" by rebuilding the world per run; this crate is the long-running
//! half of that question. It speaks a hand-rolled, length-prefixed
//! JSON frame protocol (see [`frame`]) over a unix socket or
//! stdin/stdout, shards requests across bounded worker queues, rejects
//! overload with typed `busy` responses instead of blocking, enforces
//! per-connection quotas, and drains cleanly on SIGTERM (see
//! [`signal`]).
//!
//! The crate is domain-free on purpose: it depends only on `busprobe`
//! (for the JSON model and metrics) and serves any [`Server`]-hosted
//! [`Service`]. The actual evaluation service — warm
//! `bench::Session`, scheme pricing, cache-provenance — lives in
//! `bench::api`, which implements [`Service`] and keeps the
//! dependency arrow `bench → busserve`, never the reverse.
//!
//! Protocol and operational semantics are documented in
//! `docs/SERVICE.md`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod client;
pub mod frame;
mod server;
#[allow(unsafe_code)]
pub mod signal;

pub use client::{Client, ClientError};
pub use frame::{read_frame, read_frame_after, write_frame, FrameError, MAX_FRAME_BYTES};
pub use server::{
    Server, ServerConfig, ServeStats, Service, ServiceError, PROTOCOL_VERSION,
};
