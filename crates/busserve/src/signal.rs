//! SIGTERM/SIGINT → shutdown flag, without a libc dependency.
//!
//! The container builds with no registry access, so instead of the
//! `libc` or `signal-hook` crates this module declares the one C
//! function it needs. The handler only stores to a static
//! `AtomicBool` — the one thing that is unconditionally async-signal-
//! safe — and the serve loops poll the flag between frames.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    /// `signal(2)` from the platform libc. `handler` is the address of
    /// an `extern "C" fn(i32)`; the return value (the previous
    /// handler) is ignored.
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::Release);
}

/// Installs the SIGTERM and SIGINT handlers and returns the flag they
/// set. Idempotent; call once from the daemon's `main` and hand the
/// flag to [`Server::serve_unix`](crate::Server::serve_unix).
pub fn install() -> &'static AtomicBool {
    // SAFETY: `signal` is the libc entry point; the handler does
    // nothing but a relaxed-store to a static atomic, which is
    // async-signal-safe.
    let handler = on_signal as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
    &SHUTDOWN
}

/// Whether a termination signal has arrived (or [`request`] ran).
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::Acquire)
}

/// Sets the flag programmatically — what a test (or an in-process
/// shutdown verb) uses instead of a real signal.
pub fn request() {
    SHUTDOWN.store(true, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_the_flag_install_returns_it() {
        let flag = install();
        assert!(!flag.load(Ordering::Acquire) || requested());
        request();
        assert!(requested());
        assert!(flag.load(Ordering::Acquire));
        // Leave the process-global flag clear for any sibling test.
        flag.store(false, Ordering::Release);
    }
}
