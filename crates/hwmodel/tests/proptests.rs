//! Property tests for the cycle-level hardware models.

use hwmodel::{ContextHardware, ContextHwConfig, HwOutcome, WindowHardware};
use proptest::prelude::*;

/// Value streams mixing hot small sets, clustered values and noise —
/// the regimes that exercise hits, staging, promotion and sorting.
fn value_stream() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            4 => 0u64..8,
            3 => (0u64..64).prop_map(|k| 0xAB00_0000 + k),
            2 => any::<u32>().prop_map(u64::from),
        ],
        1..600,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The sorted-table invariants hold at every cycle boundary for any
    /// geometry and any traffic.
    #[test]
    fn context_invariants_hold(
        values in value_stream(),
        table in 1usize..16,
        shift in 1usize..8,
        divide in prop_oneof![Just(0u64), Just(7), Just(64)],
    ) {
        let mut hw = ContextHardware::new(ContextHwConfig {
            table,
            shift,
            divide_period: divide,
            promote_threshold: 2,
        });
        for v in values {
            hw.present(v);
            prop_assert!(hw.is_sorted(), "Invariant 2 violated");
            prop_assert!(hw.tags_unique(), "Invariant 1 violated");
        }
    }

    /// Operation accounting identities of the window hardware:
    /// exactly one shift per miss; full matches never exceed precharges;
    /// precharges never exceed entries × cycles.
    #[test]
    fn window_op_identities(values in value_stream(), entries in 1usize..12) {
        let mut hw = WindowHardware::new(entries);
        let mut misses = 0u64;
        for v in values {
            if hw.present(v) == HwOutcome::Miss {
                misses += 1;
            }
        }
        let ops = hw.ops();
        prop_assert_eq!(ops.shifts, misses);
        prop_assert!(ops.full_matches <= ops.precharge_matches);
        prop_assert!(ops.precharge_matches <= entries as u64 * ops.cycles);
        prop_assert!(ops.last_updates <= ops.cycles);
    }

    /// An immediate repeat always hits rank 0 on both hardware models.
    #[test]
    fn repeats_hit_rank_zero(values in value_stream()) {
        let mut w = WindowHardware::new(4);
        let mut c = ContextHardware::new(ContextHwConfig {
            table: 4,
            shift: 2,
            divide_period: 0,
            promote_threshold: 2,
        });
        let mut prev: Option<u64> = None;
        for v in values {
            let wo = w.present(v);
            let co = c.present(v);
            if prev == Some(v) {
                prop_assert_eq!(wo, HwOutcome::Hit { rank: 0 });
                prop_assert_eq!(co, HwOutcome::Hit { rank: 0 });
            }
            prev = Some(v);
        }
    }
}
