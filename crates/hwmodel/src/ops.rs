//! The hardware operation tally (paper Section 5.3.2, Figure 28).

use std::fmt;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

/// Counts of every energy-consuming operation class a transcoder
/// performs. One tally covers one end of the bus; encoder and decoder
/// perform (nearly) identical work, so the full cost is twice the
/// priced tally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OpCounts {
    /// Cycles processed (for per-cycle overheads: clocking, input latch,
    /// output mux/XOR).
    pub cycles: u64,
    /// Low-order-bits precharge comparisons: every valid entry performs
    /// one per cycle (selective precharge, first stage).
    pub precharge_matches: u64,
    /// Full-width comparisons: entries whose low bits matched and had to
    /// complete the compare.
    pub full_matches: u64,
    /// Entry writes from shifting a new value in (pointer-based, so one
    /// per miss, not one per entry).
    pub shifts: u64,
    /// Johnson-counter increments (one bit transition each).
    pub counter_increments: u64,
    /// Adjacent-entry counter equality comparisons.
    pub counter_compares: u64,
    /// Neighbor entry swaps in the sorted frequency table.
    pub swaps: u64,
    /// Pending-bit sets/clears.
    pub pending_updates: u64,
    /// LAST-value pointer-vector updates.
    pub last_updates: u64,
    /// Counter-division sweeps (every counter rewritten once per sweep,
    /// counted per entry).
    pub divide_writes: u64,
    /// Promotions of staged entries into the frequency table.
    pub promotions: u64,
}

impl OpCounts {
    /// An empty tally.
    pub fn new() -> Self {
        OpCounts::default()
    }

    /// Total of all discrete operations (excluding `cycles`).
    pub fn total_ops(&self) -> u64 {
        self.precharge_matches
            + self.full_matches
            + self.shifts
            + self.counter_increments
            + self.counter_compares
            + self.swaps
            + self.pending_updates
            + self.last_updates
            + self.divide_writes
            + self.promotions
    }
}

impl Add for OpCounts {
    type Output = OpCounts;

    fn add(mut self, rhs: OpCounts) -> OpCounts {
        self += rhs;
        self
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: OpCounts) {
        self.cycles += rhs.cycles;
        self.precharge_matches += rhs.precharge_matches;
        self.full_matches += rhs.full_matches;
        self.shifts += rhs.shifts;
        self.counter_increments += rhs.counter_increments;
        self.counter_compares += rhs.counter_compares;
        self.swaps += rhs.swaps;
        self.pending_updates += rhs.pending_updates;
        self.last_updates += rhs.last_updates;
        self.divide_writes += rhs.divide_writes;
        self.promotions += rhs.promotions;
    }
}

impl fmt::Display for OpCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles: {} precharge, {} full-match, {} shift, {} count, {} cmp, {} swap",
            self.cycles,
            self.precharge_matches,
            self.full_matches,
            self.shifts,
            self.counter_increments,
            self.counter_compares,
            self.swaps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_fieldwise() {
        let a = OpCounts {
            cycles: 1,
            shifts: 2,
            swaps: 3,
            ..OpCounts::new()
        };
        let b = OpCounts {
            cycles: 10,
            shifts: 20,
            full_matches: 5,
            ..OpCounts::new()
        };
        let c = a + b;
        assert_eq!(c.cycles, 11);
        assert_eq!(c.shifts, 22);
        assert_eq!(c.swaps, 3);
        assert_eq!(c.full_matches, 5);
        assert_eq!(c.total_ops(), 30);
    }

    #[test]
    fn display_mentions_cycles() {
        let a = OpCounts {
            cycles: 7,
            ..OpCounts::new()
        };
        assert!(a.to_string().starts_with("7 cycles"));
    }
}
