//! The energy budget (paper Section 5.1, Figure 26).
//!
//! The budget is the wire energy a coding scheme *saves* per bus cycle
//! at a given wire length — an implementation-independent ceiling on
//! what the encoder/decoder pair may consume and still break even. It
//! depends only on the wire model and on how many transitions and
//! coupling events the code removed.

use buscoding::Activity;
use wiremodel::Wire;

/// Wire energy saved per bus value, in picojoules: the transcoder's
/// energy budget at this wire's length.
///
/// Negative when the scheme *adds* wire activity (control-line traffic
/// outweighing the coding gains).
///
/// # Panics
///
/// Panics if `values` is zero — a budget over no traffic is undefined.
///
/// # Example
///
/// ```
/// use buscoding::Activity;
/// use hwmodel::budget::energy_budget_pj_per_cycle;
/// use wiremodel::{Technology, Wire, WireStyle};
///
/// let mut baseline = Activity::new(32);
/// baseline.step(0);
/// baseline.step(0xFFFF_FFFF);
/// let mut coded = Activity::new(34);
/// coded.step(0);
/// coded.step(0x1);
/// let wire = Wire::new(Technology::tech_013(), WireStyle::Repeated, 10.0)?;
/// let budget = energy_budget_pj_per_cycle(&baseline, &coded, &wire, 1);
/// assert!(budget > 0.0);
/// # Ok::<(), wiremodel::WireError>(())
/// ```
pub fn energy_budget_pj_per_cycle(
    baseline: &Activity,
    coded: &Activity,
    wire: &Wire,
    values: u64,
) -> f64 {
    assert!(values > 0, "budget requires at least one bus value");
    let e = wire.transition_energy();
    let base = e.total_pj(baseline.tau(), baseline.kappa());
    let after = e.total_pj(coded.tau(), coded.kappa());
    (base - after) / values as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiremodel::{Technology, WireStyle};

    fn activity(lines: u32, states: &[u64]) -> Activity {
        let mut a = Activity::new(lines);
        for &s in states {
            a.step(s);
        }
        a
    }

    fn wire(len: f64) -> Wire {
        Wire::new(Technology::tech_013(), WireStyle::Repeated, len).unwrap()
    }

    #[test]
    fn budget_grows_linearly_with_length() {
        let baseline = activity(32, &[0, 0xFFFF, 0, 0xFFFF]);
        let coded = activity(34, &[0, 1, 0, 1]);
        let b5 = energy_budget_pj_per_cycle(&baseline, &coded, &wire(5.0), 3);
        let b15 = energy_budget_pj_per_cycle(&baseline, &coded, &wire(15.0), 3);
        assert!(
            b15 > 2.5 * b5,
            "budget must scale with length: {b5} vs {b15}"
        );
    }

    #[test]
    fn budget_is_negative_when_coding_hurts() {
        let baseline = activity(32, &[0, 1]);
        let coded = activity(34, &[0, 0xFFFF]);
        assert!(energy_budget_pj_per_cycle(&baseline, &coded, &wire(10.0), 1) < 0.0);
    }

    #[test]
    fn budget_is_zero_for_identical_activity() {
        let a = activity(32, &[0, 5, 9]);
        let b = activity(32, &[0, 5, 9]);
        assert_eq!(energy_budget_pj_per_cycle(&a, &b, &wire(10.0), 2), 0.0);
    }

    #[test]
    fn budget_magnitude_matches_figure26() {
        // Figure 26: a few pJ of budget at 10-15 mm for a transcoder
        // removing a healthy fraction of a 32-bit bus's activity. Use a
        // synthetic 50%-removal profile at ~8 weighted events/cycle.
        let mut baseline = Activity::new(32);
        let mut coded = Activity::new(34);
        baseline.step(0);
        coded.step(0);
        let mut x = 1u64;
        for i in 0..10_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(3);
            baseline.step(x & 0xFF); // ~4 transitions/cycle + coupling
            coded.step(if i % 2 == 0 { 1 } else { 0 }); // ~1 transition
        }
        let b = energy_budget_pj_per_cycle(&baseline, &coded, &wire(15.0), 10_000);
        assert!(
            b > 0.3 && b < 20.0,
            "budget {b} pJ out of the plausible band"
        );
    }

    #[test]
    #[should_panic(expected = "at least one bus value")]
    fn budget_rejects_zero_values() {
        let a = activity(32, &[0]);
        let _ = energy_budget_pj_per_cycle(&a, &a, &wire(5.0), 0);
    }
}
