//! Cycle-level model of the Window-based transcoder hardware
//! (Section 5.3.3, Figures 29–30, 33).
//!
//! Structures modeled:
//!
//! * **ShiftTag array** — `N` CAM entries holding the last `N` unique
//!   values, with *pointer-based shifting*: a shift-in rewrites only the
//!   head entry and bumps a tail pointer, so one entry write per miss;
//! * **selective-precharge matching** — every entry compares the low 16
//!   bits first; only low-bits matchers complete the full 32-bit
//!   compare;
//! * **pointer-based LAST-value tracking** — a one-hot vector marks the
//!   entry holding the last bus value, reusing the match circuitry.

use std::collections::VecDeque;

use bustrace::Word;

use crate::ops::OpCounts;

/// What the hardware decided for one presented word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HwOutcome {
    /// Matched the prediction at this rank (0 = LAST value).
    Hit {
        /// Confidence rank (code index) transmitted.
        rank: usize,
    },
    /// No match: the raw word goes out.
    Miss,
}

/// Number of low-order bits compared in the precharge stage (the layout
/// uses two 16-bit NAND trees; the low tree gates the high one).
const PRECHARGE_BITS: u32 = 16;
const PRECHARGE_MASK: u64 = (1 << PRECHARGE_BITS) - 1;

/// The Window-based transcoder datapath at one end of the bus.
///
/// Semantics (hit/miss decisions and ranks) are identical to the
/// behavioral `buscoding` window codec — a property the integration
/// tests assert — while additionally tallying every hardware operation.
#[derive(Debug, Clone)]
pub struct WindowHardware {
    entries: usize,
    /// Newest at the back; all values distinct (CAM property).
    window: VecDeque<Word>,
    last: Option<Word>,
    ops: OpCounts,
}

impl WindowHardware {
    /// Creates the datapath with `entries` shift-tag entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries >= 1, "the shift-tag array needs at least one entry");
        WindowHardware {
            entries,
            window: VecDeque::with_capacity(entries),
            last: None,
            ops: OpCounts::new(),
        }
    }

    /// Shift-tag capacity.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// The operation tally so far.
    pub fn ops(&self) -> &OpCounts {
        &self.ops
    }

    /// Presents one bus word; returns the coding decision and updates
    /// the operation tally.
    pub fn present(&mut self, value: Word) -> HwOutcome {
        self.ops.cycles += 1;

        // Match phase: selective precharge over every valid entry.
        let mut full_matched_at: Option<usize> = None;
        for (i, &tag) in self.window.iter().enumerate() {
            self.ops.precharge_matches += 1;
            if tag & PRECHARGE_MASK == value & PRECHARGE_MASK {
                self.ops.full_matches += 1;
                if tag == value {
                    full_matched_at = Some(i);
                }
            }
        }

        // Decision: LAST first (pointer vector), then window position
        // (newest first, skipping the LAST entry, mirroring the
        // engine's rank assignment).
        let outcome = if self.last == Some(value) {
            HwOutcome::Hit { rank: 0 }
        } else if let Some(pos) = full_matched_at {
            let newest_first = self.window.len() - 1 - pos;
            // Ranks skip the entry holding LAST if it is newer.
            let mut rank = 1 + newest_first;
            if let Some(last) = self.last {
                if let Some(last_pos) = self.window.iter().position(|&t| t == last) {
                    let last_newest_first = self.window.len() - 1 - last_pos;
                    if last_newest_first < newest_first {
                        rank -= 1;
                    }
                }
            }
            HwOutcome::Hit { rank }
        } else {
            HwOutcome::Miss
        };

        // Update phase.
        if full_matched_at.is_none() {
            // Pointer-based shift: one entry write.
            if self.window.len() == self.entries {
                self.window.pop_front();
            }
            self.window.push_back(value);
            self.ops.shifts += 1;
        }
        if self.last != Some(value) {
            self.ops.last_updates += 1;
            self.last = Some(value);
        }
        outcome
    }

    /// Restores the power-on state, keeping the tally.
    pub fn reset(&mut self) {
        self.window.clear();
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_hits_rank_zero_without_shifting() {
        let mut hw = WindowHardware::new(4);
        assert_eq!(hw.present(7), HwOutcome::Miss);
        assert_eq!(hw.present(7), HwOutcome::Hit { rank: 0 });
        assert_eq!(hw.present(7), HwOutcome::Hit { rank: 0 });
        assert_eq!(hw.ops().shifts, 1, "only the first appearance shifts");
        assert_eq!(hw.ops().last_updates, 1);
    }

    #[test]
    fn window_hit_ranks_skip_last() {
        let mut hw = WindowHardware::new(4);
        hw.present(1);
        hw.present(2);
        hw.present(3); // window oldest->newest: 1,2,3; last = 3
                       // 2 is the newest non-LAST entry: rank 1.
        assert_eq!(hw.present(2), HwOutcome::Hit { rank: 1 });
        // Now last = 2; 3 is newest non-LAST: rank 1; 1 is rank 2.
        assert_eq!(hw.present(1), HwOutcome::Hit { rank: 2 });
    }

    #[test]
    fn precharge_filters_full_compares() {
        let mut hw = WindowHardware::new(4);
        hw.present(0x0001_0005);
        hw.present(0x0002_0006);
        // Low 16 bits (0x0005) match only the first entry.
        hw.present(0x0003_0005);
        // Cycle 3 performed 2 precharges but only 1 full compare.
        assert_eq!(hw.ops().precharge_matches, 1 + 2);
        assert_eq!(hw.ops().full_matches, 1);
    }

    #[test]
    fn misses_evict_oldest() {
        let mut hw = WindowHardware::new(2);
        hw.present(1);
        hw.present(2);
        hw.present(3); // evicts 1
        assert_eq!(hw.present(1), HwOutcome::Miss, "1 was evicted");
    }

    #[test]
    fn ops_accumulate_across_reset() {
        let mut hw = WindowHardware::new(2);
        hw.present(1);
        let before = hw.ops().cycles;
        hw.reset();
        hw.present(2);
        assert_eq!(hw.ops().cycles, before + 1);
        assert_eq!(hw.present(1), HwOutcome::Miss, "window cleared by reset");
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn rejects_zero_entries() {
        let _ = WindowHardware::new(0);
    }
}
