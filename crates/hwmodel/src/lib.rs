//! Circuit-level transcoder energy modeling (paper Section 5).
//!
//! The paper's decisive question is not "does coding remove transitions"
//! but "does the *circuit doing the coding* cost less than it saves".
//! Its methodology (Figure 34): run the transcoder architecture at cycle
//! level, count every energy-consuming hardware operation — matches,
//! shifts, Johnson-counter increments, counter comparisons, entry swaps
//! — then multiply by per-operation energies extracted from an HSPICE
//! simulation of the real layout. This crate implements exactly that
//! pipeline:
//!
//! * [`WindowHardware`] and [`ContextHardware`] are cycle-level models
//!   of the two built designs, including the pending-bit neighbor-swap
//!   sorting algorithm of Section 5.3.1 and selective-precharge
//!   matching;
//! * [`OpCounts`] tallies the operations; [`CircuitModel`] prices them
//!   per technology, calibrated so whole-codec averages land on
//!   Table 2 (1.39 pJ/cycle at 0.13 µm, 1.07 at 0.10 µm, 0.55 at
//!   0.07 µm, 1.76 for the inversion coder);
//! * [`budget`] computes the implementation-independent energy budget of
//!   Figure 26; [`crossover`] combines transcoder and wire energy into
//!   the normalized-energy curves and break-even lengths of Figures
//!   35–38 and Table 3.
//!
//! # Example
//!
//! ```
//! use bustrace::{Trace, Width};
//! use hwmodel::{CircuitModel, WindowHardware};
//! use wiremodel::Technology;
//!
//! let trace = Trace::from_values(Width::W32, (0..2000u64).map(|i| i % 10));
//! let mut hw = WindowHardware::new(8);
//! for v in trace.iter() {
//!     hw.present(v);
//! }
//! let circuit = CircuitModel::window(Technology::tech_013(), 8);
//! let pj = circuit.dynamic_energy_pj(hw.ops());
//! assert!(pj > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod crossover;
pub mod timing;

mod circuit;
mod context_hw;
mod ops;
mod window_hw;

pub use circuit::{CircuitKind, CircuitModel, OpEnergies};
pub use context_hw::{ContextHardware, ContextHwConfig};
pub use ops::OpCounts;
pub use window_hw::{HwOutcome, WindowHardware};
