//! Timing feasibility of a transcoded bus (paper Table 2 + Figure 6).
//!
//! The transcoder sits *in series* with the wire: data must traverse the
//! encoder (data-ready-to-bus-out delay), the repeated wire, and the
//! decoder before the receiving latch closes. Table 2 gives the encoder
//! delays and cycle times; the wire model gives propagation delay as a
//! function of length. This module answers the designer's question the
//! paper raises when noting the "serial NAND match design" is slow:
//! *at a given bus clock, how long may the wire be — with and without
//! the transcoder in the path?*

use serde::{Deserialize, Serialize};
use wiremodel::{Wire, WireError, WireStyle};

use crate::circuit::CircuitModel;

/// Timing breakdown of one bus traversal through a transcoder pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathTiming {
    /// Encoder data-ready-to-bus-out delay, ns.
    pub encode_ns: f64,
    /// Wire propagation delay, ns.
    pub wire_ns: f64,
    /// Decoder delay (same circuit class as the encoder), ns.
    pub decode_ns: f64,
}

impl PathTiming {
    /// Total traversal latency in nanoseconds.
    pub fn total_ns(&self) -> f64 {
        self.encode_ns + self.wire_ns + self.decode_ns
    }

    /// Bus cycles consumed at the given clock period (always ≥ 1).
    pub fn cycles_at(&self, period_ns: f64) -> u32 {
        assert!(period_ns > 0.0, "clock period must be positive");
        (self.total_ns() / period_ns).ceil().max(1.0) as u32
    }
}

/// Computes the traversal timing for a transcoder pair around a
/// repeated wire of the given length.
///
/// # Errors
///
/// Returns [`WireError`] for invalid lengths.
pub fn path_timing(circuit: &CircuitModel, length_mm: f64) -> Result<PathTiming, WireError> {
    let tech = *circuit.technology();
    let wire = Wire::new(tech, WireStyle::Repeated, length_mm)?;
    Ok(PathTiming {
        encode_ns: circuit.delay_ns(),
        wire_ns: wire.delay_ps() / 1000.0,
        decode_ns: circuit.delay_ns(),
    })
}

/// The longest repeated wire whose traversal fits in `budget_ns`,
/// searched to 0.1 mm, with (`with_transcoder = true`) or without the
/// encoder/decoder delays in the path. `None` if even 0.1 mm does not
/// fit.
pub fn max_length_within(
    circuit: &CircuitModel,
    budget_ns: f64,
    with_transcoder: bool,
) -> Option<f64> {
    assert!(
        budget_ns.is_finite() && budget_ns > 0.0,
        "budget must be positive"
    );
    let tech = *circuit.technology();
    let fits = |len: f64| -> bool {
        let wire_ns = Wire::new(tech, WireStyle::Repeated, len)
            .map(|w| w.delay_ps() / 1000.0)
            .unwrap_or(f64::INFINITY);
        let overhead = if with_transcoder {
            2.0 * circuit.delay_ns()
        } else {
            0.0
        };
        wire_ns + overhead <= budget_ns
    };
    if !fits(0.1) {
        return None;
    }
    let (mut lo, mut hi) = (0.1f64, 1000.0f64);
    if fits(hi) {
        return Some(hi);
    }
    while hi - lo > 0.1 {
        let mid = (lo + hi) / 2.0;
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiremodel::Technology;

    fn circuit() -> CircuitModel {
        CircuitModel::window(Technology::tech_013(), 8)
    }

    #[test]
    fn path_total_sums_components() {
        let t = path_timing(&circuit(), 10.0).unwrap();
        assert!((t.total_ns() - (t.encode_ns + t.wire_ns + t.decode_ns)).abs() < 1e-12);
        // Table 2: encoder delay 3.1 ns at 0.13 µm.
        assert_eq!(t.encode_ns, 3.1);
        assert_eq!(t.decode_ns, 3.1);
        assert!(
            t.wire_ns > 0.0 && t.wire_ns < 1.0,
            "10mm repeated wire is sub-ns"
        );
    }

    #[test]
    fn cycles_round_up() {
        let t = PathTiming {
            encode_ns: 3.1,
            wire_ns: 0.5,
            decode_ns: 3.1,
        };
        assert_eq!(t.cycles_at(4.0), 2);
        assert_eq!(t.cycles_at(10.0), 1);
        assert_eq!(t.cycles_at(6.7), 1);
    }

    #[test]
    fn transcoder_shortens_the_reachable_wire() {
        let c = circuit();
        // At a relaxed clock both fit somewhere; the transcoded path
        // always reaches less far.
        let budget = 10.0;
        let bare = max_length_within(&c, budget, false).unwrap();
        let coded = max_length_within(&c, budget, true).unwrap();
        assert!(coded < bare, "coded {coded} vs bare {bare}");
    }

    #[test]
    fn too_tight_budget_fits_nothing() {
        // The pair alone costs 6.2 ns at 0.13 µm.
        assert_eq!(max_length_within(&circuit(), 6.0, true), None);
        assert!(max_length_within(&circuit(), 6.0, false).is_some());
    }

    #[test]
    fn faster_technologies_reach_further_with_the_transcoder() {
        let budget = 8.0;
        let l13 = max_length_within(
            &CircuitModel::window(Technology::tech_013(), 8),
            budget,
            true,
        );
        let l07 = max_length_within(
            &CircuitModel::window(Technology::tech_007(), 8),
            budget,
            true,
        );
        match (l13, l07) {
            (Some(a), Some(b)) => assert!(b > a, "0.07um should reach further: {a} vs {b}"),
            (None, Some(_)) => {} // 0.13 µm pair alone blows an 8 ns budget
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn crossover_lengths_fit_the_paper_cycle_time() {
        // Sanity tying Table 2 to Table 3: at the paper's 4 ns cycle,
        // pipelined one-cycle-per-stage operation covers the crossover
        // lengths (wire delay at 11.5 mm ≪ 4 ns).
        let t = path_timing(&circuit(), 11.5).unwrap();
        assert!(t.wire_ns < 4.0);
        // Unpipelined, the full path needs two 4 ns cycles.
        assert_eq!(t.cycles_at(4.0), 2);
    }
}
