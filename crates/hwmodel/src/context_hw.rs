//! Cycle-level model of the Context-based transcoder hardware,
//! including the pending-bit sorting algorithm (Section 5.3.1,
//! Figure 27).
//!
//! The frequency table stores no codewords: an entry's *position* is its
//! code, so the table must stay sorted by frequency. General hardware
//! sorting is ruinously expensive (`O(n log n)` comparators or `O(n²)`
//! wiring), so the design restricts itself to **neighbor swaps** driven
//! by XOR equality comparators and a **pending bit** per entry:
//!
//! 1. a hit sets the entry's pending bit instead of incrementing its
//!    counter immediately (a hit on an already-pending entry is lost —
//!    the documented caveat);
//! 2. every cycle, the top entry increments-and-clears if pending;
//! 3. every cycle, each adjacent pair compares counters: *different* →
//!    the lower entry increments-and-clears if pending (it can never
//!    pass its neighbor); *equal with the lower pending* → the entries
//!    swap, bubbling the pending entry up one position per cycle.
//!
//! This keeps Invariant 2 — counters non-increasing down the table —
//! true at every cycle boundary, which the property tests assert.

use std::collections::VecDeque;

use bustrace::Word;
use serde::{Deserialize, Serialize};

use crate::ops::OpCounts;
use crate::window_hw::HwOutcome;

/// Saturation limit of the four chained 4-bit Johnson counters
/// (Section 5.3.3: maximum count 4096).
const COUNTER_MAX: u64 = 4096;

const PRECHARGE_BITS: u32 = 16;
const PRECHARGE_MASK: u64 = (1 << PRECHARGE_BITS) - 1;

/// Geometry and aging parameters of the Context-based hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContextHwConfig {
    /// Frequency-table entries (the layout of Figure 32 has 28).
    pub table: usize,
    /// Staging shift-register entries (the layout has 4).
    pub shift: usize,
    /// Cycles between counter-division sweeps (0 disables).
    pub divide_period: u64,
    /// Minimum staged count for promotion on shift-register exit.
    pub promote_threshold: u64,
}

impl ContextHwConfig {
    /// The Figure 32 layout: 28 table entries, 4 staging entries,
    /// divide every 4096 cycles.
    pub fn paper_layout() -> Self {
        ContextHwConfig {
            table: 28,
            shift: 4,
            divide_period: 4096,
            promote_threshold: 2,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TableEntry {
    tag: Word,
    counter: u64,
    pending: bool,
}

/// The Context-based transcoder datapath at one end of the bus.
#[derive(Debug, Clone)]
pub struct ContextHardware {
    config: ContextHwConfig,
    /// Sorted non-increasing by counter (Invariant 2); unique tags
    /// (Invariant 1).
    table: Vec<TableEntry>,
    /// Staged (tag, count); newest at the back; tags unique and disjoint
    /// from the table.
    sr: VecDeque<(Word, u64)>,
    last: Option<Word>,
    cycle: u64,
    ops: OpCounts,
}

impl ContextHardware {
    /// Creates the datapath.
    ///
    /// # Panics
    ///
    /// Panics if either structure has zero entries.
    pub fn new(config: ContextHwConfig) -> Self {
        assert!(
            config.table >= 1,
            "frequency table needs at least one entry"
        );
        assert!(config.shift >= 1, "shift register needs at least one entry");
        ContextHardware {
            config,
            table: Vec::with_capacity(config.table),
            sr: VecDeque::with_capacity(config.shift),
            last: None,
            cycle: 0,
            ops: OpCounts::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ContextHwConfig {
        &self.config
    }

    /// The operation tally so far.
    pub fn ops(&self) -> &OpCounts {
        &self.ops
    }

    /// Current table contents (tag, counter), top first.
    pub fn table_contents(&self) -> impl Iterator<Item = (Word, u64)> + '_ {
        self.table.iter().map(|e| (e.tag, e.counter))
    }

    /// Invariant 2: counters non-increasing down the table.
    pub fn is_sorted(&self) -> bool {
        self.table.windows(2).all(|w| w[0].counter >= w[1].counter)
    }

    /// Invariant 1: tags unique across table and shift register.
    pub fn tags_unique(&self) -> bool {
        let mut tags: Vec<Word> = self
            .table
            .iter()
            .map(|e| e.tag)
            .chain(self.sr.iter().map(|&(t, _)| t))
            .collect();
        let before = tags.len();
        tags.sort_unstable();
        tags.dedup();
        tags.len() == before
    }

    /// Presents one bus word; returns the coding decision and updates
    /// the tally, then runs one cycle of the sorting hardware.
    pub fn present(&mut self, value: Word) -> HwOutcome {
        self.ops.cycles += 1;
        self.cycle += 1;

        if self.config.divide_period > 0 && self.cycle.is_multiple_of(self.config.divide_period) {
            for e in &mut self.table {
                e.counter /= 2;
            }
            for e in &mut self.sr {
                e.1 /= 2;
            }
            self.ops.divide_writes += (self.table.len() + self.sr.len()) as u64;
        }

        // Match phase over table then staging register.
        let mut table_pos: Option<usize> = None;
        for (i, e) in self.table.iter().enumerate() {
            self.ops.precharge_matches += 1;
            if e.tag & PRECHARGE_MASK == value & PRECHARGE_MASK {
                self.ops.full_matches += 1;
                if e.tag == value {
                    table_pos = Some(i);
                }
            }
        }
        let mut sr_pos: Option<usize> = None;
        for (i, &(tag, _)) in self.sr.iter().enumerate() {
            self.ops.precharge_matches += 1;
            if tag & PRECHARGE_MASK == value & PRECHARGE_MASK {
                self.ops.full_matches += 1;
                if tag == value {
                    sr_pos = Some(i);
                }
            }
        }

        let outcome = self.decide(value, table_pos, sr_pos);

        // Statistics update.
        match (table_pos, sr_pos) {
            (Some(p), _) => {
                if !self.table[p].pending {
                    self.table[p].pending = true;
                    self.ops.pending_updates += 1;
                }
                // else: the hit is lost (documented caveat).
            }
            (None, Some(p)) => {
                if self.sr[p].1 < COUNTER_MAX {
                    self.sr[p].1 += 1;
                    self.ops.counter_increments += 1;
                }
            }
            (None, None) => {
                if self.sr.len() == self.config.shift {
                    let (tag, count) = self.sr.pop_front().expect("non-empty");
                    self.maybe_promote(tag, count);
                }
                self.sr.push_back((value, 1));
                self.ops.shifts += 1;
            }
        }

        self.sort_cycle();

        if self.last != Some(value) {
            self.ops.last_updates += 1;
            self.last = Some(value);
        }
        debug_assert!(self.is_sorted(), "Invariant 2 violated");
        debug_assert!(self.tags_unique(), "Invariant 1 violated");
        outcome
    }

    /// Decision mirroring the behavioral engine: LAST first, then table
    /// positions, then staging entries newest-first, skipping LAST.
    fn decide(&self, value: Word, table_pos: Option<usize>, sr_pos: Option<usize>) -> HwOutcome {
        if self.last == Some(value) {
            return HwOutcome::Hit { rank: 0 };
        }
        let skipped_before = |candidate_index: usize| -> usize {
            // How many candidates before this index equal LAST (0 or 1).
            let Some(last) = self.last else { return 0 };
            let mut skipped = 0;
            for (i, e) in self.table.iter().enumerate() {
                if i >= candidate_index {
                    return skipped;
                }
                if e.tag == last {
                    skipped += 1;
                }
            }
            let into_sr = candidate_index - self.table.len();
            for (j, &(tag, _)) in self.sr.iter().rev().enumerate() {
                if j >= into_sr {
                    break;
                }
                if tag == last {
                    skipped += 1;
                }
            }
            skipped
        };
        if let Some(p) = table_pos {
            return HwOutcome::Hit {
                rank: 1 + p - skipped_before(p),
            };
        }
        if let Some(p) = sr_pos {
            let newest_first = self.sr.len() - 1 - p;
            let index = self.table.len() + newest_first;
            return HwOutcome::Hit {
                rank: 1 + index - skipped_before(index),
            };
        }
        HwOutcome::Miss
    }

    /// Promotion on staging exit: the exiting value replaces the
    /// bottom table entry if its count clears the threshold and beats
    /// that entry. The incoming counter is clamped to the neighbor above
    /// so Invariant 2 holds by construction (a hardware write port can
    /// load any value, but an unsorted load would break position-coding).
    fn maybe_promote(&mut self, tag: Word, count: u64) {
        if count < self.config.promote_threshold {
            return;
        }
        if self.table.len() < self.config.table {
            let clamp = self.table.last().map_or(count, |e| e.counter.min(count));
            self.table.push(TableEntry {
                tag,
                counter: clamp,
                pending: false,
            });
            self.ops.promotions += 1;
        } else if let Some(bottom) = self.table.last() {
            if count > bottom.counter {
                let clamp = if self.table.len() >= 2 {
                    self.table[self.table.len() - 2].counter.min(count)
                } else {
                    count
                };
                let n = self.table.len();
                self.table[n - 1] = TableEntry {
                    tag,
                    counter: clamp,
                    pending: false,
                };
                self.ops.promotions += 1;
            }
        }
    }

    /// One cycle of the pending-bit sorting hardware.
    fn sort_cycle(&mut self) {
        if self.table.is_empty() {
            return;
        }
        // Rule 2: the top entry increments if pending.
        if self.table[0].pending {
            if self.table[0].counter < COUNTER_MAX {
                self.table[0].counter += 1;
                self.ops.counter_increments += 1;
            }
            self.table[0].pending = false;
            self.ops.pending_updates += 1;
        }
        // Rule 3: pairwise neighbor processing, top to bottom.
        for i in 0..self.table.len().saturating_sub(1) {
            self.ops.counter_compares += 1;
            let (upper, lower) = (self.table[i], self.table[i + 1]);
            if lower.counter == upper.counter {
                if lower.pending {
                    self.table.swap(i, i + 1);
                    self.ops.swaps += 1;
                }
            } else if lower.pending {
                // Strictly lower: incrementing cannot pass the neighbor.
                if self.table[i + 1].counter < COUNTER_MAX {
                    self.table[i + 1].counter += 1;
                    self.ops.counter_increments += 1;
                }
                self.table[i + 1].pending = false;
                self.ops.pending_updates += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw(table: usize, shift: usize) -> ContextHardware {
        ContextHardware::new(ContextHwConfig {
            table,
            shift,
            divide_period: 0,
            promote_threshold: 2,
        })
    }

    /// Feed a value stream and return the hardware.
    fn feed(hw: &mut ContextHardware, values: &[Word]) {
        for &v in values {
            hw.present(v);
        }
    }

    #[test]
    fn values_promote_through_staging() {
        let mut h = hw(4, 2);
        // 0xAA repeats with churn so it accumulates staged counts and is
        // eventually promoted when shifted out.
        for i in 0..40u64 {
            h.present(0xAA);
            h.present(1_000 + i);
        }
        assert!(
            h.table_contents().any(|(tag, _)| tag == 0xAA),
            "hot value must reach the table: {:?}",
            h.table_contents().collect::<Vec<_>>()
        );
    }

    #[test]
    fn figure27_walkthrough() {
        // Reproduce the paper's example: a run of equal counters; a hit
        // on the bottom entry bubbles it up one position per cycle and
        // only then increments.
        let mut h = hw(5, 1);
        // Hand-build the table state of Figure 27(a).
        h.table = vec![
            TableEntry {
                tag: 0xFFEE,
                counter: 9,
                pending: false,
            },
            TableEntry {
                tag: 0x1122,
                counter: 8,
                pending: false,
            },
            TableEntry {
                tag: 0x5438,
                counter: 7,
                pending: false,
            },
            TableEntry {
                tag: 0x9988,
                counter: 6,
                pending: false,
            },
            TableEntry {
                tag: 0x3344,
                counter: 6,
                pending: false,
            },
        ];
        // One more equal entry below, as in the figure.
        h.table.push(TableEntry {
            tag: 0x7788,
            counter: 6,
            pending: false,
        });
        h.config.table = 6;

        // Hit "0x7788" (bottom of an equal-counter run of three).
        h.present(0x7788);
        // Sweep 1 both happened inside present(); the entry swapped up
        // one position past an equal neighbor.
        let tags: Vec<Word> = h.table.iter().map(|e| e.tag).collect();
        assert_eq!(tags[4], 0x7788, "one swap per cycle: {tags:?}");
        assert!(h.is_sorted());

        // Idle cycles (present values that miss everything, small enough
        // not to disturb): use fresh values that land in the SR.
        h.present(0x1);
        let tags: Vec<Word> = h.table.iter().map(|e| e.tag).collect();
        assert_eq!(tags[3], 0x7788, "second swap: {tags:?}");
        h.present(0x2);
        // Now above is 0x5438 with counter 7 > 6: increment, not swap.
        let e = h.table.iter().find(|e| e.tag == 0x7788).unwrap();
        assert_eq!(e.counter, 7);
        assert!(!e.pending);
        assert!(h.is_sorted());
    }

    #[test]
    fn hit_on_pending_entry_is_lost() {
        let mut h = hw(3, 1);
        h.table = vec![
            TableEntry {
                tag: 10,
                counter: 5,
                pending: false,
            },
            TableEntry {
                tag: 20,
                counter: 5,
                pending: false,
            },
            TableEntry {
                tag: 30,
                counter: 5,
                pending: false,
            },
        ];
        // Two hits in consecutive cycles on the bottom entry: the second
        // arrives while the swap is still in flight and pending is set.
        h.present(30);
        h.present(30);
        h.present(0x999); // flush
        h.present(0x998);
        let total: u64 = h.table.iter().map(|e| e.counter).sum();
        // Only one increment landed (15 + 1), not two.
        assert_eq!(total, 16, "{:?}", h.table);
    }

    #[test]
    fn invariants_hold_under_pseudorandom_traffic() {
        let mut h = ContextHardware::new(ContextHwConfig {
            table: 8,
            shift: 4,
            divide_period: 64,
            promote_threshold: 2,
        });
        let mut x = 0xABCDu64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.present((x >> 55) * 3); // skewed small population
            assert!(h.is_sorted());
            assert!(h.tags_unique());
        }
        assert!(h.ops().swaps > 0, "sorting hardware should have worked");
        assert!(h.ops().counter_compares > 0);
    }

    #[test]
    fn counters_saturate() {
        let mut h = hw(1, 1);
        h.table = vec![TableEntry {
            tag: 5,
            counter: COUNTER_MAX,
            pending: false,
        }];
        for _ in 0..10 {
            h.present(5);
        }
        assert_eq!(h.table[0].counter, COUNTER_MAX);
    }

    #[test]
    fn division_halves_counters() {
        let mut h = ContextHardware::new(ContextHwConfig {
            table: 2,
            shift: 1,
            divide_period: 4,
            promote_threshold: 1,
        });
        h.table = vec![TableEntry {
            tag: 9,
            counter: 100,
            pending: false,
        }];
        feed(&mut h, &[1, 2, 3, 4]);
        assert!(h.table[0].counter <= 51, "{:?}", h.table);
        assert!(h.ops().divide_writes > 0);
    }

    #[test]
    fn last_value_hits_rank_zero() {
        let mut h = hw(4, 2);
        h.present(42);
        assert_eq!(h.present(42), HwOutcome::Hit { rank: 0 });
    }
}
