//! Crossover analysis: total (wire + transcoder) energy versus the
//! un-encoded wire (paper Section 5.4.3, Figures 35–38, Table 3).
//!
//! The crossover length is the wire length at which the transcoder
//! exactly pays for itself; beyond it, every millimetre is profit. Since
//! both wire energies scale linearly with length while the transcoder
//! cost is fixed, the normalized-energy curves of Figures 35–36 decay
//! hyperbolically toward the coded/uncoded activity ratio, and the
//! crossover has the closed form `L* = E_transcoder / E_saved_per_mm`.

use buscoding::Activity;
use serde::{Deserialize, Serialize};
use wiremodel::{Technology, Wire, WireError, WireStyle};

/// One scheme's measured outcome on one trace, ready for energy
/// analysis at any wire length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CodingOutcome {
    /// Activity of the un-encoded bus.
    pub baseline: Activity,
    /// Activity of the coded bus (including control lines).
    pub coded: Activity,
    /// Bus values carried (transcoder cycles).
    pub values: u64,
    /// Transcoder energy per bus value in picojoules, *both ends*
    /// (encoder + decoder), including leakage.
    pub transcoder_pj_per_value: f64,
}

impl CodingOutcome {
    /// Bundles a measurement.
    ///
    /// # Panics
    ///
    /// Panics if `values` is zero.
    pub fn new(
        baseline: Activity,
        coded: Activity,
        values: u64,
        transcoder_pj_per_value: f64,
    ) -> Self {
        assert!(values > 0, "an outcome requires at least one bus value");
        CodingOutcome {
            baseline,
            coded,
            values,
            transcoder_pj_per_value,
        }
    }

    /// Adds the energy tax of epoch resynchronization (the
    /// `buscoding::robust` epoch wrapper): `flushes` predictor-state
    /// flushes at `pj_per_flush` picojoules each, amortized over the
    /// carried values into [`transcoder_pj_per_value`]. The extra *wire*
    /// activity of post-flush mispredictions is already captured in the
    /// coded [`Activity`]; this accounts only for the transcoder-side
    /// state-clearing energy, shifting the crossover accordingly.
    ///
    /// [`transcoder_pj_per_value`]: CodingOutcome::transcoder_pj_per_value
    /// [`Activity`]: buscoding::Activity
    ///
    /// # Panics
    ///
    /// Panics if `pj_per_flush` is negative or non-finite.
    #[must_use]
    pub fn with_resync_tax(mut self, flushes: u64, pj_per_flush: f64) -> Self {
        assert!(
            pj_per_flush.is_finite() && pj_per_flush >= 0.0,
            "per-flush energy must be finite and non-negative, got {pj_per_flush}"
        );
        self.transcoder_pj_per_value += flushes as f64 * pj_per_flush / self.values as f64;
        self
    }

    /// Total energy of the coded system (wire + both transcoder ends)
    /// divided by the un-encoded wire energy, at this wire length — the
    /// y-axis of Figures 35–38.
    ///
    /// Returns `f64::INFINITY` if the baseline wire never switched.
    pub fn normalized_total_energy(&self, wire: &Wire) -> f64 {
        let e = wire.transition_energy();
        let base = e.total_pj(self.baseline.tau(), self.baseline.kappa());
        if base == 0.0 {
            return f64::INFINITY;
        }
        let coded = e.total_pj(self.coded.tau(), self.coded.kappa())
            + self.transcoder_pj_per_value * self.values as f64;
        coded / base
    }

    /// The normalized-energy curve over a sweep of wire lengths.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if any length is invalid.
    pub fn normalized_curve(
        &self,
        tech: Technology,
        style: WireStyle,
        lengths_mm: &[f64],
    ) -> Result<Vec<(f64, f64)>, WireError> {
        lengths_mm
            .iter()
            .map(|&l| Ok((l, self.normalized_total_energy(&Wire::new(tech, style, l)?))))
            .collect()
    }

    /// Wire energy saved per value per millimetre, in picojoules.
    fn saved_pj_per_value_per_mm(&self, tech: Technology, style: WireStyle) -> f64 {
        // Use a long reference wire so repeater-count rounding washes out.
        const REF_MM: f64 = 20.0;
        let wire = Wire::new(tech, style, REF_MM).expect("reference length is valid");
        let e = wire.transition_energy();
        let saved = e.total_pj(self.baseline.tau(), self.baseline.kappa())
            - e.total_pj(self.coded.tau(), self.coded.kappa());
        saved / self.values as f64 / REF_MM
    }

    /// The crossover (break-even) wire length in millimetres: where
    /// coded-system energy equals un-encoded wire energy. `None` when
    /// the scheme never breaks even (it saved no wire energy) or the
    /// break-even point is beyond any plausible die (1000 mm).
    pub fn crossover_mm(&self, tech: Technology, style: WireStyle) -> Option<f64> {
        static SOLVES: busprobe::StaticCounter =
            busprobe::StaticCounter::new("hwmodel.crossover.solves");
        let _span = busprobe::span("hwmodel.crossover.solve");
        SOLVES.inc();
        let saved_per_mm = self.saved_pj_per_value_per_mm(tech, style);
        if saved_per_mm <= 0.0 {
            return None;
        }
        let crossover = self.transcoder_pj_per_value / saved_per_mm;
        (crossover <= 1000.0).then_some(crossover)
    }
}

/// The median of a set of measurements (the statistic of Table 3).
/// Returns `None` for an empty set. Non-finite values are rejected by
/// panic — they indicate an upstream bug, not data.
///
/// # Example
///
/// ```
/// use hwmodel::crossover::median;
///
/// assert_eq!(median(vec![3.0, 1.0, 2.0]), Some(2.0));
/// assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), Some(2.5));
/// assert_eq!(median(Vec::new()), None);
/// ```
pub fn median(mut values: Vec<f64>) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!(
        values.iter().all(|v| v.is_finite()),
        "median of non-finite values"
    );
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = values.len();
    Some(if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(saving_ratio: f64, transcoder: f64) -> CodingOutcome {
        // Baseline: 8 weighted events/cycle over 1000 cycles.
        let mut baseline = Activity::new(32);
        let mut coded = Activity::new(34);
        baseline.step(0);
        coded.step(0);
        for i in 0..1000u64 {
            baseline.step(if i % 2 == 0 { 0xFF } else { 0 });
            // Coded bus toggles fewer wires.
            let coded_bits = ((8.0 * (1.0 - saving_ratio)).round() as u32).min(32);
            let mask = if coded_bits == 0 {
                0
            } else {
                (1u64 << coded_bits) - 1
            };
            coded.step(if i % 2 == 0 { mask } else { 0 });
        }
        CodingOutcome::new(baseline, coded, 1000, transcoder)
    }

    #[test]
    fn normalized_energy_decreases_with_length() {
        let o = outcome(0.4, 2.0);
        let curve = o
            .normalized_curve(
                Technology::tech_013(),
                WireStyle::Repeated,
                &[2.0, 10.0, 30.0],
            )
            .unwrap();
        assert!(curve.windows(2).all(|w| w[0].1 > w[1].1), "{curve:?}");
    }

    #[test]
    fn crossover_matches_curve_unity() {
        let o = outcome(0.4, 2.0);
        let tech = Technology::tech_013();
        let l = o
            .crossover_mm(tech, WireStyle::Repeated)
            .expect("breaks even");
        let at = o.normalized_total_energy(&Wire::new(tech, WireStyle::Repeated, l).unwrap());
        // Repeater-count rounding allows a few percent of slack.
        assert!(
            (at - 1.0).abs() < 0.05,
            "normalized energy at crossover: {at}"
        );
    }

    #[test]
    fn no_crossover_when_nothing_saved() {
        let o = outcome(0.0, 2.0);
        assert_eq!(
            o.crossover_mm(Technology::tech_013(), WireStyle::Repeated),
            None
        );
    }

    #[test]
    fn cheaper_transcoder_crosses_earlier() {
        let expensive = outcome(0.4, 4.0);
        let cheap = outcome(0.4, 1.0);
        let t = Technology::tech_013();
        let le = expensive.crossover_mm(t, WireStyle::Repeated).unwrap();
        let lc = cheap.crossover_mm(t, WireStyle::Repeated).unwrap();
        assert!(lc < le / 3.0, "{lc} vs {le}");
    }

    #[test]
    fn smaller_technology_crosses_earlier_at_fixed_savings() {
        // Scale the transcoder energy by Table 2's ratios; wire energy
        // shrinks more slowly, so the crossover moves in.
        let t13 = outcome(0.4, 2.0 * 1.0);
        let t07 = outcome(0.4, 2.0 * (0.55 / 1.39));
        let l13 = t13
            .crossover_mm(Technology::tech_013(), WireStyle::Repeated)
            .unwrap();
        let l07 = t07
            .crossover_mm(Technology::tech_007(), WireStyle::Repeated)
            .unwrap();
        assert!(l07 < l13, "{l07} vs {l13}");
    }

    #[test]
    fn normalized_energy_handles_quiet_baseline() {
        let mut baseline = Activity::new(32);
        baseline.step(0);
        baseline.step(0);
        let mut coded = Activity::new(34);
        coded.step(0);
        coded.step(1);
        let o = CodingOutcome::new(baseline, coded, 1, 1.0);
        let w = Wire::new(Technology::tech_013(), WireStyle::Repeated, 5.0).unwrap();
        assert!(o.normalized_total_energy(&w).is_infinite());
    }

    #[test]
    fn resync_tax_amortizes_over_values() {
        let o = outcome(0.4, 2.0);
        let taxed = o.clone().with_resync_tax(100, 5.0);
        // 100 flushes × 5 pJ over 1000 values = +0.5 pJ/value.
        assert!((taxed.transcoder_pj_per_value - 2.5).abs() < 1e-12);
        assert_eq!(o.clone().with_resync_tax(0, 5.0), o);
    }

    #[test]
    fn resync_tax_moves_crossover_out() {
        let o = outcome(0.4, 2.0);
        let t = Technology::tech_013();
        let plain = o.crossover_mm(t, WireStyle::Repeated).unwrap();
        let taxed = o
            .with_resync_tax(500, 4.0)
            .crossover_mm(t, WireStyle::Repeated)
            .unwrap();
        assert!(taxed > plain, "{taxed} vs {plain}");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn resync_tax_rejects_negative_energy() {
        let _ = outcome(0.4, 2.0).with_resync_tax(1, -1.0);
    }

    #[test]
    #[should_panic(expected = "at least one bus value")]
    fn outcome_rejects_zero_values() {
        let a = Activity::new(32);
        let _ = CodingOutcome::new(a, Activity::new(34), 0, 1.0);
    }
}
