//! Per-operation energy pricing and circuit characteristics (Table 2).
//!
//! The paper extracted per-operation energies from HSPICE runs over the
//! extracted layout netlist, then validated the op-count × op-energy
//! estimate against a directly simulated 100-cycle trace (within 6%).
//! We adopt the same decomposition, with per-operation values calibrated
//! so the whole-codec averages reproduce Table 2:
//!
//! | Technology | Op energy (pJ/cycle) | Leakage (pJ/cycle) | Delay | Cycle |
//! |-----------:|---------------------:|-------------------:|------:|------:|
//! | 0.13 µm    | 1.39                 | 0.00088            | 3.1ns | 4ns   |
//! | 0.10 µm    | 1.07                 | 0.00338            | 2.4ns | 3.2ns |
//! | 0.07 µm    | 0.55                 | 0.00787            | 2.0ns | 2.7ns |
//! | InvertCoder| 1.76                 | 0.00055            | 2.2ns | 2.2ns |

use std::fmt;

use serde::{Deserialize, Serialize};
use wiremodel::{Technology, TechnologyKind};

use crate::ops::OpCounts;

/// Which transcoder circuit is being priced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CircuitKind {
    /// The Window-based design (Figure 33): shift tags, match logic,
    /// MuxXorLatch. The paper's 8-entry layout, and the projected
    /// 16-entry design.
    Window {
        /// Shift-register entries.
        entries: usize,
    },
    /// The Context-based design (Figure 32): tags, Johnson counters,
    /// pending-bit sort network.
    Context {
        /// Frequency-table entries.
        table: usize,
        /// Staging shift-register entries.
        shift: usize,
    },
    /// The standard-cell inversion coder base case (Section 5.4.1).
    Inverter,
}

impl fmt::Display for CircuitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitKind::Window { entries } => write!(f, "window-{entries}"),
            CircuitKind::Context { table, shift } => write!(f, "context-{table}+{shift}"),
            CircuitKind::Inverter => f.write_str("invert-coder"),
        }
    }
}

/// Per-operation dynamic energies in picojoules, for one end of the bus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpEnergies {
    /// Fixed per-cycle overhead: clock tree, input latch, output
    /// MuxXorLatch.
    pub per_cycle: f64,
    /// One low-order-bits precharge comparison.
    pub precharge_match: f64,
    /// Completing a full-width comparison after a low-bits hit.
    pub full_match: f64,
    /// Writing one entry on a shift-in.
    pub shift: f64,
    /// One Johnson-counter increment (a single bit transition).
    pub counter_increment: f64,
    /// One adjacent-pair counter comparison.
    pub counter_compare: f64,
    /// One neighbor-entry swap (the custom CAM cells of Figure 31).
    pub swap: f64,
    /// Setting or clearing a pending bit.
    pub pending_update: f64,
    /// Updating the LAST-value pointer vector.
    pub last_update: f64,
    /// Rewriting one counter during a division sweep.
    pub divide_write: f64,
    /// Moving one staged entry into the frequency table.
    pub promotion: f64,
}

impl OpEnergies {
    /// The calibrated 0.13 µm values. Chosen so that the 8-entry window
    /// design averages ~1.39 pJ/cycle on SPEC-like traffic (Table 2),
    /// with relative magnitudes following the circuit discussion of
    /// Section 5.3.3 (precharge-limited matching; cheap Johnson counts;
    /// expensive swaps and writes).
    pub fn base_013() -> Self {
        OpEnergies {
            per_cycle: 0.55,
            precharge_match: 0.045,
            full_match: 0.25,
            shift: 0.35,
            counter_increment: 0.05,
            counter_compare: 0.020,
            swap: 0.40,
            pending_update: 0.02,
            last_update: 0.10,
            divide_write: 0.20,
            promotion: 0.50,
        }
    }

    /// Scales every operation by a factor (technology shrink).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        OpEnergies {
            per_cycle: self.per_cycle * factor,
            precharge_match: self.precharge_match * factor,
            full_match: self.full_match * factor,
            shift: self.shift * factor,
            counter_increment: self.counter_increment * factor,
            counter_compare: self.counter_compare * factor,
            swap: self.swap * factor,
            pending_update: self.pending_update * factor,
            last_update: self.last_update * factor,
            divide_write: self.divide_write * factor,
            promotion: self.promotion * factor,
        }
    }
}

/// Technology scaling factor relative to 0.13 µm, taken from the ratios
/// of Table 2's measured op energies (1.39 : 1.07 : 0.55).
fn tech_energy_factor(kind: TechnologyKind) -> f64 {
    match kind {
        TechnologyKind::Tech013 => 1.0,
        TechnologyKind::Tech010 => 1.07 / 1.39,
        TechnologyKind::Tech007 => 0.55 / 1.39,
    }
}

/// A priced transcoder circuit at one end of a bus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CircuitModel {
    kind: CircuitKind,
    tech: Technology,
    energies: OpEnergies,
}

impl CircuitModel {
    /// Prices a Window-based design.
    pub fn window(tech: Technology, entries: usize) -> Self {
        CircuitModel::new(tech, CircuitKind::Window { entries })
    }

    /// Prices a Context-based design.
    pub fn context(tech: Technology, table: usize, shift: usize) -> Self {
        CircuitModel::new(tech, CircuitKind::Context { table, shift })
    }

    /// Prices the inversion-coder base case.
    pub fn inverter(tech: Technology) -> Self {
        CircuitModel::new(tech, CircuitKind::Inverter)
    }

    /// Prices an arbitrary kind.
    pub fn new(tech: Technology, kind: CircuitKind) -> Self {
        let energies = OpEnergies::base_013().scaled(tech_energy_factor(tech.kind));
        CircuitModel {
            kind,
            tech,
            energies,
        }
    }

    /// The circuit kind.
    pub fn kind(&self) -> CircuitKind {
        self.kind
    }

    /// The technology.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// The per-operation prices in effect.
    pub fn energies(&self) -> &OpEnergies {
        &self.energies
    }

    /// Dynamic energy for an operation tally, one end of the bus, in
    /// picojoules.
    ///
    /// The inversion coder is priced as a flat per-cycle cost (its
    /// majority voter and 32-bit XOR trees run every cycle regardless of
    /// data), per Section 5.4.3.
    pub fn dynamic_energy_pj(&self, ops: &OpCounts) -> f64 {
        if matches!(self.kind, CircuitKind::Inverter) {
            return 1.76 * tech_energy_factor(self.tech.kind) * ops.cycles as f64;
        }
        let e = &self.energies;
        e.per_cycle * ops.cycles as f64
            + e.precharge_match * ops.precharge_matches as f64
            + e.full_match * ops.full_matches as f64
            + e.shift * ops.shifts as f64
            + e.counter_increment * ops.counter_increments as f64
            + e.counter_compare * ops.counter_compares as f64
            + e.swap * ops.swaps as f64
            + e.pending_update * ops.pending_updates as f64
            + e.last_update * ops.last_updates as f64
            + e.divide_write * ops.divide_writes as f64
            + e.promotion * ops.promotions as f64
    }

    /// Leakage energy per cycle in picojoules (Table 2; grows as
    /// technology shrinks).
    pub fn leakage_pj_per_cycle(&self) -> f64 {
        let base = match self.tech.kind {
            TechnologyKind::Tech013 => 0.00088,
            TechnologyKind::Tech010 => 0.00338,
            TechnologyKind::Tech007 => 0.00787,
        };
        if matches!(self.kind, CircuitKind::Inverter) {
            // Standard-cell inverter coder leaks less (Table 2: 0.00055
            // at 0.13 µm); keep the same technology trend.
            base * (0.00055 / 0.00088)
        } else {
            base
        }
    }

    /// Total (dynamic + leakage) energy for a tally, one end, in pJ.
    pub fn total_energy_pj(&self, ops: &OpCounts) -> f64 {
        self.dynamic_energy_pj(ops) + self.leakage_pj_per_cycle() * ops.cycles as f64
    }

    /// Data-ready-to-bus-out delay in nanoseconds (Table 2).
    pub fn delay_ns(&self) -> f64 {
        match (self.kind, self.tech.kind) {
            (CircuitKind::Inverter, _) => 2.2,
            (_, TechnologyKind::Tech013) => 3.1,
            (_, TechnologyKind::Tech010) => 2.4,
            (_, TechnologyKind::Tech007) => 2.0,
        }
    }

    /// Operating cycle time in nanoseconds (Table 2).
    pub fn cycle_time_ns(&self) -> f64 {
        match (self.kind, self.tech.kind) {
            (CircuitKind::Inverter, _) => 2.2,
            (_, TechnologyKind::Tech013) => 4.0,
            (_, TechnologyKind::Tech010) => 3.2,
            (_, TechnologyKind::Tech007) => 2.7,
        }
    }

    /// Estimated layout area in µm².
    ///
    /// Anchored to the measured layouts (window-8: 12 400 µm² at
    /// 0.13 µm, Figure 33; context-28+4: ~100 000 µm² first-order-scaled
    /// to 0.13 µm, Figure 32; inverter: 4 700 µm²), scaled quadratically
    /// with feature size and linearly with the entry-array size beyond
    /// the measured configuration.
    pub fn area_um2(&self) -> f64 {
        let feature_scale = (self.tech.feature_um / 0.13).powi(2);
        let base = match self.kind {
            CircuitKind::Window { entries } => {
                // ~15% fixed control, ~85% tag array at 8 entries.
                12_400.0 * (0.15 + 0.85 * entries as f64 / 8.0)
            }
            CircuitKind::Context { table, shift } => {
                let measured_entries = 28.0 + 4.0;
                100_000.0 * (0.10 + 0.90 * (table + shift) as f64 / measured_entries)
            }
            CircuitKind::Inverter => 4_700.0,
        };
        base * feature_scale
    }
}

impl fmt::Display for CircuitModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} in {}", self.kind, self.tech)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_techs() -> [Technology; 3] {
        Technology::all()
    }

    #[test]
    fn inverter_matches_table2() {
        let ops = OpCounts {
            cycles: 1000,
            ..OpCounts::new()
        };
        let c = CircuitModel::inverter(Technology::tech_013());
        assert!((c.dynamic_energy_pj(&ops) / 1000.0 - 1.76).abs() < 1e-9);
        assert_eq!(c.delay_ns(), 2.2);
        assert_eq!(c.cycle_time_ns(), 2.2);
    }

    #[test]
    fn technology_scaling_follows_table2() {
        let ops = OpCounts {
            cycles: 100,
            precharge_matches: 800,
            ..OpCounts::new()
        };
        let e13 = CircuitModel::window(Technology::tech_013(), 8).dynamic_energy_pj(&ops);
        let e10 = CircuitModel::window(Technology::tech_010(), 8).dynamic_energy_pj(&ops);
        let e07 = CircuitModel::window(Technology::tech_007(), 8).dynamic_energy_pj(&ops);
        assert!((e10 / e13 - 1.07 / 1.39).abs() < 1e-9);
        assert!((e07 / e13 - 0.55 / 1.39).abs() < 1e-9);
    }

    #[test]
    fn leakage_is_orders_of_magnitude_below_dynamic() {
        for tech in all_techs() {
            let c = CircuitModel::window(tech, 8);
            assert!(c.leakage_pj_per_cycle() < c.energies().per_cycle / 10.0);
        }
    }

    #[test]
    fn leakage_grows_as_technology_shrinks() {
        let l: Vec<f64> = all_techs()
            .iter()
            .map(|&t| CircuitModel::window(t, 8).leakage_pj_per_cycle())
            .collect();
        assert!(l[0] < l[1] && l[1] < l[2], "{l:?}");
    }

    #[test]
    fn window_area_matches_figure33() {
        let c = CircuitModel::window(Technology::tech_013(), 8);
        assert!((c.area_um2() - 12_400.0).abs() < 1.0);
        // Table 2's scaled areas: 7340 at 0.10 µm, 3600 at 0.07 µm.
        let a10 = CircuitModel::window(Technology::tech_010(), 8).area_um2();
        let a07 = CircuitModel::window(Technology::tech_007(), 8).area_um2();
        assert!((a10 - 7_340.0).abs() / 7_340.0 < 0.01, "{a10}");
        assert!((a07 - 3_600.0).abs() / 3_600.0 < 0.01, "{a07}");
    }

    #[test]
    fn context_is_much_larger_than_window() {
        let w = CircuitModel::window(Technology::tech_013(), 8).area_um2();
        let c = CircuitModel::context(Technology::tech_013(), 28, 4).area_um2();
        assert!(c > 5.0 * w, "context {c} vs window {w}");
    }

    #[test]
    fn inverter_area_matches_paper() {
        let c = CircuitModel::inverter(Technology::tech_013());
        assert!((c.area_um2() - 4_700.0).abs() < 1.0);
    }

    #[test]
    fn sixteen_entry_window_costs_more_area() {
        let w8 = CircuitModel::window(Technology::tech_013(), 8).area_um2();
        let w16 = CircuitModel::window(Technology::tech_013(), 16).area_um2();
        assert!(w16 > 1.5 * w8 && w16 < 2.5 * w8);
    }

    #[test]
    fn display_names() {
        assert_eq!(
            CircuitModel::window(Technology::tech_013(), 8).to_string(),
            "window-8 in 0.13um (1.2 V)"
        );
        assert_eq!(
            CircuitKind::Context {
                table: 28,
                shift: 4
            }
            .to_string(),
            "context-28+4"
        );
    }
}
