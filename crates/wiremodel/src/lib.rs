//! Interconnect energy and delay models (paper Section 3).
//!
//! The paper characterizes long on-chip buses with two ingredients:
//!
//! 1. a **capacitance model** (Figure 3) splitting each wire's load into
//!    wire-to-substrate capacitance `C_S` and inter-wire capacitance
//!    `C_I`, whose ratio `λ = C_I / C_S` governs how much cross-coupling
//!    events cost relative to plain transitions (Equation 1); and
//! 2. a **repeater model** (Figure 4): long wires are driven through an
//!    initial buffer cascade and uniformly spaced repeaters, trading
//!    energy (repeater capacitance) for linear rather than quadratic
//!    delay.
//!
//! The paper obtained its numbers from HSPICE over extracted layouts and
//! Berkeley Predictive Technology Model device decks. This crate replaces
//! that stack with a first-order distributed-RC model plus Bakoglu-style
//! repeater insertion, with per-technology parameters calibrated so the
//! quantities the paper actually consumes downstream — effective λ per
//! technology (Table 1), energy-vs-length (Figure 5) and delay-vs-length
//! (Figure 6) — land in the reported ranges. See DESIGN.md for the
//! substitution rationale.
//!
//! # Example
//!
//! ```
//! use wiremodel::{Technology, Wire, WireStyle};
//!
//! let tech = Technology::tech_013();
//! let wire = Wire::new(tech, WireStyle::Repeated, 10.0)?;
//! // Repeatered wires have linear delay and a small effective lambda.
//! assert!(wire.lambda() < 1.0);
//! assert!(wire.delay_ps() < 500.0);
//! # Ok::<(), wiremodel::WireError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod energy;
mod technology;
mod wire;

pub use energy::{BusEnergyModel, TransitionEnergy};
pub use technology::{Technology, TechnologyKind};
pub use wire::{RepeaterPlan, Wire, WireError, WireStyle};
