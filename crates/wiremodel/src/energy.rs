//! Bus-level energy accounting glue (Equation 1).

use serde::{Deserialize, Serialize};

use crate::wire::Wire;

/// Per-event wire energies: what one self-transition (τ) and one coupling
/// event (κ) cost over a full wire, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransitionEnergy {
    /// Energy per self-transition event.
    pub tau_pj: f64,
    /// Energy per coupling event with one neighbor.
    pub kappa_pj: f64,
}

impl TransitionEnergy {
    /// Total energy of an activity profile with `tau` self-transition
    /// events and `kappa` coupling events, in picojoules — Equation 1
    /// with physical units attached.
    pub fn total_pj(&self, tau: u64, kappa: u64) -> f64 {
        self.tau_pj * tau as f64 + self.kappa_pj * kappa as f64
    }

    /// The coupling ratio λ implied by these energies.
    pub fn lambda(&self) -> f64 {
        self.kappa_pj / self.tau_pj
    }
}

/// Energy model for a whole bus: a bundle of identical wires.
///
/// The activity counts (τ, κ) produced by the coding study are summed
/// over all wires of the bus, so the bus model only needs the per-event
/// energies of one wire.
///
/// # Example
///
/// ```
/// use wiremodel::{BusEnergyModel, Technology, Wire, WireStyle};
///
/// let wire = Wire::new(Technology::tech_013(), WireStyle::Repeated, 10.0)?;
/// let bus = BusEnergyModel::new(wire);
/// let quiet = bus.energy_pj(0, 0);
/// assert_eq!(quiet, 0.0);
/// assert!(bus.energy_pj(100, 50) > bus.energy_pj(100, 0));
/// # Ok::<(), wiremodel::WireError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusEnergyModel {
    wire: Wire,
    per_event: TransitionEnergy,
}

impl BusEnergyModel {
    /// Creates the model for a bus made of the given wire.
    pub fn new(wire: Wire) -> Self {
        BusEnergyModel {
            per_event: wire.transition_energy(),
            wire,
        }
    }

    /// The underlying wire.
    pub fn wire(&self) -> &Wire {
        &self.wire
    }

    /// Per-event energies.
    pub fn per_event(&self) -> TransitionEnergy {
        self.per_event
    }

    /// Energy in picojoules for a bus activity profile: `tau` total
    /// self-transitions and `kappa` total coupling events summed across
    /// all wires of the bus.
    pub fn energy_pj(&self, tau: u64, kappa: u64) -> f64 {
        self.per_event.total_pj(tau, kappa)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Technology, WireStyle};

    #[test]
    fn total_is_linear_in_events() {
        let e = TransitionEnergy {
            tau_pj: 2.0,
            kappa_pj: 1.0,
        };
        assert_eq!(e.total_pj(0, 0), 0.0);
        assert_eq!(e.total_pj(3, 4), 10.0);
        assert_eq!(e.lambda(), 0.5);
    }

    #[test]
    fn bus_model_matches_wire() {
        let wire = Wire::new(Technology::tech_007(), WireStyle::Repeated, 8.0).unwrap();
        let bus = BusEnergyModel::new(wire);
        assert_eq!(bus.energy_pj(1, 0), wire.tau_energy_pj());
        assert_eq!(bus.energy_pj(0, 1), wire.kappa_energy_pj());
        assert_eq!(bus.wire().length_mm(), 8.0);
    }
}
