//! Single-wire delay and energy: unbuffered vs repeatered (Figures 4–6).

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::energy::TransitionEnergy;
use crate::technology::Technology;

/// Whether a wire is driven end-to-end or broken up by repeaters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WireStyle {
    /// A bare distributed-RC wire driven only by an initial buffer
    /// cascade. Delay grows quadratically with length.
    Unbuffered,
    /// The standard repeated-wire model of Figure 4: an initial cascade,
    /// then uniformly spaced repeaters. Delay grows linearly with length;
    /// energy grows because each repeater adds gate and drain capacitance.
    Repeated,
}

impl fmt::Display for WireStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireStyle::Unbuffered => f.write_str("unbuffered"),
            WireStyle::Repeated => f.write_str("repeated"),
        }
    }
}

/// The derived repeater insertion for a wire: how many uniformly spaced
/// repeaters of what size (in multiples of a minimum inverter).
///
/// Produced by Bakoglu-style sizing, backed off by the technology's
/// [`repeater_derating`](Technology::repeater_derating) factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepeaterPlan {
    /// Number of repeated segments (equals the repeater count; the first
    /// "repeater" is realized by the driver cascade).
    pub segments: u32,
    /// Repeater size as a multiple of the minimum inverter.
    pub size: f64,
    /// Added repeater capacitance per millimetre of wire, in femtofarads
    /// (gate plus drain parasitic).
    pub added_cap_ff_per_mm: f64,
}

/// A single bus wire of a given length in a given technology.
///
/// This is the unit from which all of Section 3's figures derive:
/// [`delay_ps`](Wire::delay_ps) regenerates Figure 6,
/// [`transition_energy_pj`](Wire::transition_energy_pj) regenerates
/// Figure 5, and [`lambda`](Wire::lambda) regenerates Table 1.
///
/// # Example
///
/// ```
/// use wiremodel::{Technology, Wire, WireStyle};
///
/// let tech = Technology::tech_013();
/// let bare = Wire::new(tech, WireStyle::Unbuffered, 30.0)?;
/// let repeated = Wire::new(tech, WireStyle::Repeated, 30.0)?;
/// // Repeaters trade energy for delay.
/// assert!(repeated.delay_ps() < bare.delay_ps());
/// assert!(repeated.transition_energy_pj() > bare.transition_energy_pj());
/// # Ok::<(), wiremodel::WireError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Wire {
    tech: Technology,
    style: WireStyle,
    length_mm: f64,
    plan: Option<RepeaterPlan>,
}

impl Wire {
    /// Creates a wire of `length_mm` millimetres.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if the length is not finite, not positive,
    /// or implausibly long (> 1000 mm — longer than any die).
    pub fn new(tech: Technology, style: WireStyle, length_mm: f64) -> Result<Self, WireError> {
        static BUILDS: busprobe::StaticCounter =
            busprobe::StaticCounter::new("wiremodel.wire.builds");
        BUILDS.inc();
        if !length_mm.is_finite() || length_mm <= 0.0 || length_mm > 1000.0 {
            return Err(WireError { length_mm });
        }
        let plan = match style {
            WireStyle::Unbuffered => None,
            WireStyle::Repeated => Some(Self::plan_repeaters(&tech, length_mm)),
        };
        Ok(Wire {
            tech,
            style,
            length_mm,
            plan,
        })
    }

    /// Bakoglu sizing backed off by the technology's derating factor.
    fn plan_repeaters(tech: &Technology, length_mm: f64) -> RepeaterPlan {
        static SOLVES: busprobe::StaticCounter =
            busprobe::StaticCounter::new("wiremodel.repeater.solves");
        static SEGMENTS: busprobe::StaticHistogram =
            busprobe::StaticHistogram::new("wiremodel.repeater.segments", &[1, 2, 4, 8, 16, 32]);
        let _span = busprobe::span("wiremodel.repeater.plan");
        SOLVES.inc();
        let r = tech.wire_r_ohm_per_mm;
        let c = tech.wire_c_total_ff_per_mm() * 1e-15; // F/mm
        let r0 = tech.inv_r_ohm;
        let c0 = tech.inv_cin_ff * 1e-15;
        // Delay-optimal segment count and size (Bakoglu 1990).
        let k_opt = length_mm * (0.4 * r * c / (0.7 * r0 * c0)).sqrt();
        let h = (r0 * c / (r * c0)).sqrt();
        let segments = (tech.repeater_derating * k_opt).round().max(1.0) as u32;
        SEGMENTS.observe(u64::from(segments));
        let per_repeater_ff = h * (tech.inv_cin_ff + tech.inv_cpar_ff);
        let added_cap_ff_per_mm = f64::from(segments) * per_repeater_ff / length_mm;
        RepeaterPlan {
            segments,
            size: h,
            added_cap_ff_per_mm,
        }
    }

    /// The wire's technology.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// The wire's style.
    pub fn style(&self) -> WireStyle {
        self.style
    }

    /// The wire's length in millimetres.
    pub fn length_mm(&self) -> f64 {
        self.length_mm
    }

    /// The derived repeater insertion, if this is a repeated wire.
    pub fn repeater_plan(&self) -> Option<&RepeaterPlan> {
        self.plan.as_ref()
    }

    /// Capacitance switched by a self-transition of this wire, per
    /// millimetre, in femtofarads: substrate capacitance plus (for
    /// repeated wires) the repeater gate/drain capacitance.
    fn self_cap_ff_per_mm(&self) -> f64 {
        self.tech.wire_cs_ff_per_mm + self.plan.map_or(0.0, |p| p.added_cap_ff_per_mm)
    }

    /// Energy charged per self-transition event (τ in Equation 1) over
    /// the full wire, in picojoules.
    pub fn tau_energy_pj(&self) -> f64 {
        // ½ C V²; capacitance in fF and energy in pJ share the 1e-15/1e-12
        // scaling with V² in volts, leaving a bare 1e-3 factor.
        0.5 * self.self_cap_ff_per_mm() * self.length_mm * self.tech.vdd.powi(2) * 1e-3
    }

    /// Energy charged per coupling event (κ in Equation 1) against one
    /// neighbor over the full wire, in picojoules.
    pub fn kappa_energy_pj(&self) -> f64 {
        0.5 * self.tech.wire_ci_ff_per_mm * self.length_mm * self.tech.vdd.powi(2) * 1e-3
    }

    /// The effective coupling ratio `λ` for this wire style (Table 1):
    /// the cost of a coupling event relative to a self-transition.
    ///
    /// Repeaters increase the self-capacitance term, which is why
    /// repeated wires have λ two orders of magnitude below bare wires.
    pub fn lambda(&self) -> f64 {
        self.tech.wire_ci_ff_per_mm / self.self_cap_ff_per_mm()
    }

    /// The Figure 5 quantity: energy of one wire transition including an
    /// average coupling event with one adjacent wire, in picojoules.
    pub fn transition_energy_pj(&self) -> f64 {
        self.tau_energy_pj() + self.kappa_energy_pj()
    }

    /// Per-event energies bundled for downstream energy accounting.
    pub fn transition_energy(&self) -> TransitionEnergy {
        TransitionEnergy {
            tau_pj: self.tau_energy_pj(),
            kappa_pj: self.kappa_energy_pj(),
        }
    }

    /// Probability that a transition launched on this wire fails to
    /// settle within `cycle_ps`, under Gaussian-like delay variation of
    /// scale `sigma_ps` — a logistic approximation of the error
    /// function, in the spirit of timing-speculative bus operation
    /// (Kaul et al., "DVS for On-Chip Bus Designs Based on Timing Error
    /// Correction").
    ///
    /// The probability grows with wire length (and, for repeated wires,
    /// with repeater-segment length): a wire whose nominal delay equals
    /// the cycle budget misses it half the time; one with ample slack
    /// essentially never does. Used by the `busfault` crate's
    /// timing-error fault model.
    ///
    /// # Panics
    ///
    /// Panics if `cycle_ps` or `sigma_ps` is not finite and positive.
    pub fn timing_upset_probability(&self, cycle_ps: f64, sigma_ps: f64) -> f64 {
        assert!(
            cycle_ps.is_finite() && cycle_ps > 0.0,
            "cycle budget must be finite and positive, got {cycle_ps}"
        );
        assert!(
            sigma_ps.is_finite() && sigma_ps > 0.0,
            "delay-variation sigma must be finite and positive, got {sigma_ps}"
        );
        let margin = (cycle_ps - self.delay_ps()) / sigma_ps;
        1.0 / (1.0 + margin.exp())
    }

    /// Propagation delay in picoseconds (Figure 6).
    ///
    /// Unbuffered wires follow the distributed-RC quadratic
    /// `0.4·r·c·L²` plus the driver-cascade delay; repeated wires follow
    /// the segment-wise Bakoglu expression, which is linear in length.
    pub fn delay_ps(&self) -> f64 {
        let r = self.tech.wire_r_ohm_per_mm;
        let c = self.tech.wire_c_total_ff_per_mm() * 1e-15;
        let r0 = self.tech.inv_r_ohm;
        let c0 = self.tech.inv_cin_ff * 1e-15;
        let cp = self.tech.inv_cpar_ff * 1e-15;
        let seconds = match self.plan {
            None => {
                // Exponential-cascade driver from a minimum inverter up to
                // the wire load, then the distributed wire itself.
                let c_wire = c * self.length_mm;
                let stages = (c_wire / c0).max(1.0).ln();
                let cascade = 0.7 * std::f64::consts::E * r0 * c0 * stages;
                cascade + 0.4 * r * c * self.length_mm * self.length_mm
            }
            Some(plan) => {
                let k = f64::from(plan.segments);
                let h = plan.size;
                let l_seg = self.length_mm / k;
                let per_segment = 0.7 * (r0 / h) * (h * (c0 + cp) + c * l_seg)
                    + r * l_seg * (0.4 * c * l_seg + 0.7 * h * c0);
                k * per_segment
            }
        };
        seconds * 1e12
    }
}

impl fmt::Display for Wire {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} mm {} wire in {}",
            self.length_mm, self.style, self.tech
        )
    }
}

/// Error returned for a non-physical wire length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireError {
    length_mm: f64,
}

impl WireError {
    /// The rejected length in millimetres.
    pub fn length_mm(&self) -> f64 {
        self.length_mm
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wire length must be positive, finite and at most 1000 mm, got {}",
            self.length_mm
        )
    }
}

impl Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire(tech: Technology, style: WireStyle, len: f64) -> Wire {
        Wire::new(tech, style, len).unwrap()
    }

    #[test]
    fn rejects_bad_lengths() {
        let t = Technology::tech_013();
        assert!(Wire::new(t, WireStyle::Unbuffered, 0.0).is_err());
        assert!(Wire::new(t, WireStyle::Unbuffered, -3.0).is_err());
        assert!(Wire::new(t, WireStyle::Unbuffered, f64::NAN).is_err());
        assert!(Wire::new(t, WireStyle::Unbuffered, f64::INFINITY).is_err());
        assert!(Wire::new(t, WireStyle::Unbuffered, 2000.0).is_err());
        assert_eq!(
            Wire::new(t, WireStyle::Unbuffered, -3.0)
                .unwrap_err()
                .length_mm(),
            -3.0
        );
    }

    #[test]
    fn lambda_repeated_matches_table1() {
        // Table 1: 0.670, 0.576, 0.591 (we accept 15% calibration error).
        let expect = [
            (Technology::tech_013(), 0.670),
            (Technology::tech_010(), 0.576),
            (Technology::tech_007(), 0.591),
        ];
        for (tech, target) in expect {
            let w = wire(tech, WireStyle::Repeated, 20.0);
            let lambda = w.lambda();
            assert!(
                (lambda - target).abs() / target < 0.15,
                "{}: repeated lambda {lambda:.3} vs paper {target}",
                tech.kind
            );
        }
    }

    #[test]
    fn lambda_unbuffered_equals_ci_over_cs() {
        for tech in Technology::all() {
            let w = wire(tech, WireStyle::Unbuffered, 10.0);
            assert!((w.lambda() - tech.lambda_unbuffered()).abs() < 1e-12);
        }
    }

    #[test]
    fn repeater_size_is_tens_of_minimum_inverters() {
        // The paper: repeaters are "40 to 50 times wider than minimum
        // size inverters"; accept 30–90 across our technologies.
        for tech in Technology::all() {
            let w = wire(tech, WireStyle::Repeated, 15.0);
            let plan = w.repeater_plan().unwrap();
            assert!(
                plan.size > 30.0 && plan.size < 90.0,
                "{}: repeater size {}",
                tech.kind,
                plan.size
            );
        }
    }

    #[test]
    fn unbuffered_delay_is_quadratic() {
        let t = Technology::tech_013();
        let d10 = wire(t, WireStyle::Unbuffered, 10.0).delay_ps();
        let d20 = wire(t, WireStyle::Unbuffered, 20.0).delay_ps();
        // Quadratic up to the fixed driver-cascade term: the ratio sits
        // well above linear (2.0) and approaches 4 as length grows.
        let ratio = d20 / d10;
        assert!(ratio > 2.8 && ratio < 4.2, "ratio {ratio}");
        let d15 = wire(t, WireStyle::Unbuffered, 15.0).delay_ps();
        let d30 = wire(t, WireStyle::Unbuffered, 30.0).delay_ps();
        let long_ratio = d30 / d15;
        assert!(
            long_ratio > 3.2 && long_ratio < 4.2,
            "long ratio {long_ratio}"
        );
    }

    #[test]
    fn repeated_delay_is_linear() {
        let t = Technology::tech_013();
        let d10 = wire(t, WireStyle::Repeated, 10.0).delay_ps();
        let d20 = wire(t, WireStyle::Repeated, 20.0).delay_ps();
        let ratio = d20 / d10;
        assert!(ratio > 1.7 && ratio < 2.3, "ratio {ratio}");
    }

    #[test]
    fn repeaters_beat_bare_wire_delay_at_length() {
        for tech in Technology::all() {
            let bare = wire(tech, WireStyle::Unbuffered, 30.0).delay_ps();
            let rep = wire(tech, WireStyle::Repeated, 30.0).delay_ps();
            assert!(rep < bare / 2.0, "{}: {rep} vs {bare}", tech.kind);
        }
    }

    #[test]
    fn delay_magnitudes_match_figure6() {
        // Figure 6 at 30 mm: unbuffered ~3000-6000 ps, repeated < 1500 ps.
        for tech in Technology::all() {
            let bare = wire(tech, WireStyle::Unbuffered, 30.0).delay_ps();
            let rep = wire(tech, WireStyle::Repeated, 30.0).delay_ps();
            assert!(bare > 2500.0 && bare < 8000.0, "{}: bare {bare}", tech.kind);
            assert!(rep > 200.0 && rep < 1600.0, "{}: rep {rep}", tech.kind);
        }
    }

    #[test]
    fn energy_magnitudes_match_figure5() {
        // Figure 5 at 30 mm: repeated wires dissipate a few pJ per
        // transition, more than bare wires, decreasing with technology.
        let e13 = wire(Technology::tech_013(), WireStyle::Repeated, 30.0).transition_energy_pj();
        let e07 = wire(Technology::tech_007(), WireStyle::Repeated, 30.0).transition_energy_pj();
        assert!(e13 > 3.0 && e13 < 7.0, "0.13um energy {e13}");
        assert!(e07 < e13, "energy should shrink with technology");
        for tech in Technology::all() {
            let bare = wire(tech, WireStyle::Unbuffered, 30.0).transition_energy_pj();
            let rep = wire(tech, WireStyle::Repeated, 30.0).transition_energy_pj();
            assert!(
                rep > bare,
                "{}: repeated energy must exceed bare",
                tech.kind
            );
        }
    }

    #[test]
    fn energy_scales_linearly_with_length() {
        let t = Technology::tech_013();
        let e5 = wire(t, WireStyle::Repeated, 5.0);
        let e10 = wire(t, WireStyle::Repeated, 10.0);
        // Within repeater-count rounding noise.
        let ratio = e10.tau_energy_pj() / e5.tau_energy_pj();
        assert!(ratio > 1.8 && ratio < 2.2, "ratio {ratio}");
        assert!((e10.kappa_energy_pj() / e5.kappa_energy_pj() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn transition_energy_bundle_is_consistent() {
        let w = wire(Technology::tech_010(), WireStyle::Repeated, 12.0);
        let e = w.transition_energy();
        assert_eq!(e.tau_pj, w.tau_energy_pj());
        assert_eq!(e.kappa_pj, w.kappa_energy_pj());
        assert!((e.kappa_pj / e.tau_pj - w.lambda()).abs() < 1e-12);
    }

    #[test]
    fn timing_upset_probability_grows_with_length() {
        let t = Technology::tech_013();
        // A 1 ns budget at sigma 100 ps: short repeated wires are safe,
        // long ones increasingly miss the cycle.
        let p: Vec<f64> = [5.0, 15.0, 30.0, 45.0]
            .iter()
            .map(|&l| wire(t, WireStyle::Repeated, l).timing_upset_probability(1000.0, 100.0))
            .collect();
        assert!(p.windows(2).all(|w| w[0] < w[1]), "{p:?}");
        assert!(p[0] < 1e-3, "short wire must be near-safe: {}", p[0]);
        assert!(p[3] > 0.5, "45 mm exceeds a 1 ns budget: {}", p[3]);
        for &x in &p {
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn timing_upset_probability_is_half_at_zero_margin() {
        let w = wire(Technology::tech_013(), WireStyle::Repeated, 20.0);
        let p = w.timing_upset_probability(w.delay_ps(), 50.0);
        assert!((p - 0.5).abs() < 1e-12, "{p}");
    }

    #[test]
    #[should_panic(expected = "cycle budget")]
    fn timing_upset_probability_rejects_bad_cycle() {
        let w = wire(Technology::tech_013(), WireStyle::Repeated, 10.0);
        let _ = w.timing_upset_probability(0.0, 50.0);
    }

    #[test]
    fn display_formats() {
        let w = wire(Technology::tech_013(), WireStyle::Repeated, 10.0);
        assert_eq!(w.to_string(), "10.0 mm repeated wire in 0.13um (1.2 V)");
        let err = Wire::new(Technology::tech_013(), WireStyle::Unbuffered, -1.0).unwrap_err();
        assert!(err.to_string().contains("wire length"));
    }
}
