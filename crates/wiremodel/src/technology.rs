//! Per-technology interconnect and device parameters.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The three process generations studied in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TechnologyKind {
    /// 0.13 µm — the process the Window-based transcoder was laid out in
    /// (ST Micro models in the paper).
    Tech013,
    /// 0.10 µm — projected via BPTM in the paper.
    Tech010,
    /// 0.07 µm — projected via BPTM in the paper.
    Tech007,
}

impl TechnologyKind {
    /// All technology generations, largest feature size first.
    pub const ALL: [TechnologyKind; 3] = [
        TechnologyKind::Tech013,
        TechnologyKind::Tech010,
        TechnologyKind::Tech007,
    ];
}

impl fmt::Display for TechnologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TechnologyKind::Tech013 => "0.13um",
            TechnologyKind::Tech010 => "0.10um",
            TechnologyKind::Tech007 => "0.07um",
        };
        f.write_str(s)
    }
}

/// Interconnect and device parameters for one process generation.
///
/// Wire parameters describe a minimum-pitch bus wire on an intermediate
/// metal layer (the paper places bus wires at minimum pitch). Device
/// parameters describe the minimum-size inverter used as the unit for
/// repeater sizing.
///
/// The numeric values are this reproduction's calibration of the paper's
/// HSPICE/BPTM stack — chosen so that the derived quantities (unbuffered
/// and repeatered λ in Table 1, energy and delay curves in Figures 5–6)
/// match the paper. They are *inputs* here; λ and the repeater plan are
/// always *derived* by the model, never hard-coded.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Technology {
    /// Which generation this is.
    pub kind: TechnologyKind,
    /// Drawn feature size in micrometres (0.13, 0.10, 0.07).
    pub feature_um: f64,
    /// Supply voltage in volts (ITRS roadmap values, Table 2).
    pub vdd: f64,
    /// Wire resistance per millimetre, in ohms.
    pub wire_r_ohm_per_mm: f64,
    /// Wire-to-substrate capacitance `C_S` per millimetre, in femtofarads.
    pub wire_cs_ff_per_mm: f64,
    /// Inter-wire (coupling) capacitance `C_I` per millimetre to *one*
    /// neighbor, in femtofarads.
    pub wire_ci_ff_per_mm: f64,
    /// Output resistance of a minimum-size inverter, in ohms.
    pub inv_r_ohm: f64,
    /// Input (gate) capacitance of a minimum-size inverter, in femtofarads.
    pub inv_cin_ff: f64,
    /// Parasitic (drain) capacitance of a minimum-size inverter, in
    /// femtofarads.
    pub inv_cpar_ff: f64,
    /// Fraction of the delay-optimal repeater count actually inserted.
    ///
    /// Practical repeater methodologies (the paper follows Ismail &
    /// Friedman, which accounts for inductance) insert noticeably fewer
    /// repeaters than the plain Bakoglu RC optimum; backing off the count
    /// costs a few percent of delay and saves substantial repeater
    /// energy. This factor is the calibration knob that sets the
    /// repeatered effective λ of Table 1.
    pub repeater_derating: f64,
}

impl Technology {
    /// The 0.13 µm technology (1.2 V).
    pub fn tech_013() -> Self {
        Technology {
            kind: TechnologyKind::Tech013,
            feature_um: 0.13,
            vdd: 1.2,
            wire_r_ohm_per_mm: 50.0,
            wire_cs_ff_per_mm: 7.14,
            wire_ci_ff_per_mm: 100.0,
            inv_r_ohm: 3_000.0,
            inv_cin_ff: 4.0,
            inv_cpar_ff: 2.0,
            repeater_derating: 0.605,
        }
    }

    /// The 0.10 µm technology (1.1 V).
    pub fn tech_010() -> Self {
        Technology {
            kind: TechnologyKind::Tech010,
            feature_um: 0.10,
            vdd: 1.1,
            wire_r_ohm_per_mm: 70.0,
            wire_cs_ff_per_mm: 5.56,
            wire_ci_ff_per_mm: 92.3,
            inv_r_ohm: 4_000.0,
            inv_cin_ff: 3.0,
            inv_cpar_ff: 1.5,
            repeater_derating: 0.717,
        }
    }

    /// The 0.07 µm technology (0.9 V).
    pub fn tech_007() -> Self {
        Technology {
            kind: TechnologyKind::Tech007,
            feature_um: 0.07,
            vdd: 0.9,
            wire_r_ohm_per_mm: 100.0,
            wire_cs_ff_per_mm: 6.0,
            wire_ci_ff_per_mm: 87.0,
            inv_r_ohm: 6_000.0,
            inv_cin_ff: 2.0,
            inv_cpar_ff: 1.0,
            repeater_derating: 0.69,
        }
    }

    /// Looks up a technology by kind.
    pub fn of(kind: TechnologyKind) -> Self {
        match kind {
            TechnologyKind::Tech013 => Technology::tech_013(),
            TechnologyKind::Tech010 => Technology::tech_010(),
            TechnologyKind::Tech007 => Technology::tech_007(),
        }
    }

    /// All three technologies, largest feature size first.
    pub fn all() -> [Technology; 3] {
        [
            Technology::tech_013(),
            Technology::tech_010(),
            Technology::tech_007(),
        ]
    }

    /// Total switched capacitance per millimetre of an unbuffered wire
    /// whose neighbors are quiet: `C_S + 2·C_I`, in femtofarads.
    pub fn wire_c_total_ff_per_mm(&self) -> f64 {
        self.wire_cs_ff_per_mm + 2.0 * self.wire_ci_ff_per_mm
    }

    /// The unbuffered-wire coupling ratio `λ = C_I / C_S` (Table 1,
    /// "Unbuffered wire" rows).
    pub fn lambda_unbuffered(&self) -> f64 {
        self.wire_ci_ff_per_mm / self.wire_cs_ff_per_mm
    }
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} V)", self.kind, self.vdd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_unbuffered_matches_table1() {
        // Table 1: 14.0, 16.6, 14.5 for 0.13/0.10/0.07 um.
        let expect = [
            (Technology::tech_013(), 14.0),
            (Technology::tech_010(), 16.6),
            (Technology::tech_007(), 14.5),
        ];
        for (tech, target) in expect {
            let lambda = tech.lambda_unbuffered();
            assert!(
                (lambda - target).abs() / target < 0.02,
                "{}: lambda {lambda} vs paper {target}",
                tech.kind
            );
        }
    }

    #[test]
    fn voltages_follow_itrs_roadmap() {
        assert_eq!(Technology::tech_013().vdd, 1.2);
        assert_eq!(Technology::tech_010().vdd, 1.1);
        assert_eq!(Technology::tech_007().vdd, 0.9);
    }

    #[test]
    fn of_round_trips_kind() {
        for kind in TechnologyKind::ALL {
            assert_eq!(Technology::of(kind).kind, kind);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(TechnologyKind::Tech013.to_string(), "0.13um");
        assert_eq!(Technology::tech_007().to_string(), "0.07um (0.9 V)");
    }

    #[test]
    fn feature_sizes_shrink_in_order() {
        let all = Technology::all();
        assert!(all.windows(2).all(|w| w[0].feature_um > w[1].feature_um));
    }
}
