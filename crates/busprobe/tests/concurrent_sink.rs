//! JSON-lines sink under contention: eight threads appending to one
//! file must produce whole, parseable lines — `append_jsonl` renders
//! each record to a single `write_all` on an `O_APPEND` handle, so
//! writer bytes can never interleave.

use std::path::PathBuf;

use busprobe::{append_jsonl, json, JsonValue};

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "busprobe-concurrent-{tag}-{}.jsonl",
        std::process::id()
    ))
}

#[test]
fn eight_concurrent_writers_round_trip() {
    const WRITERS: u64 = 8;
    const RECORDS_PER_WRITER: u64 = 50;

    let path = temp_path("writers");
    let _ = std::fs::remove_file(&path);

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let path = path.clone();
            scope.spawn(move || {
                for i in 0..RECORDS_PER_WRITER {
                    // A wide record (the padding array) so a torn write
                    // would be very likely to split mid-line.
                    let record = JsonValue::Obj(vec![
                        ("writer".into(), JsonValue::Int(w as i64)),
                        ("seq".into(), JsonValue::Int(i as i64)),
                        (
                            "padding".into(),
                            JsonValue::Arr(
                                (0..64).map(|k| JsonValue::Int(w as i64 * 1000 + k)).collect(),
                            ),
                        ),
                    ]);
                    append_jsonl(&path, &record).expect("append must succeed");
                }
            });
        }
    });

    let text = std::fs::read_to_string(&path).expect("file written");
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(
        lines.len() as u64,
        WRITERS * RECORDS_PER_WRITER,
        "every append is exactly one line"
    );

    // Every line parses, and every (writer, seq) pair arrives once.
    let mut seen = vec![0u64; WRITERS as usize];
    for line in lines {
        let record = json::parse(line).expect("line must be strict JSON");
        let w = record
            .get("writer")
            .and_then(JsonValue::as_u64)
            .expect("writer field") as usize;
        let seq = record
            .get("seq")
            .and_then(JsonValue::as_u64)
            .expect("seq field");
        assert!(seq < RECORDS_PER_WRITER);
        seen[w] += 1;
    }
    assert!(
        seen.iter().all(|&n| n == RECORDS_PER_WRITER),
        "per-writer record counts: {seen:?}"
    );

    let _ = std::fs::remove_file(&path);
}
