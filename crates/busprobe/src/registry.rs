//! The process-global metric registry: counters, histograms, and span
//! timers, all behind one cheap enabled flag.
//!
//! Metric names follow the `crate.subsystem.name` convention (see
//! `docs/OBSERVABILITY.md`). Handles ([`Counter`], [`Histogram`]) are
//! cheap `Arc` clones of the registered cell, so hot paths pay one
//! relaxed atomic load (the enabled check) plus one atomic add. For
//! static call sites, [`StaticCounter`] / [`StaticHistogram`] memoize
//! the registry lookup in a `OnceLock`.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::{enabled, trace};

/// Upper bucket bounds used by [`crate::histogram`] when the caller has
/// no better idea: powers of four from 1 to ~10⁶ (an implicit +∞ bucket
/// always follows the last bound).
pub const DEFAULT_BOUNDS: &[u64] = &[1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576];

#[derive(Clone)]
enum Metric {
    Counter(Arc<AtomicU64>),
    Histogram(Arc<HistCell>),
    Span(Arc<SpanCell>),
}

struct HistCell {
    bounds: Vec<u64>,
    /// One bucket per bound plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

struct SpanCell {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn lock() -> std::sync::MutexGuard<'static, BTreeMap<String, Metric>> {
    // Metric cells are plain atomics, so a panic while holding the lock
    // cannot leave a cell half-updated; recover from poisoning.
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// Counters in registration order: a dense side-table that the trace
/// recorder can sweep in two loads-per-counter to attach counter deltas
/// to spans, without walking (or locking against) the name-keyed map.
type DenseCounters = Mutex<Vec<(String, Arc<AtomicU64>)>>;

fn dense_counters() -> &'static DenseCounters {
    static DENSE: OnceLock<DenseCounters> = OnceLock::new();
    DENSE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Current value of every registered counter, indexed by registration
/// order. Indices are stable for the life of the process (counters are
/// never unregistered), so two sweeps subtract positionally.
pub(crate) fn dense_counter_values() -> Vec<u64> {
    dense_counters()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(_, c)| c.load(Ordering::Relaxed))
        .collect()
}

/// Counter names by registration order, aligned with
/// [`dense_counter_values`].
pub(crate) fn dense_counter_names() -> Vec<String> {
    dense_counters()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(n, _)| n.clone())
        .collect()
}

/// A handle to a registered monotonic counter.
///
/// Cloning is cheap; all clones (and all handles obtained under the same
/// name) share one cell.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n` if metrics are enabled.
    pub fn add(&self, n: u64) {
        if enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one if metrics are enabled.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value (readable even while disabled).
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A handle to a registered fixed-bucket histogram.
#[derive(Clone)]
pub struct Histogram {
    cell: Arc<HistCell>,
}

impl Histogram {
    /// Records one observation if metrics are enabled.
    pub fn observe(&self, value: u64) {
        if !enabled() {
            return;
        }
        let idx = self
            .cell
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.cell.bounds.len());
        self.cell.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.cell.count.fetch_add(1, Ordering::Relaxed);
        self.cell.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.cell.sum.load(Ordering::Relaxed)
    }
}

/// Registers (or fetches) a counter under `name`.
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> Counter {
    let mut map = lock();
    let mut fresh = false;
    let handle = match map.entry(name.to_string()).or_insert_with(|| {
        fresh = true;
        Metric::Counter(Arc::new(AtomicU64::new(0)))
    }) {
        Metric::Counter(cell) => Counter { cell: cell.clone() },
        _ => panic!("metric `{name}` already registered with a different kind"),
    };
    drop(map);
    if fresh {
        dense_counters()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push((name.to_string(), handle.cell.clone()));
    }
    handle
}

/// Registers (or fetches) a histogram under `name` with the given upper
/// bucket bounds (ascending; an overflow bucket is implicit). Bounds are
/// fixed by the first registration; later callers share the cell.
///
/// # Panics
///
/// Panics if `bounds` is empty or not strictly ascending, or if `name`
/// is already registered as a different metric kind.
pub fn histogram(name: &str, bounds: &[u64]) -> Histogram {
    assert!(!bounds.is_empty(), "histogram `{name}` needs bounds");
    assert!(
        bounds.windows(2).all(|w| w[0] < w[1]),
        "histogram `{name}` bounds must be strictly ascending"
    );
    let mut map = lock();
    match map.entry(name.to_string()).or_insert_with(|| {
        Metric::Histogram(Arc::new(HistCell {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }) {
        Metric::Histogram(cell) => Histogram { cell: cell.clone() },
        _ => panic!("metric `{name}` already registered with a different kind"),
    }
}

/// A counter with a static name whose registry lookup happens once.
///
/// ```
/// static ENCODES: busprobe::StaticCounter =
///     busprobe::StaticCounter::new("example.encode.calls");
/// busprobe::set_enabled(true);
/// ENCODES.inc();
/// ```
pub struct StaticCounter {
    name: &'static str,
    cell: OnceLock<Counter>,
}

impl StaticCounter {
    /// Declares a counter; nothing is registered until first use.
    pub const fn new(name: &'static str) -> Self {
        StaticCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    /// Adds `n` if metrics are enabled (one relaxed load when disabled).
    pub fn add(&self, n: u64) {
        if enabled() {
            self.cell.get_or_init(|| counter(self.name)).add(n);
        }
    }

    /// Adds one if metrics are enabled.
    pub fn inc(&self) {
        self.add(1);
    }
}

/// A histogram with a static name and bounds, registered on first use.
pub struct StaticHistogram {
    name: &'static str,
    bounds: &'static [u64],
    cell: OnceLock<Histogram>,
}

impl StaticHistogram {
    /// Declares a histogram; nothing is registered until first use.
    pub const fn new(name: &'static str, bounds: &'static [u64]) -> Self {
        StaticHistogram {
            name,
            bounds,
            cell: OnceLock::new(),
        }
    }

    /// Records one observation if metrics are enabled.
    pub fn observe(&self, value: u64) {
        if enabled() {
            self.cell
                .get_or_init(|| histogram(self.name, self.bounds))
                .observe(value);
        }
    }
}

thread_local! {
    /// The active span path of this thread, innermost last. The leading
    /// segments may be adopted from a parent thread (see
    /// [`adopt_span_context`]) — those are context only; this thread's
    /// own guards never pop below them.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// The active span path of a thread, captured so a worker thread can
/// record its spans under the spawning thread's path.
///
/// Span nesting is thread-local; a thread-pool worker starts with an
/// empty stack, so without adoption its spans would lose their logical
/// parent (`fig16/buscoding.codec.evaluate_blocks` would flatten to
/// `buscoding.codec.evaluate_blocks`). Capture the context *before*
/// spawning and adopt it once per worker closure:
///
/// ```
/// let ctx = busprobe::span_context();
/// std::thread::scope(|scope| {
///     scope.spawn(move || {
///         busprobe::adopt_span_context(&ctx);
///         let _s = busprobe::span("example.worker.step");
///     });
/// });
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpanContext(Vec<&'static str>);

/// Captures the calling thread's active span path for [`adopt_span_context`].
pub fn span_context() -> SpanContext {
    SPAN_STACK.with(|s| SpanContext(s.borrow().clone()))
}

/// Replaces the calling thread's span context with `ctx`. Intended for
/// the top of a pool-worker closure, before any of its own spans open;
/// the adopted segments act as path prefix only and are never popped by
/// this thread's guards.
pub fn adopt_span_context(ctx: &SpanContext) {
    SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        stack.clear();
        stack.extend_from_slice(&ctx.0);
    });
}

/// An RAII guard that records wall time into a span metric on drop.
///
/// Spans nest: a span opened while another is active on the same thread
/// is recorded under `parent/child` (path segments joined with `/`), so
/// the summary attributes child time within its parent.
#[must_use = "a span records its duration when dropped"]
pub struct SpanGuard {
    /// `None` when neither metrics nor tracing were enabled at creation
    /// — a no-op guard.
    active: Option<GuardState>,
}

struct GuardState {
    /// Aggregate registry cell; absent when only tracing is on.
    cell: Option<Arc<SpanCell>>,
    start: Instant,
    /// Open trace-event arm; absent when only metrics are on.
    trace: Option<trace::OpenSpan>,
}

/// Opens a timing span. Records into the aggregate registry when
/// metrics are enabled and into the trace recorder when tracing is
/// enabled ([`trace::set_enabled`]); with both off it returns a no-op
/// guard after one relaxed load.
///
/// `name` is `&'static str` (rather than `&str`) so the thread-local
/// nesting stack never borrows from the caller.
pub fn span(name: &'static str) -> SpanGuard {
    let metrics_on = enabled();
    let trace_on = trace::enabled();
    if !metrics_on && !trace_on {
        return SpanGuard { active: None };
    }
    let path = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        stack.push(name);
        stack.join("/")
    });
    let cell = metrics_on.then(|| {
        let mut map = lock();
        match map.entry(path.clone()).or_insert_with(|| {
            Metric::Span(Arc::new(SpanCell {
                count: AtomicU64::new(0),
                total_ns: AtomicU64::new(0),
                max_ns: AtomicU64::new(0),
            }))
        }) {
            Metric::Span(cell) => cell.clone(),
            _ => panic!("metric `{path}` already registered with a different kind"),
        }
    });
    let trace_arm = trace_on.then(|| trace::open(path));
    SpanGuard {
        active: Some(GuardState {
            cell,
            start: Instant::now(),
            trace: trace_arm,
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(state) = self.active.take() else {
            return;
        };
        if let Some(cell) = state.cell {
            let ns = u64::try_from(state.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            cell.count.fetch_add(1, Ordering::Relaxed);
            cell.total_ns.fetch_add(ns, Ordering::Relaxed);
            cell.max_ns.fetch_max(ns, Ordering::Relaxed);
        }
        if let Some(open) = state.trace {
            trace::close(open);
        }
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// A point-in-time copy of one metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// Registered name (span names are full `parent/child` paths).
    pub name: String,
    /// Kind and values.
    pub kind: MetricKind,
}

/// The metric kinds a snapshot can carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricKind {
    /// A monotonic counter.
    Counter {
        /// Current value.
        value: u64,
    },
    /// A fixed-bucket histogram.
    Histogram {
        /// Upper bucket bounds (ascending).
        bounds: Vec<u64>,
        /// Per-bucket observation counts; one longer than `bounds`
        /// (the final entry is the overflow bucket).
        buckets: Vec<u64>,
        /// Total observations.
        count: u64,
        /// Sum of observed values.
        sum: u64,
    },
    /// An accumulated timing span.
    Span {
        /// Completed span instances.
        count: u64,
        /// Total wall time across instances, in nanoseconds.
        total_ns: u64,
        /// Longest single instance, in nanoseconds.
        max_ns: u64,
    },
}

/// Estimates the `q`-quantile (`0.0..=1.0`) of a fixed-bucket histogram
/// by linear interpolation inside the bucket that contains the target
/// rank, matching the Prometheus `histogram_quantile` convention. An
/// observation in the overflow bucket clamps to the last bound (the
/// histogram records no upper edge for it). Returns `None` when the
/// histogram is empty.
pub fn histogram_percentile(bounds: &[u64], buckets: &[u64], q: f64) -> Option<f64> {
    let total: u64 = buckets.iter().sum();
    if total == 0 || bounds.is_empty() {
        return None;
    }
    let rank = q.clamp(0.0, 1.0) * total as f64;
    let mut seen = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        seen += n;
        if (seen as f64) < rank {
            continue;
        }
        if n == 0 {
            continue;
        }
        let Some(&hi) = bounds.get(i) else {
            // Overflow bucket: no upper edge, clamp to the last bound.
            return Some(*bounds.last().expect("bounds checked non-empty") as f64);
        };
        let lo = if i == 0 { 0 } else { bounds[i - 1] };
        let into = rank - (seen - n) as f64;
        return Some(lo as f64 + (hi - lo) as f64 * (into / n as f64).clamp(0.0, 1.0));
    }
    Some(*bounds.last().expect("bounds checked non-empty") as f64)
}

/// Copies every registered metric, sorted by name.
pub fn snapshot() -> Vec<MetricSnapshot> {
    let map = lock();
    map.iter()
        .map(|(name, metric)| MetricSnapshot {
            name: name.clone(),
            kind: match metric {
                Metric::Counter(c) => MetricKind::Counter {
                    value: c.load(Ordering::Relaxed),
                },
                Metric::Histogram(h) => MetricKind::Histogram {
                    bounds: h.bounds.clone(),
                    buckets: h
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect(),
                    count: h.count.load(Ordering::Relaxed),
                    sum: h.sum.load(Ordering::Relaxed),
                },
                Metric::Span(s) => MetricKind::Span {
                    count: s.count.load(Ordering::Relaxed),
                    total_ns: s.total_ns.load(Ordering::Relaxed),
                    max_ns: s.max_ns.load(Ordering::Relaxed),
                },
            },
        })
        .collect()
}

/// Zeroes every registered metric. Handles stay valid — registration is
/// kept, only the values reset (used between experiments so each
/// JSON-lines record covers exactly one experiment).
pub fn reset() {
    let map = lock();
    for metric in map.values() {
        match metric {
            Metric::Counter(c) => c.store(0, Ordering::Relaxed),
            Metric::Histogram(h) => {
                for b in &h.buckets {
                    b.store(0, Ordering::Relaxed);
                }
                h.count.store(0, Ordering::Relaxed);
                h.sum.store(0, Ordering::Relaxed);
            }
            Metric::Span(s) => {
                s.count.store(0, Ordering::Relaxed);
                s.total_ns.store(0, Ordering::Relaxed);
                s.max_ns.store(0, Ordering::Relaxed);
            }
        }
    }
}
