//! `busprobe` — always-available, near-zero-cost instrumentation for the
//! bus-coding reproduction.
//!
//! The paper's argument is an accounting exercise (charge transcoder
//! energy against wire savings); this crate is the same discipline
//! applied to the reproduction pipeline itself: counters, fixed-bucket
//! histograms, and hierarchical span timers behind a process-global
//! registry and a single `AtomicBool`. Disabled (the default), every
//! probe is one relaxed atomic load; enabled, hot paths pay one memoized
//! lookup plus an atomic add.
//!
//! Two sinks read the registry:
//!
//! * [`render_summary`] — an aligned table for stderr;
//! * [`snapshot_to_json`] + [`append_jsonl`] — one JSON object per
//!   experiment appended to `results/metrics.jsonl` for trend tracking.
//!
//! ```
//! static WORDS: busprobe::StaticCounter =
//!     busprobe::StaticCounter::new("example.bus.words");
//!
//! busprobe::set_enabled(true);
//! {
//!     let _span = busprobe::span("example.encode");
//!     WORDS.add(32);
//! }
//! let snaps = busprobe::snapshot();
//! println!("{}", busprobe::render_summary(&snaps));
//! ```
//!
//! Naming convention: `crate.subsystem.name`, e.g.
//! `simcpu.cache.l1.hits`. Span nesting joins paths with `/`
//! (`bench.experiment/buscoding.evaluate`). See `docs/OBSERVABILITY.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
mod registry;
mod sink;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};

pub use json::{JsonError, JsonValue};
pub use registry::{
    adopt_span_context, counter, histogram, histogram_percentile, reset, snapshot, span,
    span_context, Counter, Histogram, MetricKind, MetricSnapshot, SpanContext, SpanGuard,
    StaticCounter, StaticHistogram, DEFAULT_BOUNDS,
};
pub use sink::{append_jsonl, render_summary, snapshot_to_json};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether probes currently record anything. This is the single flag
/// every instrumented hot loop checks first.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns metric recording on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enables metrics when `REPRO_METRICS` or `BUSPROBE` is set to a
/// truthy value (anything except empty, `0`, `false`, `off`, `no`).
/// Returns the resulting enabled state without disabling an already
/// enabled process.
pub fn init_from_env() -> bool {
    for var in ["REPRO_METRICS", "BUSPROBE"] {
        if let Ok(v) = std::env::var(var) {
            let v = v.trim().to_ascii_lowercase();
            if !v.is_empty() && v != "0" && v != "false" && v != "off" && v != "no" {
                set_enabled(true);
            }
        }
    }
    enabled()
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Registry and the enabled flag are process-global; tests that
    /// enable metrics or reset the registry serialize on this.
    pub(crate) fn guard() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let m = LOCK.get_or_init(|| Mutex::new(()));
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_probes_record_nothing() {
        let _g = guard();
        set_enabled(false);
        let c = counter("test.disabled.counter");
        c.add(10);
        assert_eq!(c.value(), 0);
        let h = histogram("test.disabled.hist", &[1, 2]);
        h.observe(1);
        assert_eq!(h.count(), 0);
        let _span = span("test.disabled.span");
        drop(_span);
        let snap = snapshot();
        let s = snap.iter().find(|s| s.name == "test.disabled.counter");
        assert_eq!(s.unwrap().kind, MetricKind::Counter { value: 0 });
        assert!(
            !snap.iter().any(|s| s.name.contains("test.disabled.span")),
            "disabled spans register nothing"
        );
    }

    #[test]
    fn counters_accumulate_across_handles() {
        let _g = guard();
        set_enabled(true);
        let a = counter("test.counter.shared");
        let b = counter("test.counter.shared");
        a.add(3);
        b.inc();
        assert_eq!(a.value(), 4);
        assert_eq!(b.value(), 4);
        set_enabled(false);
    }

    #[test]
    fn static_counter_memoizes_and_counts() {
        static PROBE: StaticCounter = StaticCounter::new("test.static.counter");
        let _g = guard();
        set_enabled(true);
        PROBE.add(2);
        PROBE.inc();
        assert_eq!(counter("test.static.counter").value(), 3);
        set_enabled(false);
    }

    #[test]
    fn histogram_buckets_split_at_bounds() {
        let _g = guard();
        set_enabled(true);
        let h = histogram("test.hist.bounds", &[10, 100]);
        for v in [0, 10, 11, 100, 101, 5000] {
            h.observe(v);
        }
        let snap = snapshot();
        let s = snap.iter().find(|s| s.name == "test.hist.bounds").unwrap();
        match &s.kind {
            MetricKind::Histogram {
                bounds,
                buckets,
                count,
                sum,
            } => {
                assert_eq!(bounds, &[10, 100]);
                // <=10: {0, 10}; <=100: {11, 100}; overflow: {101, 5000}.
                assert_eq!(buckets, &[2, 2, 2]);
                assert_eq!(*count, 6);
                assert_eq!(*sum, 5222);
            }
            other => panic!("wrong kind: {other:?}"),
        }
        set_enabled(false);
    }

    #[test]
    fn spans_nest_into_slash_paths() {
        let _g = guard();
        set_enabled(true);
        {
            let _outer = span("test.span.outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("test.span.inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        {
            // A second top-level instance of the same span.
            let _outer = span("test.span.outer");
        }
        set_enabled(false);
        let snap = snapshot();
        let outer = snap.iter().find(|s| s.name == "test.span.outer").unwrap();
        let inner = snap
            .iter()
            .find(|s| s.name == "test.span.outer/test.span.inner")
            .unwrap();
        let (
            MetricKind::Span {
                count: oc,
                total_ns: ot,
                max_ns: omax,
            },
            MetricKind::Span {
                count: ic,
                total_ns: it,
                ..
            },
        ) = (&outer.kind, &inner.kind)
        else {
            panic!("wrong kinds");
        };
        assert_eq!(*oc, 2);
        assert_eq!(*ic, 1);
        assert!(ot > it, "outer total includes inner time");
        assert!(omax <= ot, "max cannot exceed total");
        assert!(
            !snap.iter().any(|s| s.name == "test.span.inner"),
            "nested span registers only under its full path"
        );
    }

    #[test]
    fn reset_zeroes_but_keeps_registration() {
        let _g = guard();
        set_enabled(true);
        let c = counter("test.reset.counter");
        c.add(9);
        reset();
        assert_eq!(c.value(), 0);
        c.add(2);
        assert_eq!(c.value(), 2, "handle stays live after reset");
        set_enabled(false);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_panic() {
        let _ = counter("test.conflict.metric");
        let _ = histogram("test.conflict.metric", &[1]);
    }

    #[test]
    fn env_init_recognizes_truthy_values() {
        // Uses a child-free check: manipulate the vars and restore them.
        let _g = guard();
        let prior = std::env::var("BUSPROBE").ok();
        let prior_repro = std::env::var("REPRO_METRICS").ok();
        std::env::remove_var("REPRO_METRICS");
        set_enabled(false);
        std::env::set_var("BUSPROBE", "0");
        assert!(!init_from_env());
        std::env::set_var("BUSPROBE", "1");
        assert!(init_from_env());
        set_enabled(false);
        match prior {
            Some(v) => std::env::set_var("BUSPROBE", v),
            None => std::env::remove_var("BUSPROBE"),
        }
        if let Some(v) = prior_repro {
            std::env::set_var("REPRO_METRICS", v);
        }
    }
}
