//! A minimal JSON value model with a renderer and a strict parser.
//!
//! The workspace deliberately avoids heavyweight serialization crates in
//! the instrumentation path; the metrics sink only needs to *emit* one
//! flat object per experiment and *validate* what it emitted (the
//! `repro metrics-check` subcommand and the CI smoke step). Both sides
//! live here so they cannot drift apart.

use std::fmt;

/// A parsed or to-be-rendered JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part that fits `i64`.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks a key up in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64`, for `Int` and `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, for non-negative `Int`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object entries, if this is an object.
    pub fn entries(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }
}

/// Escapes a string for embedding in JSON (without the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Int(i) => write!(f, "{i}"),
            JsonValue::Num(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no NaN/Inf; degrade to null rather than
                    // emit an unparseable token.
                    f.write_str("null")
                }
            }
            JsonValue::Str(s) => write!(f, "\"{}\"", escape(s)),
            JsonValue::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document; trailing garbage is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are rejected rather than paired;
                            // the emitter never produces them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("invalid \\u code point"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(format!("bad escape `\\{}`", other as char)));
                        }
                    }
                }
                b if b < 0x20 => return Err(self.err("control character in string")),
                _ => {
                    // Re-decode UTF-8 from the raw bytes.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        if !fractional {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(format!("bad number `{text}`")))
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let src = r#"{"experiment":"fig18","wall_s":1.25,"metrics":{"a.b":3,"c":[1,2,null,true]},"note":"x\"y\\z"}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("experiment").unwrap().as_str(), Some("fig18"));
        assert_eq!(v.get("wall_s").unwrap().as_f64(), Some(1.25));
        assert_eq!(
            v.get("metrics").unwrap().get("a.b").unwrap().as_u64(),
            Some(3)
        );
        let rendered = v.to_string();
        assert_eq!(parse(&rendered).unwrap(), v);
    }

    #[test]
    fn parses_numbers_exactly() {
        assert_eq!(parse("42").unwrap(), JsonValue::Int(42));
        assert_eq!(parse("-7").unwrap(), JsonValue::Int(-7));
        assert_eq!(parse("2.5").unwrap(), JsonValue::Num(2.5));
        assert_eq!(parse("1e3").unwrap(), JsonValue::Num(1000.0));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn escapes_control_characters() {
        let v = JsonValue::Str("a\nb\t\"c\"\u{1}".into());
        let rendered = v.to_string();
        assert_eq!(rendered, "\"a\\nb\\t\\\"c\\\"\\u0001\"");
        assert_eq!(parse(&rendered).unwrap(), v);
    }

    #[test]
    fn preserves_unicode() {
        let v = parse(r#""λ = 0.5 → κ""#).unwrap();
        assert_eq!(v.as_str(), Some("λ = 0.5 → κ"));
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn non_finite_numbers_render_as_null() {
        assert_eq!(JsonValue::Num(f64::NAN).to_string(), "null");
    }
}
