//! Sinks: a human-readable summary table and a JSON-lines stream.

use std::io::Write as _;
use std::path::Path;

use crate::json::JsonValue;
use crate::registry::{histogram_percentile, MetricKind, MetricSnapshot};

/// Renders the snapshot as an aligned, human-readable table, sorted by
/// metric path so summary diffs are stable regardless of snapshot
/// order. Metrics with nothing recorded (zero counters, empty
/// histograms/spans) are skipped so the summary stays readable; spans
/// show count, total, and mean, histograms show count, mean,
/// p50/p95/p99, and the populated buckets.
pub fn render_summary(snaps: &[MetricSnapshot]) -> String {
    let mut rows: Vec<(String, String)> = Vec::new();
    for s in snaps {
        match &s.kind {
            MetricKind::Counter { value } => {
                if *value > 0 {
                    rows.push((s.name.clone(), format!("{value}")));
                }
            }
            MetricKind::Histogram {
                bounds,
                buckets,
                count,
                sum,
            } => {
                if *count == 0 {
                    continue;
                }
                let mean = *sum as f64 / *count as f64;
                let mut detail = format!("n={count} mean={mean:.1}");
                for (label, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                    if let Some(v) = histogram_percentile(bounds, buckets, q) {
                        detail.push_str(&format!(" {label}={v:.1}"));
                    }
                }
                for (i, &n) in buckets.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    match bounds.get(i) {
                        Some(b) => detail.push_str(&format!(" le{b}:{n}")),
                        None => detail.push_str(&format!(" inf:{n}")),
                    }
                }
                rows.push((s.name.clone(), detail));
            }
            MetricKind::Span {
                count,
                total_ns,
                max_ns,
            } => {
                if *count == 0 {
                    continue;
                }
                let total_ms = *total_ns as f64 / 1e6;
                let mean_us = *total_ns as f64 / *count as f64 / 1e3;
                let max_us = *max_ns as f64 / 1e3;
                rows.push((
                    s.name.clone(),
                    format!(
                        "n={count} total={total_ms:.2}ms mean={mean_us:.1}us max={max_us:.1}us"
                    ),
                ));
            }
        }
    }
    if rows.is_empty() {
        return "(no metrics recorded)\n".to_string();
    }
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    let name_width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (name, value) in rows {
        out.push_str(&format!("  {name:<name_width$}  {value}\n"));
    }
    out
}

/// Converts a snapshot into a flat JSON object: counters become
/// integers, spans become `{count, total_ns, max_ns}`, histograms
/// become `{count, sum, p50, p95, p99, buckets: {"le_<bound>": n,
/// "inf": n}}`. Metrics with nothing recorded are omitted, matching
/// the summary.
pub fn snapshot_to_json(snaps: &[MetricSnapshot]) -> JsonValue {
    let mut pairs = Vec::new();
    for s in snaps {
        match &s.kind {
            MetricKind::Counter { value } => {
                if *value > 0 {
                    pairs.push((s.name.clone(), int(*value)));
                }
            }
            MetricKind::Histogram {
                bounds,
                buckets,
                count,
                sum,
            } => {
                if *count == 0 {
                    continue;
                }
                let mut bucket_pairs = Vec::new();
                for (i, &n) in buckets.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    let key = match bounds.get(i) {
                        Some(b) => format!("le_{b}"),
                        None => "inf".to_string(),
                    };
                    bucket_pairs.push((key, int(n)));
                }
                let mut obj = vec![("count".into(), int(*count)), ("sum".into(), int(*sum))];
                for (label, q) in [("p50", 0.50), ("p95", 0.95), ("p99", 0.99)] {
                    if let Some(v) = histogram_percentile(bounds, buckets, q) {
                        obj.push((label.into(), JsonValue::Num(v)));
                    }
                }
                obj.push(("buckets".into(), JsonValue::Obj(bucket_pairs)));
                pairs.push((s.name.clone(), JsonValue::Obj(obj)));
            }
            MetricKind::Span {
                count,
                total_ns,
                max_ns,
            } => {
                if *count == 0 {
                    continue;
                }
                pairs.push((
                    s.name.clone(),
                    JsonValue::Obj(vec![
                        ("count".into(), int(*count)),
                        ("total_ns".into(), int(*total_ns)),
                        ("max_ns".into(), int(*max_ns)),
                    ]),
                ));
            }
        }
    }
    JsonValue::Obj(pairs)
}

fn int(v: u64) -> JsonValue {
    i64::try_from(v)
        .map(JsonValue::Int)
        .unwrap_or(JsonValue::Num(v as f64))
}

/// Appends one record as a single line to a JSON-lines file, creating
/// the file and its parent directory as needed.
///
/// The line is rendered in memory and appended with one `write_all`, so
/// concurrent appenders (O_APPEND semantics) never interleave bytes
/// within each other's lines.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn append_jsonl(path: &Path, record: &JsonValue) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut line = record.to_string();
    line.push('\n');
    file.write_all(line.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> Vec<MetricSnapshot> {
        vec![
            MetricSnapshot {
                name: "a.counter".into(),
                kind: MetricKind::Counter { value: 7 },
            },
            MetricSnapshot {
                name: "a.zero".into(),
                kind: MetricKind::Counter { value: 0 },
            },
            MetricSnapshot {
                name: "b.hist".into(),
                kind: MetricKind::Histogram {
                    bounds: vec![1, 10],
                    buckets: vec![2, 0, 1],
                    count: 3,
                    sum: 102,
                },
            },
            MetricSnapshot {
                name: "c.span".into(),
                kind: MetricKind::Span {
                    count: 2,
                    total_ns: 3_000_000,
                    max_ns: 2_000_000,
                },
            },
        ]
    }

    #[test]
    fn summary_skips_empty_metrics() {
        let table = render_summary(&sample());
        assert!(table.contains("a.counter"));
        assert!(!table.contains("a.zero"));
        assert!(table.contains("le1:2"));
        assert!(table.contains("inf:1"));
        assert!(table.contains("total=3.00ms"));
    }

    #[test]
    fn json_roundtrips_through_parser() {
        let obj = snapshot_to_json(&sample());
        let parsed = json::parse(&obj.to_string()).unwrap();
        assert_eq!(parsed.get("a.counter").unwrap().as_u64(), Some(7));
        assert!(parsed.get("a.zero").is_none());
        let hist = parsed.get("b.hist").unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(3));
        assert_eq!(
            hist.get("buckets").unwrap().get("le_1").unwrap().as_u64(),
            Some(2)
        );
        let span = parsed.get("c.span").unwrap();
        assert_eq!(span.get("total_ns").unwrap().as_u64(), Some(3_000_000));
    }

    #[test]
    fn summary_is_sorted_by_path() {
        let mut snaps = sample();
        snaps.reverse();
        let table = render_summary(&snaps);
        let rows: Vec<&str> = table.lines().collect();
        let mut sorted = rows.clone();
        sorted.sort();
        assert_eq!(rows, sorted, "summary rows must come out path-sorted");
    }

    #[test]
    fn summary_and_json_carry_percentiles() {
        let table = render_summary(&sample());
        // b.hist: bounds [1,10], buckets [2,0,1] → p50 inside le_1,
        // p99 in the overflow bucket clamps to the last bound.
        assert!(table.contains("p50=0.8"), "{table}");
        assert!(table.contains("p99=10.0"), "{table}");
        let obj = snapshot_to_json(&sample());
        let parsed = json::parse(&obj.to_string()).unwrap();
        let hist = parsed.get("b.hist").unwrap();
        assert_eq!(hist.get("p99").unwrap().as_f64(), Some(10.0));
        assert!(hist.get("p50").unwrap().as_f64().unwrap() <= 1.0);
        assert!(parsed.get("c.span").unwrap().get("p50").is_none());
    }

    #[test]
    fn append_jsonl_accumulates_lines() {
        let dir = std::env::temp_dir().join(format!("busprobe-sink-{}", std::process::id()));
        let path = dir.join("metrics.jsonl");
        let _ = std::fs::remove_file(&path);
        let rec = snapshot_to_json(&sample());
        append_jsonl(&path, &rec).unwrap();
        append_jsonl(&path, &rec).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            json::parse(line).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
