//! Hierarchical trace recording: every [`crate::span`] becomes a timed
//! event with its full nesting path, ready for export as a Chrome
//! trace (`chrome://tracing` / Perfetto) or as folded stacks for
//! flamegraphs.
//!
//! The aggregate span cells in the registry answer "how much time did
//! this path take in total"; this module answers "*when* did each
//! instance run, on which thread, and what did it do" — the input both
//! the `repro profile` subcommand and the phase-attributed bench
//! schema are built on.
//!
//! # Recording model
//!
//! Recording is enabled separately from the metric registry
//! ([`set_enabled`]); a span records a trace event when *either* switch
//! is on. Each thread appends completed spans to its own buffer — the
//! hot path is a thread-local `Vec` push behind an uncontended mutex
//! that only the draining thread ever competes for — and [`drain`]
//! joins the per-thread buffers into one ordered event list. Worker
//! threads spawned by `par_map`-style pools adopt their parent's span
//! context (see [`crate::span_context`]), so their events carry the
//! full logical path even though the parent's guards live on another
//! thread.
//!
//! With [`set_capture_counters`] on, each span additionally carries the
//! registry-counter deltas observed between its open and its close
//! (process-wide values — under concurrency a delta includes siblings'
//! work, which is why `repro profile` runs serially).
//!
//! # Exports
//!
//! * [`chrome_trace`] — the Trace Event Format (`{"traceEvents":
//!   [...]}` with matched `B`/`E` pairs per thread), validated by
//!   [`validate_chrome`];
//! * [`folded_stacks`] — `root;child;leaf <self_ns>` lines for
//!   `flamegraph.pl` / inferno;
//! * [`aggregate`] — per-path totals with self-vs-child attribution,
//!   the basis of the bench phase breakdown.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json::JsonValue;
use crate::registry;

static TRACE_ON: AtomicBool = AtomicBool::new(false);
static CAPTURE_COUNTERS: AtomicBool = AtomicBool::new(false);

/// Whether span instances are currently recorded as trace events.
#[inline]
pub fn enabled() -> bool {
    TRACE_ON.load(Ordering::Relaxed)
}

/// Turns trace recording on or off process-wide. Independent of
/// [`crate::set_enabled`]: tracing can run without the aggregate
/// registry and vice versa.
pub fn set_enabled(on: bool) {
    TRACE_ON.store(on, Ordering::Relaxed);
}

/// Whether spans snapshot the counter registry at open/close and attach
/// the deltas to their events. Costs two dense-counter sweeps per span;
/// off by default.
#[inline]
pub fn capture_counters() -> bool {
    CAPTURE_COUNTERS.load(Ordering::Relaxed)
}

/// Enables or disables per-span counter-delta capture.
pub fn set_capture_counters(on: bool) {
    CAPTURE_COUNTERS.store(on, Ordering::Relaxed);
}

/// The process-wide trace epoch: all timestamps are nanoseconds since
/// the first probe after startup.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch.
pub fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A completed span as recorded by its owning thread: full nesting
/// path, begin/end timestamps, and (optionally) the counter deltas
/// observed across it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Full `parent/child` path, including any context adopted from a
    /// parent thread.
    pub path: String,
    /// Recording thread (small dense ids, 1-based, per process).
    pub tid: u64,
    /// Open timestamp, ns since the trace epoch.
    pub start_ns: u64,
    /// Close timestamp, ns since the trace epoch.
    pub end_ns: u64,
    /// Non-zero counter deltas across the span (empty unless
    /// [`set_capture_counters`] was on).
    pub counters: Vec<(String, u64)>,
}

impl TraceSpan {
    /// The leaf segment of the path (the name passed to `span`).
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }

    /// Wall duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Raw event as buffered on the recording thread; counter deltas are
/// dense indices resolved to names at drain time.
struct RawSpan {
    path: String,
    start_ns: u64,
    end_ns: u64,
    deltas: Vec<(usize, u64)>,
}

struct ThreadBuf {
    tid: u64,
    events: Mutex<Vec<RawSpan>>,
}

fn all_bufs() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static BUFS: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    BUFS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_BUF: RefCell<Option<Arc<ThreadBuf>>> = const { RefCell::new(None) };
}

fn local_buf() -> Arc<ThreadBuf> {
    LOCAL_BUF.with(|slot| {
        let mut slot = slot.borrow_mut();
        if let Some(buf) = slot.as_ref() {
            return Arc::clone(buf);
        }
        static NEXT_TID: AtomicU64 = AtomicU64::new(1);
        let buf = Arc::new(ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            events: Mutex::new(Vec::new()),
        });
        all_bufs()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&buf));
        *slot = Some(Arc::clone(&buf));
        buf
    })
}

/// An open trace arm carried inside a `SpanGuard`; closing pushes the
/// completed record into the thread's buffer.
pub(crate) struct OpenSpan {
    path: String,
    start_ns: u64,
    base: Option<Vec<u64>>,
}

pub(crate) fn open(path: String) -> OpenSpan {
    let base = capture_counters().then(registry::dense_counter_values);
    OpenSpan {
        path,
        start_ns: now_ns(),
        base,
    }
}

pub(crate) fn close(span: OpenSpan) {
    let end_ns = now_ns();
    let deltas = match span.base {
        None => Vec::new(),
        Some(base) => {
            let now = registry::dense_counter_values();
            now.iter()
                .enumerate()
                .filter_map(|(i, &v)| {
                    let delta = v - base.get(i).copied().unwrap_or(0);
                    (delta > 0).then_some((i, delta))
                })
                .collect()
        }
    };
    let buf = local_buf();
    buf.events
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(RawSpan {
            path: span.path,
            start_ns: span.start_ns,
            end_ns,
            deltas,
        });
}

/// Removes and returns every recorded span, across all threads, sorted
/// by `(start_ns, end_ns desc, tid)` — parents before their children.
/// Counter-delta indices are resolved to registry names here.
pub fn drain() -> Vec<TraceSpan> {
    let names = registry::dense_counter_names();
    let bufs: Vec<Arc<ThreadBuf>> = all_bufs()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(Arc::clone)
        .collect();
    let mut out = Vec::new();
    for buf in bufs {
        let raw = std::mem::take(&mut *buf.events.lock().unwrap_or_else(|e| e.into_inner()));
        for r in raw {
            out.push(TraceSpan {
                path: r.path,
                tid: buf.tid,
                start_ns: r.start_ns,
                end_ns: r.end_ns,
                counters: r
                    .deltas
                    .into_iter()
                    .filter_map(|(i, d)| names.get(i).map(|n| (n.clone(), d)))
                    .collect(),
            });
        }
    }
    out.sort_by(|a, b| {
        a.start_ns
            .cmp(&b.start_ns)
            .then(b.end_ns.cmp(&a.end_ns))
            .then(a.tid.cmp(&b.tid))
    });
    out
}

/// Discards every recorded span without returning them.
pub fn clear() {
    let _ = drain();
}

/// Per-instance self time: each span's duration minus the durations of
/// its direct children *on the same thread* (a worker thread's spans
/// run concurrently with their logical parent and are attributed to
/// their own full path instead). Input must be `drain()`-ordered.
fn self_times(spans: &[TraceSpan]) -> Vec<u64> {
    #[derive(Clone, Copy)]
    struct Frame {
        idx: usize,
        end_ns: u64,
    }
    let mut self_ns: Vec<u64> = spans.iter().map(TraceSpan::dur_ns).collect();
    let mut stacks: BTreeMap<u64, Vec<Frame>> = BTreeMap::new();
    for (idx, s) in spans.iter().enumerate() {
        let stack = stacks.entry(s.tid).or_default();
        while matches!(stack.last(), Some(top) if top.end_ns < s.start_ns) {
            stack.pop();
        }
        if let Some(top) = stack.last() {
            if s.end_ns <= top.end_ns {
                self_ns[top.idx] = self_ns[top.idx].saturating_sub(s.dur_ns());
            }
        }
        stack.push(Frame {
            idx,
            end_ns: s.end_ns,
        });
    }
    self_ns
}

/// Aggregated statistics of one span path across all of its instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Full `parent/child` path.
    pub path: String,
    /// Completed instances.
    pub count: u64,
    /// Total wall time across instances, ns.
    pub total_ns: u64,
    /// Total time not attributed to same-thread child spans, ns.
    pub self_ns: u64,
    /// Longest single instance, ns.
    pub max_ns: u64,
    /// Summed counter deltas across instances.
    pub counters: Vec<(String, u64)>,
}

/// Folds the event list into per-path totals with self-vs-child time,
/// sorted by path. Input must be `drain()`-ordered.
pub fn aggregate(spans: &[TraceSpan]) -> Vec<SpanNode> {
    let self_ns = self_times(spans);
    let mut nodes: BTreeMap<&str, SpanNode> = BTreeMap::new();
    for (s, &own) in spans.iter().zip(&self_ns) {
        let node = nodes.entry(&s.path).or_insert_with(|| SpanNode {
            path: s.path.clone(),
            count: 0,
            total_ns: 0,
            self_ns: 0,
            max_ns: 0,
            counters: Vec::new(),
        });
        node.count += 1;
        node.total_ns += s.dur_ns();
        node.self_ns += own;
        node.max_ns = node.max_ns.max(s.dur_ns());
        for (name, delta) in &s.counters {
            match node.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, d)) => *d += delta,
                None => node.counters.push((name.clone(), *delta)),
            }
        }
    }
    nodes.into_values().collect()
}

/// Renders the event list in the Chrome Trace Event Format: one `B`/`E`
/// pair per span instance (named by the leaf segment, categorized by
/// the path's crate prefix), per-thread metadata events, and counter
/// deltas attached as `args` on the `E` event. Load the result in
/// `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace(spans: &[TraceSpan]) -> JsonValue {
    let us = |ns: u64| JsonValue::Num(ns as f64 / 1000.0);
    let mut events = Vec::new();
    let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    events.push(JsonValue::Obj(vec![
        ("name".into(), JsonValue::Str("process_name".into())),
        ("ph".into(), JsonValue::Str("M".into())),
        ("pid".into(), JsonValue::Int(1)),
        (
            "args".into(),
            JsonValue::Obj(vec![("name".into(), JsonValue::Str("repro".into()))]),
        ),
    ]));
    for &tid in &tids {
        events.push(JsonValue::Obj(vec![
            ("name".into(), JsonValue::Str("thread_name".into())),
            ("ph".into(), JsonValue::Str("M".into())),
            ("pid".into(), JsonValue::Int(1)),
            ("tid".into(), JsonValue::Int(tid as i64)),
            (
                "args".into(),
                JsonValue::Obj(vec![(
                    "name".into(),
                    JsonValue::Str(format!("worker-{tid}")),
                )]),
            ),
        ]));
    }
    // Emit per thread: open (B) in start order, closing (E) whatever
    // has ended before the next span begins. Same-thread spans nest by
    // construction (RAII guards), so this walk always balances.
    for &tid in &tids {
        let mine: Vec<&TraceSpan> = spans.iter().filter(|s| s.tid == tid).collect();
        let mut open: Vec<&TraceSpan> = Vec::new();
        let emit_end = |s: &TraceSpan, events: &mut Vec<JsonValue>| {
            let mut obj = vec![
                ("ph".into(), JsonValue::Str("E".into())),
                ("pid".into(), JsonValue::Int(1)),
                ("tid".into(), JsonValue::Int(tid as i64)),
                ("ts".into(), us(s.end_ns)),
            ];
            if !s.counters.is_empty() {
                let counters = s
                    .counters
                    .iter()
                    .map(|(n, d)| (n.clone(), JsonValue::Int(*d as i64)))
                    .collect();
                obj.push((
                    "args".into(),
                    JsonValue::Obj(vec![("counters".into(), JsonValue::Obj(counters))]),
                ));
            }
            events.push(JsonValue::Obj(obj));
        };
        for s in mine {
            while matches!(open.last(), Some(top) if top.end_ns < s.start_ns) {
                emit_end(open.pop().expect("matched last"), &mut events);
            }
            let cat = s.name().split('.').next().unwrap_or("span");
            events.push(JsonValue::Obj(vec![
                ("name".into(), JsonValue::Str(s.name().to_string())),
                ("cat".into(), JsonValue::Str(cat.to_string())),
                ("ph".into(), JsonValue::Str("B".into())),
                ("pid".into(), JsonValue::Int(1)),
                ("tid".into(), JsonValue::Int(tid as i64)),
                ("ts".into(), us(s.start_ns)),
            ]));
            open.push(s);
        }
        while let Some(top) = open.pop() {
            emit_end(top, &mut events);
        }
    }
    JsonValue::Obj(vec![
        ("traceEvents".into(), JsonValue::Arr(events)),
        ("displayTimeUnit".into(), JsonValue::Str("ms".into())),
    ])
}

/// Validates a Chrome trace document as emitted by [`chrome_trace`]:
/// `traceEvents` must exist and be non-empty, every `B` must have a
/// matching same-thread `E`, and timestamps must be monotonically
/// non-decreasing per thread. Returns the number of matched pairs.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate_chrome(doc: &JsonValue) -> Result<usize, String> {
    let Some(JsonValue::Arr(events)) = doc.get("traceEvents") else {
        return Err("document lacks a traceEvents array".into());
    };
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }
    let mut depth: BTreeMap<i64, usize> = BTreeMap::new();
    let mut last_ts: BTreeMap<i64, f64> = BTreeMap::new();
    let mut pairs = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i} lacks a ph field"))?;
        if ph == "M" {
            continue;
        }
        let tid = ev
            .get("tid")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i} lacks a tid"))? as i64;
        let ts = ev
            .get("ts")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i} lacks a ts"))?;
        let last = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
        if ts < *last {
            return Err(format!(
                "event {i}: timestamp {ts} goes backwards on tid {tid} (last {last})"
            ));
        }
        *last = ts;
        let d = depth.entry(tid).or_insert(0);
        match ph {
            "B" => {
                if ev.get("name").and_then(JsonValue::as_str).is_none() {
                    return Err(format!("event {i}: B event lacks a name"));
                }
                *d += 1;
            }
            "E" => {
                if *d == 0 {
                    return Err(format!("event {i}: E without a matching B on tid {tid}"));
                }
                *d -= 1;
                pairs += 1;
            }
            other => return Err(format!("event {i}: unexpected phase {other:?}")),
        }
    }
    for (tid, d) in depth {
        if d != 0 {
            return Err(format!("tid {tid}: {d} B event(s) never closed"));
        }
    }
    if pairs == 0 {
        return Err("trace contains no spans".into());
    }
    Ok(pairs)
}

/// Renders folded stacks — one `seg;seg;seg <self_ns>` line per path,
/// sorted — the input format of `flamegraph.pl` and inferno. Paths with
/// zero self time are skipped.
pub fn folded_stacks(spans: &[TraceSpan]) -> String {
    let mut out = String::new();
    for node in aggregate(spans) {
        if node.self_ns == 0 {
            continue;
        }
        out.push_str(&node.path.replace('/', ";"));
        out.push(' ');
        out.push_str(&node.self_ns.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(path: &str, tid: u64, start: u64, end: u64) -> TraceSpan {
        TraceSpan {
            path: path.into(),
            tid,
            start_ns: start,
            end_ns: end,
            counters: Vec::new(),
        }
    }

    #[test]
    fn self_time_subtracts_same_thread_children() {
        let spans = vec![
            span("a", 1, 0, 100),
            span("a/b", 1, 10, 40),
            span("a/b/c", 1, 20, 30),
            span("a/b", 1, 50, 70),
        ];
        let nodes = aggregate(&spans);
        let get = |p: &str| nodes.iter().find(|n| n.path == p).unwrap();
        assert_eq!(get("a").total_ns, 100);
        assert_eq!(get("a").self_ns, 100 - 30 - 20);
        assert_eq!(get("a/b").count, 2);
        assert_eq!(get("a/b").total_ns, 50);
        assert_eq!(get("a/b").self_ns, 50 - 10);
        assert_eq!(get("a/b/c").self_ns, 10);
    }

    #[test]
    fn cross_thread_children_keep_their_own_time() {
        // A worker's span overlaps the parent wall-clock; the parent's
        // self time must not go negative or double-subtract.
        let spans = vec![
            span("a", 1, 0, 100),
            span("a/w", 2, 10, 90),
            span("a/w", 3, 10, 95),
        ];
        let nodes = aggregate(&spans);
        let get = |p: &str| nodes.iter().find(|n| n.path == p).unwrap();
        assert_eq!(get("a").self_ns, 100);
        assert_eq!(get("a/w").total_ns, 80 + 85);
    }

    #[test]
    fn chrome_trace_validates_and_balances() {
        let spans = vec![
            span("a", 1, 0, 100),
            span("a/b", 1, 10, 40),
            span("a/w", 2, 15, 85),
        ];
        let doc = chrome_trace(&spans);
        let pairs = validate_chrome(&doc).expect("emitted trace must validate");
        assert_eq!(pairs, 3);
        // Round-trips through the strict parser.
        let reparsed = crate::json::parse(&doc.to_string()).unwrap();
        assert_eq!(validate_chrome(&reparsed), Ok(3));
    }

    #[test]
    fn chrome_trace_carries_counter_args() {
        let mut s = span("a", 1, 0, 50);
        s.counters = vec![("x.y".into(), 7)];
        let doc = chrome_trace(&[s]);
        let rendered = doc.to_string();
        assert!(rendered.contains("\"counters\":{\"x.y\":7}"), "{rendered}");
    }

    #[test]
    fn validate_rejects_unbalanced_and_backwards() {
        let unbalanced = crate::json::parse(
            r#"{"traceEvents":[{"ph":"B","name":"a","tid":1,"ts":1,"pid":1}]}"#,
        )
        .unwrap();
        assert!(validate_chrome(&unbalanced).unwrap_err().contains("never closed"));
        let backwards = crate::json::parse(
            r#"{"traceEvents":[
                {"ph":"B","name":"a","tid":1,"ts":5,"pid":1},
                {"ph":"E","tid":1,"ts":3,"pid":1}]}"#,
        )
        .unwrap();
        assert!(validate_chrome(&backwards).unwrap_err().contains("backwards"));
        let orphan = crate::json::parse(
            r#"{"traceEvents":[{"ph":"E","tid":1,"ts":3,"pid":1}]}"#,
        )
        .unwrap();
        assert!(validate_chrome(&orphan).unwrap_err().contains("without a matching B"));
    }

    #[test]
    fn folded_stacks_use_self_time() {
        let spans = vec![span("a", 1, 0, 100), span("a/b", 1, 10, 40)];
        let folded = folded_stacks(&spans);
        assert_eq!(folded, "a 70\na;b 30\n");
    }

    #[test]
    fn recording_round_trips_through_drain() {
        // The global recorder is shared; serialize with the registry
        // tests' guard to avoid cross-talk.
        let _g = crate::tests::guard();
        clear();
        set_enabled(true);
        {
            let _outer = crate::span("trace.test.outer");
            let _inner = crate::span("trace.test.inner");
        }
        set_enabled(false);
        let spans = drain();
        let outer = spans.iter().find(|s| s.path == "trace.test.outer");
        let inner = spans
            .iter()
            .find(|s| s.path == "trace.test.outer/trace.test.inner");
        let (outer, inner) = (outer.expect("outer recorded"), inner.expect("inner recorded"));
        assert!(outer.start_ns <= inner.start_ns);
        assert!(inner.end_ns <= outer.end_ns);
        assert_eq!(outer.tid, inner.tid);
        assert!(drain().is_empty(), "drain must consume the buffer");
    }

    #[test]
    fn counter_deltas_attach_to_spans() {
        let _g = crate::tests::guard();
        clear();
        crate::set_enabled(true);
        set_enabled(true);
        set_capture_counters(true);
        let c = crate::counter("trace.test.delta_counter");
        {
            let _s = crate::span("trace.test.counted");
            c.add(5);
        }
        set_capture_counters(false);
        set_enabled(false);
        crate::set_enabled(false);
        let spans = drain();
        let s = spans
            .iter()
            .find(|s| s.path == "trace.test.counted")
            .expect("span recorded");
        let delta = s
            .counters
            .iter()
            .find(|(n, _)| n == "trace.test.delta_counter")
            .map(|(_, d)| *d);
        assert_eq!(delta, Some(5));
    }
}
