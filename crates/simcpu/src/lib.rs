//! A miniature RISC functional simulator with bus timing taps — the
//! reproduction's stand-in for SimpleScalar 3.0 running SPEC benchmarks
//! (paper Section 4.1).
//!
//! The coding study consumes only the *value streams* observed on two
//! buses of a running processor:
//!
//! * the **register bus** — one register-file read port, sampled on
//!   every instruction that reads a register; and
//! * the **memory bus** — load/store data values, re-timed through a
//!   cache model and an event queue so that miss latencies reorder
//!   values exactly as SimpleScalar's scheduler queue does.
//!
//! Rather than port SPEC binaries, this crate provides seventeen
//! synthetic kernels named for the SPEC95 programs the paper evaluates
//! ([`Benchmark`]). Each kernel is a real program for the simulated
//! machine, engineered so its bus-value statistics (value locality,
//! stride structure, floating-point bit patterns, working-set phases)
//! land in the ranges the paper's Figures 7–8 report. See DESIGN.md for
//! the substitution rationale.
//!
//! # Example
//!
//! ```
//! use simcpu::{Benchmark, BusKind};
//!
//! let trace = Benchmark::Gcc.trace(BusKind::Register, 10_000, 1);
//! assert_eq!(trace.len(), 10_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;

mod bench;
mod cache;
mod exec;
mod isa;
mod machine;
mod ooo;
mod program;

pub use bench::{Benchmark, BusKind};
pub use cache::{Cache, CacheConfig, CacheHierarchy};
pub use isa::{AluOp, Cond, FpuOp, Instr, Reg};
pub use machine::{InstrMix, Machine, MachineConfig, RunSummary};
pub use ooo::{OooConfig, OooMachine, OooSummary};
pub use program::{Program, ProgramBuilder, ProgramError};
