//! A small set-associative data cache used to re-time memory traffic.
//!
//! The cache affects only *when* a datum appears on the memory bus (hit
//! vs miss latency feeding the event queue), never its value — exactly
//! the role SimpleScalar's access-latency accounting plays in the
//! paper's bus timing generators.

use serde::{Deserialize, Serialize};

/// Cache geometry and latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Words per line (power of two).
    pub line_words: usize,
    /// Cycles from issue to data for a hit.
    pub hit_latency: u64,
    /// Cycles from issue to data for a miss.
    pub miss_latency: u64,
}

impl Default for CacheConfig {
    /// A 16 KiB-ish data cache: 128 sets × 2 ways × 16 words.
    fn default() -> Self {
        CacheConfig {
            sets: 128,
            ways: 2,
            line_words: 16,
            hit_latency: 2,
            miss_latency: 24,
        }
    }
}

/// The cache: LRU within each set, allocate on read and write.
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `tags[set * ways + way]`, `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// LRU stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `line_words` is not a power of two, or any
    /// geometry field is zero.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            config.line_words.is_power_of_two(),
            "line_words must be a power of two"
        );
        assert!(config.ways >= 1, "at least one way required");
        let n = config.sets * config.ways;
        Cache {
            config,
            tags: vec![u64::MAX; n],
            stamps: vec![0; n],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Performs an access to a word address; returns the data latency in
    /// cycles and updates hit/miss statistics.
    pub fn access(&mut self, word_addr: u64) -> u64 {
        if self.probe(word_addr) {
            self.config.hit_latency
        } else {
            self.config.miss_latency
        }
    }

    /// Performs an access, returning whether it hit. State (LRU, fills,
    /// statistics) updates either way; latency policy is the caller's —
    /// this is what lets a [`CacheHierarchy`] stack levels.
    pub fn probe(&mut self, word_addr: u64) -> bool {
        self.clock += 1;
        let line = word_addr / self.config.line_words as u64;
        let set = (line as usize) & (self.config.sets - 1);
        let tag = line / self.config.sets as u64;
        let base = set * self.config.ways;
        let slots = base..base + self.config.ways;

        for i in slots.clone() {
            if self.tags[i] == tag {
                self.stamps[i] = self.clock;
                self.hits += 1;
                return true;
            }
        }
        // Miss: fill the LRU way.
        self.misses += 1;
        let victim = slots.min_by_key(|&i| self.stamps[i]).expect("ways >= 1");
        self.tags[victim] = tag;
        self.stamps[victim] = self.clock;
        false
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `0.0..=1.0` (zero before any access).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Invalidates everything and clears statistics.
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.clock = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

/// A two-level cache hierarchy with a flat main-memory latency behind
/// it — the latency source for the memory-bus timing generator when more
/// realistic re-timing spread is wanted than a single level gives.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: Cache,
    l2: Option<Cache>,
    /// Latency of a miss all the way to main memory, in cycles.
    memory_latency: u64,
}

impl CacheHierarchy {
    /// Creates a hierarchy. With `l2: None`, behaves exactly like the
    /// single [`Cache`] (misses cost the L1 config's `miss_latency`).
    pub fn new(l1: CacheConfig, l2: Option<CacheConfig>, memory_latency: u64) -> Self {
        CacheHierarchy {
            l1: Cache::new(l1),
            l2: l2.map(Cache::new),
            memory_latency,
        }
    }

    /// Performs an access; returns the data latency in cycles.
    pub fn access(&mut self, word_addr: u64) -> u64 {
        if self.l1.probe(word_addr) {
            return self.l1.config().hit_latency;
        }
        match &mut self.l2 {
            None => self.l1.config().miss_latency,
            Some(l2) => {
                if l2.probe(word_addr) {
                    l2.config().hit_latency
                } else {
                    self.memory_latency
                }
            }
        }
    }

    /// The L1 cache (statistics access).
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// The L2 cache, if configured.
    pub fn l2(&self) -> Option<&Cache> {
        self.l2.as_ref()
    }

    /// Invalidates all levels and clears statistics.
    pub fn reset(&mut self) {
        self.l1.reset();
        if let Some(l2) = &mut self.l2 {
            l2.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            sets: 4,
            ways: 2,
            line_words: 4,
            hit_latency: 1,
            miss_latency: 10,
        })
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = tiny();
        assert_eq!(c.access(0), 10);
        assert_eq!(c.access(1), 1, "same line");
        assert_eq!(c.access(3), 1);
        assert_eq!(c.access(4), 10, "next line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to set 0: lines 0, 4, 8 (4 sets).
        let addr = |line: u64| line * 4;
        c.access(addr(0)); // miss, way A
        c.access(addr(4)); // miss, way B
        c.access(addr(0)); // hit, refreshes A
        c.access(addr(8)); // miss, evicts B (LRU)
        assert_eq!(c.access(addr(0)), 1, "line 0 still resident");
        assert_eq!(c.access(addr(4)), 10, "line 4 was evicted");
    }

    #[test]
    fn sequential_walk_has_high_hit_rate() {
        let mut c = Cache::new(CacheConfig::default());
        for a in 0..10_000u64 {
            c.access(a);
        }
        assert!(c.hit_rate() > 0.9, "rate {}", c.hit_rate());
    }

    #[test]
    fn huge_random_walk_has_low_hit_rate() {
        let mut c = Cache::new(CacheConfig::default());
        let mut x = 1u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            c.access(x >> 16); // far beyond capacity
        }
        assert!(c.hit_rate() < 0.1, "rate {}", c.hit_rate());
    }

    #[test]
    fn reset_clears_state() {
        let mut c = tiny();
        c.access(0);
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0);
        assert_eq!(c.access(0), 10, "cold again after reset");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        let _ = Cache::new(CacheConfig {
            sets: 3,
            ..CacheConfig::default()
        });
    }

    #[test]
    fn hierarchy_without_l2_matches_single_cache() {
        let cfg = CacheConfig {
            sets: 4,
            ways: 2,
            line_words: 4,
            hit_latency: 1,
            miss_latency: 10,
        };
        let mut single = Cache::new(cfg);
        let mut hier = CacheHierarchy::new(cfg, None, 99);
        let mut x = 5u64;
        for _ in 0..2_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = x >> 50;
            assert_eq!(single.access(a), hier.access(a));
        }
    }

    #[test]
    fn hierarchy_l2_catches_l1_victims() {
        // Small L1, big L2: a working set that thrashes L1 but fits L2
        // pays L2 latency, not memory latency.
        let l1 = CacheConfig {
            sets: 2,
            ways: 1,
            line_words: 4,
            hit_latency: 1,
            miss_latency: 10,
        };
        let l2 = CacheConfig {
            sets: 64,
            ways: 4,
            line_words: 4,
            hit_latency: 6,
            miss_latency: 0,
        };
        let mut h = CacheHierarchy::new(l1, Some(l2), 100);
        // Touch 16 lines round-robin: L1 (2 lines) always misses after
        // warmup, L2 (256 lines) always hits.
        let mut saw_memory = 0;
        let mut saw_l2 = 0;
        for i in 0..400u64 {
            let lat = h.access((i % 16) * 4);
            match lat {
                100 => saw_memory += 1,
                6 => saw_l2 += 1,
                1 => {}
                other => panic!("unexpected latency {other}"),
            }
        }
        assert_eq!(saw_memory, 16, "only compulsory misses reach memory");
        assert!(saw_l2 > 300, "L2 should absorb the thrash: {saw_l2}");
        assert!(h.l2().unwrap().hit_rate() > 0.9);
        assert!(h.l1().hit_rate() < 0.2);
    }

    #[test]
    fn hierarchy_reset_clears_all_levels() {
        let cfg = CacheConfig {
            sets: 4,
            ways: 1,
            line_words: 4,
            hit_latency: 1,
            miss_latency: 10,
        };
        let mut h = CacheHierarchy::new(cfg, Some(cfg), 50);
        h.access(0);
        h.reset();
        assert_eq!(h.l1().hits() + h.l1().misses(), 0);
        assert_eq!(h.access(0), 50, "cold after reset");
    }
}
