//! A timestamp-based out-of-order timing model — the closest analogue
//! of the paper's `sim-outorder` methodology (Section 4.1).
//!
//! Architectural execution stays in program order through the shared
//! executor (values are exact, no speculation), while a classic
//! timestamp dataflow model schedules *when* each effect reaches the
//! buses:
//!
//! * dispatch is in-order, `width` instructions per cycle, bounded by a
//!   reorder buffer;
//! * an instruction issues when its source registers are ready and its
//!   dispatch slot has arrived; completion follows the unit latency
//!   (cache-dependent for memory);
//! * taken branches stall dispatch by a fetch-redirect penalty;
//! * register-port traffic is stamped at issue, memory-bus data at
//!   completion — so long-latency misses overtake younger hits exactly
//!   as in the event-queue re-timing of the in-order machine, but with
//!   realistic clustering and overlap.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use bustrace::{Trace, Width};

use crate::cache::{CacheConfig, CacheHierarchy};
use crate::exec::{self, InstrClass};
use crate::isa::NUM_REGS;
use crate::program::Program;

/// Out-of-order engine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OooConfig {
    /// Dispatch/issue/retire width, instructions per cycle.
    pub width: usize,
    /// Reorder-buffer entries.
    pub rob: usize,
    /// Integer-operation latency in cycles.
    pub alu_latency: u64,
    /// Floating-point latency in cycles.
    pub fpu_latency: u64,
    /// Fetch-redirect bubble after a *mispredicted* branch, cycles.
    pub branch_penalty: u64,
    /// log2 of the branch-predictor table size (2-bit saturating
    /// counters, PC-indexed). 0 disables prediction: every taken branch
    /// pays the full bubble, as a predictor-less front end would.
    pub predictor_bits: u32,
    /// Data memory size in words (power of two).
    pub memory_words: usize,
    /// L1 data cache.
    pub cache: CacheConfig,
    /// Optional L2.
    pub l2: Option<CacheConfig>,
    /// Miss-everywhere latency (used when an L2 is configured).
    pub memory_latency: u64,
}

impl Default for OooConfig {
    /// A 4-wide, 64-entry-ROB machine over the default memory system.
    fn default() -> Self {
        OooConfig {
            width: 4,
            rob: 64,
            alu_latency: 1,
            fpu_latency: 4,
            branch_penalty: 3,
            predictor_bits: 10,
            memory_words: 1 << 16,
            cache: CacheConfig::default(),
            l2: None,
            memory_latency: CacheConfig::default().miss_latency,
        }
    }
}

/// Statistics of an out-of-order run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OooSummary {
    /// Instructions executed.
    pub instructions: u64,
    /// Cycles from start to the last retirement.
    pub cycles: u64,
    /// Retired instructions per cycle.
    pub ipc: f64,
    /// Conditional branches and jumps executed.
    pub branches: u64,
    /// Branches whose direction the predictor got wrong.
    pub mispredictions: u64,
    /// Dispatch stalls taken because the reorder buffer was full (one
    /// per instruction forced to wait for a retirement slot).
    pub rob_stalls: u64,
}

/// A PC-indexed table of 2-bit saturating counters — the classic bimodal
/// direction predictor.
#[derive(Debug, Clone)]
struct BranchPredictor {
    /// Counter per slot: 0..=3, taken when >= 2. Empty disables.
    counters: Vec<u8>,
}

impl BranchPredictor {
    fn new(bits: u32) -> Self {
        let size = if bits == 0 { 0 } else { 1usize << bits };
        // Weakly taken start: loops predict well immediately.
        BranchPredictor {
            counters: vec![2; size],
        }
    }

    fn slot(&self, pc: usize) -> usize {
        pc & (self.counters.len() - 1)
    }

    /// Predicted direction for the branch at `pc`; `None` when disabled.
    fn predict(&self, pc: usize) -> Option<bool> {
        if self.counters.is_empty() {
            return None;
        }
        Some(self.counters[self.slot(pc)] >= 2)
    }

    fn update(&mut self, pc: usize, taken: bool) {
        if self.counters.is_empty() {
            return;
        }
        let slot = self.slot(pc);
        let c = &mut self.counters[slot];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

/// The out-of-order timing machine.
///
/// # Example
///
/// ```
/// use simcpu::{Benchmark, BusKind, OooConfig};
///
/// let trace = Benchmark::Gcc.trace_ooo(BusKind::Memory, 2_000, 1, OooConfig::default());
/// assert_eq!(trace.len(), 2_000);
/// ```
#[derive(Debug)]
pub struct OooMachine {
    program: Program,
    config: OooConfig,
    regs: [u32; NUM_REGS],
    memory: Vec<u32>,
    cache: CacheHierarchy,
    pc: usize,
    halted: bool,
    /// Cycle each architectural register's newest value becomes ready.
    reg_ready: [u64; NUM_REGS],
    /// Completion times of in-flight (dispatched, unretired) work.
    rob: VecDeque<u64>,
    /// Retirement frontier.
    last_retire: u64,
    /// Next dispatch cycle and slots already used in it.
    dispatch_cycle: u64,
    dispatch_slots: usize,
    instructions: u64,
    /// (issue time, seq, value) for register-port traffic.
    reg_events: BinaryHeap<Reverse<(u64, u64, u32)>>,
    /// (completion time, seq, value) for memory data traffic.
    mem_events: BinaryHeap<Reverse<(u64, u64, u32)>>,
    /// (issue time, seq, vaddr) for address traffic.
    addr_events: BinaryHeap<Reverse<(u64, u64, u32)>>,
    seq: u64,
    predictor: BranchPredictor,
    branches: u64,
    mispredictions: u64,
    rob_stalls: u64,
}

impl OooMachine {
    /// Creates the machine with zeroed state.
    ///
    /// # Panics
    ///
    /// Panics if `memory_words` is not a power of two, or `width`/`rob`
    /// is zero.
    pub fn new(program: Program, config: OooConfig) -> Self {
        assert!(
            config.memory_words.is_power_of_two(),
            "memory size must be a power of two"
        );
        assert!(config.width >= 1, "dispatch width must be at least 1");
        assert!(
            config.rob >= 1,
            "the reorder buffer needs at least one entry"
        );
        OooMachine {
            program,
            cache: CacheHierarchy::new(config.cache, config.l2, config.memory_latency),
            memory: vec![0; config.memory_words],
            config,
            regs: [0; NUM_REGS],
            pc: 0,
            halted: false,
            reg_ready: [0; NUM_REGS],
            rob: VecDeque::new(),
            last_retire: 0,
            dispatch_cycle: 1,
            dispatch_slots: 0,
            instructions: 0,
            reg_events: BinaryHeap::new(),
            mem_events: BinaryHeap::new(),
            addr_events: BinaryHeap::new(),
            seq: 0,
            predictor: BranchPredictor::new(config.predictor_bits),
            branches: 0,
            mispredictions: 0,
            rob_stalls: 0,
        }
    }

    /// Overwrites memory starting at `addr` (word address, wrapping).
    pub fn load_memory(&mut self, addr: usize, data: &[u32]) {
        let mask = self.config.memory_words - 1;
        for (i, &w) in data.iter().enumerate() {
            self.memory[(addr + i) & mask] = w;
        }
    }

    /// Whether the program has halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Current register values.
    pub fn registers(&self) -> &[u32; NUM_REGS] {
        &self.regs
    }

    /// Data memory contents.
    pub fn memory(&self) -> &[u32] {
        &self.memory
    }

    /// Retires the oldest ROB entry, advancing the retirement frontier.
    fn retire_one(&mut self) {
        if let Some(completion) = self.rob.pop_front() {
            self.last_retire = self.last_retire.max(completion);
        }
    }

    /// Executes and schedules one instruction. Returns `false` on halt.
    pub fn step(&mut self) -> bool {
        if self.halted {
            return false;
        }
        let Some(&instr) = self.program.instrs().get(self.pc) else {
            self.halted = true;
            return false;
        };
        let mask = self.config.memory_words - 1;
        let out = exec::execute(instr, self.pc, &mut self.regs, &mut self.memory, mask);
        if out.class == InstrClass::Halt {
            self.halted = true;
            return false;
        }
        self.instructions += 1;

        // Dispatch: in-order, width per cycle, bounded by ROB occupancy.
        if self.dispatch_slots == self.config.width {
            self.dispatch_cycle += 1;
            self.dispatch_slots = 0;
        }
        if self.rob.len() >= self.config.rob {
            self.rob_stalls += 1;
        }
        while self.rob.len() >= self.config.rob {
            // Stall dispatch until the oldest in-flight op retires.
            let oldest = *self.rob.front().expect("rob full");
            self.dispatch_cycle = self.dispatch_cycle.max(oldest);
            self.retire_one();
        }
        let dispatch = self.dispatch_cycle;
        self.dispatch_slots += 1;

        // Issue: operands ready and dispatched.
        let mut issue = dispatch;
        for read in out.reads.into_iter().flatten() {
            issue = issue.max(self.reg_ready[usize::from(read.0)]);
        }
        // Register-port traffic is stamped at issue.
        for read in out.reads.into_iter().flatten() {
            self.reg_events.push(Reverse((issue, self.seq, read.1)));
            self.seq += 1;
        }

        // Completion per class.
        let completion = match out.class {
            InstrClass::Alu => issue + self.config.alu_latency,
            InstrClass::Fpu => issue + self.config.fpu_latency,
            InstrClass::Load | InstrClass::Store => {
                let m = out.mem.expect("memory class has an effect");
                self.addr_events.push(Reverse((issue, self.seq, m.vaddr)));
                self.seq += 1;
                let lat = {
                    let raw = self.cache.access(((m.vaddr as usize) & mask) as u64);
                    if m.is_store {
                        raw.min(self.config.cache.hit_latency)
                    } else {
                        raw
                    }
                };
                let done = issue + lat;
                self.mem_events.push(Reverse((done, self.seq, m.value)));
                self.seq += 1;
                done
            }
            InstrClass::Branch => {
                let done = issue + 1;
                self.branches += 1;
                // The front end follows the predictor; only a wrong
                // direction forces a fetch redirect after resolution.
                // (self.pc still holds the branch's own address here.)
                let predicted = self.predictor.predict(self.pc).unwrap_or(false);
                let mispredicted = predicted != out.taken;
                self.predictor.update(self.pc, out.taken);
                if mispredicted {
                    self.mispredictions += 1;
                    self.dispatch_cycle =
                        self.dispatch_cycle.max(done + self.config.branch_penalty);
                    self.dispatch_slots = 0;
                }
                done
            }
            InstrClass::Halt => unreachable!("handled above"),
        };
        if let Some((rd, _)) = out.write {
            if rd != 0 {
                self.reg_ready[usize::from(rd)] = completion;
            }
        }
        self.rob.push_back(completion);
        self.pc = out.next_pc;
        true
    }

    /// Runs until halt, the instruction budget, or both event targets.
    pub fn run(
        &mut self,
        max_instructions: u64,
        reg_values: usize,
        mem_values: usize,
    ) -> OooSummary {
        let _span = busprobe::span("simcpu.ooo.run");
        // Deltas before/after keep the dispatch loop probe-free.
        let probe_base = busprobe::enabled().then(|| self.probe_state());
        let mut executed = 0u64;
        while executed < max_instructions
            && !(self.reg_events.len() >= reg_values && self.mem_events.len() >= mem_values)
        {
            if !self.step() {
                break;
            }
            executed += 1;
        }
        while !self.rob.is_empty() {
            self.retire_one();
        }
        if let Some(base) = probe_base {
            self.record_probe_deltas(base);
        }
        OooSummary {
            instructions: self.instructions,
            cycles: self.last_retire.max(1),
            ipc: self.instructions as f64 / self.last_retire.max(1) as f64,
            branches: self.branches,
            mispredictions: self.mispredictions,
            rob_stalls: self.rob_stalls,
        }
    }

    /// Counter values captured before a run, for delta accounting.
    fn probe_state(&self) -> [u64; 6] {
        [
            self.instructions,
            self.branches,
            self.mispredictions,
            self.rob_stalls,
            self.cache.l1().hits(),
            self.cache.l1().misses(),
        ]
    }

    /// Publishes the difference between now and `base` to the registry.
    fn record_probe_deltas(&self, base: [u64; 6]) {
        let now = self.probe_state();
        let d = |i: usize| now[i] - base[i];
        busprobe::counter("simcpu.ooo.instructions").add(d(0));
        busprobe::counter("simcpu.ooo.branches").add(d(1));
        busprobe::counter("simcpu.ooo.mispredictions").add(d(2));
        busprobe::counter("simcpu.ooo.rob_stalls").add(d(3));
        busprobe::counter("simcpu.cache.l1.hits").add(d(4));
        busprobe::counter("simcpu.cache.l1.misses").add(d(5));
    }

    fn drain(heap: &mut BinaryHeap<Reverse<(u64, u64, u32)>>) -> Trace {
        let mut values = Vec::with_capacity(heap.len());
        while let Some(Reverse((_, _, v))) = heap.pop() {
            values.push(u64::from(v));
        }
        Trace::from_values(Width::W32, values)
    }

    /// The register-port trace (issue order).
    pub fn take_register_trace(&mut self) -> Trace {
        Self::drain(&mut self.reg_events)
    }

    /// The memory data-bus trace (completion order).
    pub fn take_memory_trace(&mut self) -> Trace {
        Self::drain(&mut self.mem_events)
    }

    /// The memory address-bus trace (issue order).
    pub fn take_address_trace(&mut self) -> Trace {
        Self::drain(&mut self.addr_events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AluOp, Cond};
    use crate::program::ProgramBuilder;

    fn machine(b: ProgramBuilder) -> OooMachine {
        OooMachine::new(b.build().unwrap(), OooConfig::default())
    }

    #[test]
    fn independent_ops_overlap() {
        // Eight independent ALU ops on a 4-wide machine: ~2 cycles, not 8.
        let mut b = ProgramBuilder::new();
        for r in 1..9u8 {
            b.li(r, u32::from(r));
        }
        b.halt();
        let mut m = machine(b);
        let s = m.run(1_000, usize::MAX, usize::MAX);
        assert_eq!(s.instructions, 8);
        assert!(s.cycles <= 4, "cycles {}", s.cycles);
        assert!(s.ipc >= 2.0, "ipc {}", s.ipc);
    }

    #[test]
    fn dependency_chains_serialize() {
        // A 16-deep add chain cannot beat 1 IPC regardless of width.
        let mut b = ProgramBuilder::new();
        b.li(1, 1);
        for _ in 0..16 {
            b.alu(AluOp::Add, 1, 1, 1);
        }
        b.halt();
        let mut m = machine(b);
        let s = m.run(1_000, usize::MAX, usize::MAX);
        assert!(s.cycles >= 16, "cycles {}", s.cycles);
    }

    #[test]
    fn architectural_results_match_inorder_machine() {
        use crate::machine::{Machine, MachineConfig};
        // Same program on both machines: memory state must agree.
        let build = || {
            let mut b = ProgramBuilder::new();
            let top = b.label();
            b.li(1, 0);
            b.li(2, 50);
            b.place(top).unwrap();
            b.alui(AluOp::Mul, 3, 1, 2654435761);
            b.store(3, 1, 0x100);
            b.alui(AluOp::Add, 1, 1, 1);
            b.branch(Cond::Lt, 1, 2, top);
            b.halt();
            b.build().unwrap()
        };
        let mut fast = Machine::new(build(), MachineConfig::default());
        fast.run(10_000, usize::MAX, usize::MAX);
        let mut ooo = OooMachine::new(build(), OooConfig::default());
        ooo.run(10_000, usize::MAX, usize::MAX);
        assert_eq!(
            fast.memory()[0x100..0x100 + 50],
            ooo.memory[0x100..0x100 + 50]
        );
    }

    #[test]
    fn cache_misses_reorder_memory_traffic() {
        let mut b = ProgramBuilder::new();
        b.li(1, 0x4000); // cold line
        b.load(2, 1, 0); // miss: arrives late
        b.li(3, 0xBEEF);
        b.store(3, 0, 0); // store to a different cold line... also miss,
                          // but store latency is clamped to the hit time.
        b.halt();
        let mut m = machine(b);
        m.run(100, usize::MAX, usize::MAX);
        let t = m.take_memory_trace();
        assert_eq!(t.values(), &[0xBEEF, 0]);
    }

    #[test]
    fn branch_predictor_hides_loop_bubbles() {
        // A tight counted loop: the bimodal predictor learns "taken"
        // after one trip, so only the exit mispredicts; without a
        // predictor every taken branch pays the bubble.
        let build = || {
            let mut b = ProgramBuilder::new();
            let top = b.label();
            b.li(1, 0);
            b.li(2, 200);
            b.place(top).unwrap();
            b.alui(AluOp::Add, 1, 1, 1);
            b.branch(Cond::Lt, 1, 2, top);
            b.halt();
            b.build().unwrap()
        };
        let mut with = OooMachine::new(build(), OooConfig::default());
        let sw = with.run(10_000, usize::MAX, usize::MAX);
        assert!(sw.branches >= 200);
        assert!(
            sw.mispredictions <= 3,
            "a counted loop should mispredict only around entry/exit: {}",
            sw.mispredictions
        );

        let mut without = OooMachine::new(
            build(),
            OooConfig {
                predictor_bits: 0,
                ..OooConfig::default()
            },
        );
        let so = without.run(10_000, usize::MAX, usize::MAX);
        assert!(
            so.ipc < 1.0,
            "predictor-less ipc {} should be bubble-limited",
            so.ipc
        );
        assert!(
            sw.ipc > so.ipc,
            "prediction must help: {} vs {}",
            sw.ipc,
            so.ipc
        );
    }

    #[test]
    fn data_dependent_branches_mispredict() {
        // Branch direction follows a pseudo-random bit: ~50% of branches
        // must mispredict no matter the counter state.
        let mut b = ProgramBuilder::new();
        b.li(1, 0);
        b.li(2, 400);
        b.li(30, 0x1357_9BDF);
        let top = b.label();
        b.place(top).unwrap();
        b.alui(AluOp::Mul, 30, 30, 1664525);
        b.alui(AluOp::Add, 30, 30, 1013904223);
        b.alui(AluOp::Srl, 3, 30, 31); // random bit
        let skip = b.label();
        b.branch(Cond::Eq, 3, 0, skip);
        b.alui(AluOp::Add, 4, 4, 1);
        b.place(skip).unwrap();
        b.alui(AluOp::Add, 1, 1, 1);
        b.branch(Cond::Lt, 1, 2, top);
        b.halt();
        let mut m = machine(b);
        let s = m.run(100_000, usize::MAX, usize::MAX);
        let rate = s.mispredictions as f64 / s.branches as f64;
        assert!(rate > 0.15, "random branches should hurt: rate {rate}");
    }

    #[test]
    fn rob_limits_runahead() {
        // A long stream of independent loads from a cold, huge footprint:
        // the ROB bounds how many 24-cycle misses overlap.
        let mut b = ProgramBuilder::new();
        b.li(1, 0);
        let top = b.label();
        b.place(top).unwrap();
        for k in 0..8 {
            b.load(2, 1, k * 1024);
        }
        b.alui(AluOp::Add, 1, 1, 64);
        b.li(3, 4096);
        b.branch(Cond::Lt, 1, 3, top);
        b.halt();
        let tight = OooConfig {
            rob: 4,
            ..OooConfig::default()
        };
        let wide = OooConfig {
            rob: 128,
            ..OooConfig::default()
        };
        let p = b.build().unwrap();
        let mut a = OooMachine::new(p.clone(), tight);
        let sa = a.run(100_000, usize::MAX, usize::MAX);
        let mut c = OooMachine::new(p, wide);
        let sc = c.run(100_000, usize::MAX, usize::MAX);
        assert!(
            sc.ipc > sa.ipc,
            "bigger ROB must help: {} vs {}",
            sc.ipc,
            sa.ipc
        );
    }
}
