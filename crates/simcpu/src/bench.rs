//! The benchmark registry: one entry per SPEC95-like kernel, with
//! one-call trace extraction.

use std::fmt;

use bustrace::Trace;
use serde::{Deserialize, Serialize};

use crate::kernels::{self, KernelSpec};
use crate::machine::{Machine, MachineConfig};
use crate::ooo::{OooConfig, OooMachine};

/// Which bus tap to collect (paper Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BusKind {
    /// The register-file output port.
    Register,
    /// The data bus to caches/memory.
    Memory,
    /// The address bus to caches/memory (effective virtual addresses,
    /// issue order) — the bus class most of the related work targets.
    Address,
}

impl fmt::Display for BusKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusKind::Register => f.write_str("register"),
            BusKind::Memory => f.write_str("memory"),
            BusKind::Address => f.write_str("address"),
        }
    }
}

/// The SPEC95-like benchmark suite evaluated throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // the variants are benchmark names
pub enum Benchmark {
    Gcc,
    Compress,
    Go,
    Ijpeg,
    Li,
    M88ksim,
    Perl,
    Swim,
    Tomcatv,
    Su2cor,
    Hydro2d,
    Mgrid,
    Applu,
    Turb3d,
    Apsi,
    Fpppp,
    Wave5,
}

impl Benchmark {
    /// Every benchmark, integer suite first.
    pub const ALL: [Benchmark; 17] = [
        Benchmark::Gcc,
        Benchmark::Compress,
        Benchmark::Go,
        Benchmark::Ijpeg,
        Benchmark::Li,
        Benchmark::M88ksim,
        Benchmark::Perl,
        Benchmark::Swim,
        Benchmark::Tomcatv,
        Benchmark::Su2cor,
        Benchmark::Hydro2d,
        Benchmark::Mgrid,
        Benchmark::Applu,
        Benchmark::Turb3d,
        Benchmark::Apsi,
        Benchmark::Fpppp,
        Benchmark::Wave5,
    ];

    /// The SPECint-like kernels.
    pub fn spec_int() -> Vec<Benchmark> {
        Benchmark::ALL
            .iter()
            .copied()
            .filter(|b| !b.is_fp())
            .collect()
    }

    /// The SPECfp-like kernels.
    pub fn spec_fp() -> Vec<Benchmark> {
        Benchmark::ALL
            .iter()
            .copied()
            .filter(|b| b.is_fp())
            .collect()
    }

    /// Whether this is a floating-point benchmark.
    pub fn is_fp(self) -> bool {
        matches!(
            self,
            Benchmark::Swim
                | Benchmark::Tomcatv
                | Benchmark::Su2cor
                | Benchmark::Hydro2d
                | Benchmark::Mgrid
                | Benchmark::Applu
                | Benchmark::Turb3d
                | Benchmark::Apsi
                | Benchmark::Fpppp
                | Benchmark::Wave5
        )
    }

    /// The benchmark's display name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Gcc => "gcc",
            Benchmark::Compress => "compress",
            Benchmark::Go => "go",
            Benchmark::Ijpeg => "ijpeg",
            Benchmark::Li => "li",
            Benchmark::M88ksim => "m88ksim",
            Benchmark::Perl => "perl",
            Benchmark::Swim => "swim",
            Benchmark::Tomcatv => "tomcatv",
            Benchmark::Su2cor => "su2cor",
            Benchmark::Hydro2d => "hydro2d",
            Benchmark::Mgrid => "mgrid",
            Benchmark::Applu => "applu",
            Benchmark::Turb3d => "turb3d",
            Benchmark::Apsi => "apsi",
            Benchmark::Fpppp => "fpppp",
            Benchmark::Wave5 => "wave5",
        }
    }

    /// Looks a benchmark up by name.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL.iter().copied().find(|b| b.name() == name)
    }

    /// Builds the kernel (program + memory image) for a data seed.
    pub fn kernel(self, seed: u64) -> KernelSpec {
        match self {
            Benchmark::Gcc => kernels::gcc(seed),
            Benchmark::Compress => kernels::compress(seed),
            Benchmark::Go => kernels::go(seed),
            Benchmark::Ijpeg => kernels::ijpeg(seed),
            Benchmark::Li => kernels::li(seed),
            Benchmark::M88ksim => kernels::m88ksim(seed),
            Benchmark::Perl => kernels::perl(seed),
            Benchmark::Swim => kernels::swim(seed),
            Benchmark::Tomcatv => kernels::tomcatv(seed),
            Benchmark::Su2cor => kernels::su2cor(seed),
            Benchmark::Hydro2d => kernels::hydro2d(seed),
            Benchmark::Mgrid => kernels::mgrid(seed),
            Benchmark::Applu => kernels::applu(seed),
            Benchmark::Turb3d => kernels::turb3d(seed),
            Benchmark::Apsi => kernels::apsi(seed),
            Benchmark::Fpppp => kernels::fpppp(seed),
            Benchmark::Wave5 => kernels::wave5(seed),
        }
    }

    /// Runs the kernel until `values` words have been observed on the
    /// requested bus, returning exactly that many (deterministic per
    /// seed). Uses the default single-level machine configuration.
    ///
    /// # Panics
    ///
    /// Panics if the kernel fails to produce enough traffic within a
    /// generous instruction budget — which would be a kernel bug.
    pub fn trace(self, bus: BusKind, values: usize, seed: u64) -> Trace {
        self.trace_with(bus, values, seed, MachineConfig::default())
    }

    /// Like [`trace`](Self::trace), but timed by the out-of-order
    /// engine: register-port traffic in issue order, memory traffic in
    /// completion order, with dispatch-width clustering and
    /// branch-bubble gaps.
    ///
    /// # Panics
    ///
    /// Panics if the kernel fails to produce enough traffic within a
    /// generous instruction budget — which would be a kernel bug.
    pub fn trace_ooo(self, bus: BusKind, values: usize, seed: u64, config: OooConfig) -> Trace {
        let _span = busprobe::span("simcpu.bench.trace_ooo");
        let spec = self.kernel(seed);
        let mut machine = OooMachine::new(spec.program, config);
        machine.load_memory(0, &spec.memory);
        let (reg_target, mem_target) = match bus {
            BusKind::Register => (values, 0),
            BusKind::Memory | BusKind::Address => (0, values),
        };
        let budget = (values as u64).saturating_mul(200).max(100_000);
        machine.run(budget, reg_target, mem_target);
        let trace = match bus {
            BusKind::Register => machine.take_register_trace(),
            BusKind::Memory => machine.take_memory_trace(),
            BusKind::Address => machine.take_address_trace(),
        };
        assert!(
            trace.len() >= values,
            "{} produced only {} of {values} {bus} values (ooo)",
            self.name(),
            trace.len()
        );
        trace.slice(0, values)
    }

    /// Like [`trace`](Self::trace), with an explicit machine
    /// configuration (e.g. [`MachineConfig::with_l2`] for a two-level
    /// memory re-timing).
    ///
    /// # Panics
    ///
    /// Panics if the kernel fails to produce enough traffic within a
    /// generous instruction budget — which would be a kernel bug.
    pub fn trace_with(
        self,
        bus: BusKind,
        values: usize,
        seed: u64,
        config: MachineConfig,
    ) -> Trace {
        let _span = busprobe::span("simcpu.bench.trace");
        let spec = self.kernel(seed);
        let mut machine = Machine::new(spec.program, config);
        machine.load_memory(0, &spec.memory);
        // The address bus emits exactly one value per memory event, so
        // it shares the memory-bus collection target.
        let (reg_target, mem_target) = match bus {
            BusKind::Register => (values, 0),
            BusKind::Memory | BusKind::Address => (0, values),
        };
        // Every kernel touches memory at least once per ~40 instructions,
        // and reads registers nearly every instruction.
        let budget = (values as u64).saturating_mul(200).max(100_000);
        machine.run(budget, reg_target, mem_target);
        let trace = match bus {
            BusKind::Register => machine.take_register_trace(),
            BusKind::Memory => machine.take_memory_trace(),
            BusKind::Address => machine.take_address_trace(),
        };
        assert!(
            trace.len() >= values,
            "{} produced only {} of {values} {bus} values",
            self.name(),
            trace.len()
        );
        trace.slice(0, values)
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_partition_the_benchmarks() {
        let int = Benchmark::spec_int();
        let fp = Benchmark::spec_fp();
        assert_eq!(int.len(), 7);
        assert_eq!(fp.len(), 10);
        assert_eq!(int.len() + fp.len(), Benchmark::ALL.len());
        assert!(int.iter().all(|b| !b.is_fp()));
        assert!(fp.iter().all(|b| b.is_fp()));
    }

    #[test]
    fn names_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::from_name("nonesuch"), None);
    }

    #[test]
    fn traces_are_deterministic_and_exact_length() {
        let a = Benchmark::Compress.trace(BusKind::Register, 5_000, 42);
        let b = Benchmark::Compress.trace(BusKind::Register, 5_000, 42);
        let c = Benchmark::Compress.trace(BusKind::Register, 5_000, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 5_000);
    }

    #[test]
    fn every_benchmark_produces_all_buses() {
        for b in Benchmark::ALL {
            let reg = b.trace(BusKind::Register, 2_000, 7);
            let mem = b.trace(BusKind::Memory, 500, 7);
            let addr = b.trace(BusKind::Address, 500, 7);
            assert_eq!(reg.len(), 2_000, "{b}");
            assert_eq!(mem.len(), 500, "{b}");
            assert_eq!(addr.len(), 500, "{b}");
        }
    }

    #[test]
    fn address_traces_carry_region_tags() {
        // The kernels' virtual layout puts region tags in the high
        // halves; the address bus must see them.
        let t = Benchmark::Swim.trace(BusKind::Address, 2_000, 7);
        let tagged = t.iter().filter(|&v| v >> 16 != 0).count();
        assert!(tagged > 1_000, "only {tagged} of 2000 addresses tagged");
    }

    #[test]
    fn l2_config_changes_timing_but_not_values() {
        use bustrace::stats::ValueCensus;
        let flat = Benchmark::Gcc.trace(BusKind::Memory, 2_000, 7);
        let deep =
            Benchmark::Gcc.trace_with(BusKind::Memory, 2_000, 7, crate::MachineConfig::with_l2());
        // Same multiset of values (timing only reorders them)...
        let a = ValueCensus::of(&flat);
        let b = ValueCensus::of(&deep);
        assert_eq!(a.counts(), b.counts());
        // ...but the deeper hierarchy produces a different interleaving.
        assert_ne!(flat, deep);
    }

    #[test]
    fn traces_are_not_degenerate() {
        use bustrace::stats::{repeat_fraction, ValueCensus};
        for b in Benchmark::ALL {
            let t = b.trace(BusKind::Register, 20_000, 11);
            let census = ValueCensus::of(&t);
            assert!(
                census.unique_count() > 8,
                "{b}: only {} unique values",
                census.unique_count()
            );
            let rf = repeat_fraction(&t);
            assert!(rf < 0.98, "{b}: register bus is {rf:.2} repeats");
        }
    }
}
