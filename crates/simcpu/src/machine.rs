//! The functional simulator with bus timing taps.
//!
//! Execution is functional (one instruction per cycle, values computed
//! immediately) with SimpleScalar-style *bus timing generators* layered
//! on top (paper Section 4.1):
//!
//! * every instruction that reads a register drives the read value onto
//!   the **register bus** tap;
//! * every load and store produces a datum on the **memory bus** tap at
//!   `issue_cycle + cache_latency`, so misses overtake and interleave
//!   with later hits exactly as the paper's scheduler queue re-timing
//!   does.
//!
//! Idle bus cycles (the bus holding its previous value) contribute no
//! transitions, so the taps record *driven values only* — the τ/κ counts
//! downstream are identical to a cycle-by-cycle recording with holds.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use bustrace::{Trace, Width};

use crate::cache::{Cache, CacheConfig, CacheHierarchy};
use crate::exec::{self, InstrClass};
use crate::isa::NUM_REGS;
use crate::program::Program;

/// Machine construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Data memory size in 32-bit words (power of two; addresses wrap).
    pub memory_words: usize,
    /// L1 data cache geometry.
    pub cache: CacheConfig,
    /// Optional L2 cache behind the L1. With `None`, L1 misses cost the
    /// L1 config's `miss_latency` directly (the default, matching the
    /// paper's single-level re-timing).
    pub l2: Option<CacheConfig>,
    /// Latency of a miss in every cache level, in cycles (only used
    /// when an L2 is configured).
    pub memory_latency: u64,
}

impl MachineConfig {
    /// A two-level hierarchy: the default L1 backed by a 256 KiB-ish L2
    /// and a 120-cycle memory, for wider re-timing spread on the memory
    /// bus.
    pub fn with_l2() -> Self {
        MachineConfig {
            l2: Some(CacheConfig {
                sets: 1024,
                ways: 4,
                line_words: 16,
                hit_latency: 12,
                miss_latency: 120,
            }),
            memory_latency: 120,
            ..MachineConfig::default()
        }
    }
}

impl Default for MachineConfig {
    /// 64 Ki words (256 KiB) of memory and the default single-level
    /// cache.
    fn default() -> Self {
        MachineConfig {
            memory_words: 1 << 16,
            cache: CacheConfig::default(),
            l2: None,
            memory_latency: CacheConfig::default().miss_latency,
        }
    }
}

/// Why a run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The program executed `halt`.
    Halted,
    /// Both bus-value collection targets were met.
    TargetsMet,
    /// The instruction budget ran out first.
    InstructionLimit,
}

/// Executed-instruction class counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InstrMix {
    /// Integer ALU operations (register and immediate forms, `li`).
    pub alu: u64,
    /// Floating-point operations.
    pub fpu: u64,
    /// Loads.
    pub loads: u64,
    /// Stores.
    pub stores: u64,
    /// Conditional branches (taken or not) and jumps.
    pub branches: u64,
    /// Conditional branches that were taken.
    pub taken: u64,
}

impl InstrMix {
    /// Total classified instructions.
    pub fn total(&self) -> u64 {
        self.alu + self.fpu + self.loads + self.stores + self.branches
    }

    /// Fraction of instructions touching memory.
    pub fn memory_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.loads + self.stores) as f64 / t as f64
        }
    }
}

/// Statistics of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// Instructions executed.
    pub instructions: u64,
    /// Cycles elapsed (equal to instructions in this functional model).
    pub cycles: u64,
    /// Why execution stopped.
    pub stop: StopReason,
    /// Data-cache hit rate over the run.
    pub cache_hit_rate: f64,
    /// Instruction-class counts over the whole machine lifetime.
    pub mix: InstrMix,
}

/// The miniature machine.
///
/// # Example
///
/// ```
/// use simcpu::{AluOp, Machine, MachineConfig, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new();
/// b.li(1, 21);
/// b.alu(AluOp::Add, 2, 1, 1);
/// b.store(2, 0, 100);
/// b.halt();
/// let mut m = Machine::new(b.build()?, MachineConfig::default());
/// m.run(1_000, usize::MAX, usize::MAX);
/// assert_eq!(m.memory()[100], 42);
/// # Ok::<(), simcpu::ProgramError>(())
/// ```
#[derive(Debug)]
pub struct Machine {
    program: Program,
    config: MachineConfig,
    regs: [u32; NUM_REGS],
    pc: usize,
    cycle: u64,
    memory: Vec<u32>,
    cache: CacheHierarchy,
    reg_bus: Vec<u32>,
    /// In-flight memory data, ordered by (ready cycle, issue sequence).
    pending: BinaryHeap<Reverse<(u64, u64, u32)>>,
    mem_seq: u64,
    mem_bus: Vec<u32>,
    /// Effective (virtual) addresses of loads and stores, at issue order
    /// — the memory *address* bus.
    addr_bus: Vec<u32>,
    mix: InstrMix,
    halted: bool,
}

impl Machine {
    /// Creates a machine with zeroed registers and memory.
    ///
    /// # Panics
    ///
    /// Panics if `memory_words` is not a power of two.
    pub fn new(program: Program, config: MachineConfig) -> Self {
        assert!(
            config.memory_words.is_power_of_two(),
            "memory size must be a power of two"
        );
        Machine {
            program,
            config,
            regs: [0; NUM_REGS],
            pc: 0,
            cycle: 0,
            memory: vec![0; config.memory_words],
            cache: CacheHierarchy::new(config.cache, config.l2, config.memory_latency),
            reg_bus: Vec::new(),
            pending: BinaryHeap::new(),
            mem_seq: 0,
            mem_bus: Vec::new(),
            addr_bus: Vec::new(),
            mix: InstrMix::default(),
            halted: false,
        }
    }

    /// Data memory contents.
    pub fn memory(&self) -> &[u32] {
        &self.memory
    }

    /// Overwrites memory starting at `addr` (word address, wrapping).
    pub fn load_memory(&mut self, addr: usize, data: &[u32]) {
        let mask = self.config.memory_words - 1;
        for (i, &w) in data.iter().enumerate() {
            self.memory[(addr + i) & mask] = w;
        }
    }

    /// Current register values.
    pub fn registers(&self) -> &[u32; NUM_REGS] {
        &self.regs
    }

    /// Whether the machine has executed `halt`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// L1 data-cache statistics.
    pub fn cache(&self) -> &Cache {
        self.cache.l1()
    }

    /// The full cache hierarchy.
    pub fn cache_hierarchy(&self) -> &CacheHierarchy {
        &self.cache
    }

    /// Retires every pending memory event whose ready time is in the
    /// past relative to `horizon` (all future events are ready strictly
    /// later, so ordering is final).
    fn drain_ready(&mut self, horizon: u64) {
        while let Some(&Reverse((ready, _, value))) = self.pending.peek() {
            if ready <= horizon {
                self.mem_bus.push(value);
                self.pending.pop();
            } else {
                break;
            }
        }
    }

    /// Executes one instruction. Returns `false` once halted.
    pub fn step(&mut self) -> bool {
        if self.halted {
            return false;
        }
        let Some(&instr) = self.program.instrs().get(self.pc) else {
            self.halted = true;
            return false;
        };
        let mask = self.config.memory_words - 1;
        let out = exec::execute(instr, self.pc, &mut self.regs, &mut self.memory, mask);
        if out.class == InstrClass::Halt {
            self.halted = true;
            return false;
        }
        // Register-bus tap: every operand read drives one value through
        // the register file's output ports.
        for read in out.reads.into_iter().flatten() {
            self.reg_bus.push(read.1);
        }
        self.cycle += 1;
        match out.class {
            InstrClass::Alu => self.mix.alu += 1,
            InstrClass::Fpu => self.mix.fpu += 1,
            InstrClass::Load => self.mix.loads += 1,
            InstrClass::Store => self.mix.stores += 1,
            InstrClass::Branch => {
                self.mix.branches += 1;
                if out.taken {
                    self.mix.taken += 1;
                }
            }
            InstrClass::Halt => unreachable!("handled above"),
        }
        if let Some(m) = out.mem {
            self.addr_bus.push(m.vaddr);
            let addr = (m.vaddr as usize) & mask;
            let latency = if m.is_store {
                self.cache
                    .access(addr as u64)
                    .min(self.config.cache.hit_latency)
            } else {
                self.cache.access(addr as u64)
            };
            self.pending
                .push(Reverse((self.cycle + latency, self.mem_seq, m.value)));
            self.mem_seq += 1;
        }
        self.drain_ready(self.cycle);
        self.pc = out.next_pc;
        true
    }

    /// Runs until `halt`, the instruction budget is exhausted, or both
    /// bus taps have collected at least the requested number of values.
    pub fn run(
        &mut self,
        max_instructions: u64,
        reg_values: usize,
        mem_values: usize,
    ) -> RunSummary {
        let _span = busprobe::span("simcpu.machine.run");
        // Probe bookkeeping happens as before/after deltas so the
        // per-instruction loop carries zero instrumentation cost.
        let probe_base = busprobe::enabled().then(|| self.probe_state());
        let start = self.cycle;
        let mut executed = 0u64;
        let stop = loop {
            if self.reg_bus.len() >= reg_values
                && self.mem_bus.len() + self.pending.len() >= mem_values
            {
                break StopReason::TargetsMet;
            }
            if executed >= max_instructions {
                break StopReason::InstructionLimit;
            }
            if !self.step() {
                break StopReason::Halted;
            }
            executed += 1;
        };
        if let Some(base) = probe_base {
            self.record_probe_deltas(base);
        }
        RunSummary {
            instructions: executed,
            cycles: self.cycle - start,
            stop,
            cache_hit_rate: self.cache.l1().hit_rate(),
            mix: self.mix,
        }
    }

    /// Counter values captured before a run, for delta accounting.
    fn probe_state(&self) -> [u64; 8] {
        let (l2h, l2m) = self
            .cache
            .l2()
            .map_or((0, 0), |l2| (l2.hits(), l2.misses()));
        [
            self.mix.total(),
            self.cache.l1().hits(),
            self.cache.l1().misses(),
            l2h,
            l2m,
            self.reg_bus.len() as u64,
            self.mem_seq,
            self.addr_bus.len() as u64,
        ]
    }

    /// Publishes the difference between now and `base` to the registry.
    fn record_probe_deltas(&self, base: [u64; 8]) {
        let now = self.probe_state();
        let d = |i: usize| now[i] - base[i];
        busprobe::counter("simcpu.machine.instructions").add(d(0));
        busprobe::counter("simcpu.cache.l1.hits").add(d(1));
        busprobe::counter("simcpu.cache.l1.misses").add(d(2));
        if self.cache.l2().is_some() {
            busprobe::counter("simcpu.cache.l2.hits").add(d(3));
            busprobe::counter("simcpu.cache.l2.misses").add(d(4));
        }
        busprobe::counter("simcpu.bus.register.words").add(d(5));
        busprobe::counter("simcpu.bus.memory.words").add(d(6));
        busprobe::counter("simcpu.bus.address.words").add(d(7));
    }

    /// Takes the register-bus trace collected so far.
    pub fn take_register_trace(&mut self) -> Trace {
        let values = std::mem::take(&mut self.reg_bus);
        Trace::from_values(Width::W32, values.into_iter().map(u64::from))
    }

    /// Takes the memory-bus trace collected so far, flushing any
    /// still-pending events in their final order.
    pub fn take_memory_trace(&mut self) -> Trace {
        self.drain_ready(u64::MAX);
        let values = std::mem::take(&mut self.mem_bus);
        Trace::from_values(Width::W32, values.into_iter().map(u64::from))
    }

    /// Takes the memory *address* bus trace: the effective virtual
    /// addresses of loads and stores in issue order. One value per
    /// memory instruction, so it paces with the memory data bus.
    pub fn take_address_trace(&mut self) -> Trace {
        let values = std::mem::take(&mut self.addr_bus);
        Trace::from_values(Width::W32, values.into_iter().map(u64::from))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AluOp, Cond};
    use crate::program::ProgramBuilder;

    fn run_program(b: ProgramBuilder) -> Machine {
        let mut m = Machine::new(b.build().unwrap(), MachineConfig::default());
        m.run(100_000, usize::MAX, usize::MAX);
        m
    }

    #[test]
    fn register_zero_is_hardwired() {
        let mut b = ProgramBuilder::new();
        b.li(0, 77);
        b.alu(AluOp::Add, 1, 0, 0);
        b.store(1, 0, 5);
        b.halt();
        let m = run_program(b);
        assert_eq!(m.memory()[5], 0);
    }

    #[test]
    fn loop_executes_expected_count() {
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.li(1, 0);
        b.li(2, 100);
        b.place(top).unwrap();
        b.alui(AluOp::Add, 1, 1, 1);
        b.branch(Cond::Lt, 1, 2, top);
        b.store(1, 0, 0);
        b.halt();
        let m = run_program(b);
        assert_eq!(m.memory()[0], 100);
        assert!(m.is_halted());
    }

    #[test]
    fn register_bus_records_operand_values_in_port_order() {
        let mut b = ProgramBuilder::new();
        b.li(1, 0xAAAA);
        b.li(2, 0xBBBB);
        b.alu(AluOp::Add, 3, 1, 2); // reads r1 then r2
        b.alui(AluOp::Add, 4, 2, 7); // reads r2 only
        b.halt();
        let mut m = run_program(b);
        let t = m.take_register_trace();
        assert_eq!(t.values(), &[0xAAAA, 0xBBBB, 0xBBBB]);
    }

    #[test]
    fn memory_bus_records_load_and_store_data() {
        let mut b = ProgramBuilder::new();
        b.li(1, 0x1234);
        b.store(1, 0, 10); // store datum 0x1234
        b.load(2, 0, 10); // load returns 0x1234
        b.halt();
        let mut m = run_program(b);
        let t = m.take_memory_trace();
        assert_eq!(t.values(), &[0x1234, 0x1234]);
    }

    #[test]
    fn cache_misses_reorder_memory_bus() {
        // A load that misses (first touch, 24-cycle latency) is overtaken
        // by a store issued right after it (hit latency 2).
        let mut b = ProgramBuilder::new();
        b.li(1, 0xAAAA_0001);
        b.li(2, 4096); // a cold line
        b.load(3, 2, 0); // miss: data 0 arrives late
        b.store(1, 0, 0); // store: arrives early
        b.halt();
        let mut m = run_program(b);
        let t = m.take_memory_trace();
        assert_eq!(t.values(), &[0xAAAA_0001, 0]);
    }

    #[test]
    fn same_latency_events_keep_issue_order() {
        let mut b = ProgramBuilder::new();
        b.li(1, 1);
        b.li(2, 2);
        b.store(1, 0, 0);
        b.store(2, 0, 1);
        b.halt();
        let mut m = run_program(b);
        assert_eq!(m.take_memory_trace().values(), &[1, 2]);
    }

    #[test]
    fn address_bus_carries_virtual_addresses() {
        let mut b = ProgramBuilder::new();
        b.li(1, 0xAABB_0010);
        b.li(2, 7);
        b.store(2, 1, 2); // virtual 0xAABB_0012, physical wraps
        b.load(3, 1, 2);
        b.halt();
        let mut m = run_program(b);
        let t = m.take_address_trace();
        assert_eq!(t.values(), &[0xAABB_0012, 0xAABB_0012]);
        assert_eq!(
            m.memory()[0x12],
            7,
            "physical index is the wrapped low bits"
        );
    }

    #[test]
    fn memory_addresses_wrap() {
        let mut b = ProgramBuilder::new();
        b.li(1, u32::MAX);
        b.li(2, 7);
        b.store(2, 1, 1); // address -1 + 1 = 0 after wrap
        b.halt();
        let m = run_program(b);
        assert_eq!(m.memory()[0], 7);
    }

    #[test]
    fn run_stops_at_instruction_limit() {
        let mut b = ProgramBuilder::new();
        let forever = b.label();
        b.place(forever).unwrap();
        b.alui(AluOp::Add, 1, 1, 1);
        b.jump(forever);
        let mut m = Machine::new(b.build().unwrap(), MachineConfig::default());
        let s = m.run(500, usize::MAX, usize::MAX);
        assert_eq!(s.stop, StopReason::InstructionLimit);
        assert_eq!(s.instructions, 500);
    }

    #[test]
    fn run_stops_when_targets_met() {
        let mut b = ProgramBuilder::new();
        let forever = b.label();
        b.li(2, 0xF0);
        b.place(forever).unwrap();
        b.alui(AluOp::Add, 1, 1, 1);
        b.store(1, 0, 0);
        b.jump(forever);
        let mut m = Machine::new(b.build().unwrap(), MachineConfig::default());
        let s = m.run(1_000_000, 50, 50);
        assert_eq!(s.stop, StopReason::TargetsMet);
        assert!(m.take_register_trace().len() >= 50);
        assert!(m.take_memory_trace().len() >= 50);
    }

    #[test]
    fn instruction_mix_is_counted() {
        let mut b = ProgramBuilder::new();
        let skip = b.label();
        b.li(1, 5); // alu
        b.alu(AluOp::Add, 2, 1, 1); // alu
        b.fpu(crate::FpuOp::Fadd, 3, 1, 1); // fpu
        b.load(4, 0, 100); // load
        b.store(4, 0, 101); // store
        b.branch(Cond::Eq, 0, 0, skip); // branch, taken
        b.li(5, 9); // skipped
        b.place(skip).unwrap();
        b.branch(Cond::Ne, 0, 0, skip); // branch, not taken
        b.halt();
        let mut m = Machine::new(b.build().unwrap(), MachineConfig::default());
        let s = m.run(100, usize::MAX, usize::MAX);
        assert_eq!(s.mix.alu, 2);
        assert_eq!(s.mix.fpu, 1);
        assert_eq!(s.mix.loads, 1);
        assert_eq!(s.mix.stores, 1);
        assert_eq!(s.mix.branches, 2);
        assert_eq!(s.mix.taken, 1);
        assert_eq!(s.mix.total(), 7);
        assert!((s.mix.memory_fraction() - 2.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn falling_off_the_end_halts() {
        let mut b = ProgramBuilder::new();
        b.li(1, 1);
        let mut m = Machine::new(b.build().unwrap(), MachineConfig::default());
        let s = m.run(100, usize::MAX, usize::MAX);
        assert_eq!(s.stop, StopReason::Halted);
        assert!(m.is_halted());
    }

    #[test]
    fn load_memory_places_data() {
        let b = {
            let mut b = ProgramBuilder::new();
            b.load(1, 0, 1000);
            b.store(1, 0, 2000);
            b.halt();
            b
        };
        let mut m = Machine::new(b.build().unwrap(), MachineConfig::default());
        m.load_memory(1000, &[0xDEAD_BEEF]);
        m.run(100, usize::MAX, usize::MAX);
        assert_eq!(m.memory()[2000], 0xDEAD_BEEF);
    }
}
