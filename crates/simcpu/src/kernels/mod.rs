//! SPEC95-like synthetic kernels (the paper's workload suite).
//!
//! Each kernel is a real program for the simulated machine, written to
//! reproduce the *bus-value statistics* of its namesake's class rather
//! than its computation: pointer-chasing and branchy small-integer
//! traffic for the SPECint programs, stencil/stride/butterfly
//! floating-point traffic for the SPECfp programs. All kernels run
//! forever (the machine stops them when enough bus values are
//! collected) and perturb their data each outer pass so the traffic
//! never degenerates into a fixed point.
//!
//! Memory layout conventions: data regions live between word address
//! `0x0100` and the top of the 64 Ki-word memory; region constants are
//! private to each kernel.

mod fp;
mod int;

pub use fp::*;
pub use int::*;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::program::Program;

/// Size of the machine memory the kernels are laid out for, in words.
pub const MEMORY_WORDS: usize = 1 << 16;

/// A kernel: a program plus its initial memory image.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    /// The benchmark name this kernel stands in for.
    pub name: &'static str,
    /// The program (an infinite loop).
    pub program: Program,
    /// Initial memory image of [`MEMORY_WORDS`] words.
    pub memory: Vec<u32>,
}

/// Creates the deterministic RNG for a kernel's data, mixing the kernel
/// name into the seed so sibling kernels see uncorrelated data.
pub(crate) fn kernel_rng(name: &str, seed: u64) -> SmallRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(seed ^ h)
}

/// A zeroed memory image.
pub(crate) fn blank_memory() -> Vec<u32> {
    vec![0; MEMORY_WORDS]
}

/// Fills `mem[start..start+len]` from a generator.
pub(crate) fn fill_with(
    mem: &mut [u32],
    start: usize,
    len: usize,
    rng: &mut SmallRng,
    mut f: impl FnMut(&mut SmallRng) -> u32,
) {
    for w in &mut mem[start..start + len] {
        *w = f(rng);
    }
}

/// Fills a region with f32 bit patterns drawn uniformly from
/// `lo..hi`.
pub(crate) fn fill_f32(
    mem: &mut [u32],
    start: usize,
    len: usize,
    rng: &mut SmallRng,
    lo: f32,
    hi: f32,
) {
    fill_with(mem, start, len, rng, |r| {
        (lo + (hi - lo) * r.gen::<f32>()).to_bits()
    });
}

/// Forms a virtual word address: a region-distinct high half over a
/// low-half offset.
///
/// Kernel data structures live in the low 64 Ki words of machine memory
/// (effective addresses wrap), but the *pointer values* circulating
/// through registers and buses carry realistic high bits — different
/// regions get different high halves, as a real process's heap, stack
/// and globals do. This is what makes interleaved address traffic
/// expensive on an un-encoded bus, matching the paper's traces.
pub(crate) const fn va(tag: u32, offset: usize) -> u32 {
    (tag << 16) | offset as u32
}

/// Fills a region with a random cyclic permutation of pointers to
/// `entry_words`-sized records within the region itself — the classic
/// pointer-chasing working set. Entry `i`'s first word holds the
/// *virtual* address (high half `tag`) of the next record; the cycle
/// visits every record.
pub(crate) fn fill_pointer_cycle(
    mem: &mut [u32],
    tag: u32,
    start: usize,
    entries: usize,
    entry_words: usize,
    rng: &mut SmallRng,
) {
    let mut order: Vec<usize> = (0..entries).collect();
    // Fisher-Yates.
    for i in (1..entries).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    for k in 0..entries {
        let from = start + order[k] * entry_words;
        let to = start + order[(k + 1) % entries] * entry_words;
        mem[from] = va(tag, to);
    }
}

/// Convenience: builds a program, panicking on kernel-authoring errors
/// (kernels are static code; errors here are bugs, not user input).
pub(crate) fn build(b: crate::program::ProgramBuilder) -> Program {
    b.build().expect("kernel program must assemble")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_rngs_differ_by_name() {
        let mut a = kernel_rng("gcc", 1);
        let mut b = kernel_rng("perl", 1);
        let xs: Vec<u32> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn pointer_cycle_visits_every_entry() {
        let mut mem = vec![0u32; 4096];
        let mut rng = kernel_rng("t", 7);
        fill_pointer_cycle(&mut mem, 0x2BAD, 1024, 64, 4, &mut rng);
        let mut at = 1024usize;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            assert!(seen.insert(at), "cycle revisited {at} early");
            let ptr = mem[at];
            assert_eq!(ptr >> 16, 0x2BAD, "pointers carry the virtual tag");
            at = (ptr & 0xFFFF) as usize;
            assert!((1024..1024 + 64 * 4).contains(&at));
            assert_eq!((at - 1024) % 4, 0, "pointers are record-aligned");
        }
        assert_eq!(at, 1024, "cycle closes");
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn va_combines_tag_and_offset() {
        assert_eq!(va(0x10AB, 0x1234), 0x10AB_1234);
    }

    #[test]
    fn fill_f32_stays_in_range() {
        let mut mem = vec![0u32; 128];
        let mut rng = kernel_rng("f", 3);
        fill_f32(&mut mem, 0, 128, &mut rng, 0.5, 2.0);
        for &w in &mem[..128] {
            let x = f32::from_bits(w);
            assert!((0.5..2.0).contains(&x));
        }
    }
}
