//! The SPECfp-like kernels: stencils, butterflies, gathers, and dense
//! register-resident arithmetic on IEEE-754 single-precision data.
//!
//! Floating-point bus traffic has a characteristic shape: sign and
//! exponent bits are nearly constant within an array while mantissa bits
//! churn, and different arrays live at different magnitudes. Each kernel
//! perturbs its fields every outer pass (XOR-ing fresh low mantissa
//! bits) so relaxation never converges to constant traffic.

use rand::Rng;

use crate::isa::{AluOp, Cond, FpuOp};
use crate::program::ProgramBuilder;

use super::{blank_memory, build, fill_f32, fill_with, kernel_rng, va, KernelSpec};

/// Emits the shared outer-pass perturbation: pick a pseudo-random cell
/// in `[base, base+len)` and XOR noise into its low mantissa bits.
/// Clobbers r28–r29 and advances the LCG in r30.
fn perturb(b: &mut ProgramBuilder, tag: u32, base: usize, len: usize) {
    assert!(
        len.is_power_of_two(),
        "perturbation region must be a power of two"
    );
    b.alui(AluOp::Mul, 30, 30, 1664525);
    b.alui(AluOp::Add, 30, 30, 1013904223);
    b.alui(AluOp::Srl, 28, 30, 16);
    b.alui(AluOp::And, 28, 28, (len - 1) as u32);
    b.alui(AluOp::Add, 28, 28, va(tag, base));
    b.load(29, 28, 0);
    b.alui(AluOp::Srl, 27, 30, 24);
    b.alui(AluOp::And, 27, 27, 0xFF); // low mantissa noise
    b.alu(AluOp::Xor, 29, 29, 27);
    b.store(29, 28, 0);
}

/// `swim`-like: shallow-water 2D stencil, row-major.
///
/// Smooth fields relaxed with neighbor differences: unit-stride loads,
/// stable exponents, churning mantissas — the trace the paper singles
/// out as coding-friendly ("for SWIM, the transcoder begins to save
/// energy as short as 3mm").
pub fn swim(seed: u64) -> KernelSpec {
    const U: usize = 0x1000; // 4096-word grid (64 x 64)
    const P: usize = 0x3000;
    const N: usize = 4096;
    let mut rng = kernel_rng("swim", seed);
    let mut memory = blank_memory();
    fill_f32(&mut memory, U, N, &mut rng, 0.9, 1.1);
    // Pressure over a nearly-flat ocean: a handful of distinct levels,
    // so the load stream has the strong value locality that made swim
    // the paper's friendliest trace.
    let levels: Vec<u32> = (0..16)
        .map(|i| (1.0 + 0.004 * i as f32).to_bits())
        .collect();
    fill_with(&mut memory, P, N, &mut rng, |r| {
        levels[r.gen_range(0..levels.len())]
    });

    let mut b = ProgramBuilder::new();
    b.li(30, 0x5157_0001);
    b.li(20, 0.25f32.to_bits()); // c1
    b.li(21, 0.1f32.to_bits()); // c2
    let outer = b.label();
    b.place(outer).unwrap();
    b.li(1, 64); // skip first row
    let inner = b.label();
    b.place(inner).unwrap();
    b.alui(AluOp::Add, 2, 1, va(0x5100, U));
    b.alui(AluOp::Add, 3, 1, va(0x52EE, P));
    b.load(4, 3, 1); // P east
    b.load(5, 3, -1); // P west
    b.load(6, 2, 64); // U south
    b.load(7, 2, -64); // U north
    b.load(8, 2, 0); // U center
    b.fpu(FpuOp::Fsub, 9, 4, 5); // dP
    b.fpu(FpuOp::Fmul, 9, 9, 20);
    b.fpu(FpuOp::Fadd, 10, 6, 7); // U neighbor sum
    b.fpu(FpuOp::Fmul, 10, 10, 21);
    b.fpu(FpuOp::Fadd, 11, 9, 10);
    b.fpu(FpuOp::Fmul, 11, 11, 21); // damp
    b.fpu(FpuOp::Fadd, 12, 8, 11);
    b.store(12, 2, 0);
    b.alui(AluOp::Add, 1, 1, 1);
    b.li(13, (N - 64) as u32);
    b.branch(Cond::Lt, 1, 13, inner);
    perturb(&mut b, 0x5100, U, N);
    perturb(&mut b, 0x52EE, P, N);
    b.jump(outer);
    KernelSpec {
        name: "swim",
        program: build(b),
        memory,
    }
}

/// `tomcatv`-like: mesh relaxation over two coordinate grids.
pub fn tomcatv(seed: u64) -> KernelSpec {
    const X: usize = 0x1000;
    const Y: usize = 0x2000;
    const N: usize = 4096;
    let mut rng = kernel_rng("tomcatv", seed);
    let mut memory = blank_memory();
    fill_f32(&mut memory, X, N, &mut rng, 1.0, 2.0);
    fill_f32(&mut memory, Y, N, &mut rng, 10.0, 20.0);

    let mut b = ProgramBuilder::new();
    b.li(30, 0x70C4_0001);
    b.li(20, 0.05f32.to_bits());
    b.li(21, 2.0f32.to_bits());
    let outer = b.label();
    b.place(outer).unwrap();
    b.li(1, 1);
    let inner = b.label();
    b.place(inner).unwrap();
    b.alui(AluOp::Add, 2, 1, va(0x70C4, X));
    b.alui(AluOp::Add, 3, 1, va(0x71AA, Y));
    b.load(4, 2, -1);
    b.load(5, 2, 0);
    b.load(6, 2, 1);
    b.load(7, 3, 0);
    b.fpu(FpuOp::Fadd, 8, 4, 6);
    b.fpu(FpuOp::Fmul, 9, 5, 21);
    b.fpu(FpuOp::Fsub, 8, 8, 9); // residual rx
    b.fpu(FpuOp::Fmul, 8, 8, 20);
    b.fpu(FpuOp::Fadd, 10, 5, 8);
    b.store(10, 2, 0);
    // y relaxation pulls toward the x field: y' = y/2 + x, which keeps
    // the y grid bounded away from zero (no denormal collapse).
    b.fpu(FpuOp::Fdiv, 11, 7, 21);
    b.fpu(FpuOp::Fadd, 11, 11, 5);
    b.store(11, 3, 0);
    b.alui(AluOp::Add, 1, 1, 1);
    b.li(12, (N - 1) as u32);
    b.branch(Cond::Lt, 1, 12, inner);
    perturb(&mut b, 0x70C4, X, N);
    perturb(&mut b, 0x71AA, Y, N);
    b.jump(outer);
    KernelSpec {
        name: "tomcatv",
        program: build(b),
        memory,
    }
}

/// `su2cor`-like: complex multiply-accumulate over "gauge link" pairs.
pub fn su2cor(seed: u64) -> KernelSpec {
    const LINKS: usize = 0x1000; // pairs (re, im)
    const OUT: usize = 0x3000; // correlator outputs
    const N: usize = 4096;
    let mut rng = kernel_rng("su2cor", seed);
    let mut memory = blank_memory();
    fill_f32(&mut memory, LINKS, N, &mut rng, -1.0, 1.0);

    let mut b = ProgramBuilder::new();
    b.li(30, 0x5u32);
    b.li(20, 0.5f32.to_bits());
    let outer = b.label();
    b.place(outer).unwrap();
    b.li(1, 0);
    b.li(10, 0); // acc re
    b.li(11, 0); // acc im
    let inner = b.label();
    b.place(inner).unwrap();
    b.alui(AluOp::Add, 2, 1, va(0x5570, LINKS));
    b.load(3, 2, 0); // a re
    b.load(4, 2, 1); // a im
    b.load(5, 2, 2); // b re
    b.load(6, 2, 3); // b im
    b.fpu(FpuOp::Fmul, 7, 3, 5);
    b.fpu(FpuOp::Fmul, 8, 4, 6);
    b.fpu(FpuOp::Fsub, 7, 7, 8); // re = ac - bd
    b.fpu(FpuOp::Fmul, 8, 3, 6);
    b.fpu(FpuOp::Fmul, 9, 4, 5);
    b.fpu(FpuOp::Fadd, 8, 8, 9); // im = ad + bc
    b.fpu(FpuOp::Fmul, 10, 10, 20); // decay the accumulators
    b.fpu(FpuOp::Fadd, 10, 10, 7);
    b.fpu(FpuOp::Fmul, 11, 11, 20);
    b.fpu(FpuOp::Fadd, 11, 11, 8);
    // Correlator products go to a separate output region; the links
    // themselves stay put, so the products remain bounded by |a||b| <= 1.
    b.alui(AluOp::Add, 13, 1, va(0x560B, OUT));
    b.store(7, 13, 0);
    b.store(8, 13, 1);
    b.alui(AluOp::Add, 1, 1, 4);
    b.li(12, (N - 4) as u32);
    b.branch(Cond::Lt, 1, 12, inner);
    perturb(&mut b, 0x5570, LINKS, N);
    b.jump(outer);
    KernelSpec {
        name: "su2cor",
        program: build(b),
        memory,
    }
}

/// `hydro2d`-like: hydrodynamics stencil walked column-major
/// (stride-64 inner loop), so the memory bus sees large-stride traffic.
pub fn hydro2d(seed: u64) -> KernelSpec {
    const RHO: usize = 0x1000;
    const VEL: usize = 0x3000;
    const N: usize = 4096;
    const DIM: usize = 64;
    let mut rng = kernel_rng("hydro2d", seed);
    let mut memory = blank_memory();
    // Density in a few quantized bands (stratified flow) for value
    // locality; velocity field free-form.
    let bands: Vec<u32> = (0..12).map(|i| (0.6 + 0.08 * i as f32).to_bits()).collect();
    fill_with(&mut memory, RHO, N, &mut rng, |r| {
        bands[r.gen_range(0..bands.len())]
    });
    fill_f32(&mut memory, VEL, N, &mut rng, -0.1, 0.1);

    let mut b = ProgramBuilder::new();
    b.li(30, 0x42);
    b.li(20, 0.2f32.to_bits());
    let outer = b.label();
    b.place(outer).unwrap();
    b.li(1, DIM as u32); // column-major index, skip first column
    let inner = b.label();
    b.place(inner).unwrap();
    b.alui(AluOp::Add, 2, 1, va(0x4849, RHO));
    b.alui(AluOp::Add, 3, 1, va(0x4950, VEL));
    b.load(4, 2, -(DIM as i32));
    b.load(5, 2, 0);
    b.load(6, 2, DIM as i32);
    b.load(7, 3, 0);
    b.fpu(FpuOp::Fadd, 8, 4, 6);
    b.fpu(FpuOp::Fsub, 8, 8, 5);
    b.fpu(FpuOp::Fmul, 8, 8, 20);
    b.fpu(FpuOp::Fadd, 9, 7, 8);
    b.store(9, 3, 0);
    b.alui(AluOp::Add, 1, 1, DIM as u32);
    b.li(10, (N - DIM) as u32);
    let no_wrap = b.label();
    b.branch(Cond::Lt, 1, 10, no_wrap);
    // Next column.
    b.alui(AluOp::And, 1, 1, (DIM - 1) as u32);
    b.alui(AluOp::Add, 1, 1, 1);
    b.li(11, DIM as u32);
    let done_pass = b.label();
    b.branch(Cond::Ge, 1, 11, done_pass);
    b.place(no_wrap).unwrap();
    b.branch(Cond::Ltu, 0, 1, inner); // always taken (r1 > 0)
    b.place(done_pass).unwrap();
    perturb(&mut b, 0x4849, RHO, N);
    b.li(1, DIM as u32);
    b.jump(outer);
    KernelSpec {
        name: "hydro2d",
        program: build(b),
        memory,
    }
}

/// `mgrid`-like: multigrid smoothing at power-of-two strides.
///
/// The inner stride cycles 1, 2, 4, …, 32 across passes — a feast for
/// the strided predictors.
pub fn mgrid(seed: u64) -> KernelSpec {
    const V: usize = 0x1000;
    const N: usize = 8192;
    let mut rng = kernel_rng("mgrid", seed);
    let mut memory = blank_memory();
    fill_f32(&mut memory, V, N, &mut rng, 0.9, 1.1);

    let mut b = ProgramBuilder::new();
    b.li(30, 0x9d);
    // Coefficients sum to 1.02: diffusion with a whisper of growth, so
    // the grid neither flattens to a constant nor overflows on any
    // reachable horizon.
    b.li(20, 0.26f32.to_bits());
    b.li(21, 0.5f32.to_bits());
    let outer = b.label();
    b.place(outer).unwrap();
    b.li(15, 1); // stride for this level
    let level = b.label();
    b.place(level).unwrap();
    b.alu(AluOp::Add, 1, 15, 0); // i = stride
    let inner = b.label();
    b.place(inner).unwrap();
    b.alui(AluOp::Add, 2, 1, va(0x3A61, V));
    b.alu(AluOp::Sub, 3, 2, 15);
    b.alu(AluOp::Add, 4, 2, 15);
    b.load(5, 3, 0);
    b.load(6, 2, 0);
    b.load(7, 4, 0);
    b.fpu(FpuOp::Fadd, 8, 5, 7);
    b.fpu(FpuOp::Fmul, 8, 8, 20);
    b.fpu(FpuOp::Fmul, 9, 6, 21);
    b.fpu(FpuOp::Fadd, 9, 9, 8);
    b.store(9, 2, 0);
    b.alu(AluOp::Add, 1, 1, 15);
    b.li(10, (N - 32) as u32);
    b.branch(Cond::Ltu, 1, 10, inner);
    b.alui(AluOp::Sll, 15, 15, 1); // next level: double the stride
    b.li(11, 64);
    b.branch(Cond::Ltu, 15, 11, level);
    perturb(&mut b, 0x3A61, V, N);
    b.jump(outer);
    KernelSpec {
        name: "mgrid",
        program: build(b),
        memory,
    }
}

/// `applu`-like: banded 5-point block solves.
pub fn applu(seed: u64) -> KernelSpec {
    const A: usize = 0x1000;
    const N: usize = 8192; // blocks of 5 plus slack
    let mut rng = kernel_rng("applu", seed);
    let mut memory = blank_memory();
    fill_f32(&mut memory, A, N, &mut rng, 0.1, 1.0);

    let mut b = ProgramBuilder::new();
    b.li(30, 0xAA);
    for (i, c) in [0.2f32, -0.4, 0.9, -0.4, 0.2].iter().enumerate() {
        b.li(20 + i as u8, c.to_bits());
    }
    let outer = b.label();
    b.place(outer).unwrap();
    b.li(1, 0);
    let inner = b.label();
    b.place(inner).unwrap();
    b.alui(AluOp::Add, 2, 1, va(0x2C11, A));
    b.li(10, 0);
    for k in 0..5i32 {
        b.load(3, 2, k);
        b.fpu(FpuOp::Fmul, 4, 3, 20 + k as u8);
        b.fpu(FpuOp::Fadd, 10, 10, 4);
    }
    b.store(10, 2, 2); // write the pivot element
    b.alui(AluOp::Add, 1, 1, 5);
    b.li(5, (N - 5) as u32);
    b.branch(Cond::Ltu, 1, 5, inner);
    perturb(&mut b, 0x2C11, A, N);
    b.jump(outer);
    KernelSpec {
        name: "applu",
        program: build(b),
        memory,
    }
}

/// `turb3d`-like: FFT butterflies at cycling spans.
pub fn turb3d(seed: u64) -> KernelSpec {
    const X: usize = 0x1000;
    const N: usize = 4096;
    let mut rng = kernel_rng("turb3d", seed);
    let mut memory = blank_memory();
    fill_f32(&mut memory, X, N, &mut rng, -1.0, 1.0);

    let mut b = ProgramBuilder::new();
    b.li(30, 0x7b);
    b.li(20, std::f32::consts::FRAC_1_SQRT_2.to_bits()); // twiddle scale
    let outer = b.label();
    b.place(outer).unwrap();
    b.li(15, 1); // span
    let stage = b.label();
    b.place(stage).unwrap();
    b.li(1, 0);
    let pairs = b.label();
    b.place(pairs).unwrap();
    b.alui(AluOp::Add, 2, 1, va(0x7B30, X));
    b.alu(AluOp::Add, 3, 2, 15);
    b.load(4, 2, 0); // a
    b.load(5, 3, 0); // b
    b.fpu(FpuOp::Fadd, 6, 4, 5);
    b.fpu(FpuOp::Fsub, 7, 4, 5);
    b.fpu(FpuOp::Fmul, 6, 6, 20);
    b.fpu(FpuOp::Fmul, 7, 7, 20);
    b.store(6, 2, 0);
    b.store(7, 3, 0);
    b.alui(AluOp::Add, 1, 1, 1);
    b.li(8, (N / 2) as u32);
    b.branch(Cond::Ltu, 1, 8, pairs);
    b.alui(AluOp::Sll, 15, 15, 1);
    b.li(9, 64);
    b.branch(Cond::Ltu, 15, 9, stage);
    perturb(&mut b, 0x7B30, X, N);
    b.jump(outer);
    KernelSpec {
        name: "turb3d",
        program: build(b),
        memory,
    }
}

/// `apsi`-like: weather fields at very different magnitudes combined
/// into a diagnostic array — the bus sees several distinct exponent
/// bands interleaved.
pub fn apsi(seed: u64) -> KernelSpec {
    // Bases are staggered by a quarter-line multiple (as real allocators
    // pad arrays) so the four unit-stride streams do not all collide in
    // the same cache sets.
    const T: usize = 0x1000; // temperature ~ 300
    const P: usize = 0x2040; // pressure ~ 1e5
    const Q: usize = 0x3080; // moisture ~ 1e-3
    const OUT: usize = 0x40C0;
    const N: usize = 4096;
    let mut rng = kernel_rng("apsi", seed);
    let mut memory = blank_memory();
    fill_f32(&mut memory, T, N, &mut rng, 250.0, 310.0);
    fill_f32(&mut memory, P, N, &mut rng, 9.0e4, 1.1e5);
    fill_f32(&mut memory, Q, N, &mut rng, 1.0e-4, 2.0e-3);

    let mut b = ProgramBuilder::new();
    b.li(30, 0xA1);
    b.li(20, 0.001f32.to_bits());
    b.li(21, 1000.0f32.to_bits());
    let outer = b.label();
    b.place(outer).unwrap();
    b.li(1, 0);
    let inner = b.label();
    b.place(inner).unwrap();
    b.alui(AluOp::Add, 2, 1, T as u32);
    b.alui(AluOp::Add, 3, 1, va(0x52EE, P));
    b.alui(AluOp::Add, 4, 1, Q as u32);
    b.load(5, 2, 0);
    b.load(6, 3, 0);
    b.load(7, 4, 0);
    b.fpu(FpuOp::Fmul, 8, 6, 20); // pressure scaled down
    b.fpu(FpuOp::Fmul, 9, 7, 21); // moisture scaled up
    b.fpu(FpuOp::Fadd, 10, 5, 8);
    b.fpu(FpuOp::Fadd, 10, 10, 9);
    b.alui(AluOp::Add, 11, 1, va(0x2077, OUT));
    b.store(10, 11, 0);
    b.alui(AluOp::Add, 1, 1, 1);
    b.li(12, N as u32);
    b.branch(Cond::Ltu, 1, 12, inner);
    perturb(&mut b, 0x1D40, T, N);
    perturb(&mut b, 0x1F66, Q, N);
    b.jump(outer);
    KernelSpec {
        name: "apsi",
        program: build(b),
        memory,
    }
}

/// `fpppp`-like: huge basic blocks of register-resident arithmetic with
/// sparse memory traffic (quantum chemistry two-electron integrals).
pub fn fpppp(seed: u64) -> KernelSpec {
    const G: usize = 0x1000;
    const N: usize = 2048;
    let mut rng = kernel_rng("fpppp", seed);
    let mut memory = blank_memory();
    fill_f32(&mut memory, G, N, &mut rng, 0.5, 1.5);

    let mut b = ProgramBuilder::new();
    b.li(30, 0xF4);
    // Exponential-moving-average coefficients: every stage is a convex
    // combination, so the whole register chain is bounded by the input
    // range no matter how long it runs.
    b.li(20, 0.875f32.to_bits());
    b.li(21, 0.125f32.to_bits());
    b.li(22, 0.5f32.to_bits());
    // Seed the working registers.
    for r in 10..18u8 {
        b.li(r, (1.0f32 + f32::from(r) * 0.125).to_bits());
    }
    let outer = b.label();
    b.place(outer).unwrap();
    b.li(1, 0);
    let inner = b.label();
    b.place(inner).unwrap();
    b.alui(AluOp::Add, 2, 1, va(0x6F22, G));
    b.load(3, 2, 0); // one load feeds a long register chain
                     // A cascade of EMA stages: r10 follows the input, r11 follows r10...
    b.fpu(FpuOp::Fmul, 10, 10, 20);
    b.fpu(FpuOp::Fmul, 9, 3, 21);
    b.fpu(FpuOp::Fadd, 10, 10, 9);
    for stage in 11..=15u8 {
        b.fpu(FpuOp::Fmul, stage, stage, 20);
        b.fpu(FpuOp::Fmul, 9, stage - 1, 21);
        b.fpu(FpuOp::Fadd, stage, stage, 9);
    }
    b.fpu(FpuOp::Fsub, 16, 10, 15); // band-pass: fast minus slow
    b.fpu(FpuOp::Fmul, 16, 16, 21); // (kept small; feeds the bus only)
                                    // Writeback is a convex mix of the input and its fast EMA, so the
                                    // memory feedback loop has unit gain: no blow-up, no collapse.
    b.fpu(FpuOp::Fadd, 17, 3, 10);
    b.fpu(FpuOp::Fmul, 17, 17, 22);
    b.store(17, 2, 0); // one store per block
    b.alui(AluOp::Add, 1, 1, 1);
    b.li(4, N as u32);
    b.branch(Cond::Ltu, 1, 4, inner);
    perturb(&mut b, 0x6F22, G, N);
    b.jump(outer);
    KernelSpec {
        name: "fpppp",
        program: build(b),
        memory,
    }
}

/// `wave5`-like: particle-in-cell gather/update/scatter with indexed
/// (pseudo-random) field accesses.
pub fn wave5(seed: u64) -> KernelSpec {
    const IDX: usize = 0x1000; // particle -> grid cell index
    const VELS: usize = 0x2000;
    const FIELD: usize = 0x4000;
    const CURRENT: usize = 0x6000; // deposited current (separate from E)
    const NPART: usize = 4096;
    const NGRID: usize = 8192;
    let mut rng = kernel_rng("wave5", seed);
    let mut memory = blank_memory();
    fill_with(&mut memory, IDX, NPART, &mut rng, |r| {
        r.gen_range(0..NGRID as u32)
    });
    fill_f32(&mut memory, VELS, NPART, &mut rng, -0.5, 0.5);
    fill_f32(&mut memory, FIELD, NGRID, &mut rng, -1.0, 1.0);

    let mut b = ProgramBuilder::new();
    b.li(30, 0x3A);
    b.li(20, 0.01f32.to_bits());
    b.li(21, 0.995f32.to_bits());
    let outer = b.label();
    b.place(outer).unwrap();
    b.li(1, 0);
    let per_particle = b.label();
    b.place(per_particle).unwrap();
    b.alui(AluOp::Add, 2, 1, va(0x3210, IDX));
    b.load(3, 2, 0); // cell index
    b.alui(AluOp::Add, 4, 3, va(0x4AFE, FIELD));
    b.load(5, 4, 0); // field at the particle (gather)
    b.alui(AluOp::Add, 6, 1, va(0x3B44, VELS));
    b.load(7, 6, 0); // velocity
    b.fpu(FpuOp::Fmul, 8, 5, 20); // dv = E * dt
    b.fpu(FpuOp::Fmul, 7, 7, 21); // drag
    b.fpu(FpuOp::Fadd, 7, 7, 8);
    b.store(7, 6, 0);
    // Deposit into a separate current grid; overwriting E itself would
    // collapse the field to ~1% of the velocities within a few passes.
    b.fpu(FpuOp::Fmul, 9, 7, 20);
    b.alui(AluOp::Add, 12, 3, va(0x4C00, CURRENT));
    b.store(9, 12, 0); // scatter
                       // Move the particle: a small pseudo-random walk of its cell index.
    b.alui(AluOp::Mul, 10, 3, 5);
    b.alui(AluOp::Add, 10, 10, 1);
    b.alui(AluOp::And, 10, 10, (NGRID - 1) as u32);
    b.store(10, 2, 0);
    b.alui(AluOp::Add, 1, 1, 1);
    b.li(11, NPART as u32);
    b.branch(Cond::Ltu, 1, 11, per_particle);
    perturb(&mut b, 0x4AFE, FIELD, NGRID);
    b.jump(outer);
    KernelSpec {
        name: "wave5",
        program: build(b),
        memory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachineConfig};

    fn machine_for(spec: &KernelSpec) -> Machine {
        let mut m = Machine::new(spec.program.clone(), MachineConfig::default());
        m.load_memory(0, &spec.memory);
        m
    }

    fn smoke(spec: KernelSpec) {
        let mut m = machine_for(&spec);
        let summary = m.run(300_000, 5_000, 1_000);
        assert!(
            m.take_register_trace().len() >= 5_000,
            "{}: too few register values ({:?})",
            spec.name,
            summary.stop
        );
        assert!(
            m.take_memory_trace().len() >= 1_000,
            "{}: too few memory values ({:?})",
            spec.name,
            summary.stop
        );
        assert!(!m.is_halted(), "{}: kernels must loop forever", spec.name);
    }

    #[test]
    fn swim_smoke() {
        smoke(swim(1));
    }

    #[test]
    fn tomcatv_smoke() {
        smoke(tomcatv(1));
    }

    #[test]
    fn su2cor_smoke() {
        smoke(su2cor(1));
    }

    #[test]
    fn hydro2d_smoke() {
        smoke(hydro2d(1));
    }

    #[test]
    fn mgrid_smoke() {
        smoke(mgrid(1));
    }

    #[test]
    fn applu_smoke() {
        smoke(applu(1));
    }

    #[test]
    fn turb3d_smoke() {
        smoke(turb3d(1));
    }

    #[test]
    fn apsi_smoke() {
        smoke(apsi(1));
    }

    #[test]
    fn fpppp_smoke() {
        smoke(fpppp(1));
    }

    #[test]
    fn wave5_smoke() {
        smoke(wave5(1));
    }

    #[test]
    fn fp_fields_stay_finite_over_long_runs() {
        for spec in [swim(2), tomcatv(2), su2cor(2), mgrid(2), fpppp(2)] {
            let name = spec.name;
            let mut m = machine_for(&spec);
            m.run(2_000_000, usize::MAX, usize::MAX);
            let t = m.take_memory_trace();
            let finite = t
                .iter()
                .filter(|&v| {
                    let x = f32::from_bits(v as u32);
                    x.is_finite()
                })
                .count();
            let frac = finite as f64 / t.len().max(1) as f64;
            assert!(
                frac > 0.95,
                "{name}: only {frac:.2} of memory traffic finite"
            );
        }
    }

    #[test]
    fn swim_exponents_are_stable() {
        let spec = swim(3);
        let mut m = machine_for(&spec);
        m.run(500_000, usize::MAX, 20_000);
        let t = m.take_memory_trace();
        let mut exps: Vec<u32> = t.iter().map(|v| (v as u32) >> 23 & 0xFF).collect();
        exps.sort_unstable();
        exps.dedup();
        assert!(exps.len() <= 24, "saw {} exponent values", exps.len());
    }

    #[test]
    fn apsi_interleaves_exponent_bands() {
        let spec = apsi(3);
        let mut m = machine_for(&spec);
        m.run(500_000, usize::MAX, 20_000);
        let t = m.take_memory_trace();
        // Temperature (~2^8), pressure (~2^16), moisture (~2^-10) bands:
        // expect a wide exponent spread, unlike swim.
        let mut exps: Vec<u32> = t.iter().map(|v| (v as u32) >> 23 & 0xFF).collect();
        exps.sort_unstable();
        exps.dedup();
        assert!(exps.len() >= 6, "saw only {} exponent values", exps.len());
        let spread = exps.last().unwrap() - exps.first().unwrap();
        assert!(spread >= 20, "exponent bands too close: spread {spread}");
    }
}
