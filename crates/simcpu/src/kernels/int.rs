//! The SPECint-like kernels: pointer chasing, hashing, table dispatch,
//! and small-integer array scans.

use rand::Rng;

use crate::isa::{AluOp, Cond};
use crate::program::ProgramBuilder;

use super::{blank_memory, build, fill_pointer_cycle, fill_with, kernel_rng, va, KernelSpec};

/// `gcc`-like: pointer chasing over heap records with branchy hashing.
///
/// Compilers walk linked IR structures: loads dominated by pointers and
/// mixed-magnitude payloads, with data-dependent branches and occasional
/// writebacks. Unique-value population is large (pointers), but tags are
/// heavily reused.
pub fn gcc(seed: u64) -> KernelSpec {
    const NODES: usize = 0x1000; // 1024 records of 4 words
    const COUNT: usize = 1024;
    let mut rng = kernel_rng("gcc", seed);
    let mut memory = blank_memory();
    fill_pointer_cycle(&mut memory, 0x2F81, NODES, COUNT, 4, &mut rng);
    for i in 0..COUNT {
        let base = NODES + i * 4;
        // Payload: half small constants (tags/opcodes), half wide values.
        memory[base + 1] = if rng.gen_bool(0.5) {
            rng.gen_range(0..64)
        } else {
            rng.gen::<u32>()
        };
        memory[base + 2] = rng.gen_range(0..8); // flags
    }

    let mut b = ProgramBuilder::new();
    // r1: node ptr, r2: inner counter, r6: hash, r30: LCG state.
    b.li(1, va(0x2F81, NODES));
    b.li(30, 0x1234_5678);
    let outer = b.label();
    b.place(outer).unwrap();
    b.li(2, 0);
    let inner = b.label();
    b.place(inner).unwrap();
    b.load(3, 1, 0); // next pointer
    b.load(4, 1, 1); // payload
    b.load(5, 1, 2); // flags
    b.alui(AluOp::Mul, 6, 6, 31);
    b.alu(AluOp::Add, 6, 6, 4); // hash = hash*31 + payload
    b.alui(AluOp::And, 7, 5, 1);
    let no_store = b.label();
    b.branch(Cond::Eq, 7, 0, no_store);
    b.store(6, 1, 3); // flagged nodes record the running hash
    b.place(no_store).unwrap();
    b.alu(AluOp::Add, 1, 3, 0); // follow pointer
    b.alui(AluOp::Add, 2, 2, 1);
    b.li(8, 512);
    b.branch(Cond::Lt, 2, 8, inner);
    // Outer pass: perturb one payload so the hash stream keeps moving.
    b.alui(AluOp::Mul, 30, 30, 1664525);
    b.alui(AluOp::Add, 30, 30, 1013904223);
    b.alui(AluOp::Srl, 9, 30, 22); // 10-bit node index
    b.alui(AluOp::Sll, 9, 9, 2);
    b.alui(AluOp::Add, 9, 9, va(0x2F81, NODES));
    b.store(30, 9, 1);
    b.jump(outer);
    KernelSpec {
        name: "gcc",
        program: build(b),
        memory,
    }
}

/// `compress`-like: byte-stream hashing against a code table.
///
/// LZW-style compressors stream bytes (values 0–255) and hit a hash
/// table: memory traffic is small values plus table entries with strong
/// short-term reuse.
pub fn compress(seed: u64) -> KernelSpec {
    const TEXT: usize = 0x1000; // 8 Ki "bytes" (one per word)
    const TEXT_LEN: usize = 0x2000;
    const TABLE: usize = 0x4000; // 4 Ki entries
    let mut rng = kernel_rng("compress", seed);
    let mut memory = blank_memory();
    // English-ish byte skew: a few characters dominate.
    fill_with(&mut memory, TEXT, TEXT_LEN, &mut rng, |r| {
        if r.gen_bool(0.6) {
            101 + r.gen_range(0..16) // "common letters"
        } else {
            r.gen_range(0..256)
        }
    });

    let mut b = ProgramBuilder::new();
    // r1: text index, r4: hash, r10: hit counter.
    let outer = b.label();
    b.place(outer).unwrap();
    b.li(1, 0);
    let inner = b.label();
    b.place(inner).unwrap();
    b.alui(AluOp::Add, 2, 1, va(0x11A0, TEXT));
    b.load(3, 2, 0); // byte
    b.alui(AluOp::Mul, 4, 4, 13);
    b.alu(AluOp::Add, 4, 4, 3);
    b.alui(AluOp::And, 5, 4, 0xFFF);
    b.alui(AluOp::Add, 5, 5, va(0x6B3D, TABLE));
    b.load(6, 5, 0); // table probe
    let miss = b.label();
    b.branch(Cond::Ne, 6, 3, miss);
    b.alui(AluOp::Add, 10, 10, 1); // hit
    let done = b.label();
    b.jump(done);
    b.place(miss).unwrap();
    b.store(3, 5, 0); // install
    b.place(done).unwrap();
    b.alui(AluOp::Add, 1, 1, 1);
    b.li(7, TEXT_LEN as u32);
    b.branch(Cond::Lt, 1, 7, inner);
    b.jump(outer);
    KernelSpec {
        name: "compress",
        program: build(b),
        memory,
    }
}

/// `go`-like: board scanning with tiny stone values.
///
/// Game engines scan small-valued position arrays; the bus sees long
/// streams drawn from {0, 1, 2} and small neighbor sums — extreme value
/// locality.
pub fn go(seed: u64) -> KernelSpec {
    const BOARD: usize = 0x1000;
    const SIZE: usize = 1024;
    const INFLUENCE: usize = 0x2000;
    let mut rng = kernel_rng("go", seed);
    let mut memory = blank_memory();
    fill_with(&mut memory, BOARD, SIZE, &mut rng, |r| r.gen_range(0..3));

    let mut b = ProgramBuilder::new();
    // r1: position, r30: LCG.
    b.li(30, 0xBEEF);
    let outer = b.label();
    b.place(outer).unwrap();
    b.li(1, 1);
    let inner = b.label();
    b.place(inner).unwrap();
    b.alui(AluOp::Add, 2, 1, va(0x10AB, BOARD));
    b.load(3, 2, -1);
    b.load(4, 2, 0);
    b.load(5, 2, 1);
    b.alu(AluOp::Add, 6, 3, 5); // neighbor sum
    b.alu(AluOp::Add, 6, 6, 4);
    b.alui(AluOp::Add, 7, 1, va(0x7F3C, INFLUENCE));
    b.store(6, 7, 0);
    b.alui(AluOp::Add, 1, 1, 1);
    b.li(8, (SIZE - 1) as u32);
    b.branch(Cond::Lt, 1, 8, inner);
    // Play a "move": flip one random point between empty/black/white.
    b.alui(AluOp::Mul, 30, 30, 1664525);
    b.alui(AluOp::Add, 30, 30, 1013904223);
    b.alui(AluOp::Srl, 9, 30, 20);
    b.alui(AluOp::And, 9, 9, (SIZE - 1) as u32);
    b.alui(AluOp::Add, 9, 9, va(0x10AB, BOARD));
    b.alui(AluOp::Srl, 10, 30, 30); // 0..3
    b.store(10, 9, 0);
    b.jump(outer);
    KernelSpec {
        name: "go",
        program: build(b),
        memory,
    }
}

/// `ijpeg`-like: 8-wide block transforms of pixel data.
///
/// Image codecs stream 8-pixel groups through coefficient
/// multiply-accumulate: strided loads of byte-range values, products of
/// moderate magnitude, strided stores.
pub fn ijpeg(seed: u64) -> KernelSpec {
    const PIXELS: usize = 0x1000;
    const NPIX: usize = 0x2000;
    const COEFF: usize = 0x800;
    const OUT: usize = 0x4000;
    let mut rng = kernel_rng("ijpeg", seed);
    let mut memory = blank_memory();
    // Smooth image: neighboring pixels correlate.
    let mut level = 128i32;
    fill_with(&mut memory, PIXELS, NPIX, &mut rng, |r| {
        level += r.gen_range(-9..=9);
        level = level.clamp(0, 255);
        level as u32
    });
    for (i, c) in [3u32, 5, 7, 9, 11, 13, 15, 17].iter().enumerate() {
        memory[COEFF + i] = *c;
    }

    let mut b = ProgramBuilder::new();
    // r1: block base.
    let outer = b.label();
    b.place(outer).unwrap();
    b.li(1, 0);
    let blocks = b.label();
    b.place(blocks).unwrap();
    b.li(10, 0); // acc
    b.alui(AluOp::Add, 2, 1, va(0x402A, PIXELS));
    b.li(3, va(0x0D50, COEFF));
    for k in 0..8 {
        b.load(4, 2, k); // pixel
        b.load(5, 3, k); // coefficient
        b.alu(AluOp::Mul, 6, 4, 5);
        b.alu(AluOp::Add, 10, 10, 6);
    }
    b.alui(AluOp::Srl, 10, 10, 3);
    b.alui(AluOp::Srl, 7, 1, 3);
    b.alui(AluOp::Add, 7, 7, va(0x5E11, OUT));
    b.store(10, 7, 0);
    b.alui(AluOp::Add, 1, 1, 8);
    b.li(8, NPIX as u32);
    b.branch(Cond::Lt, 1, 8, blocks);
    b.jump(outer);
    KernelSpec {
        name: "ijpeg",
        program: build(b),
        memory,
    }
}

/// `li`-like: tagged cons-cell interpretation.
///
/// A Lisp heap is records of (tag, car, cdr): the tag stream reuses a
/// handful of tiny values, cdr pointers chase through the heap, and the
/// accumulator sees small integers — the strongest value locality of the
/// integer suite.
pub fn li(seed: u64) -> KernelSpec {
    const CELLS: usize = 0x1000; // 1024 cells of 4 words (tag, car, cdr, pad)
    const COUNT: usize = 1024;
    let mut rng = kernel_rng("li", seed);
    let mut memory = blank_memory();
    fill_pointer_cycle(&mut memory, 0x2BAD, CELLS, COUNT, 4, &mut rng);
    // fill_pointer_cycle put the next pointer at word 0; move the cycle
    // to the cdr slot (word 2) and set tags/cars.
    for i in 0..COUNT {
        let base = CELLS + i * 4;
        memory[base + 2] = memory[base];
        memory[base] = rng.gen_range(0..5); // tag
        memory[base + 1] = rng.gen_range(0..100); // small fixnum car
    }

    let mut b = ProgramBuilder::new();
    // r1: cell ptr, r10: accumulator.
    b.li(1, va(0x2BAD, CELLS));
    let eval = b.label();
    b.place(eval).unwrap();
    b.load(2, 1, 0); // tag
    b.load(3, 1, 2); // cdr
    b.li(4, 0);
    let not_fixnum = b.label();
    b.branch(Cond::Ne, 2, 4, not_fixnum);
    b.load(5, 1, 1); // car
    b.alu(AluOp::Add, 10, 10, 5);
    b.place(not_fixnum).unwrap();
    b.li(4, 3);
    let not_builtin = b.label();
    b.branch(Cond::Ne, 2, 4, not_builtin);
    b.alui(AluOp::And, 10, 10, 0xFFFF); // builtin "truncate"
    b.store(10, 1, 1);
    b.place(not_builtin).unwrap();
    b.alu(AluOp::Add, 1, 3, 0); // follow cdr
    b.jump(eval);
    KernelSpec {
        name: "li",
        program: build(b),
        memory,
    }
}

/// `m88ksim`-like: instruction fetch/decode/dispatch simulation.
///
/// A CPU simulator's own traffic: wide random "instruction" words get
/// sliced into small fields (opcodes, register numbers) and a simulated
/// register file sees register-sized values with heavy reuse.
pub fn m88ksim(seed: u64) -> KernelSpec {
    const IMEM: usize = 0x1000;
    const ILEN: usize = 0x2000;
    const SIMREGS: usize = 0x100; // 32 simulated registers
    let mut rng = kernel_rng("m88ksim", seed);
    let mut memory = blank_memory();
    fill_with(&mut memory, IMEM, ILEN, &mut rng, |r| r.gen());
    fill_with(&mut memory, SIMREGS, 32, &mut rng, |r| {
        r.gen_range(0..0x1_0000)
    });

    let mut b = ProgramBuilder::new();
    // r1: simulated pc.
    let outer = b.label();
    b.place(outer).unwrap();
    b.li(1, 0);
    let fetch = b.label();
    b.place(fetch).unwrap();
    b.alui(AluOp::Add, 2, 1, va(0x44F0, IMEM));
    b.load(3, 2, 0); // instruction word
    b.alui(AluOp::Srl, 4, 3, 26); // opcode
    b.alui(AluOp::Srl, 5, 3, 21);
    b.alui(AluOp::And, 5, 5, 31); // rs
    b.alui(AluOp::Srl, 6, 3, 16);
    b.alui(AluOp::And, 6, 6, 31); // rt
    b.alui(AluOp::And, 7, 3, 0xFFFF); // imm16
    b.alui(AluOp::Add, 8, 5, va(0x7FFF, SIMREGS));
    b.load(9, 8, 0); // simregs[rs]
    b.alui(AluOp::And, 11, 4, 1);
    let alt = b.label();
    b.branch(Cond::Ne, 11, 0, alt);
    b.alu(AluOp::Add, 12, 9, 7);
    let writeback = b.label();
    b.jump(writeback);
    b.place(alt).unwrap();
    b.alu(AluOp::Xor, 12, 9, 7);
    b.place(writeback).unwrap();
    b.alui(AluOp::Add, 13, 6, va(0x7FFF, SIMREGS));
    b.store(12, 13, 0);
    b.alui(AluOp::Add, 1, 1, 1);
    b.li(14, ILEN as u32);
    b.branch(Cond::Lt, 1, 14, fetch);
    b.jump(outer);
    KernelSpec {
        name: "m88ksim",
        program: build(b),
        memory,
    }
}

/// `perl`-like: string hashing and bucket probing.
///
/// Interpreters hash short strings into bucket tables: character-range
/// loads, multiplicative hash values, and bucket-pointer reuse.
pub fn perl(seed: u64) -> KernelSpec {
    const STRINGS: usize = 0x1000; // 512 strings x 16 chars
    const NSTR: usize = 512;
    const BUCKETS: usize = 0x4000; // 1024 buckets x 2 words (hash, count)
    let mut rng = kernel_rng("perl", seed);
    let mut memory = blank_memory();
    fill_with(&mut memory, STRINGS, NSTR * 16, &mut rng, |r| {
        97 + r.gen_range(0..26)
    });

    let mut b = ProgramBuilder::new();
    // r1: string index, r2: char cursor, r4: hash.
    let outer = b.label();
    b.place(outer).unwrap();
    b.li(1, 0);
    let per_string = b.label();
    b.place(per_string).unwrap();
    b.alui(AluOp::Sll, 2, 1, 4);
    b.alui(AluOp::Add, 2, 2, va(0x31C0, STRINGS));
    b.li(4, 5381);
    for k in 0..16 {
        b.load(5, 2, k);
        b.alui(AluOp::Mul, 4, 4, 33);
        b.alu(AluOp::Xor, 4, 4, 5);
    }
    b.alui(AluOp::Srl, 6, 4, 6);
    b.alui(AluOp::And, 6, 6, 0x3FF);
    b.alui(AluOp::Sll, 6, 6, 1);
    b.alui(AluOp::Add, 6, 6, va(0x6DB6, BUCKETS));
    b.load(7, 6, 0); // stored hash
    let insert = b.label();
    b.branch(Cond::Ne, 7, 4, insert);
    b.load(8, 6, 1); // bump count on match
    b.alui(AluOp::Add, 8, 8, 1);
    b.store(8, 6, 1);
    let next = b.label();
    b.jump(next);
    b.place(insert).unwrap();
    b.store(4, 6, 0);
    b.place(next).unwrap();
    b.alui(AluOp::Add, 1, 1, 1);
    b.li(9, NSTR as u32);
    b.branch(Cond::Lt, 1, 9, per_string);
    b.jump(outer);
    KernelSpec {
        name: "perl",
        program: build(b),
        memory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachineConfig};

    fn smoke(spec: KernelSpec) {
        let mut m = Machine::new(spec.program, MachineConfig::default());
        m.load_memory(0, &spec.memory);
        let summary = m.run(200_000, 5_000, 500);
        assert!(
            m.take_register_trace().len() >= 5_000,
            "{}: too few register values ({:?})",
            spec.name,
            summary.stop
        );
        assert!(
            m.take_memory_trace().len() >= 500,
            "{}: too few memory values ({:?})",
            spec.name,
            summary.stop
        );
        assert!(!m.is_halted(), "{}: kernels must loop forever", spec.name);
    }

    #[test]
    fn gcc_smoke() {
        smoke(gcc(1));
    }

    #[test]
    fn compress_smoke() {
        smoke(compress(1));
    }

    #[test]
    fn go_smoke() {
        smoke(go(1));
    }

    #[test]
    fn ijpeg_smoke() {
        smoke(ijpeg(1));
    }

    #[test]
    fn li_smoke() {
        smoke(li(1));
    }

    #[test]
    fn m88ksim_smoke() {
        smoke(m88ksim(1));
    }

    #[test]
    fn perl_smoke() {
        smoke(perl(1));
    }

    #[test]
    fn go_board_values_stay_small_on_the_memory_bus() {
        let spec = go(3);
        let mut m = Machine::new(spec.program, MachineConfig::default());
        m.load_memory(0, &spec.memory);
        m.run(100_000, 0, 2_000);
        let t = m.take_memory_trace();
        assert!(t.iter().all(|v| v < 16), "go traffic must be tiny values");
    }

    #[test]
    fn li_tags_dominate_register_bus() {
        use bustrace::stats::ValueCensus;
        let spec = li(3);
        let mut m = Machine::new(spec.program, MachineConfig::default());
        m.load_memory(0, &spec.memory);
        m.run(400_000, 20_000, 0);
        let census = ValueCensus::of(&m.take_register_trace());
        // Hot tags and small fixnums take a solid share of the port
        // traffic even though cell pointers make up the long tail.
        assert!(
            census.coverage(16) > 0.25,
            "coverage {}",
            census.coverage(16)
        );
        assert!(census.unique_count() > 500, "pointer tail missing");
    }
}
