//! The instruction set of the miniature machine.
//!
//! A small load/store RISC with 32 general registers of 32 bits.
//! Register 0 is hardwired to zero. Floating-point operations interpret
//! register bits as IEEE-754 single precision, so FP data flows over the
//! same 32-bit buses the coding study observes — matching how the paper's
//! SPECfp traffic reaches the register and memory buses.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A register index in `0..32`. Register 0 always reads as zero and
/// ignores writes.
pub type Reg = u8;

/// Number of general registers.
pub const NUM_REGS: usize = 32;

/// Integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low 32 bits).
    Mul,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (by `rhs & 31`).
    Sll,
    /// Logical shift right (by `rhs & 31`).
    Srl,
}

impl AluOp {
    /// Applies the operation.
    #[inline]
    pub fn apply(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Srl => a.wrapping_shr(b & 31),
        }
    }
}

/// Single-precision floating-point operations on register bit patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FpuOp {
    /// Addition.
    Fadd,
    /// Subtraction.
    Fsub,
    /// Multiplication.
    Fmul,
    /// Division (IEEE semantics; no traps).
    Fdiv,
}

impl FpuOp {
    /// Applies the operation to the raw bit patterns.
    #[inline]
    pub fn apply(self, a: u32, b: u32) -> u32 {
        let (x, y) = (f32::from_bits(a), f32::from_bits(b));
        let r = match self {
            FpuOp::Fadd => x + y,
            FpuOp::Fsub => x - y,
            FpuOp::Fmul => x * y,
            FpuOp::Fdiv => x / y,
        };
        r.to_bits()
    }
}

/// Branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
}

impl Cond {
    /// Evaluates the condition.
    #[inline]
    pub fn holds(self, a: u32, b: u32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i32) < (b as i32),
            Cond::Ge => (a as i32) >= (b as i32),
            Cond::Ltu => a < b,
        }
    }
}

/// One machine instruction. Branch and jump targets are absolute
/// instruction indices, resolved from labels by
/// [`ProgramBuilder`](crate::ProgramBuilder).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Instr {
    /// `rd <- imm`.
    Li {
        /// Destination register.
        rd: Reg,
        /// Immediate value.
        imm: u32,
    },
    /// `rd <- op(rs1, rs2)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source (drives the register bus).
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// `rd <- op(rs1, imm)`.
    AluI {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register (drives the register bus).
        rs1: Reg,
        /// Immediate operand.
        imm: u32,
    },
    /// `rd <- fop(rs1, rs2)` on f32 bit patterns.
    Fpu {
        /// Operation.
        op: FpuOp,
        /// Destination register.
        rd: Reg,
        /// First source (drives the register bus).
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// `rd <- mem[rs1 + offset]` (word addressed).
    Load {
        /// Destination register.
        rd: Reg,
        /// Base address register (drives the register bus).
        base: Reg,
        /// Word offset.
        offset: i32,
    },
    /// `mem[rs1 + offset] <- rs2` (word addressed).
    Store {
        /// Base address register.
        base: Reg,
        /// Word offset.
        offset: i32,
        /// Data register (drives the register bus — the datum is what the
        /// memory bus will carry).
        src: Reg,
    },
    /// Conditional branch to an absolute instruction index.
    Branch {
        /// Condition to test.
        cond: Cond,
        /// Left operand (drives the register bus).
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
        /// Absolute target instruction index.
        target: u32,
    },
    /// Unconditional jump to an absolute instruction index.
    Jump {
        /// Absolute target instruction index.
        target: u32,
    },
    /// Stops the machine.
    Halt,
}

impl Instr {
    /// The registers this instruction reads, in port order (up to two).
    ///
    /// The paper samples the register file's output-port traffic; every
    /// operand read appears as one value on the register bus, first
    /// source first.
    pub fn register_reads(&self) -> [Option<Reg>; 2] {
        match *self {
            Instr::Li { .. } | Instr::Jump { .. } | Instr::Halt => [None, None],
            Instr::AluI { rs1, .. } => [Some(rs1), None],
            Instr::Alu { rs1, rs2, .. }
            | Instr::Fpu { rs1, rs2, .. }
            | Instr::Branch { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Instr::Load { base, .. } => [Some(base), None],
            // Stores read the datum and the address base.
            Instr::Store { base, src, .. } => [Some(src), Some(base)],
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Li { rd, imm } => write!(f, "li r{rd}, {imm:#x}"),
            Instr::Alu { op, rd, rs1, rs2 } => write!(f, "{op:?} r{rd}, r{rs1}, r{rs2}"),
            Instr::AluI { op, rd, rs1, imm } => write!(f, "{op:?}i r{rd}, r{rs1}, {imm:#x}"),
            Instr::Fpu { op, rd, rs1, rs2 } => write!(f, "{op:?} r{rd}, r{rs1}, r{rs2}"),
            Instr::Load { rd, base, offset } => write!(f, "lw r{rd}, {offset}(r{base})"),
            Instr::Store { base, offset, src } => write!(f, "sw r{src}, {offset}(r{base})"),
            Instr::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                write!(f, "b{cond:?} r{rs1}, r{rs2}, @{target}")
            }
            Instr::Jump { target } => write!(f, "j @{target}"),
            Instr::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_ops_wrap() {
        assert_eq!(AluOp::Add.apply(u32::MAX, 1), 0);
        assert_eq!(AluOp::Sub.apply(0, 1), u32::MAX);
        assert_eq!(AluOp::Mul.apply(0x1_0000, 0x1_0000), 0);
        assert_eq!(AluOp::Sll.apply(1, 33), 2, "shift amount masked to 5 bits");
        assert_eq!(AluOp::Srl.apply(0x8000_0000, 31), 1);
    }

    #[test]
    fn fpu_ops_operate_on_bits() {
        let a = 1.5f32.to_bits();
        let b = 2.0f32.to_bits();
        assert_eq!(f32::from_bits(FpuOp::Fadd.apply(a, b)), 3.5);
        assert_eq!(f32::from_bits(FpuOp::Fmul.apply(a, b)), 3.0);
        assert_eq!(f32::from_bits(FpuOp::Fdiv.apply(b, a)), 2.0 / 1.5);
        // Division by zero follows IEEE, no panic.
        assert!(f32::from_bits(FpuOp::Fdiv.apply(b, 0)).is_infinite());
    }

    #[test]
    fn conditions() {
        assert!(Cond::Eq.holds(3, 3));
        assert!(Cond::Ne.holds(3, 4));
        assert!(Cond::Lt.holds(u32::MAX, 0), "-1 < 0 signed");
        assert!(!Cond::Ltu.holds(u32::MAX, 0), "max > 0 unsigned");
        assert!(Cond::Ge.holds(0, u32::MAX), "0 >= -1 signed");
    }

    #[test]
    fn register_reads_in_port_order() {
        assert_eq!(Instr::Li { rd: 1, imm: 0 }.register_reads(), [None, None]);
        assert_eq!(
            Instr::Alu {
                op: AluOp::Add,
                rd: 1,
                rs1: 2,
                rs2: 3
            }
            .register_reads(),
            [Some(2), Some(3)]
        );
        assert_eq!(
            Instr::Store {
                base: 4,
                offset: 0,
                src: 9
            }
            .register_reads(),
            [Some(9), Some(4)]
        );
        assert_eq!(
            Instr::Load {
                rd: 1,
                base: 6,
                offset: 0
            }
            .register_reads(),
            [Some(6), None]
        );
        assert_eq!(Instr::Halt.register_reads(), [None, None]);
    }

    #[test]
    fn display_is_readable() {
        let i = Instr::Load {
            rd: 3,
            base: 7,
            offset: -2,
        };
        assert_eq!(i.to_string(), "lw r3, -2(r7)");
    }
}
