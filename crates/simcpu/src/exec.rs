//! The shared functional executor: one instruction's architectural
//! effects, independent of any timing model.
//!
//! Both machines — the in-order functional [`Machine`](crate::Machine)
//! and the out-of-order timing model ([`OooMachine`](crate::OooMachine))
//! — execute through this single implementation, so their architectural
//! state can never diverge; they differ only in *when* each effect is
//! scheduled onto the buses.

use crate::isa::{Instr, Reg, NUM_REGS};

/// The class an executed instruction belongs to (for timing and mix
/// accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum InstrClass {
    Alu,
    Fpu,
    Load,
    Store,
    Branch,
    Halt,
}

/// A memory effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MemEffect {
    /// Full 32-bit effective (virtual) address.
    pub vaddr: u32,
    /// Datum: the loaded value for loads, the stored value for stores.
    pub value: u32,
    /// Whether this is a store.
    pub is_store: bool,
}

/// Everything one instruction did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ExecOutcome {
    /// Register reads in port order: `(register, value read)`.
    pub reads: [Option<(Reg, u32)>; 2],
    /// Register written, with the value.
    pub write: Option<(Reg, u32)>,
    /// Memory effect, if any.
    pub mem: Option<MemEffect>,
    /// The next program counter.
    pub next_pc: usize,
    /// Whether a branch or jump redirected the PC.
    pub taken: bool,
    /// Instruction class.
    pub class: InstrClass,
}

#[inline]
fn read_reg(regs: &[u32; NUM_REGS], r: Reg) -> u32 {
    if r == 0 {
        0
    } else {
        regs[usize::from(r)]
    }
}

#[inline]
fn write_reg(regs: &mut [u32; NUM_REGS], r: Reg, v: u32) {
    if r != 0 {
        regs[usize::from(r)] = v;
    }
}

/// Executes one instruction architecturally: updates registers and
/// memory, returns the full effect record. `mem_mask` is
/// `memory.len() - 1` (power-of-two memory).
pub(crate) fn execute(
    instr: Instr,
    pc: usize,
    regs: &mut [u32; NUM_REGS],
    memory: &mut [u32],
    mem_mask: usize,
) -> ExecOutcome {
    let mut out = ExecOutcome {
        reads: [None, None],
        write: None,
        mem: None,
        next_pc: pc + 1,
        taken: false,
        class: InstrClass::Alu,
    };
    for (slot, src) in out.reads.iter_mut().zip(instr.register_reads()) {
        if let Some(r) = src {
            *slot = Some((r, read_reg(regs, r)));
        }
    }
    match instr {
        Instr::Li { rd, imm } => {
            write_reg(regs, rd, imm);
            out.write = Some((rd, imm));
        }
        Instr::Alu { op, rd, rs1, rs2 } => {
            let v = op.apply(read_reg(regs, rs1), read_reg(regs, rs2));
            write_reg(regs, rd, v);
            out.write = Some((rd, v));
        }
        Instr::AluI { op, rd, rs1, imm } => {
            let v = op.apply(read_reg(regs, rs1), imm);
            write_reg(regs, rd, v);
            out.write = Some((rd, v));
        }
        Instr::Fpu { op, rd, rs1, rs2 } => {
            out.class = InstrClass::Fpu;
            let v = op.apply(read_reg(regs, rs1), read_reg(regs, rs2));
            write_reg(regs, rd, v);
            out.write = Some((rd, v));
        }
        Instr::Load { rd, base, offset } => {
            out.class = InstrClass::Load;
            let vaddr = (i64::from(read_reg(regs, base)) + i64::from(offset)) as u32;
            let value = memory[(vaddr as usize) & mem_mask];
            write_reg(regs, rd, value);
            out.write = Some((rd, value));
            out.mem = Some(MemEffect {
                vaddr,
                value,
                is_store: false,
            });
        }
        Instr::Store { base, offset, src } => {
            out.class = InstrClass::Store;
            let vaddr = (i64::from(read_reg(regs, base)) + i64::from(offset)) as u32;
            let value = read_reg(regs, src);
            memory[(vaddr as usize) & mem_mask] = value;
            out.mem = Some(MemEffect {
                vaddr,
                value,
                is_store: true,
            });
        }
        Instr::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            out.class = InstrClass::Branch;
            if cond.holds(read_reg(regs, rs1), read_reg(regs, rs2)) {
                out.next_pc = target as usize;
                out.taken = true;
            }
        }
        Instr::Jump { target } => {
            out.class = InstrClass::Branch;
            out.next_pc = target as usize;
            out.taken = true;
        }
        Instr::Halt => {
            out.class = InstrClass::Halt;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{AluOp, Cond};

    fn setup() -> ([u32; NUM_REGS], Vec<u32>) {
        let mut regs = [0u32; NUM_REGS];
        regs[1] = 10;
        regs[2] = 3;
        (regs, vec![0u32; 64])
    }

    #[test]
    fn alu_records_reads_and_write() {
        let (mut regs, mut mem) = setup();
        let o = execute(
            Instr::Alu {
                op: AluOp::Sub,
                rd: 3,
                rs1: 1,
                rs2: 2,
            },
            5,
            &mut regs,
            &mut mem,
            63,
        );
        assert_eq!(o.reads, [Some((1, 10)), Some((2, 3))]);
        assert_eq!(o.write, Some((3, 7)));
        assert_eq!(regs[3], 7);
        assert_eq!(o.next_pc, 6);
        assert_eq!(o.class, InstrClass::Alu);
    }

    #[test]
    fn store_and_load_round_memory() {
        let (mut regs, mut mem) = setup();
        let s = execute(
            Instr::Store {
                base: 2,
                offset: 1,
                src: 1,
            },
            0,
            &mut regs,
            &mut mem,
            63,
        );
        assert_eq!(
            s.mem,
            Some(MemEffect {
                vaddr: 4,
                value: 10,
                is_store: true
            })
        );
        assert_eq!(mem[4], 10);
        let l = execute(
            Instr::Load {
                rd: 5,
                base: 2,
                offset: 1,
            },
            1,
            &mut regs,
            &mut mem,
            63,
        );
        assert_eq!(
            l.mem,
            Some(MemEffect {
                vaddr: 4,
                value: 10,
                is_store: false
            })
        );
        assert_eq!(regs[5], 10);
        assert_eq!(l.class, InstrClass::Load);
    }

    #[test]
    fn branch_taken_and_not() {
        let (mut regs, mut mem) = setup();
        let t = execute(
            Instr::Branch {
                cond: Cond::Lt,
                rs1: 2,
                rs2: 1,
                target: 40,
            },
            7,
            &mut regs,
            &mut mem,
            63,
        );
        assert!(t.taken);
        assert_eq!(t.next_pc, 40);
        let n = execute(
            Instr::Branch {
                cond: Cond::Lt,
                rs1: 1,
                rs2: 2,
                target: 40,
            },
            7,
            &mut regs,
            &mut mem,
            63,
        );
        assert!(!n.taken);
        assert_eq!(n.next_pc, 8);
    }

    #[test]
    fn register_zero_stays_zero() {
        let (mut regs, mut mem) = setup();
        execute(Instr::Li { rd: 0, imm: 99 }, 0, &mut regs, &mut mem, 63);
        assert_eq!(regs[0], 0);
    }
}
