//! Program construction with label resolution — a tiny assembler.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::isa::{AluOp, Cond, FpuOp, Instr, Reg, NUM_REGS};

/// A validated program: every branch target resolved and in range, every
/// register index valid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// The instructions.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

impl std::fmt::Display for Program {
    /// A numbered disassembly listing, one instruction per line.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, instr) in self.instrs.iter().enumerate() {
            writeln!(f, "{i:4}: {instr}")?;
        }
        Ok(())
    }
}

/// Errors found when finalizing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A label was referenced but never placed.
    UnresolvedLabel {
        /// The label id.
        label: usize,
    },
    /// A label was placed twice.
    DuplicateLabel {
        /// The label id.
        label: usize,
    },
    /// A register index is out of range.
    BadRegister {
        /// The offending index.
        reg: Reg,
    },
    /// The program has no instructions.
    Empty,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnresolvedLabel { label } => {
                write!(f, "label {label} referenced but never placed")
            }
            ProgramError::DuplicateLabel { label } => write!(f, "label {label} placed twice"),
            ProgramError::BadRegister { reg } => {
                write!(f, "register r{reg} is out of range (0..{NUM_REGS})")
            }
            ProgramError::Empty => write!(f, "program has no instructions"),
        }
    }
}

impl Error for ProgramError {}

/// A label handle issued by [`ProgramBuilder::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Builder assembling a [`Program`] with forward references.
///
/// # Example
///
/// ```
/// use simcpu::{AluOp, Cond, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new();
/// let loop_top = b.label();
/// b.li(1, 0);
/// b.li(2, 10);
/// b.place(loop_top)?;
/// b.alui(AluOp::Add, 1, 1, 1);
/// b.branch(Cond::Lt, 1, 2, loop_top);
/// b.halt();
/// let program = b.build()?;
/// assert_eq!(program.len(), 5);
/// # Ok::<(), simcpu::ProgramError>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    /// Placed label positions by id.
    placed: HashMap<usize, u32>,
    /// (instruction index) -> label id, for targets to patch.
    patches: Vec<(usize, usize)>,
    next_label: usize,
    duplicate: Option<usize>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Issues a new, unplaced label.
    pub fn label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Places a label at the current position.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::DuplicateLabel`] if already placed. (The
    /// error is also re-reported by [`build`](Self::build), so kernel
    /// code may ignore the result and rely on the final check.)
    pub fn place(&mut self, label: Label) -> Result<(), ProgramError> {
        if self
            .placed
            .insert(label.0, self.instrs.len() as u32)
            .is_some()
        {
            self.duplicate = Some(label.0);
            return Err(ProgramError::DuplicateLabel { label: label.0 });
        }
        Ok(())
    }

    /// Emits `li rd, imm`.
    pub fn li(&mut self, rd: Reg, imm: u32) -> &mut Self {
        self.instrs.push(Instr::Li { rd, imm });
        self
    }

    /// Emits a register-register ALU operation.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.instrs.push(Instr::Alu { op, rd, rs1, rs2 });
        self
    }

    /// Emits a register-immediate ALU operation.
    pub fn alui(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: u32) -> &mut Self {
        self.instrs.push(Instr::AluI { op, rd, rs1, imm });
        self
    }

    /// Emits a floating-point operation.
    pub fn fpu(&mut self, op: FpuOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.instrs.push(Instr::Fpu { op, rd, rs1, rs2 });
        self
    }

    /// Emits `lw rd, offset(base)`.
    pub fn load(&mut self, rd: Reg, base: Reg, offset: i32) -> &mut Self {
        self.instrs.push(Instr::Load { rd, base, offset });
        self
    }

    /// Emits `sw src, offset(base)`.
    pub fn store(&mut self, src: Reg, base: Reg, offset: i32) -> &mut Self {
        self.instrs.push(Instr::Store { base, offset, src });
        self
    }

    /// Emits a conditional branch to a label.
    pub fn branch(&mut self, cond: Cond, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.patches.push((self.instrs.len(), target.0));
        self.instrs.push(Instr::Branch {
            cond,
            rs1,
            rs2,
            target: u32::MAX,
        });
        self
    }

    /// Emits an unconditional jump to a label.
    pub fn jump(&mut self, target: Label) -> &mut Self {
        self.patches.push((self.instrs.len(), target.0));
        self.instrs.push(Instr::Jump { target: u32::MAX });
        self
    }

    /// Emits `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.instrs.push(Instr::Halt);
        self
    }

    /// Resolves labels and validates the program.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProgramError`] found.
    pub fn build(mut self) -> Result<Program, ProgramError> {
        if let Some(label) = self.duplicate {
            return Err(ProgramError::DuplicateLabel { label });
        }
        if self.instrs.is_empty() {
            return Err(ProgramError::Empty);
        }
        for &(at, label) in &self.patches {
            let Some(&pos) = self.placed.get(&label) else {
                return Err(ProgramError::UnresolvedLabel { label });
            };
            match &mut self.instrs[at] {
                Instr::Branch { target, .. } | Instr::Jump { target } => *target = pos,
                other => unreachable!("patch points at non-branch {other}"),
            }
        }
        for instr in &self.instrs {
            for reg in registers_of(instr) {
                if usize::from(reg) >= NUM_REGS {
                    return Err(ProgramError::BadRegister { reg });
                }
            }
        }
        Ok(Program {
            instrs: self.instrs,
        })
    }
}

/// All register indices an instruction names.
fn registers_of(instr: &Instr) -> Vec<Reg> {
    match *instr {
        Instr::Li { rd, .. } => vec![rd],
        Instr::Alu { rd, rs1, rs2, .. } | Instr::Fpu { rd, rs1, rs2, .. } => vec![rd, rs1, rs2],
        Instr::AluI { rd, rs1, .. } => vec![rd, rs1],
        Instr::Load { rd, base, .. } => vec![rd, base],
        Instr::Store { base, src, .. } => vec![base, src],
        Instr::Branch { rs1, rs2, .. } => vec![rs1, rs2],
        Instr::Jump { .. } | Instr::Halt => vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_references_resolve() {
        let mut b = ProgramBuilder::new();
        let skip = b.label();
        b.jump(skip);
        b.li(1, 99); // skipped
        b.place(skip).unwrap();
        b.halt();
        let p = b.build().unwrap();
        assert_eq!(p.instrs()[0], Instr::Jump { target: 2 });
    }

    #[test]
    fn unresolved_label_rejected() {
        let mut b = ProgramBuilder::new();
        let nowhere = b.label();
        b.jump(nowhere);
        assert!(matches!(
            b.build(),
            Err(ProgramError::UnresolvedLabel { label: 0 })
        ));
    }

    #[test]
    fn duplicate_label_rejected() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.place(l).unwrap();
        b.li(1, 0);
        assert!(b.place(l).is_err());
        b.halt();
        assert!(matches!(
            b.build(),
            Err(ProgramError::DuplicateLabel { label: 0 })
        ));
    }

    #[test]
    fn bad_register_rejected() {
        let mut b = ProgramBuilder::new();
        b.li(32, 0);
        assert!(matches!(
            b.build(),
            Err(ProgramError::BadRegister { reg: 32 })
        ));
    }

    #[test]
    fn empty_program_rejected() {
        assert!(matches!(
            ProgramBuilder::new().build(),
            Err(ProgramError::Empty)
        ));
    }

    #[test]
    fn display_disassembles() {
        let mut b = ProgramBuilder::new();
        b.li(1, 0x10);
        b.load(2, 1, 4);
        b.halt();
        let p = b.build().unwrap();
        let listing = p.to_string();
        assert!(listing.contains("   0: li r1, 0x10"));
        assert!(listing.contains("   1: lw r2, 4(r1)"));
        assert!(listing.contains("   2: halt"));
        assert_eq!(listing.lines().count(), 3);
    }

    #[test]
    fn error_messages() {
        assert_eq!(
            ProgramError::UnresolvedLabel { label: 3 }.to_string(),
            "label 3 referenced but never placed"
        );
        assert!(ProgramError::BadRegister { reg: 40 }
            .to_string()
            .contains("r40"));
    }
}
