//! The adaptive controller: a `Transcoder`-shaped wrapper that watches
//! traffic and switches the live coding scheme at decision boundaries.
//!
//! # How the two ends stay synchronized
//!
//! The controller is split into an encoder half and a decoder half that
//! share one [`Core`] behind `Rc<RefCell<…>>` — modelling the control
//! sideband a real adaptive bus would run beside the data lines. All
//! harnesses in this workspace ([`buscoding::verify_roundtrip`], the
//! `busfault` channel, `evaluate`) drive the pair in lockstep (encode
//! word *n*, then decode word *n*), so the boundary work performed
//! while encoding word *n* — choosing the next scheme and flushing both
//! FSMs — is always visible to the decoder before it observes word *n*.
//!
//! # The flush discipline
//!
//! *Every* decision boundary flushes the live pair to its power-on
//! state, switch or not. That makes the decision period an epoch in the
//! [`buscoding::robust::epoch_wrap`] sense: any desynchronization —
//! including an upset injected in the very cycle of a scheme switch —
//! is repaired at the next boundary, because both FSMs restart from
//! power-on and the bus carries absolute states. It also makes every
//! window's cost independent of history, which is what lets the shadow
//! models (and the oracle) compare candidates from a common cold start.
//! The flushes are not free: the controller counts them (plus the
//! switches) so experiments can charge them through
//! `hwmodel::CodingOutcome::with_resync_tax`.

use std::cell::RefCell;
use std::rc::Rc;

use buscoding::{
    scheme_by_name, Activity, Decoder, Encoder, RoundTripError, Transcoder, UnknownScheme,
};
use bustrace::stats::{StreamingStrideHits, StreamingTransitions, StreamingWindowUniqueness};
use bustrace::{Width, Word};

use crate::policy::{Policy, WindowObservation, WindowStats};

static PROBE_DECISIONS: busprobe::StaticCounter = busprobe::StaticCounter::new("adapt.decisions");
static PROBE_SWITCHES: busprobe::StaticCounter = busprobe::StaticCounter::new("adapt.switches");
static PROBE_FLUSHES: busprobe::StaticCounter = busprobe::StaticCounter::new("adapt.flushes");
static PROBE_RESYNCS: busprobe::StaticCounter = busprobe::StaticCounter::new("adapt.resyncs");
static PROBE_WORDS: busprobe::StaticCounter = busprobe::StaticCounter::new("adapt.window_words");
const PCT_BOUNDS: &[u64] = &[5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
static HIST_DENSITY: busprobe::StaticHistogram =
    busprobe::StaticHistogram::new("adapt.window_density_pct", PCT_BOUNDS);
static HIST_UNIQUE: busprobe::StaticHistogram =
    busprobe::StaticHistogram::new("adapt.window_unique_pct", PCT_BOUNDS);
static HIST_STRIDE: busprobe::StaticHistogram =
    busprobe::StaticHistogram::new("adapt.window_stride_pct", PCT_BOUNDS);

/// Configuration of an [`AdaptiveTranscoder`]: the candidate pool and
/// the controller's observation parameters.
#[derive(Debug, Clone)]
pub struct AdaptiveConfig {
    width: Width,
    candidates: Vec<String>,
    period: u64,
    lambda: f64,
    uniqueness_window: usize,
    stride_depth: usize,
    recover: bool,
    initial: usize,
}

impl AdaptiveConfig {
    /// A configuration selecting among `candidates` (canonical registry
    /// names, see [`buscoding::SCHEME_PATTERNS`]) every `period` words.
    ///
    /// Defaults: λ = 1, uniqueness sub-window 16, stride depth 2,
    /// bounded recovery on, candidate 0 carries the first window.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `candidates` is empty.
    pub fn new<I, S>(width: Width, candidates: I, period: u64) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let candidates: Vec<String> = candidates.into_iter().map(Into::into).collect();
        assert!(!candidates.is_empty(), "need at least one candidate scheme");
        assert!(period > 0, "decision period must be at least 1 word");
        AdaptiveConfig {
            width,
            candidates,
            period,
            lambda: 1.0,
            uniqueness_window: 16,
            stride_depth: 2,
            recover: true,
            initial: 0,
        }
    }

    /// Sets the coupling weight λ used by the shadow cost models.
    #[must_use]
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Sets which candidate carries the first window (no policy gets to
    /// choose it — there is no completed window to observe yet).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn with_initial(mut self, index: usize) -> Self {
        assert!(
            index < self.candidates.len(),
            "initial candidate out of range"
        );
        self.initial = index;
        self
    }

    /// Sets the tiled sub-window size of the uniqueness estimator.
    #[must_use]
    pub fn with_uniqueness_window(mut self, window: usize) -> Self {
        self.uniqueness_window = window;
        self
    }

    /// Sets the stride-predictor history depth.
    #[must_use]
    pub fn with_stride_depth(mut self, k: usize) -> Self {
        self.stride_depth = k;
        self
    }

    /// Disables bounded recovery: decode errors propagate as
    /// [`RoundTripError`] instead of being absorbed
    /// [`RecoveringDecoder`](buscoding::robust::RecoveringDecoder)-style.
    #[must_use]
    pub fn without_recovery(mut self) -> Self {
        self.recover = false;
        self
    }

    /// The candidate pool, in decision-index order.
    pub fn candidates(&self) -> &[String] {
        &self.candidates
    }

    /// Words per decision window (= epoch length).
    pub fn period(&self) -> u64 {
        self.period
    }

    /// The bus word width.
    pub fn width(&self) -> Width {
        self.width
    }

    /// The shadow models' coupling weight λ.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

/// One scheme switch, as recorded in [`AdaptReport::switch_log`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchEvent {
    /// Word position of the boundary at which the switch took effect.
    pub at_word: u64,
    /// Candidate index that carried the completed window.
    pub from: usize,
    /// Candidate index taking the bus.
    pub to: usize,
}

/// Everything the controller tallied since power-on.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptReport {
    /// Words encoded.
    pub words: u64,
    /// Completed decision windows (= decisions taken = boundary
    /// flushes; a trailing partial window is not in this count).
    pub windows: u64,
    /// Decisions that changed the live scheme.
    pub switches: u64,
    /// Boundary flushes of the live pair — equal to `windows`; kept as
    /// its own field because it is the number experiments feed to
    /// `CodingOutcome::with_resync_tax`.
    pub flushes: u64,
    /// Decode errors absorbed by bounded recovery.
    pub resyncs: u64,
    /// Words carried by each candidate, parallel to the candidate pool.
    pub residency: Vec<(String, u64)>,
    /// Every switch, in order.
    pub switch_log: Vec<SwitchEvent>,
    /// Name of the scheme currently on the wire.
    pub live: String,
}

/// One candidate scheme: the live FSM pair (on the wire only while
/// selected) plus an independent shadow encoder that scores every
/// window regardless of who is live.
struct Candidate {
    lines: u32,
    pair: Transcoder,
    shadow: Box<dyn Encoder>,
}

/// All-ones over the low `lines` bus lines.
fn line_mask(lines: u32) -> u64 {
    if lines >= 64 {
        u64::MAX
    } else {
        (1u64 << lines) - 1
    }
}

/// A per-window activity accumulator starting from the all-low
/// power-on bus state, exactly like [`buscoding::evaluate`].
fn cold_activity(lines: u32) -> Activity {
    let mut a = Activity::new(lines);
    a.step(0);
    a
}

struct Core {
    cfg: AdaptiveConfig,
    lines: u32,
    candidates: Vec<Candidate>,
    names: Vec<String>,
    policy: Box<dyn Policy>,
    live: usize,
    pos: u64,
    transitions: StreamingTransitions,
    uniqueness: StreamingWindowUniqueness,
    strides: StreamingStrideHits,
    /// Words of the in-flight window, buffered so the shadow encoders
    /// can score the whole window in one [`Encoder::encode_block`] call
    /// at the boundary instead of one virtual dispatch per word.
    window_words: Vec<Word>,
    /// Scratch for the shadows' block output, reused across windows.
    shadow_states: Vec<u64>,
    residency: Vec<u64>,
    windows: u64,
    switches: u64,
    resyncs: u64,
    switch_log: Vec<SwitchEvent>,
}

impl Core {
    /// Full power-on reset: FSMs, shadows, streaming stats, policy
    /// state and tallies.
    fn power_on(&mut self) {
        self.live = self.cfg.initial;
        self.pos = 0;
        self.windows = 0;
        self.switches = 0;
        self.resyncs = 0;
        self.switch_log.clear();
        self.residency.iter_mut().for_each(|r| *r = 0);
        self.transitions.reset();
        self.uniqueness.reset();
        self.strides.reset();
        self.policy.reset();
        self.window_words.clear();
        for candidate in &mut self.candidates {
            candidate.pair.reset();
            candidate.shadow.reset();
        }
    }

    /// Decision boundary: score the completed window, consult the
    /// policy, and flush into the next window.
    fn boundary(&mut self) {
        let _span = busprobe::span("busadapt.controller.boundary");
        // Deferred shadow scoring: each candidate replays the buffered
        // window through its shadow encoder as one block. The shadows
        // were flushed at the previous boundary, so this produces the
        // exact state sequence the old per-word loop accumulated —
        // minus `candidates × period` virtual dispatches per window.
        let lambda = self.cfg.lambda;
        let words = &self.window_words;
        let states = &mut self.shadow_states;
        let costs: Vec<f64> = self
            .candidates
            .iter_mut()
            .map(|candidate| {
                states.clear();
                candidate.shadow.encode_block(words, states);
                let mut activity = cold_activity(candidate.lines);
                activity.step_slice(states);
                activity.weighted(lambda)
            })
            .collect();
        let stats = WindowStats {
            transition_density: self.transitions.density(),
            repeat_fraction: self.transitions.repeat_fraction(),
            window_uniqueness: self.uniqueness.fraction(),
            stride_fraction: self.strides.fraction(),
        };
        let completed = self.pos / self.cfg.period - 1;
        let obs = WindowObservation {
            index: completed,
            live: self.live,
            names: &self.names,
            costs: &costs,
            stats,
        };
        let next = self.policy.decide(&obs).min(self.candidates.len() - 1);

        self.windows += 1;
        PROBE_DECISIONS.inc();
        PROBE_FLUSHES.inc();
        if busprobe::enabled() {
            PROBE_WORDS.add(self.cfg.period);
            HIST_DENSITY.observe(to_pct(stats.transition_density));
            HIST_STRIDE.observe(to_pct(stats.stride_fraction));
            if let Some(u) = stats.window_uniqueness {
                HIST_UNIQUE.observe(to_pct(u));
            }
            busprobe::counter(&format!("adapt.residency.{}", self.names[self.live]))
                .add(self.cfg.period);
        }
        if next != self.live {
            self.switches += 1;
            PROBE_SWITCHES.inc();
            self.switch_log.push(SwitchEvent {
                at_word: self.pos,
                from: self.live,
                to: next,
            });
            self.live = next;
        }

        // The epoch flush: live pair back to power-on (the scheme that
        // just left the bus keeps its stale state — it is re-flushed
        // whenever it next becomes live), shadows and streaming stats
        // back to cold for the next window.
        self.candidates[self.live].pair.reset();
        self.transitions.reset();
        self.uniqueness.reset();
        self.strides.reset();
        self.window_words.clear();
        for candidate in &mut self.candidates {
            candidate.shadow.reset();
        }
    }

    fn encode(&mut self, value: Word) -> u64 {
        if self.pos > 0 && self.pos.is_multiple_of(self.cfg.period) {
            self.boundary();
        }
        self.pos += 1;
        self.residency[self.live] += 1;
        self.transitions.push(value);
        self.uniqueness.push(value);
        self.strides.push(value);
        // A trailing partial window is never scored (no boundary fires
        // for it), so buffering is free until the next boundary.
        self.window_words.push(value);
        self.candidates[self.live].pair.encode(value)
    }

    fn decode(&mut self, bus_state: u64) -> Result<Word, RoundTripError> {
        let recover = self.cfg.recover;
        let width = self.cfg.width;
        let candidate = &mut self.candidates[self.live];
        match candidate
            .pair
            .decode(bus_state & line_mask(candidate.lines))
        {
            Ok(word) => Ok(word),
            Err(_) if recover => {
                self.resyncs += 1;
                PROBE_RESYNCS.inc();
                candidate.pair.decoder_mut().reset();
                Ok(bus_state & width.mask())
            }
            Err(e) => Err(e),
        }
    }

    fn report(&self) -> AdaptReport {
        AdaptReport {
            words: self.pos,
            windows: self.windows,
            switches: self.switches,
            flushes: self.windows,
            resyncs: self.resyncs,
            residency: self
                .names
                .iter()
                .cloned()
                .zip(self.residency.iter().copied())
                .collect(),
            switch_log: self.switch_log.clone(),
            live: self.names[self.live].clone(),
        }
    }
}

fn to_pct(fraction: f64) -> u64 {
    (fraction * 100.0).round().clamp(0.0, 100.0) as u64
}

/// Encoder half: runs the whole controller (streaming stats, shadow
/// models, boundary decisions) and drives the live scheme's lines.
struct EncoderHalf {
    core: Rc<RefCell<Core>>,
}

impl Encoder for EncoderHalf {
    fn lines(&self) -> u32 {
        self.core.borrow().lines
    }

    fn encode(&mut self, value: Word) -> u64 {
        self.core.borrow_mut().encode(value)
    }

    /// Full power-on reset of the shared controller (both ends).
    fn reset(&mut self) {
        self.core.borrow_mut().power_on();
    }
}

/// Decoder half: observes bus states through the live scheme's decoder.
struct DecoderHalf {
    core: Rc<RefCell<Core>>,
}

impl Decoder for DecoderHalf {
    fn lines(&self) -> u32 {
        self.core.borrow().lines
    }

    fn decode(&mut self, bus_state: u64) -> Result<Word, RoundTripError> {
        self.core.borrow_mut().decode(bus_state)
    }

    /// A receiver-local resync pulse: flushes only the live decoder
    /// FSM (the `ErrorPolicy::ResetAndContinue` semantics). The full
    /// power-on reset is driven from the encoder side, which every
    /// harness resets first.
    fn reset(&mut self) {
        let mut core = self.core.borrow_mut();
        let live = core.live;
        core.candidates[live].pair.decoder_mut().reset();
    }
}

/// A drop-in adaptive transcoder: looks like one
/// [`buscoding::Transcoder`], but re-decides which candidate scheme
/// drives the wire at every decision boundary.
///
/// The physical line count is the maximum over the candidate pool;
/// schemes with fewer lines leave the upper lines low, and the decoder
/// masks observed states down to the live scheme's lines.
///
/// # Example
///
/// ```
/// use busadapt::{AdaptiveConfig, AdaptiveTranscoder, GreedyShadowPolicy};
/// use buscoding::verify_roundtrip;
/// use bustrace::{Trace, Width};
///
/// let cfg = AdaptiveConfig::new(Width::W32, ["window(8)", "stride(4)"], 64);
/// let mut adaptive =
///     AdaptiveTranscoder::new(cfg, Box::new(GreedyShadowPolicy::new(0.0))).unwrap();
///
/// // A looping phase, then a striding phase.
/// let loop_vals = (0..512).map(|i| [7u64, 1000, 42, 9][i % 4]);
/// let ramp = (0..512).map(|i| 0x1000 + 4 * i as u64);
/// let trace = Trace::from_values(Width::W32, loop_vals.chain(ramp));
///
/// let (enc, dec) = adaptive.transcoder_mut().split_mut();
/// verify_roundtrip(enc, dec, &trace).unwrap();
/// let report = adaptive.report();
/// assert!(report.switches >= 1, "controller should chase the phase change");
/// ```
pub struct AdaptiveTranscoder {
    pair: Transcoder,
    core: Rc<RefCell<Core>>,
}

impl AdaptiveTranscoder {
    /// Builds the controller: every candidate gets a live FSM pair and
    /// a shadow encoder from the [`buscoding`] registry.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownScheme`] if any candidate name fails to parse.
    pub fn new(cfg: AdaptiveConfig, policy: Box<dyn Policy>) -> Result<Self, UnknownScheme> {
        let mut candidates = Vec::with_capacity(cfg.candidates.len());
        for name in &cfg.candidates {
            let pair = scheme_by_name(name, cfg.width)?;
            let (shadow, _) = scheme_by_name(name, cfg.width)?.into_parts();
            candidates.push(Candidate {
                lines: pair.lines(),
                pair,
                shadow,
            });
        }
        let lines = candidates.iter().map(|c| c.lines).max().expect("non-empty");
        let display = format!("adaptive({} p{})", policy.name(), cfg.period);
        let names = cfg.candidates.clone();
        let period = cfg.period as usize;
        let residency = vec![0; candidates.len()];
        let mut core = Core {
            transitions: StreamingTransitions::new(cfg.width),
            uniqueness: StreamingWindowUniqueness::new(cfg.uniqueness_window),
            strides: StreamingStrideHits::new(cfg.width, cfg.stride_depth),
            live: cfg.initial,
            cfg,
            lines,
            candidates,
            names,
            policy,
            pos: 0,
            window_words: Vec::with_capacity(period),
            shadow_states: Vec::with_capacity(period),
            residency,
            windows: 0,
            switches: 0,
            resyncs: 0,
            switch_log: Vec::new(),
        };
        core.power_on();
        let core = Rc::new(RefCell::new(core));
        let pair = Transcoder::from_boxed(
            display,
            Box::new(EncoderHalf { core: core.clone() }),
            Box::new(DecoderHalf { core: core.clone() }),
        );
        Ok(AdaptiveTranscoder { pair, core })
    }

    /// The display name, e.g. `adaptive(greedy(h0.05) p512)`.
    pub fn name(&self) -> &str {
        self.pair.name()
    }

    /// Physical bus lines (maximum over the candidate pool).
    pub fn lines(&self) -> u32 {
        self.pair.lines()
    }

    /// The `Transcoder`-shaped view, for any harness that drives pairs
    /// ([`buscoding::verify_roundtrip`], `busfault::FaultChannel`, …).
    pub fn transcoder_mut(&mut self) -> &mut Transcoder {
        &mut self.pair
    }

    /// Full power-on reset of both ends.
    pub fn reset(&mut self) {
        self.pair.reset();
    }

    /// Encodes the next word (runs the controller).
    pub fn encode(&mut self, value: Word) -> u64 {
        self.pair.encode(value)
    }

    /// Decodes the next bus state through the live scheme.
    ///
    /// # Errors
    ///
    /// As [`buscoding::Decoder::decode`]; with recovery enabled
    /// (default) errors are absorbed as counted resync events instead.
    pub fn decode(&mut self, bus_state: u64) -> Result<Word, RoundTripError> {
        self.pair.decode(bus_state)
    }

    /// Name of the scheme currently on the wire.
    pub fn live_scheme(&self) -> String {
        self.core.borrow().names[self.core.borrow().live].clone()
    }

    /// Everything tallied since the last power-on reset.
    pub fn report(&self) -> AdaptReport {
        self.core.borrow().report()
    }

    /// A tally handle that stays readable after the transcoder itself
    /// is consumed by a harness.
    pub fn handle(&self) -> AdaptHandle {
        AdaptHandle {
            core: self.core.clone(),
        }
    }

    /// Unwraps into the plain [`Transcoder`] plus a tally handle — for
    /// harnesses that want to own the pair.
    pub fn into_transcoder(self) -> (Transcoder, AdaptHandle) {
        let handle = self.handle();
        (self.pair, handle)
    }
}

impl std::fmt::Debug for AdaptiveTranscoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveTranscoder")
            .field("name", &self.pair.name())
            .field("lines", &self.pair.lines())
            .finish_non_exhaustive()
    }
}

/// A read handle onto a controller's tallies, valid for the lifetime
/// of the halves it was created from.
#[derive(Clone)]
pub struct AdaptHandle {
    core: Rc<RefCell<Core>>,
}

impl AdaptHandle {
    /// Everything tallied since the last power-on reset.
    pub fn report(&self) -> AdaptReport {
        self.core.borrow().report()
    }

    /// Name of the scheme currently on the wire.
    pub fn live_scheme(&self) -> String {
        let core = self.core.borrow();
        core.names[core.live].clone()
    }
}

impl std::fmt::Debug for AdaptHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptHandle").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{GreedyShadowPolicy, StaticPolicy};
    use buscoding::{evaluate, verify_roundtrip};
    use bustrace::Trace;

    /// `phases` half-windows of looping traffic alternating with
    /// unit-stride ramps, `len` words each.
    fn phase_change_trace(phases: usize, len: usize) -> Trace {
        let mut values = Vec::new();
        for p in 0..phases {
            if p % 2 == 0 {
                let set = [7u64, 1000, 42, 0xDEAD_BEEF];
                values.extend((0..len).map(|i| set[i % set.len()]));
            } else {
                let base = 0x4000_0000 + ((p as u64) << 8);
                values.extend((0..len).map(|i| base + 4 * i as u64));
            }
        }
        Trace::from_values(Width::W32, values)
    }

    fn greedy(period: u64) -> AdaptiveTranscoder {
        let cfg = AdaptiveConfig::new(Width::W32, ["window(8)", "stride(4)"], period);
        AdaptiveTranscoder::new(cfg, Box::new(GreedyShadowPolicy::new(0.0))).unwrap()
    }

    #[test]
    fn roundtrip_is_lossless_across_switches() {
        let trace = phase_change_trace(4, 256);
        let mut adaptive = greedy(64);
        let (enc, dec) = adaptive.transcoder_mut().split_mut();
        verify_roundtrip(enc, dec, &trace).unwrap();
        let report = adaptive.report();
        assert!(report.switches >= 3, "{report:?}");
        assert_eq!(report.words, trace.len() as u64);
        assert_eq!(report.windows, trace.len() as u64 / 64 - 1);
        assert_eq!(report.flushes, report.windows);
    }

    #[test]
    fn residency_words_sum_to_trace_length() {
        let trace = phase_change_trace(4, 256);
        let mut adaptive = greedy(64);
        let _ = evaluate(adaptive.transcoder_mut().encoder_mut(), &trace);
        let report = adaptive.report();
        let total: u64 = report.residency.iter().map(|(_, w)| w).sum();
        assert_eq!(total, trace.len() as u64);
        // Both phases are long enough that both schemes get the bus.
        assert!(report.residency.iter().all(|&(_, w)| w > 0), "{report:?}");
    }

    #[test]
    fn static_policy_never_switches_but_still_flushes() {
        let trace = phase_change_trace(4, 256);
        let cfg = AdaptiveConfig::new(Width::W32, ["window(8)", "stride(4)"], 64);
        let mut adaptive = AdaptiveTranscoder::new(cfg, Box::new(StaticPolicy::new(0))).unwrap();
        let (enc, dec) = adaptive.transcoder_mut().split_mut();
        verify_roundtrip(enc, dec, &trace).unwrap();
        let report = adaptive.report();
        assert_eq!(report.switches, 0);
        assert!(report.flushes > 0);
        assert_eq!(report.live, "window(8)");
    }

    #[test]
    fn adapting_beats_the_wrong_static_choice_on_the_wire() {
        // Pinning window(8) across a stride phase wastes energy that the
        // greedy controller recovers (identical flush schedules, so the
        // wire activity comparison is apples to apples).
        let trace = phase_change_trace(6, 512);
        let mut adaptive = greedy(128);
        let adaptive_cost = evaluate(adaptive.transcoder_mut().encoder_mut(), &trace).weighted(1.0);
        let cfg = AdaptiveConfig::new(Width::W32, ["window(8)", "stride(4)"], 128);
        let mut pinned = AdaptiveTranscoder::new(cfg, Box::new(StaticPolicy::new(0))).unwrap();
        let pinned_cost = evaluate(pinned.transcoder_mut().encoder_mut(), &trace).weighted(1.0);
        assert!(
            adaptive_cost < pinned_cost,
            "adaptive {adaptive_cost} vs pinned {pinned_cost}"
        );
    }

    #[test]
    fn power_on_reset_makes_runs_identical() {
        let trace = phase_change_trace(3, 128);
        let mut adaptive = greedy(32);
        let run = |a: &mut AdaptiveTranscoder| -> (Vec<u64>, AdaptReport) {
            a.reset();
            let states = trace.iter().map(|v| a.encode(v)).collect();
            (states, a.report())
        };
        let (states1, report1) = run(&mut adaptive);
        let (states2, report2) = run(&mut adaptive);
        assert_eq!(states1, states2);
        assert_eq!(report1, report2);
        assert!(report1.switches > 0);
    }

    #[test]
    fn upset_reconverges_at_the_next_boundary() {
        let period = 64u64;
        let trace = phase_change_trace(4, 128);
        let mut adaptive = greedy(period);
        adaptive.reset();
        // Flip a low line (present in every candidate) mid-window.
        let flip_at = 40u64;
        let mut wrong_after_boundary = 0;
        for (i, v) in trace.iter().enumerate() {
            let mut state = adaptive.encode(v);
            if i as u64 == flip_at {
                state ^= 1;
            }
            let got = adaptive.decode(state).unwrap();
            let next_boundary = (flip_at / period + 1) * period;
            if (i as u64) >= next_boundary && got != v {
                wrong_after_boundary += 1;
            }
        }
        assert_eq!(wrong_after_boundary, 0);
    }

    #[test]
    fn recovery_counts_resyncs_and_never_errors() {
        let trace = phase_change_trace(2, 128);
        let mut adaptive = greedy(32);
        adaptive.reset();
        for (i, v) in trace.iter().enumerate() {
            let mut state = adaptive.encode(v);
            if i % 17 == 5 {
                // Force the window codec's invalid control pattern.
                state ^= 0b11 << 32;
            }
            assert!(adaptive.decode(state).is_ok());
        }
        assert!(adaptive.report().resyncs > 0);
    }

    #[test]
    fn without_recovery_errors_propagate() {
        let cfg = AdaptiveConfig::new(Width::W32, ["window(8)"], 64).without_recovery();
        let mut adaptive = AdaptiveTranscoder::new(cfg, Box::new(StaticPolicy::new(0))).unwrap();
        adaptive.reset();
        let mut saw_error = false;
        for (i, v) in phase_change_trace(1, 100).iter().enumerate() {
            let mut state = adaptive.encode(v);
            if i == 10 {
                state ^= 0b11 << 32;
            }
            saw_error |= adaptive.decode(state).is_err();
        }
        assert!(saw_error);
        assert_eq!(adaptive.report().resyncs, 0);
    }

    #[test]
    fn lines_are_the_candidate_maximum() {
        let cfg = AdaptiveConfig::new(Width::W32, ["identity", "window(8)"], 64);
        let adaptive = AdaptiveTranscoder::new(cfg, Box::new(StaticPolicy::new(0))).unwrap();
        assert_eq!(adaptive.lines(), 34); // window(8): 32 data + 2 control
        assert!(adaptive.name().starts_with("adaptive(static(0)"));
    }

    #[test]
    fn unknown_candidate_is_rejected() {
        let cfg = AdaptiveConfig::new(Width::W32, ["wat(9)"], 64);
        assert!(AdaptiveTranscoder::new(cfg, Box::new(StaticPolicy::new(0))).is_err());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_period_is_rejected() {
        let _ = AdaptiveConfig::new(Width::W32, ["identity"], 0);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_pool_is_rejected() {
        let empty: [&str; 0] = [];
        let _ = AdaptiveConfig::new(Width::W32, empty, 64);
    }

    #[test]
    fn handle_outlives_the_wrapper() {
        let trace = phase_change_trace(2, 128);
        let adaptive = greedy(32);
        let (mut pair, handle) = adaptive.into_transcoder();
        let _ = evaluate(pair.encoder_mut(), &trace);
        assert_eq!(handle.report().words, trace.len() as u64);
    }
}
