//! Scheme-selection policies: the pluggable brain of the adaptive
//! controller.
//!
//! A [`Policy`] is consulted once per decision window. It sees the
//! window that just completed — per-candidate shadow costs plus the
//! streaming traffic statistics — and names the candidate that should
//! carry the *next* window. The controller handles everything physical
//! (flushing the live pair, charging the switch, keeping the decoder in
//! lockstep); policies are pure decision logic, so adding one is a
//! small, isolated exercise (see `docs/ADAPTIVE.md`).

use buscoding::{scheme_by_name, Activity, UnknownScheme};
use bustrace::Trace;

/// Streaming traffic statistics of one completed decision window, as
/// produced by the `bustrace::stats` incremental estimators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Mean fraction of word bits flipping between consecutive words.
    pub transition_density: f64,
    /// Fraction of words equal to their predecessor.
    pub repeat_fraction: f64,
    /// Mean unique-value fraction over tiled sub-windows, when at least
    /// one sub-window completed.
    pub window_uniqueness: Option<f64>,
    /// Fraction of words hit by a last-stride predictor.
    pub stride_fraction: f64,
}

/// Everything a [`Policy`] sees at a decision boundary.
#[derive(Debug)]
pub struct WindowObservation<'a> {
    /// Index of the window that just completed (`0` is the first).
    pub index: u64,
    /// Candidate that carried the completed window.
    pub live: usize,
    /// Candidate scheme names, parallel to `costs`.
    pub names: &'a [String],
    /// λ-weighted wire cost each candidate's shadow model accumulated
    /// over the completed window, all from the flushed (cold) state —
    /// directly comparable across candidates.
    pub costs: &'a [f64],
    /// Streaming traffic statistics of the completed window.
    pub stats: WindowStats,
}

impl WindowObservation<'_> {
    /// Index of the cheapest candidate over the completed window (ties
    /// break to the lowest index, so decisions are deterministic).
    pub fn cheapest(&self) -> usize {
        argmin(self.costs)
    }
}

/// First index of the strictly smallest value; `0` for an empty slice.
pub(crate) fn argmin(costs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &c) in costs.iter().enumerate().skip(1) {
        if c < costs[best] {
            best = i;
        }
    }
    best
}

/// A scheme-selection policy, consulted once per decision window.
pub trait Policy {
    /// Display name, e.g. `greedy(h0.05)` — embedded in the adaptive
    /// transcoder's name and in experiment tables.
    fn name(&self) -> String;

    /// Chooses the candidate index for the *next* window. Out-of-range
    /// returns are clamped by the controller.
    fn decide(&mut self, obs: &WindowObservation<'_>) -> usize;

    /// Restores power-on state; stateful policies (streaks, schedules
    /// already consumed) must forget everything here.
    fn reset(&mut self) {}
}

/// Never switches: pins one candidate forever. The adaptive controller
/// running a static policy is the honest baseline for switch-cost
/// comparisons — it pays the same per-boundary flushes as the adaptive
/// policies, just never the switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticPolicy {
    index: usize,
}

impl StaticPolicy {
    /// Pins the candidate at `index`.
    pub fn new(index: usize) -> Self {
        StaticPolicy { index }
    }
}

impl Policy for StaticPolicy {
    fn name(&self) -> String {
        format!("static({})", self.index)
    }

    fn decide(&mut self, _obs: &WindowObservation<'_>) -> usize {
        self.index
    }
}

/// Follows the shadow models greedily: switch to the cheapest candidate
/// of the last window whenever it undercuts the live scheme by more
/// than the hysteresis margin.
///
/// `hysteresis` is a relative margin in `[0, 1)`: a challenger must
/// cost less than `(1 - hysteresis) ×` the live scheme's window cost to
/// displace it. `0.0` is pure greedy; a few percent suppresses
/// borderline ping-ponging on noisy traffic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreedyShadowPolicy {
    hysteresis: f64,
}

impl GreedyShadowPolicy {
    /// A greedy policy with the given relative hysteresis margin.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ hysteresis < 1`.
    pub fn new(hysteresis: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&hysteresis),
            "hysteresis must be in [0, 1), got {hysteresis}"
        );
        GreedyShadowPolicy { hysteresis }
    }
}

impl Policy for GreedyShadowPolicy {
    fn name(&self) -> String {
        format!("greedy(h{})", self.hysteresis)
    }

    fn decide(&mut self, obs: &WindowObservation<'_>) -> usize {
        let best = obs.cheapest();
        let live_cost = obs.costs.get(obs.live).copied().unwrap_or(f64::INFINITY);
        if obs.costs[best] < live_cost * (1.0 - self.hysteresis) {
            best
        } else {
            obs.live
        }
    }
}

/// Greedy with patience: a challenger must stay below the band for
/// `patience` *consecutive* windows before it takes the bus.
///
/// This is the classic banded-hysteresis controller: `band` sets how
/// decisive the win must be, `patience` how persistent. Challenger
/// streaks reset whenever a different candidate becomes cheapest or the
/// band stops being cleared, so one-window noise spikes never cause a
/// switch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandedHysteresisPolicy {
    band: f64,
    patience: u32,
    challenger: Option<usize>,
    streak: u32,
}

impl BandedHysteresisPolicy {
    /// A banded policy; `patience` windows of a sub-band challenger are
    /// required before switching.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ band < 1` and `patience ≥ 1`.
    pub fn new(band: f64, patience: u32) -> Self {
        assert!(
            (0.0..1.0).contains(&band),
            "band must be in [0, 1), got {band}"
        );
        assert!(patience >= 1, "patience must be at least 1 window");
        BandedHysteresisPolicy {
            band,
            patience,
            challenger: None,
            streak: 0,
        }
    }
}

impl Policy for BandedHysteresisPolicy {
    fn name(&self) -> String {
        format!("banded(b{} p{})", self.band, self.patience)
    }

    fn decide(&mut self, obs: &WindowObservation<'_>) -> usize {
        let best = obs.cheapest();
        let live_cost = obs.costs.get(obs.live).copied().unwrap_or(f64::INFINITY);
        let clears_band = best != obs.live && obs.costs[best] < live_cost * (1.0 - self.band);
        if !clears_band {
            self.challenger = None;
            self.streak = 0;
            return obs.live;
        }
        if self.challenger == Some(best) {
            self.streak += 1;
        } else {
            self.challenger = Some(best);
            self.streak = 1;
        }
        if self.streak >= self.patience {
            self.challenger = None;
            self.streak = 0;
            best
        } else {
            obs.live
        }
    }

    fn reset(&mut self) {
        self.challenger = None;
        self.streak = 0;
    }
}

/// Replays a precomputed per-window schedule — the clairvoyant upper
/// bound the online policies are measured against.
///
/// Build the schedule with [`oracle_schedule`], which scores every
/// candidate over every window of the actual trace, then start the
/// controller with `AdaptiveConfig::with_initial(schedule[0])` so
/// window 0 (which no policy gets to choose) is also the oracle's pick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OraclePolicy {
    schedule: Vec<usize>,
}

impl OraclePolicy {
    /// A policy replaying `schedule[w]` for window `w`. Windows beyond
    /// the schedule keep its last entry.
    ///
    /// # Panics
    ///
    /// Panics on an empty schedule.
    pub fn new(schedule: Vec<usize>) -> Self {
        assert!(!schedule.is_empty(), "oracle schedule must not be empty");
        OraclePolicy { schedule }
    }

    /// The candidate the schedule assigns to window 0 — pass it to
    /// `AdaptiveConfig::with_initial`.
    pub fn first(&self) -> usize {
        self.schedule[0]
    }
}

impl Policy for OraclePolicy {
    fn name(&self) -> String {
        "oracle".to_string()
    }

    fn decide(&mut self, obs: &WindowObservation<'_>) -> usize {
        let next = (obs.index + 1) as usize;
        self.schedule
            .get(next)
            .or(self.schedule.last())
            .copied()
            .unwrap_or(obs.live)
    }
}

/// Scores every candidate over every decision window of `trace` (each
/// window from the flushed cold state, exactly as the controller's
/// shadow models run) and returns the per-window argmin — the oracle's
/// schedule. A partial final window is scored like any other; an empty
/// trace yields an empty schedule.
///
/// # Errors
///
/// Returns [`UnknownScheme`] if any candidate name fails to parse.
///
/// # Panics
///
/// Panics if `period` is zero or `candidates` is empty.
pub fn oracle_schedule(
    trace: &Trace,
    candidates: &[String],
    period: u64,
    lambda: f64,
) -> Result<Vec<usize>, UnknownScheme> {
    assert!(period > 0, "decision period must be at least 1 word");
    assert!(!candidates.is_empty(), "need at least one candidate");
    let _span = busprobe::span("busadapt.oracle_schedule");
    let mut encoders: Vec<_> = candidates
        .iter()
        .map(|name| scheme_by_name(name, trace.width()).map(|pair| pair.into_parts().0))
        .collect::<Result<_, _>>()?;
    let mut schedule = Vec::new();
    for chunk in trace.values().chunks(period as usize) {
        let costs: Vec<f64> = encoders
            .iter_mut()
            .map(|enc| {
                enc.reset();
                let mut activity = Activity::new(enc.lines());
                activity.step(0);
                for &value in chunk {
                    activity.step(enc.encode(value));
                }
                activity.weighted(lambda)
            })
            .collect();
        schedule.push(argmin(&costs));
    }
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bustrace::Width;

    fn obs<'a>(
        names: &'a [String],
        costs: &'a [f64],
        live: usize,
        index: u64,
    ) -> WindowObservation<'a> {
        WindowObservation {
            index,
            live,
            names,
            costs,
            stats: WindowStats {
                transition_density: 0.5,
                repeat_fraction: 0.0,
                window_uniqueness: None,
                stride_fraction: 0.0,
            },
        }
    }

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("scheme-{i}")).collect()
    }

    #[test]
    fn static_policy_never_moves() {
        let ns = names(3);
        let mut p = StaticPolicy::new(2);
        assert_eq!(p.decide(&obs(&ns, &[0.0, 1.0, 9.0], 2, 0)), 2);
        assert_eq!(p.name(), "static(2)");
    }

    #[test]
    fn greedy_switches_only_past_the_margin() {
        let ns = names(2);
        let mut p = GreedyShadowPolicy::new(0.10);
        // 5% cheaper: inside the margin, stay.
        assert_eq!(p.decide(&obs(&ns, &[100.0, 95.0], 0, 0)), 0);
        // 20% cheaper: switch.
        assert_eq!(p.decide(&obs(&ns, &[100.0, 80.0], 0, 1)), 1);
        // Already on the cheapest: stay.
        assert_eq!(p.decide(&obs(&ns, &[100.0, 80.0], 1, 2)), 1);
    }

    #[test]
    fn greedy_stays_put_when_live_cost_is_zero() {
        let ns = names(2);
        let mut p = GreedyShadowPolicy::new(0.0);
        assert_eq!(p.decide(&obs(&ns, &[0.0, 0.0], 0, 0)), 0);
    }

    #[test]
    #[should_panic(expected = "hysteresis")]
    fn greedy_rejects_silly_margin() {
        let _ = GreedyShadowPolicy::new(1.5);
    }

    #[test]
    fn banded_policy_waits_out_its_patience() {
        let ns = names(2);
        let mut p = BandedHysteresisPolicy::new(0.05, 3);
        let costs = [100.0, 50.0];
        assert_eq!(p.decide(&obs(&ns, &costs, 0, 0)), 0); // streak 1
        assert_eq!(p.decide(&obs(&ns, &costs, 0, 1)), 0); // streak 2
        assert_eq!(p.decide(&obs(&ns, &costs, 0, 2)), 1); // streak 3: go
    }

    #[test]
    fn banded_streak_breaks_on_a_noisy_window() {
        let ns = names(2);
        let mut p = BandedHysteresisPolicy::new(0.05, 2);
        assert_eq!(p.decide(&obs(&ns, &[100.0, 50.0], 0, 0)), 0);
        // Challenger loses its edge for one window: streak resets.
        assert_eq!(p.decide(&obs(&ns, &[100.0, 100.0], 0, 1)), 0);
        assert_eq!(p.decide(&obs(&ns, &[100.0, 50.0], 0, 2)), 0);
        assert_eq!(p.decide(&obs(&ns, &[100.0, 50.0], 0, 3)), 1);
    }

    #[test]
    fn banded_reset_forgets_the_streak() {
        let ns = names(2);
        let mut p = BandedHysteresisPolicy::new(0.05, 2);
        assert_eq!(p.decide(&obs(&ns, &[100.0, 50.0], 0, 0)), 0);
        p.reset();
        assert_eq!(p.decide(&obs(&ns, &[100.0, 50.0], 0, 1)), 0);
        assert_eq!(p.decide(&obs(&ns, &[100.0, 50.0], 0, 2)), 1);
    }

    #[test]
    fn oracle_replays_its_schedule_one_window_ahead() {
        let ns = names(2);
        let mut p = OraclePolicy::new(vec![0, 1, 0, 1]);
        assert_eq!(p.first(), 0);
        // After window 0 completes, the oracle names window 1's scheme.
        assert_eq!(p.decide(&obs(&ns, &[1.0, 1.0], 0, 0)), 1);
        assert_eq!(p.decide(&obs(&ns, &[1.0, 1.0], 1, 1)), 0);
        assert_eq!(p.decide(&obs(&ns, &[1.0, 1.0], 0, 2)), 1);
        // Past the end of the schedule: hold the last entry.
        assert_eq!(p.decide(&obs(&ns, &[1.0, 1.0], 1, 7)), 1);
    }

    #[test]
    fn oracle_schedule_tracks_phases() {
        // 2 windows of a tight 4-value loop (window-codec heaven), then
        // 2 windows of a unit-stride ramp (stride-codec heaven).
        let period = 128u64;
        let loop_vals = (0..256).map(|i| [7u64, 1000, 42, 0xDEAD_BEEF][i % 4]);
        let ramp = (0..256).map(|i| 0x4000_0000 + 4 * i as u64);
        let trace = Trace::from_values(Width::W32, loop_vals.chain(ramp));
        let candidates = vec!["window(8)".to_string(), "stride(4)".to_string()];
        let schedule = oracle_schedule(&trace, &candidates, period, 1.0).unwrap();
        assert_eq!(schedule, vec![0, 0, 1, 1]);
    }

    #[test]
    fn oracle_schedule_is_empty_for_an_empty_trace() {
        let candidates = vec!["identity".to_string()];
        let schedule = oracle_schedule(&Trace::new(Width::W32), &candidates, 64, 1.0).unwrap();
        assert!(schedule.is_empty());
    }

    #[test]
    fn oracle_schedule_rejects_unknown_candidates() {
        let candidates = vec!["wat(9)".to_string()];
        let trace = Trace::from_values(Width::W32, [1u64, 2, 3]);
        assert!(oracle_schedule(&trace, &candidates, 64, 1.0).is_err());
    }

    #[test]
    fn argmin_breaks_ties_low() {
        assert_eq!(argmin(&[3.0, 1.0, 1.0, 2.0]), 1);
        assert_eq!(argmin(&[]), 0);
    }
}
