//! Online adaptive scheme selection for bus transcoders.
//!
//! The paper picks one coding scheme per trace, offline. Real bus
//! traffic is phased — loop bodies, pointer chases, region-tagged
//! address streams — and the best scheme changes with the phase. This
//! crate adds the missing control layer: an [`AdaptiveTranscoder`] that
//! *watches* the traffic and re-decides, every `period` words, which
//! candidate scheme should drive the wire.
//!
//! The controller is built from three pieces:
//!
//! * **Streaming observation** — the `bustrace::stats` incremental
//!   estimators (transition density, window uniqueness, stride hits)
//!   summarize each decision window in O(1) per word.
//! * **Shadow models** — every candidate runs a private encoder over
//!   the same words and accumulates its own window
//!   [`buscoding::Activity`] from a common cold start, so per-window
//!   costs are directly comparable without ever touching the wire.
//! * **A pluggable [`Policy`]** — [`StaticPolicy`] (pinned baseline),
//!   [`GreedyShadowPolicy`] (argmin with a hysteresis margin),
//!   [`BandedHysteresisPolicy`] (margin + patience), and
//!   [`OraclePolicy`] (replay a clairvoyant [`oracle_schedule`]).
//!
//! Switching is priced honestly: every decision boundary is an epoch
//! flush in the [`buscoding::robust`] sense (both FSMs restart from
//! power-on, bounding any desync — even one injected in the switch
//! cycle itself — to the current window), and the controller counts
//! flushes, switches and absorbed resyncs so experiments can charge
//! them through `hwmodel::CodingOutcome::with_resync_tax`. The
//! `busfault` crate drives the whole stack through its fault channel
//! via `FaultChannel::run_adaptive`.
//!
//! Instrumentation: `adapt.decisions`, `adapt.switches`,
//! `adapt.flushes`, `adapt.resyncs`, `adapt.window_words`,
//! `adapt.window_{density,unique,stride}_pct` histograms and
//! per-scheme `adapt.residency.<name>` counters, all through
//! [`busprobe`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod policy;

pub use controller::{AdaptHandle, AdaptReport, AdaptiveConfig, AdaptiveTranscoder, SwitchEvent};
pub use policy::{
    oracle_schedule, BandedHysteresisPolicy, GreedyShadowPolicy, OraclePolicy, Policy,
    StaticPolicy, WindowObservation, WindowStats,
};
