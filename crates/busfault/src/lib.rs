//! `busfault` — deterministic fault injection for bus transcoder pairs.
//!
//! Every stateful scheme in the reproduction is a pair of synchronized
//! FSMs that the paper assumes talk over an error-free channel; a
//! single transient bit flip on the wire silently corrupts the decoded
//! stream forever. This crate makes that failure mode measurable:
//!
//! * [`FaultModel`] — seedable, deterministic corruptions of the
//!   *absolute bus state* between [`Encoder::encode`] and
//!   [`Decoder::decode`]: single-event flips ([`SingleFlip`]), bursts
//!   ([`BurstFlip`]), stuck-at lines ([`StuckAt`]), uniform random
//!   upsets ([`RandomUpsets`]), and a wiremodel-derived timing-error
//!   mode ([`TimingFaults`]) whose per-line flip probability grows with
//!   wire length and repeater spacing;
//! * [`FaultChannel`] — drives any encoder/decoder pair through a
//!   faulted trace and reports detection latency, silently corrupted
//!   words, and whether the pair ever resynchronizes ([`FaultReport`]).
//!
//! The recovery countermeasures live in `buscoding::robust` (parity
//! sideband, epoch resynchronization, bounded-recovery decode); this
//! crate is the adversary they are measured against. See
//! `docs/ROBUSTNESS.md`.
//!
//! # Example
//!
//! ```
//! use busfault::{FaultChannel, SingleFlip};
//! use buscoding::predict::{window_codec, WindowConfig};
//! use bustrace::{Trace, Width};
//!
//! let trace = Trace::from_values(Width::W32, (0..500u64).map(|i| i % 7));
//! let (mut enc, mut dec) = window_codec(WindowConfig::new(Width::W32, 8));
//! let mut fault = SingleFlip::new(100, 3);
//! let report = FaultChannel::halt_on_error().run(&mut enc, &mut dec, &mut fault, &trace);
//! assert_eq!(report.first_fault_step, Some(100));
//! // The flip is either detected or silently corrupts some words.
//! assert!(report.detected_errors > 0 || report.corrupted_words > 0 || report.clean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod model;

#[allow(unused_imports)] // doc links
use buscoding::{Decoder, Encoder};

pub use channel::{ErrorPolicy, FaultChannel, FaultReport};
pub use model::{BurstFlip, FaultModel, NoFault, RandomUpsets, SingleFlip, StuckAt, TimingFaults};
