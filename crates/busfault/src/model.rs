//! Fault models: deterministic corruptions of the absolute bus state.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use wiremodel::Wire;

/// A deterministic corruption applied to the absolute bus state each
/// cycle, between the encoder's output and the decoder's input.
///
/// Implementations must be pure functions of `(construction parameters,
/// reset-to-date call sequence)` — no wall clock, no global entropy —
/// so a fixed seed reproduces a fault pattern bit-for-bit. `corrupt` is
/// called exactly once per trace step, in step order.
pub trait FaultModel: std::fmt::Debug {
    /// Short display name, e.g. `flip(@100,b3)`.
    fn name(&self) -> String;

    /// Returns the bus state the decoder observes at `step` given the
    /// state the encoder drove. `lines` is the bus width; implementations
    /// must not set bits at or above it.
    fn corrupt(&mut self, step: u64, state: u64, lines: u32) -> u64;

    /// Restores the model to its post-construction state so the same
    /// fault pattern replays on a fresh trace.
    fn reset(&mut self);
}

fn line_mask(lines: u32) -> u64 {
    if lines >= 64 {
        u64::MAX
    } else {
        (1u64 << lines) - 1
    }
}

/// The error-free channel (the paper's implicit assumption).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFault;

impl FaultModel for NoFault {
    fn name(&self) -> String {
        "none".into()
    }

    fn corrupt(&mut self, _step: u64, state: u64, _lines: u32) -> u64 {
        state
    }

    fn reset(&mut self) {}
}

/// A single-event upset: one bit flip on one line at one step.
#[derive(Debug, Clone, Copy)]
pub struct SingleFlip {
    step: u64,
    line: u32,
}

impl SingleFlip {
    /// Flips `line` (0 = LSB) of the state observed at `step`. Lines at
    /// or beyond the bus width are reduced modulo the width at apply
    /// time, so injection points can be drawn without knowing the
    /// scheme's line count.
    pub fn new(step: u64, line: u32) -> Self {
        SingleFlip { step, line }
    }
}

impl FaultModel for SingleFlip {
    fn name(&self) -> String {
        format!("flip(@{},b{})", self.step, self.line)
    }

    fn corrupt(&mut self, step: u64, state: u64, lines: u32) -> u64 {
        if step == self.step {
            state ^ (1u64 << (self.line % lines))
        } else {
            state
        }
    }

    fn reset(&mut self) {}
}

/// A burst upset: `span` adjacent lines flip together at one step — the
/// signature of a particle strike or a coupled glitch spanning
/// neighboring wires.
#[derive(Debug, Clone, Copy)]
pub struct BurstFlip {
    step: u64,
    first_line: u32,
    span: u32,
}

impl BurstFlip {
    /// Flips `span` contiguous lines starting at `first_line` at `step`.
    /// The burst is clamped to the bus width at apply time.
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero.
    pub fn new(step: u64, first_line: u32, span: u32) -> Self {
        assert!(span > 0, "a burst must flip at least one line");
        BurstFlip {
            step,
            first_line,
            span,
        }
    }
}

impl FaultModel for BurstFlip {
    fn name(&self) -> String {
        format!("burst(@{},b{}+{})", self.step, self.first_line, self.span)
    }

    fn corrupt(&mut self, step: u64, state: u64, lines: u32) -> u64 {
        if step != self.step {
            return state;
        }
        let first = self.first_line % lines;
        let span = self.span.min(lines - first);
        let burst = (line_mask(span)) << first;
        state ^ burst
    }

    fn reset(&mut self) {}
}

/// A stuck-at fault: one line reads a constant level from `from` until
/// (exclusively) `until` — a hard short or a dead driver, transient if
/// a release step is given.
#[derive(Debug, Clone, Copy)]
pub struct StuckAt {
    line: u32,
    level: bool,
    from: u64,
    until: Option<u64>,
}

impl StuckAt {
    /// Forces `line` to `level` from step `from` onwards.
    pub fn new(line: u32, level: bool, from: u64) -> Self {
        StuckAt {
            line,
            level,
            from,
            until: None,
        }
    }

    /// Releases the fault at `until` (exclusive), making it transient.
    #[must_use]
    pub fn released_at(mut self, until: u64) -> Self {
        self.until = Some(until);
        self
    }
}

impl FaultModel for StuckAt {
    fn name(&self) -> String {
        let level = u8::from(self.level);
        match self.until {
            Some(u) => format!("stuck(b{}={},{}..{})", self.line, level, self.from, u),
            None => format!("stuck(b{}={},{}..)", self.line, level, self.from),
        }
    }

    fn corrupt(&mut self, step: u64, state: u64, lines: u32) -> u64 {
        let active = step >= self.from && self.until.is_none_or(|u| step < u);
        if !active {
            return state;
        }
        let bit = 1u64 << (self.line % lines);
        if self.level {
            state | bit
        } else {
            state & !bit
        }
    }

    fn reset(&mut self) {}
}

/// Independent random upsets: every line of every cycle flips with the
/// same probability, from a seeded xoshiro stream. The workhorse of the
/// `fault-sweep` experiment's rate axis.
#[derive(Debug, Clone)]
pub struct RandomUpsets {
    rate: f64,
    seed: u64,
    rng: SmallRng,
}

impl RandomUpsets {
    /// Creates a model flipping each line each cycle with probability
    /// `rate`, seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not in `[0, 1]`.
    pub fn new(rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "upset rate must be in [0, 1], got {rate}"
        );
        RandomUpsets {
            rate,
            seed,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The per-line per-cycle upset probability.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl FaultModel for RandomUpsets {
    fn name(&self) -> String {
        format!("random(p={:e})", self.rate)
    }

    fn corrupt(&mut self, _step: u64, state: u64, lines: u32) -> u64 {
        let mut flips = 0u64;
        for line in 0..lines {
            if self.rng.gen_bool(self.rate) {
                flips |= 1u64 << line;
            }
        }
        state ^ flips
    }

    fn reset(&mut self) {
        self.rng = SmallRng::seed_from_u64(self.seed);
    }
}

/// Timing-error upsets derived from the wire model: the per-line flip
/// probability is the probability that a transition fails to settle
/// within the cycle budget ([`Wire::timing_upset_probability`]), so it
/// grows with wire length and repeater-segment length. Interior lines
/// see two coupling aggressors where edge lines see one, which widens
/// their delay distribution — modeled as a Miller-effect skew on the
/// per-line probability.
///
/// Only lines that actually *transition* this cycle can mistime, so the
/// model tracks the previous observed state and applies the flip
/// probability to changing lines alone — faulty behaviour scales with
/// bus activity exactly as a DVS-overclocked bus would.
#[derive(Debug, Clone)]
pub struct TimingFaults {
    base: f64,
    skew: f64,
    seed: u64,
    rng: SmallRng,
    prev: u64,
}

impl TimingFaults {
    /// Per-line Miller-effect probability multiplier for interior lines.
    const INTERIOR_SKEW: f64 = 0.3;

    /// Builds the model from a wire and a cycle budget: the base
    /// per-transition flip probability is
    /// `wire.timing_upset_probability(cycle_ps, sigma_ps)`.
    pub fn from_wire(wire: &Wire, cycle_ps: f64, sigma_ps: f64, seed: u64) -> Self {
        Self::new(wire.timing_upset_probability(cycle_ps, sigma_ps), seed)
    }

    /// Builds the model from an explicit base per-transition flip
    /// probability.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not in `[0, 1]`.
    pub fn new(base: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&base),
            "base probability must be in [0, 1], got {base}"
        );
        TimingFaults {
            base,
            skew: Self::INTERIOR_SKEW,
            seed,
            rng: SmallRng::seed_from_u64(seed),
            prev: 0,
        }
    }

    /// The base per-transition flip probability.
    pub fn base_probability(&self) -> f64 {
        self.base
    }

    /// Flip probability of `line` on a bus of `lines` wires: interior
    /// lines (two neighbors) run `1 + skew` hotter than edge lines.
    fn line_probability(&self, line: u32, lines: u32) -> f64 {
        let interior = line > 0 && line + 1 < lines;
        let p = if interior {
            self.base * (1.0 + self.skew)
        } else {
            self.base
        };
        p.min(1.0)
    }
}

impl FaultModel for TimingFaults {
    fn name(&self) -> String {
        format!("timing(p={:.2e})", self.base)
    }

    fn corrupt(&mut self, _step: u64, state: u64, lines: u32) -> u64 {
        let transitions = state ^ self.prev;
        let mut flips = 0u64;
        for line in 0..lines {
            if transitions >> line & 1 == 1 && self.rng.gen_bool(self.line_probability(line, lines))
            {
                flips |= 1u64 << line;
            }
        }
        // The decoder observes the mistimed state; the *wire* settles to
        // the driven state by the next cycle, so transitions are tracked
        // against the encoder's sequence.
        self.prev = state;
        state ^ flips
    }

    fn reset(&mut self) {
        self.rng = SmallRng::seed_from_u64(self.seed);
        self.prev = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wiremodel::{Technology, WireStyle};

    #[test]
    fn no_fault_is_identity() {
        let mut f = NoFault;
        assert_eq!(f.corrupt(0, 0xDEAD, 32), 0xDEAD);
        assert_eq!(f.name(), "none");
    }

    #[test]
    fn single_flip_hits_exactly_one_step() {
        let mut f = SingleFlip::new(3, 5);
        for step in 0..10 {
            let out = f.corrupt(step, 0, 32);
            if step == 3 {
                assert_eq!(out, 1 << 5);
            } else {
                assert_eq!(out, 0);
            }
        }
    }

    #[test]
    fn single_flip_wraps_line_into_width() {
        let mut f = SingleFlip::new(0, 37);
        assert_eq!(f.corrupt(0, 0, 34), 1 << (37 % 34));
    }

    #[test]
    fn burst_clamps_at_bus_edge() {
        let mut f = BurstFlip::new(0, 30, 8);
        // 34-line bus: lines 30..34 flip, nothing above.
        let out = f.corrupt(0, 0, 34);
        assert_eq!(out, 0b1111 << 30);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn burst_rejects_zero_span() {
        let _ = BurstFlip::new(0, 0, 0);
    }

    #[test]
    fn stuck_at_holds_and_releases() {
        let mut f = StuckAt::new(2, true, 5).released_at(8);
        assert_eq!(f.corrupt(4, 0, 32), 0);
        assert_eq!(f.corrupt(5, 0, 32), 0b100);
        assert_eq!(f.corrupt(7, 0b100, 32), 0b100);
        assert_eq!(f.corrupt(8, 0, 32), 0);
        let mut low = StuckAt::new(0, false, 0);
        assert_eq!(low.corrupt(100, 0b11, 32), 0b10);
    }

    #[test]
    fn random_upsets_replay_after_reset() {
        let mut f = RandomUpsets::new(0.05, 42);
        let a: Vec<u64> = (0..200).map(|s| f.corrupt(s, 0, 34)).collect();
        f.reset();
        let b: Vec<u64> = (0..200).map(|s| f.corrupt(s, 0, 34)).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x != 0), "5% over 6800 line-cycles");
    }

    #[test]
    fn random_upsets_rate_zero_is_clean() {
        let mut f = RandomUpsets::new(0.0, 1);
        assert!((0..100).all(|s| f.corrupt(s, 0xABCD, 34) == 0xABCD));
    }

    #[test]
    #[should_panic(expected = "upset rate")]
    fn random_upsets_rejects_bad_rate() {
        let _ = RandomUpsets::new(1.5, 0);
    }

    #[test]
    fn timing_faults_only_hit_transitioning_lines() {
        let mut f = TimingFaults::new(1.0, 7); // every transition mistimes
        let out = f.corrupt(0, 0b0110, 8);
        // All transitioning lines flip back: observed state equals prev.
        assert_eq!(out, 0);
        // A quiet cycle is untouched even at p = 1: the wire settled to
        // the driven state, so no line transitions.
        let out2 = f.corrupt(1, 0b0110, 8);
        assert_eq!(out2, 0b0110);
    }

    #[test]
    fn timing_faults_grow_with_wire_length() {
        let tech = Technology::tech_013();
        let short = Wire::new(tech, WireStyle::Repeated, 5.0).unwrap();
        let long = Wire::new(tech, WireStyle::Repeated, 40.0).unwrap();
        let f_short = TimingFaults::from_wire(&short, 1000.0, 100.0, 1);
        let f_long = TimingFaults::from_wire(&long, 1000.0, 100.0, 1);
        assert!(f_long.base_probability() > f_short.base_probability());
    }

    #[test]
    fn timing_faults_interior_lines_run_hotter() {
        let f = TimingFaults::new(0.1, 0);
        assert!(f.line_probability(1, 34) > f.line_probability(0, 34));
        assert_eq!(f.line_probability(0, 34), f.line_probability(33, 34));
    }

    #[test]
    fn timing_faults_replay_after_reset() {
        let mut f = TimingFaults::new(0.3, 11);
        let states = [0u64, 0xFF, 0xF0, 0x0F, 0xAA, 0x55];
        let a: Vec<u64> = states
            .iter()
            .enumerate()
            .map(|(i, &s)| f.corrupt(i as u64, s, 8))
            .collect();
        f.reset();
        let b: Vec<u64> = states
            .iter()
            .enumerate()
            .map(|(i, &s)| f.corrupt(i as u64, s, 8))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SingleFlip::new(100, 3).name(), "flip(@100,b3)");
        assert_eq!(BurstFlip::new(2, 4, 3).name(), "burst(@2,b4+3)");
        assert_eq!(StuckAt::new(1, true, 0).name(), "stuck(b1=1,0..)");
        assert_eq!(
            StuckAt::new(1, false, 2).released_at(9).name(),
            "stuck(b1=0,2..9)"
        );
        assert_eq!(RandomUpsets::new(0.001, 0).name(), "random(p=1e-3)");
    }
}
