//! The fault channel: drives an encoder/decoder pair through a faulted
//! trace and measures what the fault did.

use buscoding::{Decoder, Encoder};
use bustrace::Trace;

use crate::model::FaultModel;

/// What the channel does when the decoder reports a `RoundTripError`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ErrorPolicy {
    /// Stop at the first decode error — the seed behaviour, where a
    /// desync is fatal.
    Halt,
    /// Record the error and keep feeding bus states; the decoder's
    /// state is left as the failed decode left it. This is the policy
    /// to use with `buscoding::robust` epoch wrappers, whose periodic
    /// flush restores synchronization.
    #[default]
    Continue,
    /// Record the error, reset the decoder FSM, and continue — blind
    /// local recovery. Without a matching encoder-side flush this
    /// usually stays desynchronized; it exists to quantify exactly
    /// that.
    ResetAndContinue,
}

/// Everything measured from one faulted run. Counts are over trace
/// steps (one word per step).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultReport {
    /// Words in the trace.
    pub words: u64,
    /// Steps at which the fault model actually changed the bus state.
    pub faulted_steps: u64,
    /// First step whose observed state differed from the driven state.
    pub first_fault_step: Option<u64>,
    /// Decode errors reported (desync detections).
    pub detected_errors: u64,
    /// First step at which the decoder reported an error.
    pub first_detection_step: Option<u64>,
    /// Words decoded *successfully but wrongly* — silent corruption.
    pub corrupted_words: u64,
    /// First step after which every remaining word decoded correctly;
    /// `Some(0)` means the whole trace was clean. `None` means the run
    /// never reconverged (it ended wrong, or halted early).
    pub reconverged_at: Option<u64>,
    /// Step at which the run halted early under [`ErrorPolicy::Halt`].
    pub halted_at: Option<u64>,
}

impl FaultReport {
    /// Steps between the first injected fault and its detection, if
    /// both happened.
    pub fn detection_latency(&self) -> Option<u64> {
        match (self.first_fault_step, self.first_detection_step) {
            (Some(f), Some(d)) => Some(d.saturating_sub(f)),
            _ => None,
        }
    }

    /// Silently corrupted words per fault-affected step; 0 when nothing
    /// was injected.
    pub fn corrupted_per_upset(&self) -> f64 {
        if self.faulted_steps == 0 {
            0.0
        } else {
            self.corrupted_words as f64 / self.faulted_steps as f64
        }
    }

    /// Whether the pair was back in sync by the end of the trace: the
    /// run completed and every word after [`reconverged_at`] decoded
    /// correctly.
    ///
    /// [`reconverged_at`]: FaultReport::reconverged_at
    pub fn resynchronized(&self) -> bool {
        self.halted_at.is_none() && self.reconverged_at.is_some()
    }

    /// Whether the fault had no observable effect at all: no detection
    /// and no wrong word.
    pub fn clean(&self) -> bool {
        self.detected_errors == 0 && self.corrupted_words == 0 && self.halted_at.is_none()
    }
}

/// Runs an encoder/decoder pair over a trace with a [`FaultModel`]
/// corrupting the bus between them, and scores the damage.
///
/// All three FSMs (encoder, decoder, fault model) are reset before the
/// run, so a channel invocation is a pure function of its inputs —
/// fixed seeds give byte-identical [`FaultReport`]s.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultChannel {
    policy: ErrorPolicy,
}

static PROBE_RUNS: busprobe::StaticCounter = busprobe::StaticCounter::new("busfault.channel.runs");
static PROBE_FAULTED: busprobe::StaticCounter =
    busprobe::StaticCounter::new("busfault.channel.faulted_steps");
static PROBE_DETECTED: busprobe::StaticCounter =
    busprobe::StaticCounter::new("busfault.channel.detected_errors");
static PROBE_CORRUPTED: busprobe::StaticCounter =
    busprobe::StaticCounter::new("busfault.channel.corrupted_words");

impl FaultChannel {
    /// A channel with the given error policy.
    pub fn new(policy: ErrorPolicy) -> Self {
        FaultChannel { policy }
    }

    /// A channel that stops at the first decode error.
    pub fn halt_on_error() -> Self {
        Self::new(ErrorPolicy::Halt)
    }

    /// The configured error policy.
    pub fn policy(&self) -> ErrorPolicy {
        self.policy
    }

    /// Drives `trace` through `encoder` → fault → `decoder` and scores
    /// the outcome.
    ///
    /// # Panics
    ///
    /// Panics if the encoder and decoder disagree on the line count —
    /// that is a harness bug, not a measurable fault.
    pub fn run<E, D, F>(
        &self,
        encoder: &mut E,
        decoder: &mut D,
        fault: &mut F,
        trace: &Trace,
    ) -> FaultReport
    where
        E: Encoder + ?Sized,
        D: Decoder + ?Sized,
        F: FaultModel + ?Sized,
    {
        let _span = busprobe::span("busfault.channel.run");
        assert_eq!(
            encoder.lines(),
            decoder.lines(),
            "fault channel requires a matched encoder/decoder pair"
        );
        encoder.reset();
        decoder.reset();
        fault.reset();
        let lines = encoder.lines();

        let mut report = FaultReport {
            words: trace.len() as u64,
            faulted_steps: 0,
            first_fault_step: None,
            detected_errors: 0,
            first_detection_step: None,
            corrupted_words: 0,
            reconverged_at: None,
            halted_at: None,
        };
        // One past the last step that was wrong (error or corrupt word).
        let mut converged_after = 0u64;

        for (i, value) in trace.iter().enumerate() {
            let step = i as u64;
            let driven = encoder.encode(value);
            let observed = fault.corrupt(step, driven, lines);
            if observed != driven {
                report.faulted_steps += 1;
                report.first_fault_step.get_or_insert(step);
            }
            match decoder.decode(observed) {
                Ok(decoded) => {
                    if decoded != value {
                        report.corrupted_words += 1;
                        converged_after = step + 1;
                    }
                }
                Err(_) => {
                    report.detected_errors += 1;
                    report.first_detection_step.get_or_insert(step);
                    converged_after = step + 1;
                    match self.policy {
                        ErrorPolicy::Halt => {
                            report.halted_at = Some(step);
                            break;
                        }
                        ErrorPolicy::Continue => {}
                        ErrorPolicy::ResetAndContinue => decoder.reset(),
                    }
                }
            }
        }

        if report.halted_at.is_none() && converged_after < report.words {
            report.reconverged_at = Some(converged_after);
        } else if report.halted_at.is_none() && report.words == 0 {
            report.reconverged_at = Some(0);
        }

        PROBE_RUNS.inc();
        if busprobe::enabled() {
            PROBE_FAULTED.add(report.faulted_steps);
            PROBE_DETECTED.add(report.detected_errors);
            PROBE_CORRUPTED.add(report.corrupted_words);
        }
        report
    }

    /// [`FaultChannel::run`] over a bundled [`buscoding::Transcoder`]
    /// pair — the
    /// common case where both ends travel together.
    pub fn run_pair<F>(
        &self,
        pair: &mut buscoding::Transcoder,
        fault: &mut F,
        trace: &Trace,
    ) -> FaultReport
    where
        F: FaultModel + ?Sized,
    {
        let (encoder, decoder) = pair.split_mut();
        self.run(encoder, decoder, fault, trace)
    }

    /// [`FaultChannel::run`] over an adaptive controller: the fault
    /// model corrupts the shared bus while the controller keeps
    /// re-deciding schemes, so upsets can land in the same cycle as a
    /// scheme switch. Returns the channel's damage report alongside
    /// the controller's own tally (switches, flushes, absorbed
    /// resyncs) for the same run — the run starts from power-on, so
    /// the two reports cover exactly the same words.
    pub fn run_adaptive<F>(
        &self,
        adaptive: &mut busadapt::AdaptiveTranscoder,
        fault: &mut F,
        trace: &Trace,
    ) -> (FaultReport, busadapt::AdaptReport)
    where
        F: FaultModel + ?Sized,
    {
        let _span = busprobe::span("busfault.channel.run_adaptive");
        let report = self.run_pair(adaptive.transcoder_mut(), fault, trace);
        (report, adaptive.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{NoFault, RandomUpsets, SingleFlip, StuckAt};
    use buscoding::predict::{window_codec, WindowConfig};
    use buscoding::IdentityCodec;
    use bustrace::{Width, Word};

    fn looping_trace(n: usize) -> Trace {
        let set = [7u64, 1000, 42, 0xDEAD_BEEF, 7, 7, 1000];
        Trace::from_values(Width::W32, (0..n).map(|i| set[i % set.len()]))
    }

    #[test]
    fn clean_channel_reports_clean() {
        let trace = looping_trace(500);
        let (mut enc, mut dec) = window_codec(WindowConfig::new(Width::W32, 8));
        let r = FaultChannel::default().run(&mut enc, &mut dec, &mut NoFault, &trace);
        assert!(r.clean());
        assert!(r.resynchronized());
        assert_eq!(r.reconverged_at, Some(0));
        assert_eq!(r.faulted_steps, 0);
        assert_eq!(r.detection_latency(), None);
        assert_eq!(r.corrupted_per_upset(), 0.0);
    }

    #[test]
    fn identity_codec_corrupts_exactly_one_word() {
        // A memoryless codec: one flip corrupts one word, then recovers.
        let trace = looping_trace(300);
        let mut enc = IdentityCodec::new(Width::W32);
        let mut dec = IdentityCodec::new(Width::W32);
        let mut fault = SingleFlip::new(50, 3);
        let r = FaultChannel::default().run(&mut enc, &mut dec, &mut fault, &trace);
        assert_eq!(r.faulted_steps, 1);
        assert_eq!(r.corrupted_words, 1);
        assert_eq!(r.detected_errors, 0);
        assert_eq!(r.reconverged_at, Some(51));
        assert!(r.resynchronized());
    }

    #[test]
    fn halt_policy_stops_at_detection() {
        let trace = looping_trace(2000);
        let (mut enc, mut dec) = window_codec(WindowConfig::new(Width::W32, 8));
        // Saturate the bus with errors; detection is certain.
        let mut fault = RandomUpsets::new(0.2, 9);
        let r = FaultChannel::halt_on_error().run(&mut enc, &mut dec, &mut fault, &trace);
        assert!(r.detected_errors <= 1);
        if r.detected_errors == 1 {
            assert_eq!(r.halted_at, r.first_detection_step);
            assert!(!r.resynchronized());
        }
    }

    #[test]
    fn detection_latency_measures_from_first_fault() {
        let trace = looping_trace(400);
        let (mut enc, mut dec) = window_codec(WindowConfig::new(Width::W32, 8));
        let mut fault = SingleFlip::new(100, 2);
        let r = FaultChannel::default().run(&mut enc, &mut dec, &mut fault, &trace);
        assert_eq!(r.first_fault_step, Some(100));
        if let Some(lat) = r.detection_latency() {
            assert!(lat < 400);
        }
    }

    #[test]
    fn stuck_line_on_predictive_codec_is_detected() {
        let trace = looping_trace(1000);
        let (mut enc, mut dec) = window_codec(WindowConfig::new(Width::W32, 8));
        // A stuck data line corrupts predicted-hit deltas into
        // non-codewords, which the decoder rejects.
        let mut fault = StuckAt::new(0, true, 200);
        let r = FaultChannel::default().run(&mut enc, &mut dec, &mut fault, &trace);
        assert!(r.detected_errors > 0, "{r:?}");
    }

    #[test]
    fn runs_are_deterministic() {
        let trace = looping_trace(800);
        let run = || {
            let (mut enc, mut dec) = window_codec(WindowConfig::new(Width::W32, 8));
            let mut fault = RandomUpsets::new(0.002, 123);
            FaultChannel::default().run(&mut enc, &mut dec, &mut fault, &trace)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reset_and_continue_resets_decoder() {
        // With a plain (non-epoch) pair, a blind decoder reset after an
        // error rarely restores sync — the report records the damage.
        let trace = looping_trace(600);
        let (mut enc, mut dec) = window_codec(WindowConfig::new(Width::W32, 8));
        let mut fault = SingleFlip::new(10, 0);
        let r = FaultChannel::new(ErrorPolicy::ResetAndContinue)
            .run(&mut enc, &mut dec, &mut fault, &trace);
        assert!(r.halted_at.is_none());
        assert_eq!(r.words, 600);
    }

    #[test]
    #[should_panic(expected = "matched encoder/decoder")]
    fn mismatched_pair_panics() {
        let trace = Trace::from_values(Width::W32, [1u64]);
        let mut enc = IdentityCodec::new(Width::W32);
        let mut dec = IdentityCodec::new(Width::new(16).unwrap());
        let _ = FaultChannel::default().run(&mut enc, &mut dec, &mut NoFault, &trace);
    }

    #[test]
    fn empty_trace_is_trivially_clean() {
        let trace = Trace::new(Width::W32);
        let mut enc = IdentityCodec::new(Width::W32);
        let mut dec = IdentityCodec::new(Width::W32);
        let r = FaultChannel::default().run(&mut enc, &mut dec, &mut NoFault, &trace);
        assert!(r.clean());
        assert_eq!(r.reconverged_at, Some(0));
    }

    #[test]
    fn dyn_trait_objects_work() {
        let trace = looping_trace(100);
        let (enc, dec) = window_codec(WindowConfig::new(Width::W32, 8));
        let mut enc: Box<dyn Encoder> = Box::new(enc);
        let mut dec: Box<dyn Decoder> = Box::new(dec);
        let mut fault: Box<dyn FaultModel> = Box::new(SingleFlip::new(5, 1));
        let r = FaultChannel::default().run(enc.as_mut(), dec.as_mut(), fault.as_mut(), &trace);
        assert_eq!(r.words, 100);
        let _ = r;
        let _unused: Word = 0;
    }

    #[test]
    fn run_pair_matches_run_on_split_ends() {
        let trace = looping_trace(400);
        let (enc, dec) = window_codec(WindowConfig::new(Width::W32, 8));
        let mut pair = buscoding::Transcoder::new("window(8)", enc, dec);
        let mut fault = SingleFlip::new(37, 4);
        let bundled = FaultChannel::default().run_pair(&mut pair, &mut fault, &trace);
        let (mut enc, mut dec) = window_codec(WindowConfig::new(Width::W32, 8));
        let mut fault = SingleFlip::new(37, 4);
        let split = FaultChannel::default().run(&mut enc, &mut dec, &mut fault, &trace);
        assert_eq!(bundled, split);
    }
}
