//! Property tests for the desync/recovery guarantees of the robust
//! wrappers, over every predictive codec family.
//!
//! The two claims under test (docs/ROBUSTNESS.md):
//!
//! 1. a parity sideband detects *any* single injected line flip in the
//!    cycle it occurs, on any scheme, any trace;
//! 2. under epoch resynchronization plus bounded-recovery decode, a
//!    single flip anywhere leaves the pair provably reconverged from
//!    the next epoch boundary on — it is either detected (and absorbed
//!    as a resync event) or its corruption ends at the boundary.

use buscoding::predict::{
    context_value_codec, fcm_codec, stride_codec, window_codec, ContextConfig, FcmConfig,
    StrideConfig, WindowConfig,
};
use buscoding::robust::{epoch_wrap, parity_wrap, RecoveringDecoder};
use buscoding::{Decoder, Encoder};
use busfault::{ErrorPolicy, FaultChannel, SingleFlip};
use bustrace::{Trace, Width};
use proptest::prelude::*;

/// Every predictive codec family, freshly constructed.
fn codec(family: usize) -> (Box<dyn Encoder>, Box<dyn Decoder>) {
    let w = Width::W32;
    match family {
        0 => {
            let (e, d) = window_codec(WindowConfig::new(w, 8));
            (Box::new(e), Box::new(d))
        }
        1 => {
            let (e, d) = stride_codec(StrideConfig::new(w, 4));
            (Box::new(e), Box::new(d))
        }
        2 => {
            let (e, d) = context_value_codec(ContextConfig::new(w, 28, 8).with_divide_period(512));
            (Box::new(e), Box::new(d))
        }
        _ => {
            let (e, d) = fcm_codec(FcmConfig::new(w, 2, 10));
            (Box::new(e), Box::new(d))
        }
    }
}

/// Word streams mixing hot repeats, strided runs and noise — the
/// regimes where the predictors carry real state worth desyncing.
fn word_stream() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            3 => 0u64..6,
            3 => (0u64..50).prop_map(|k| 0x1000 + 4 * k),
            2 => any::<u32>().prop_map(u64::from),
        ],
        80..220,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Claim 1: the parity sideband turns every single-line flip into a
    /// `RoundTripError` at exactly the flip step, whatever the scheme.
    #[test]
    fn parity_detects_every_single_flip(
        words in word_stream(),
        family in 0usize..4,
        at_pct in 0u64..100,
        line_pick in any::<u32>(),
    ) {
        let trace = Trace::from_values(Width::W32, words);
        let (enc, dec) = codec(family);
        let (mut enc, mut dec) = parity_wrap(enc, dec);
        let at = (trace.len() - 1) as u64 * at_pct / 100;
        let line = line_pick % enc.lines();
        let mut fault = SingleFlip::new(at, line);
        let report = FaultChannel::new(ErrorPolicy::Continue)
            .run(&mut enc, &mut dec, &mut fault, &trace);
        prop_assert_eq!(report.faulted_steps, 1);
        prop_assert!(report.detected_errors >= 1, "flip went undetected: {:?}", report);
        prop_assert_eq!(report.first_detection_step, Some(at));
        prop_assert_eq!(report.detection_latency(), Some(0));
    }

    /// Claim 2: epoch resync + recovering decode bounds the damage of a
    /// single flip to the epoch it lands in — every word from the next
    /// boundary on decodes correctly, on every predictive family.
    #[test]
    fn single_flip_reconverges_within_epoch(
        words in word_stream(),
        family in 0usize..4,
        interval in prop_oneof![Just(16u64), Just(32), Just(64)],
        at_pct in 0u64..100,
        line_pick in any::<u32>(),
    ) {
        let trace = Trace::from_values(Width::W32, words.clone());
        let (enc, dec) = codec(family);
        let dec = RecoveringDecoder::new(dec, Width::W32);
        let (mut enc, mut dec) = epoch_wrap(enc, dec, interval);
        let at = (trace.len() - 1) as u64 * at_pct / 100;
        let line = line_pick % enc.lines();
        let boundary = (at / interval + 1) * interval;

        enc.reset();
        dec.reset();
        let mut wrong_after_boundary = Vec::new();
        for (i, v) in trace.iter().enumerate() {
            let mut state = enc.encode(v);
            if i as u64 == at {
                state ^= 1u64 << line;
            }
            // The recovering decoder never reports an error upward.
            let got = dec.decode(state).unwrap();
            if i as u64 >= boundary && got != v {
                wrong_after_boundary.push(i);
            }
        }
        prop_assert!(
            wrong_after_boundary.is_empty(),
            "family {} interval {} flip@{} line {}: wrong words after boundary {}: {:?}",
            family, interval, at, line, boundary, wrong_after_boundary
        );
    }

    /// The flip is never silently ignored when it matters: either it is
    /// detected/absorbed (resync event), or it corrupts at least one
    /// word, or it was genuinely harmless (the flipped state decoded to
    /// the right word and left equivalent decoder state) — in which
    /// case the whole stream must still be correct.
    #[test]
    fn single_flip_is_accounted_for(
        words in word_stream(),
        family in 0usize..4,
        line_pick in any::<u32>(),
    ) {
        let trace = Trace::from_values(Width::W32, words);
        let (enc, dec) = codec(family);
        let dec = RecoveringDecoder::new(dec, Width::W32);
        let (mut enc, mut dec) = epoch_wrap(enc, dec, 32);
        let at = (trace.len() / 2) as u64;
        let line = line_pick % enc.lines();
        let mut fault = SingleFlip::new(at, line);
        let report = FaultChannel::new(ErrorPolicy::Continue)
            .run(&mut enc, &mut dec, &mut fault, &trace);
        let resyncs = dec.inner().resync_events();
        prop_assert!(
            resyncs > 0 || report.corrupted_words > 0 || report.clean(),
            "flip neither detected, corrupting, nor harmless: {:?}",
            report
        );
        // And in every case the pair is back in sync by the end.
        prop_assert!(report.resynchronized(), "{:?}", report);
    }
}
