//! Property tests for the adaptive controller's reconvergence
//! guarantee under fault injection.
//!
//! The claim (docs/ADAPTIVE.md): because every decision boundary
//! flushes the live pair to power-on, a single injected line flip —
//! *including one landing in the very cycle a scheme switch takes
//! effect* — corrupts at most the remainder of its decision window.
//! From the next boundary on, every word decodes correctly.

use busadapt::{AdaptiveConfig, AdaptiveTranscoder, GreedyShadowPolicy, OraclePolicy};
use busfault::{FaultChannel, SingleFlip};
use bustrace::{Trace, Width};
use proptest::prelude::*;

const CANDIDATES: [&str; 2] = ["window(8)", "stride(4)"];

/// Word streams mixing hot repeats, strided runs and noise, long
/// enough to hold several decision windows at every tested period.
fn word_stream() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            3 => 0u64..6,
            3 => (0u64..50).prop_map(|k| 0x1000 + 4 * k),
            2 => any::<u32>().prop_map(u64::from),
        ],
        100..240,
    )
}

/// An adaptive controller forced to switch schemes at *every* boundary
/// by an alternating oracle schedule — so a flip aimed at a boundary
/// step always coincides with a live scheme switch.
fn always_switching(period: u64, windows: usize) -> AdaptiveTranscoder {
    let schedule: Vec<usize> = (0..windows.max(2)).map(|w| w % 2).collect();
    let cfg = AdaptiveConfig::new(Width::W32, CANDIDATES, period).with_initial(0);
    AdaptiveTranscoder::new(cfg, Box::new(OraclePolicy::new(schedule))).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A flip injected in the same cycle as a scheme switch (the
    /// boundary word) reconverges within one epoch.
    #[test]
    fn flip_at_a_switch_cycle_reconverges_within_one_epoch(
        words in word_stream(),
        period_pick in 0usize..2,
        boundary_pick in 1u64..8,
        line_pick in any::<u32>(),
    ) {
        let period = [16u64, 32][period_pick];
        let trace = Trace::from_values(Width::W32, words);
        let len = trace.len() as u64;
        // Pick a boundary with at least one full window after it, so
        // "reconverged by the next boundary" is observable.
        let last_usable = (len - 1) / period - 1;
        prop_assume!(last_usable >= 1);
        let k = 1 + (boundary_pick - 1) % last_usable;
        let flip_at = k * period;

        let mut adaptive = always_switching(period, (len / period) as usize + 2);
        let lines = adaptive.lines();
        let mut fault = SingleFlip::new(flip_at, line_pick % lines);
        let (report, adapt) =
            FaultChannel::default().run_adaptive(&mut adaptive, &mut fault, &trace);

        // The alternating schedule really did switch at every boundary,
        // so the flip landed in a switch cycle.
        prop_assert_eq!(adapt.switches, adapt.windows, "schedule must force a switch per boundary");
        prop_assert!(adapt.switch_log.iter().any(|s| s.at_word == flip_at));

        // Bounded recovery absorbs any detection; nothing halts.
        prop_assert_eq!(report.detected_errors, 0, "{:?}", report);
        prop_assert!(report.resynchronized(), "{:?} / {:?}", report, adapt);
        prop_assert!(
            report.reconverged_at.unwrap() <= flip_at + period,
            "corruption outlived the epoch: {:?}", report
        );
    }

    /// The same bound holds for a flip anywhere in a window, with the
    /// controller running a real online policy instead of a forced
    /// schedule.
    #[test]
    fn any_single_flip_reconverges_within_one_epoch(
        words in word_stream(),
        period_pick in 0usize..2,
        at_pct in 0u64..100,
        line_pick in any::<u32>(),
    ) {
        let period = [16u64, 32][period_pick];
        let trace = Trace::from_values(Width::W32, words);
        let len = trace.len() as u64;
        let flip_at = (len - 1) * at_pct / 100;
        let next_boundary = (flip_at / period + 1) * period;
        prop_assume!(next_boundary < len);

        let cfg = AdaptiveConfig::new(Width::W32, CANDIDATES, period);
        let mut adaptive =
            AdaptiveTranscoder::new(cfg, Box::new(GreedyShadowPolicy::new(0.05))).unwrap();
        let lines = adaptive.lines();
        let mut fault = SingleFlip::new(flip_at, line_pick % lines);
        let (report, _adapt) =
            FaultChannel::default().run_adaptive(&mut adaptive, &mut fault, &trace);

        prop_assert!(report.resynchronized(), "{:?}", report);
        prop_assert!(
            report.reconverged_at.unwrap() <= next_boundary,
            "corruption outlived the epoch: {:?}", report
        );
    }
}

#[test]
fn clean_adaptive_channel_reports_clean() {
    let trace = Trace::from_values(Width::W32, (0..400u64).map(|i| i % 9));
    let mut adaptive = always_switching(32, 16);
    let (report, adapt) =
        FaultChannel::default().run_adaptive(&mut adaptive, &mut busfault::NoFault, &trace);
    assert!(report.clean(), "{report:?}");
    assert_eq!(adapt.words, 400);
    assert!(adapt.switches > 0);
}
