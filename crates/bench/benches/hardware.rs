//! Criterion micro-benchmarks: cycle-level hardware models and the
//! kernel simulator — the other two hot paths of the harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bustrace::generators::{TraceGenerator, WorkingSetGen};
use bustrace::{Trace, Width};
use hwmodel::{ContextHardware, ContextHwConfig, WindowHardware};
use simcpu::{Benchmark, BusKind};

fn workload(n: usize) -> Trace {
    WorkingSetGen::new(Width::W32, 32, 0.8, 0.01, 7).generate(n)
}

fn bench_hardware_models(c: &mut Criterion) {
    let trace = workload(50_000);
    let mut group = c.benchmark_group("hardware_models");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("window8", |b| {
        b.iter(|| {
            let mut hw = WindowHardware::new(8);
            for v in trace.iter() {
                hw.present(v);
            }
            hw.ops().total_ops()
        })
    });
    for table in [16usize, 28, 64] {
        group.bench_with_input(BenchmarkId::new("context", table), &table, |b, &table| {
            b.iter(|| {
                let mut hw = ContextHardware::new(ContextHwConfig {
                    table,
                    shift: 8,
                    divide_period: 4096,
                    promote_threshold: 2,
                });
                for v in trace.iter() {
                    hw.present(v);
                }
                hw.ops().total_ops()
            })
        });
    }
    group.finish();
}

fn bench_kernel_simulation(c: &mut Criterion) {
    use simcpu::OooConfig;
    let mut group = c.benchmark_group("kernel_simulation");
    group.sample_size(10);
    for b in [Benchmark::Gcc, Benchmark::Swim] {
        group.throughput(Throughput::Elements(20_000));
        group.bench_with_input(
            BenchmarkId::new("register_trace", b.name()),
            &b,
            |bench, &b| bench.iter(|| b.trace(BusKind::Register, 20_000, 1).len()),
        );
        group.bench_with_input(
            BenchmarkId::new("register_trace_ooo", b.name()),
            &b,
            |bench, &b| {
                bench.iter(|| {
                    b.trace_ooo(BusKind::Register, 20_000, 1, OooConfig::default())
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_hardware_models, bench_kernel_simulation
}
criterion_main!(benches);
