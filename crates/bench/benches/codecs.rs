//! Criterion micro-benchmarks: encoding throughput of every scheme.
//!
//! These are performance-regression guards for the harness itself — the
//! figure sweeps encode hundreds of millions of words, so codec
//! throughput directly bounds experiment turnaround.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use bench::schemes::Scheme;
use bustrace::generators::{TraceGenerator, WorkingSetGen};
use bustrace::{Trace, Width};

fn workload(n: usize) -> Trace {
    WorkingSetGen::new(Width::W32, 32, 0.8, 0.01, 7).generate(n)
}

fn bench_codecs(c: &mut Criterion) {
    let trace = workload(50_000);
    let mut group = c.benchmark_group("encode_throughput");
    group.throughput(Throughput::Elements(trace.len() as u64));
    let schemes = [
        ("identity-baseline", None),
        ("window8", Some(Scheme::Window { entries: 8 })),
        ("window64", Some(Scheme::Window { entries: 64 })),
        ("stride8", Some(Scheme::Stride { strides: 8 })),
        ("stride32", Some(Scheme::Stride { strides: 32 })),
        (
            "context-value-28-8",
            Some(Scheme::ContextValue {
                table: 28,
                shift: 8,
                divide: 4096,
            }),
        ),
        (
            "context-transition-28-8",
            Some(Scheme::ContextTransition {
                table: 28,
                shift: 8,
                divide: 4096,
            }),
        ),
        (
            "bus-invert",
            Some(Scheme::Inversion {
                chunks: 1,
                design_lambda: 0.0,
            }),
        ),
        (
            "inversion-64pat",
            Some(Scheme::Inversion {
                chunks: 6,
                design_lambda: 1.0,
            }),
        ),
    ];
    for (name, scheme) in schemes {
        group.bench_with_input(BenchmarkId::from_parameter(name), &trace, |b, tr| {
            b.iter(|| match scheme {
                Some(s) => s.activity(tr).tau(),
                None => bench::schemes::baseline_activity(tr).tau(),
            })
        });
    }
    group.finish();
}

fn bench_activity_counting(c: &mut Criterion) {
    let trace = workload(100_000);
    let mut group = c.benchmark_group("activity_counting");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("tau_kappa", |b| {
        b.iter(|| {
            let mut a = buscoding::Activity::new(32);
            for v in trace.iter() {
                a.step(v);
            }
            (a.tau(), a.kappa())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_codecs, bench_activity_counting
}
criterion_main!(benches);
