//! CSV and console reporting for the experiment harness.

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A tabular result: header plus rows of equal arity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment identifier, e.g. `fig18` — becomes the CSV filename.
    pub id: String,
    /// One-line description printed above the table.
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header's, or if any cell
    /// contains a comma or newline (the CSV output is deliberately
    /// unquoted, so such cells would corrupt the column structure).
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row arity mismatch in {}",
            self.id
        );
        for cell in &row {
            assert!(
                !cell.contains(',') && !cell.contains('\n'),
                "cell {cell:?} would corrupt the CSV of {}",
                self.id
            );
        }
        self.rows.push(row);
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes `<dir>/<id>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let mut f = fs::File::create(dir.join(format!("{}.csv", self.id)))?;
        f.write_all(self.to_csv().as_bytes())
    }

    /// Renders an aligned console table.
    pub fn to_console(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = format!("== {} [{}] ==\n", self.title, self.id);
        out.push_str(&line(&self.header));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float at fixed precision for table cells.
pub fn f(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Formats an optional crossover length ("-" when absent).
pub fn opt_mm(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.1}"),
        None => "-".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new("t1", "test", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "corrupt the CSV")]
    fn comma_cells_rejected() {
        let mut t = Table::new("t1", "test", &["a"]);
        t.push(vec!["x,y".into()]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("t1", "test", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn console_alignment() {
        let mut t = Table::new("t1", "test", &["name", "v"]);
        t.push(vec!["x".into(), "10".into()]);
        t.push(vec!["longer".into(), "7".into()]);
        let s = t.to_console();
        assert!(s.contains("== test [t1] =="));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("repro_report_test");
        let mut t = Table::new("unit", "test", &["a"]);
        t.push(vec!["1".into()]);
        t.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("unit.csv")).unwrap();
        assert_eq!(content, "a\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(opt_mm(Some(11.52)), "11.5");
        assert_eq!(opt_mm(None), "-");
    }
}
