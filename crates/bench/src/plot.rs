//! Dependency-free SVG line charts for the experiment results.
//!
//! Every figure-class experiment can be rendered as an SVG so the shape
//! comparison against the paper's plots is visual, not just numeric.
//! The renderer is deliberately small: line series over linear or log₁₀
//! x-axes, auto-scaled y, nice ticks, and a legend.

use std::fmt::Write as _;

use crate::report::Table;

/// One plotted line.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// (x, y) points in data space, in x order.
    pub points: Vec<(f64, f64)>,
}

/// Chart-level options.
#[derive(Debug, Clone, PartialEq)]
pub struct ChartConfig {
    /// Title above the plot area.
    pub title: String,
    /// X-axis caption.
    pub x_label: String,
    /// Y-axis caption.
    pub y_label: String,
    /// Use a log₁₀ x-axis (window sizes, divide periods, λ sweeps).
    pub log_x: bool,
    /// Canvas width in pixels.
    pub width: u32,
    /// Canvas height in pixels.
    pub height: u32,
}

impl ChartConfig {
    /// A chart with the default 860×480 canvas and a linear x-axis.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        ChartConfig {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            log_x: false,
            width: 860,
            height: 480,
        }
    }

    /// Switches to a log₁₀ x-axis.
    #[must_use]
    pub fn with_log_x(mut self) -> Self {
        self.log_x = true;
        self
    }
}

/// A categorical palette that stays distinguishable out to the 18-line
/// figures (17 benchmarks + random).
const PALETTE: [&str; 18] = [
    "#4c78a8", "#f58518", "#54a24b", "#e45756", "#72b7b2", "#9d755d", "#b279a2", "#ff9da6",
    "#79706e", "#bab0ac", "#d67195", "#5c9ecc", "#8ca252", "#bd9e39", "#ad494a", "#a55194",
    "#6b6ecf", "#637939",
];

const MARGIN_LEFT: f64 = 64.0;
const MARGIN_RIGHT: f64 = 170.0;
const MARGIN_TOP: f64 = 40.0;
const MARGIN_BOTTOM: f64 = 52.0;

/// "Nice" tick positions covering `[min, max]` with about `target`
/// intervals (1/2/5 ladder).
fn nice_ticks(min: f64, max: f64, target: usize) -> Vec<f64> {
    assert!(min.is_finite() && max.is_finite() && target >= 1);
    if (max - min).abs() < f64::EPSILON {
        return vec![min];
    }
    let raw_step = (max - min) / target as f64;
    let magnitude = 10f64.powf(raw_step.log10().floor());
    let step = [1.0, 2.0, 5.0, 10.0]
        .iter()
        .map(|&m| m * magnitude)
        .find(|&s| s >= raw_step)
        .unwrap_or(10.0 * magnitude);
    let start = (min / step).floor() * step;
    let mut ticks = Vec::new();
    let mut t = start;
    while t <= max + step * 1e-9 {
        if t >= min - step * 1e-9 {
            // Snap floating noise to a clean representation.
            ticks.push((t / step).round() * step);
        }
        t += step;
    }
    ticks
}

fn escape_xml(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Renders the chart to an SVG document.
///
/// Non-finite points and (for log axes) non-positive x values are
/// skipped. Returns `None` when no drawable points remain.
pub fn render(config: &ChartConfig, series: &[Series]) -> Option<String> {
    let tx = |x: f64| if config.log_x { x.log10() } else { x };
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for s in series {
        for &(x, y) in &s.points {
            if !x.is_finite() || !y.is_finite() || (config.log_x && x <= 0.0) {
                continue;
            }
            xs.push(tx(x));
            ys.push(y);
        }
    }
    if xs.is_empty() {
        return None;
    }
    let (x_min, x_max) = bounds(&xs);
    let (mut y_min, mut y_max) = bounds(&ys);
    if (y_max - y_min).abs() < f64::EPSILON {
        y_min -= 1.0;
        y_max += 1.0;
    }
    // Pad y by 5%.
    let pad = 0.05 * (y_max - y_min);
    let (y_min, y_max) = (y_min - pad, y_max + pad);

    let plot_w = config.width as f64 - MARGIN_LEFT - MARGIN_RIGHT;
    let plot_h = config.height as f64 - MARGIN_TOP - MARGIN_BOTTOM;
    let sx = move |x: f64| {
        MARGIN_LEFT
            + if (x_max - x_min).abs() < f64::EPSILON {
                plot_w / 2.0
            } else {
                plot_w * (x - x_min) / (x_max - x_min)
            }
    };
    let sy = move |y: f64| MARGIN_TOP + plot_h * (1.0 - (y - y_min) / (y_max - y_min));

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif">"#,
        w = config.width,
        h = config.height
    );
    let _ = write!(
        svg,
        r#"<rect width="{}" height="{}" fill="white"/>"#,
        config.width, config.height
    );
    let _ = write!(
        svg,
        r#"<text x="{}" y="22" font-size="15" font-weight="bold">{}</text>"#,
        MARGIN_LEFT,
        escape_xml(&config.title)
    );

    // Gridlines + y ticks.
    for t in nice_ticks(y_min, y_max, 6) {
        let y = sy(t);
        let _ = write!(
            svg,
            r##"<line x1="{:.1}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#ddd"/>"##,
            MARGIN_LEFT,
            MARGIN_LEFT + plot_w
        );
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-size="11" text-anchor="end">{}</text>"#,
            MARGIN_LEFT - 6.0,
            y + 4.0,
            format_tick(t)
        );
    }
    // X ticks.
    let x_ticks = if config.log_x {
        let lo = x_min.floor() as i32;
        let hi = x_max.ceil() as i32;
        (lo..=hi)
            .map(f64::from)
            .filter(|&t| t >= x_min - 1e-9 && t <= x_max + 1e-9)
            .collect()
    } else {
        nice_ticks(x_min, x_max, 7)
    };
    for t in x_ticks {
        let x = sx(t);
        let _ = write!(
            svg,
            r##"<line x1="{x:.1}" y1="{:.1}" x2="{x:.1}" y2="{:.1}" stroke="#eee"/>"##,
            MARGIN_TOP,
            MARGIN_TOP + plot_h
        );
        let label = if config.log_x {
            format_tick(10f64.powf(t))
        } else {
            format_tick(t)
        };
        let _ = write!(
            svg,
            r#"<text x="{x:.1}" y="{:.1}" font-size="11" text-anchor="middle">{label}</text>"#,
            MARGIN_TOP + plot_h + 16.0
        );
    }
    // Axes.
    let _ = write!(
        svg,
        r##"<rect x="{:.1}" y="{:.1}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="#555"/>"##,
        MARGIN_LEFT, MARGIN_TOP
    );
    let _ = write!(
        svg,
        r#"<text x="{:.1}" y="{:.1}" font-size="12" text-anchor="middle">{}</text>"#,
        MARGIN_LEFT + plot_w / 2.0,
        config.height as f64 - 12.0,
        escape_xml(&config.x_label)
    );
    let _ = write!(
        svg,
        r#"<text x="16" y="{:.1}" font-size="12" text-anchor="middle" transform="rotate(-90 16 {:.1})">{}</text>"#,
        MARGIN_TOP + plot_h / 2.0,
        MARGIN_TOP + plot_h / 2.0,
        escape_xml(&config.y_label)
    );

    // Series.
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let mut path = String::new();
        let mut n = 0;
        for &(x, y) in &s.points {
            if !x.is_finite() || !y.is_finite() || (config.log_x && x <= 0.0) {
                continue;
            }
            let _ = write!(path, "{:.1},{:.1} ", sx(tx(x)), sy(y));
            n += 1;
        }
        if n == 0 {
            continue;
        }
        if n == 1 {
            // A single point gets a dot instead of a polyline.
            let coords: Vec<&str> = path.trim().split(',').collect();
            let _ = write!(
                svg,
                r#"<circle cx="{}" cy="{}" r="3" fill="{color}"/>"#,
                coords[0], coords[1]
            );
        } else {
            let _ = write!(
                svg,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
                path.trim()
            );
        }
        // Legend entry.
        let ly = MARGIN_TOP + 14.0 * i as f64;
        let lx = MARGIN_LEFT + plot_w + 12.0;
        let _ = write!(
            svg,
            r#"<line x1="{lx:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{color}" stroke-width="3"/>"#,
            ly,
            lx + 16.0,
            ly
        );
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" font-size="11">{}</text>"#,
            lx + 20.0,
            ly + 4.0,
            escape_xml(&s.label)
        );
    }
    svg.push_str("</svg>");
    Some(svg)
}

fn bounds(v: &[f64]) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &x in v {
        min = min.min(x);
        max = max.max(x);
    }
    (min, max)
}

fn format_tick(t: f64) -> String {
    if t == 0.0 {
        return "0".into();
    }
    let a = t.abs();
    if !(0.01..10_000.0).contains(&a) {
        format!("{t:.0e}")
    } else if a >= 10.0 || (t - t.round()).abs() < 1e-9 {
        format!("{t:.0}")
    } else {
        format!("{t:.2}")
    }
}

/// How to turn an experiment [`Table`] into a chart.
#[derive(Debug, Clone)]
pub struct PlotSpec {
    /// Column holding x values.
    pub x_col: &'static str,
    /// Column holding y values.
    pub y_col: &'static str,
    /// Column whose distinct values become series, or `None` when every
    /// non-x column is its own series (wide format, e.g. fig5/fig6).
    pub series_col: Option<&'static str>,
    /// Log₁₀ x-axis.
    pub log_x: bool,
    /// Y-axis caption.
    pub y_label: &'static str,
    /// X-axis caption.
    pub x_label: &'static str,
}

/// The spec for an experiment id, when it has a natural line-chart form.
pub fn spec_for(id: &str) -> Option<PlotSpec> {
    let sweep = |x_label| PlotSpec {
        x_col: "x",
        y_col: "percent_removed",
        series_col: Some("workload"),
        log_x: false,
        y_label: "% energy removed",
        x_label,
    };
    Some(match id {
        "fig5" => PlotSpec {
            x_col: "length_mm",
            y_col: "",
            series_col: None,
            log_x: false,
            y_label: "energy (pJ)",
            x_label: "wire length (mm)",
        },
        "fig6" => PlotSpec {
            x_col: "length_mm",
            y_col: "",
            series_col: None,
            log_x: false,
            y_label: "delay (ps)",
            x_label: "wire length (mm)",
        },
        "fig7" => PlotSpec {
            x_col: "k",
            y_col: "coverage",
            series_col: Some("workload"),
            log_x: true,
            y_label: "fraction of trace covered",
            x_label: "unique values (most frequent first)",
        },
        "fig8" => PlotSpec {
            x_col: "window",
            y_col: "unique_fraction",
            series_col: Some("workload"),
            log_x: true,
            y_label: "avg fraction unique in window",
            x_label: "window size",
        },
        "fig15" => PlotSpec {
            x_col: "actual_lambda",
            y_col: "percent_remaining",
            series_col: Some("traffic"),
            log_x: true,
            y_label: "% energy remaining",
            x_label: "actual wire lambda",
        },
        "fig16" | "fig17" => sweep("stride predictors"),
        "fig18" | "fig19" => sweep("shift register size"),
        "fig20" | "fig21" | "fig22" | "fig23" => sweep("frequency table size"),
        "fig26" => PlotSpec {
            x_col: "entries",
            y_col: "budget_pj",
            series_col: Some("design"),
            log_x: false,
            y_label: "energy budget (pJ/cycle)",
            x_label: "total entries",
        },
        "fig35" | "fig36" => PlotSpec {
            x_col: "length_mm",
            y_col: "normalized_energy",
            series_col: Some("workload"),
            log_x: false,
            y_label: "total energy / un-encoded",
            x_label: "wire length (mm)",
        },
        "fig37" | "fig38" => PlotSpec {
            x_col: "length_mm",
            y_col: "median_normalized_energy",
            series_col: Some("technology"),
            log_x: false,
            y_label: "median normalized energy",
            x_label: "wire length (mm)",
        },
        "ext-wirehist" => PlotSpec {
            x_col: "wire",
            y_col: "",
            series_col: None,
            log_x: false,
            y_label: "transitions / 1000 values",
            x_label: "wire (bit position)",
        },
        _ => return None,
    })
}

/// Builds the chart for a table under a spec. For fig37/38 the series
/// key concatenates the technology/entries/suite columns.
pub fn chart_table(table: &Table, spec: &PlotSpec) -> Option<String> {
    let col = |name: &str| table.header.iter().position(|h| h == name);
    let xi = col(spec.x_col)?;
    let mut series: Vec<Series> = Vec::new();
    let mut push_point =
        |label: String, x: f64, y: f64| match series.iter_mut().find(|s| s.label == label) {
            Some(s) => s.points.push((x, y)),
            None => series.push(Series {
                label,
                points: vec![(x, y)],
            }),
        };

    if let Some(series_col) = spec.series_col {
        let yi = col(spec.y_col)?;
        // Series key: the named column, plus any extra label columns
        // (those that are neither x nor y) for multi-key figures.
        let si = col(series_col)?;
        let extra: Vec<usize> = table
            .header
            .iter()
            .enumerate()
            .filter(|&(i, h)| i != xi && i != yi && i != si && h != "scheme")
            .map(|(i, _)| i)
            .collect();
        for row in &table.rows {
            let (Ok(x), Ok(y)) = (row[xi].parse::<f64>(), row[yi].parse::<f64>()) else {
                continue;
            };
            let mut label = row[si].clone();
            for &e in &extra {
                label.push(' ');
                label.push_str(&row[e]);
            }
            push_point(label, x, y);
        }
    } else {
        // Wide format: every non-x column is a series.
        for (i, h) in table.header.iter().enumerate() {
            if i == xi {
                continue;
            }
            for row in &table.rows {
                let (Ok(x), Ok(y)) = (row[xi].parse::<f64>(), row[i].parse::<f64>()) else {
                    continue;
                };
                push_point(h.clone(), x, y);
            }
        }
    }
    for s in &mut series {
        s.points
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite x"));
    }
    let mut config = ChartConfig::new(&table.title, spec.x_label, spec.y_label);
    if spec.log_x {
        config = config.with_log_x();
    }
    render(&config, &series)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_series() -> Vec<Series> {
        vec![
            Series {
                label: "a".into(),
                points: vec![(1.0, 2.0), (2.0, 4.0), (3.0, 3.0)],
            },
            Series {
                label: "b".into(),
                points: vec![(1.0, 1.0), (3.0, 9.0)],
            },
        ]
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = render(&ChartConfig::new("t", "x", "y"), &demo_series()).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("</text>"));
        // Balanced quotes (cheap well-formedness proxy).
        assert_eq!(svg.matches('"').count() % 2, 0);
    }

    #[test]
    fn escapes_labels() {
        let cfg = ChartConfig::new("a < b & c", "x", "y");
        let svg = render(&cfg, &demo_series()).unwrap();
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(!svg.contains("a < b & c"));
    }

    #[test]
    fn empty_series_render_none() {
        assert!(render(&ChartConfig::new("t", "x", "y"), &[]).is_none());
        let only_nan = vec![Series {
            label: "n".into(),
            points: vec![(f64::NAN, 1.0)],
        }];
        assert!(render(&ChartConfig::new("t", "x", "y"), &only_nan).is_none());
    }

    #[test]
    fn log_axis_skips_nonpositive_points() {
        let s = vec![Series {
            label: "l".into(),
            points: vec![(0.0, 1.0), (1.0, 2.0), (10.0, 3.0), (100.0, 4.0)],
        }];
        let svg = render(&ChartConfig::new("t", "x", "y").with_log_x(), &s).unwrap();
        // Three drawable points survive.
        let poly = svg.split("<polyline").nth(1).unwrap();
        let points_attr = poly.split('"').nth(1).unwrap();
        assert_eq!(points_attr.split_whitespace().count(), 3);
    }

    #[test]
    fn nice_ticks_are_round_and_cover() {
        let t = nice_ticks(0.0, 100.0, 5);
        assert_eq!(t, vec![0.0, 20.0, 40.0, 60.0, 80.0, 100.0]);
        let t = nice_ticks(-7.0, 13.0, 5);
        assert!(t.first().unwrap() >= &-7.0 && t.last().unwrap() <= &13.0);
        assert!(t.len() >= 3);
        let t = nice_ticks(5.0, 5.0, 5);
        assert_eq!(t, vec![5.0]);
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(format_tick(0.0), "0");
        assert_eq!(format_tick(12.0), "12");
        assert_eq!(format_tick(2.5), "2.50");
        assert_eq!(format_tick(100_000.0), "1e5");
    }

    #[test]
    fn chart_from_long_table() {
        let mut t = Table::new(
            "fig19",
            "demo",
            &["workload", "x", "scheme", "percent_removed"],
        );
        for (w, x, p) in [
            ("li", 2, 10.0),
            ("li", 8, 40.0),
            ("go", 2, 1.0),
            ("go", 8, 2.0),
        ] {
            t.push(vec![
                w.into(),
                x.to_string(),
                "window".into(),
                p.to_string(),
            ]);
        }
        let spec = spec_for("fig19").unwrap();
        let svg = chart_table(&t, &spec).unwrap();
        assert!(svg.contains(">li<"));
        assert!(svg.contains(">go<"));
    }

    #[test]
    fn chart_from_wide_table() {
        let mut t = Table::new("fig5", "demo", &["length_mm", "rep_013", "wire_013"]);
        t.push(vec!["5".into(), "1.0".into(), "0.4".into()]);
        t.push(vec!["10".into(), "2.0".into(), "0.8".into()]);
        let spec = spec_for("fig5").unwrap();
        let svg = chart_table(&t, &spec).unwrap();
        assert!(svg.contains(">rep_013<"));
        assert!(svg.contains(">wire_013<"));
    }

    #[test]
    fn tables_without_spec_are_skipped() {
        assert!(spec_for("table1").is_none());
        assert!(spec_for("headline").is_none());
    }

    #[test]
    fn multi_key_series_concatenate_labels() {
        let mut t = Table::new(
            "fig37",
            "demo",
            &[
                "technology",
                "entries",
                "suite",
                "length_mm",
                "median_normalized_energy",
            ],
        );
        t.push(vec![
            "0.13um".into(),
            "8".into(),
            "int".into(),
            "5".into(),
            "1.2".into(),
        ]);
        t.push(vec![
            "0.13um".into(),
            "16".into(),
            "fp".into(),
            "5".into(),
            "1.1".into(),
        ]);
        let spec = spec_for("fig37").unwrap();
        let svg = chart_table(&t, &spec).unwrap();
        assert!(svg.contains("0.13um 8 int"));
        assert!(svg.contains("0.13um 16 fp"));
    }
}
