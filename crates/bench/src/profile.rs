//! Phase attribution: folding a busprobe span tree into the pipeline
//! phases every experiment passes through.
//!
//! The span paths recorded by [`busprobe::trace`] are exact but
//! open-ended — new instrumentation points appear as the code grows.
//! The bench schema and the regression gate want a *stable* coarse
//! vocabulary instead, so this module maps each span (by its leaf
//! segment, the name the probe site declared) onto one of five phases:
//!
//! | phase | what it covers | typical leaves |
//! |---|---|---|
//! | `trace_gen` | synthesizing workload traces | `bench.workload.trace`, `simcpu.*`, `bench.session.acquire`, `bustrain.corpus.*` |
//! | `encode` | running encoder FSMs over traces | `buscoding.codec.evaluate*`, `busadapt.*`, `busfault.*` |
//! | `accumulate` | folding states into τ/κ activity | `buscoding.codec.accumulate`, `bustrain.train*` |
//! | `pricing` | wire/crossover energy models | `wiremodel.*`, `hwmodel.*` |
//! | `emit` | rendering tables, CSVs and plots | `bench.report.*` |
//!
//! Attribution uses **self time** (a span's duration minus its
//! same-thread children), so a phase's seconds never double-count its
//! callees: `buscoding.codec.evaluate_blocks` time goes to `encode`
//! *except* the slice spent inside its `buscoding.codec.accumulate`
//! child, which goes to `accumulate`. Unclassified self time (runner
//! bookkeeping, unspanned code) is reported as `other` by
//! [`phase_breakdown`].

use busprobe::trace::SpanNode;

/// The fixed phase vocabulary, in pipeline order. `other` is appended
/// by [`phase_breakdown`] and is not a classification target.
pub const PHASES: &[&str] = &["trace_gen", "encode", "accumulate", "pricing", "emit"];

/// Classifies one span path into a phase by its leaf segment, or `None`
/// for spans outside the vocabulary (their self time lands in `other`).
pub fn phase_of(path: &str) -> Option<&'static str> {
    let leaf = path.rsplit('/').next().unwrap_or(path);
    if leaf.starts_with("bench.workload.")
        || leaf.starts_with("simcpu.")
        || leaf.starts_with("bustrace.")
        || leaf.starts_with("bustrain.corpus")
        || leaf == "bench.session.acquire"
    {
        Some("trace_gen")
    } else if leaf == "buscoding.codec.accumulate" || leaf.starts_with("bustrain.train") {
        Some("accumulate")
    } else if leaf.starts_with("buscoding.")
        || leaf.starts_with("busadapt.")
        || leaf.starts_with("busfault.")
    {
        Some("encode")
    } else if leaf.starts_with("wiremodel.") || leaf.starts_with("hwmodel.") {
        Some("pricing")
    } else if leaf.starts_with("bench.report.") {
        Some("emit")
    } else {
        None
    }
}

/// Sums classified self time per phase and closes the books against
/// `wall_s`: returns `(phase, seconds)` pairs in [`PHASES`] order with
/// a final `("other", wall − classified)` entry (clamped at zero —
/// timer granularity can put the sum a hair over the wall).
pub fn phase_breakdown(nodes: &[SpanNode], wall_s: f64) -> Vec<(&'static str, f64)> {
    let mut out: Vec<(&'static str, f64)> = PHASES.iter().map(|&p| (p, 0.0)).collect();
    for node in nodes {
        let Some(phase) = phase_of(&node.path) else {
            continue;
        };
        let slot = out
            .iter_mut()
            .find(|(p, _)| *p == phase)
            .expect("phase_of returns only PHASES entries");
        slot.1 += node.self_ns as f64 / 1e9;
    }
    let classified: f64 = out.iter().map(|(_, s)| s).sum();
    out.push(("other", (wall_s - classified).max(0.0)));
    out
}

/// Restricts a drained span list to one experiment's subtree: spans at
/// or under the root span named `id`, with the `id/` prefix stripped
/// (the root itself maps to an empty path and is dropped — its wall
/// time is the record's `wall_s`). Order is preserved.
pub fn subtree(spans: &[busprobe::trace::TraceSpan], id: &str) -> Vec<busprobe::trace::TraceSpan> {
    let prefix = format!("{id}/");
    spans
        .iter()
        .filter(|s| s.path.starts_with(&prefix))
        .map(|s| {
            let mut s = s.clone();
            s.path = s.path[prefix.len()..].to_string();
            s
        })
        .collect()
}

/// Renders aggregated subtree nodes as a `metrics`-shaped JSON object
/// (`path → {count, total_ns, self_ns, max_ns}`), the parallel-mode
/// replacement for a registry snapshot: under concurrency the global
/// registry mixes experiments, but each span subtree is attributable.
pub fn nodes_to_json(nodes: &[SpanNode]) -> busprobe::JsonValue {
    use busprobe::JsonValue;
    let int = |v: u64| {
        i64::try_from(v)
            .map(JsonValue::Int)
            .unwrap_or(JsonValue::Num(v as f64))
    };
    JsonValue::Obj(
        nodes
            .iter()
            .map(|n| {
                (
                    n.path.clone(),
                    JsonValue::Obj(vec![
                        ("count".into(), int(n.count)),
                        ("total_ns".into(), int(n.total_ns)),
                        ("self_ns".into(), int(n.self_ns)),
                        ("max_ns".into(), int(n.max_ns)),
                    ]),
                )
            })
            .collect(),
    )
}

/// Converts aggregated span nodes into registry-style snapshots so the
/// stderr summary renderer can show a per-experiment table in parallel
/// metrics mode.
pub fn nodes_to_snapshots(nodes: &[SpanNode]) -> Vec<busprobe::MetricSnapshot> {
    nodes
        .iter()
        .map(|n| busprobe::MetricSnapshot {
            name: n.path.clone(),
            kind: busprobe::MetricKind::Span {
                count: n.count,
                total_ns: n.total_ns,
                max_ns: n.max_ns,
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use busprobe::trace::TraceSpan;

    fn node(path: &str, self_ns: u64) -> SpanNode {
        SpanNode {
            path: path.into(),
            count: 1,
            total_ns: self_ns,
            self_ns,
            max_ns: self_ns,
            counters: Vec::new(),
        }
    }

    #[test]
    fn leaves_classify_into_the_documented_phases() {
        assert_eq!(phase_of("bench.workload.trace"), Some("trace_gen"));
        assert_eq!(
            phase_of("fig16/bench.session.acquire/bench.workload.trace/simcpu.bench.trace"),
            Some("trace_gen")
        );
        assert_eq!(phase_of("fig16/bench.session.acquire"), Some("trace_gen"));
        assert_eq!(phase_of("fig16/buscoding.codec.evaluate_blocks"), Some("encode"));
        assert_eq!(
            phase_of("fig16/buscoding.codec.evaluate_blocks/buscoding.codec.accumulate"),
            Some("accumulate")
        );
        assert_eq!(
            phase_of("generalize/bustrain.train/bustrain.corpus.trace"),
            Some("trace_gen")
        );
        assert_eq!(phase_of("generalize/bustrain.train"), Some("accumulate"));
        assert_eq!(
            phase_of("generalize/bustrain.train/bustrain.train.accumulate"),
            Some("accumulate")
        );
        assert_eq!(
            phase_of("generalize/bustrain.train/bustrain.train.fit"),
            Some("accumulate")
        );
        assert_eq!(phase_of("x/busadapt.controller.boundary"), Some("encode"));
        assert_eq!(phase_of("x/busfault.channel.run_adaptive"), Some("encode"));
        assert_eq!(phase_of("fig5/wiremodel.repeater.plan"), Some("pricing"));
        assert_eq!(phase_of("fig26/hwmodel.crossover.solve"), Some("pricing"));
        assert_eq!(phase_of("fig16/bench.report.emit"), Some("emit"));
        assert_eq!(phase_of("fig16"), None);
        assert_eq!(phase_of("bench.experiments.adaptive"), None);
    }

    #[test]
    fn breakdown_uses_self_time_and_closes_with_other() {
        let nodes = vec![
            node("fig16/buscoding.codec.evaluate_blocks", 600_000_000),
            node(
                "fig16/buscoding.codec.evaluate_blocks/buscoding.codec.accumulate",
                200_000_000,
            ),
            node("fig16/bench.session.acquire", 100_000_000),
        ];
        let phases = phase_breakdown(&nodes, 1.0);
        let get = |p: &str| phases.iter().find(|(k, _)| *k == p).unwrap().1;
        assert!((get("encode") - 0.6).abs() < 1e-9);
        assert!((get("accumulate") - 0.2).abs() < 1e-9);
        assert!((get("trace_gen") - 0.1).abs() < 1e-9);
        assert!((get("other") - 0.1).abs() < 1e-9);
        assert_eq!(phases.len(), PHASES.len() + 1);
        // Over-attribution clamps instead of going negative.
        let tight = phase_breakdown(&nodes, 0.5);
        assert_eq!(tight.last().unwrap().1, 0.0);
    }

    #[test]
    fn subtree_strips_the_root_prefix() {
        let mk = |path: &str| TraceSpan {
            path: path.into(),
            tid: 1,
            start_ns: 0,
            end_ns: 10,
            counters: Vec::new(),
        };
        let spans = vec![
            mk("fig16"),
            mk("fig16/buscoding.codec.evaluate_blocks"),
            mk("fig17/buscoding.codec.evaluate_blocks"),
        ];
        let sub = subtree(&spans, "fig16");
        assert_eq!(sub.len(), 1);
        assert_eq!(sub[0].path, "buscoding.codec.evaluate_blocks");
    }
}
