//! The shared evaluation session.
//!
//! A full `repro` run executes dozens of experiments, and before this
//! module existed each one regenerated the *same* simcpu kernel traces
//! from scratch — the dominant cost of the run was redundant trace
//! synthesis, not the coding schemes under study. A [`Session`] is the
//! configuration the old `Ctx` carried (`values`, `seed`, `out_dir`)
//! plus two process-wide caches every experiment shares:
//!
//! * a content-addressed [`TraceStore`] — traces keyed by
//!   `(workload, values, seed)`, generated exactly once per run and
//!   held behind `Arc<Trace>`, with an optional on-disk cache in
//!   `<out>/cache/` using the `bustrace::io` text format (validated on
//!   load, regenerated on mismatch);
//! * a memoized baseline-activity table, since nearly every experiment
//!   re-derives the un-encoded bus activity per workload.
//!
//! Both caches are safe to share across the worker threads of
//! [`par_map`](crate::experiments::par_map): per-key `OnceLock` cells
//! guarantee the generator runs once even when two experiments request
//! the same trace concurrently.
//!
//! Construction goes through [`Session::from_env`] (the canonical entry
//! for the `repro` binary) or [`Session::builder`] for tests and
//! examples. Configuration is immutable after construction — there is
//! deliberately no way to mutate `values` or `seed` on a live session,
//! because the store's keys must stay consistent with the configuration
//! that filled it.
//!
//! Store behaviour is observable through `busprobe` counters:
//! `bench.session.trace_hits`, `bench.session.trace_misses`,
//! `bench.session.disk_loads`, `bench.session.disk_rejects`, and
//! `bench.session.baseline_misses`. See `docs/PERFORMANCE.md`.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use buscoding::{Activity, UnknownScheme};
use bustrace::{io as trace_io, Trace};

use crate::schemes::baseline_activity;
use crate::workloads::Workload;

/// One coded-activity request against a [`Session`]: which scheme over
/// which workload, plus the optional knobs the old
/// `activity`/`activity_capped`/`activity_with_len` trio spread across
/// three signatures.
///
/// * [`len`](Self::len) — evaluate at an explicit trace length instead
///   of the session's `values`;
/// * [`cap`](Self::cap) — bound the (possibly overridden) length, the
///   idiom of experiments that limit their own cost;
/// * [`seed`](Self::seed) — evaluate at a different data seed than the
///   session's (the daemon serving mixed-seed clients needs this; batch
///   experiments never set it).
///
/// ```
/// # use bench::{ActivityQuery, Session};
/// # use bench::workloads::Workload;
/// let session = Session::builder().values(2_000).build();
/// let q = ActivityQuery::new("window(8)", Workload::Random).cap(500);
/// let coded = session.activity(&q);
/// assert_eq!(coded.steps(), 500);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityQuery {
    scheme: String,
    workload: Workload,
    len: Option<usize>,
    cap: Option<usize>,
    seed: Option<u64>,
}

impl ActivityQuery {
    /// A query for `scheme` (a canonical registry name, e.g.
    /// `window(8)`) over `workload` at the session's full length and
    /// seed.
    pub fn new(scheme: impl Into<String>, workload: Workload) -> Self {
        ActivityQuery {
            scheme: scheme.into(),
            workload,
            len: None,
            cap: None,
            seed: None,
        }
    }

    /// Bounds the evaluated length to `min(length, cap)`.
    #[must_use]
    pub fn cap(mut self, cap: usize) -> Self {
        self.cap = Some(cap);
        self
    }

    /// Evaluates at an explicit trace length instead of the session's.
    #[must_use]
    pub fn len(mut self, len: usize) -> Self {
        self.len = Some(len);
        self
    }

    /// Evaluates at an explicit data seed instead of the session's.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// The scheme name this query evaluates.
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// The workload this query evaluates over.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// The trace this query addresses under `session`'s defaults.
    pub fn trace_key(&self, session: &Session) -> TraceKey {
        let mut values = self.len.unwrap_or(session.values);
        if let Some(cap) = self.cap {
            values = values.min(cap);
        }
        TraceKey::new(self.workload, values, self.seed.unwrap_or(session.seed))
    }
}

/// The content address of one trace: which workload, how many values,
/// which seed. Two requests with equal keys always denote the same
/// word-for-word trace, so the store may hand out one shared copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceKey {
    workload: Workload,
    values: usize,
    seed: u64,
}

impl TraceKey {
    /// Addresses `values` words of `workload` at `seed`.
    pub fn new(workload: Workload, values: usize, seed: u64) -> Self {
        TraceKey {
            workload,
            values,
            seed,
        }
    }

    /// The workload this key addresses.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// The trace length this key addresses.
    pub fn values(&self) -> usize {
        self.values
    }

    /// The data seed this key addresses.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Runs the generator for this key. This is the single place a
    /// store miss turns into actual trace synthesis.
    fn generate(&self) -> Trace {
        self.workload.trace(self.values, self.seed)
    }

    /// The on-disk cache file name: the human-readable key (workload
    /// name with `/` flattened, values, seed) plus a hash of the exact
    /// key so sanitization can never alias two keys to one file.
    fn cache_file_name(&self) -> String {
        let name: String = self
            .workload
            .name()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let mut h = Fnv1a::default();
        self.hash(&mut h);
        format!(
            "{name}-v{}-s{}-{:016x}.trace",
            self.values,
            self.seed,
            h.finish()
        )
    }
}

/// FNV-1a, enough for cache file names (no dependency, stable across
/// runs — unlike `DefaultHasher`, whose keys are randomized per
/// process).
struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// A map of lazily initialized, shareable cells: the get-or-create
/// pattern both session caches use. The outer mutex is held only long
/// enough to find or insert the cell; initialization happens on the
/// cell's own `OnceLock`, so concurrent requests for the *same* key
/// block each other (the generator runs once) while requests for
/// different keys proceed in parallel.
struct CellMap<K, V> {
    cells: Mutex<HashMap<K, Arc<OnceLock<V>>>>,
}

impl<K: Eq + Hash + Clone, V> CellMap<K, V> {
    fn new() -> Self {
        CellMap {
            cells: Mutex::new(HashMap::new()),
        }
    }

    /// Returns the initialized value for `key`, running `init` exactly
    /// once per key across all threads. The second tuple field reports
    /// whether *this* call did the initialization (a miss).
    fn get_or_init<F: FnOnce() -> V>(&self, key: &K, init: F) -> (Arc<OnceLock<V>>, bool) {
        let cell = {
            let mut map = self.cells.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(map.entry(key.clone()).or_default())
        };
        let mut missed = false;
        cell.get_or_init(|| {
            missed = true;
            init()
        });
        (cell, missed)
    }

    /// The initialized value for `key` if some call already built it —
    /// a cache probe that never triggers initialization.
    fn peek(&self, key: &K) -> Option<V>
    where
        V: Copy,
    {
        let map = self.cells.lock().unwrap_or_else(|e| e.into_inner());
        map.get(key).and_then(|cell| cell.get().copied())
    }

    fn len(&self) -> usize {
        self.cells.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

static TRACE_HITS: busprobe::StaticCounter =
    busprobe::StaticCounter::new("bench.session.trace_hits");
static TRACE_MISSES: busprobe::StaticCounter =
    busprobe::StaticCounter::new("bench.session.trace_misses");
static DISK_LOADS: busprobe::StaticCounter =
    busprobe::StaticCounter::new("bench.session.disk_loads");
static DISK_REJECTS: busprobe::StaticCounter =
    busprobe::StaticCounter::new("bench.session.disk_rejects");
static BASELINE_MISSES: busprobe::StaticCounter =
    busprobe::StaticCounter::new("bench.session.baseline_misses");
static ACTIVITY_HITS: busprobe::StaticCounter =
    busprobe::StaticCounter::new("bench.session.activity_hits");
static ACTIVITY_MISSES: busprobe::StaticCounter =
    busprobe::StaticCounter::new("bench.session.activity_misses");

/// The content-addressed trace cache a [`Session`] owns.
///
/// In-memory, each distinct [`TraceKey`] is generated exactly once per
/// process and shared behind `Arc<Trace>`. With a disk directory
/// configured, a miss first tries `<dir>/<key>.trace` in the
/// `bustrace::io` text format; a file that is unreadable, malformed, or
/// of the wrong length is discarded and the trace regenerated (and the
/// entry rewritten), so a corrupted cache can slow a run down but never
/// change its numbers.
pub struct TraceStore {
    disk_dir: Option<PathBuf>,
    cells: CellMap<TraceKey, Arc<Trace>>,
}

impl TraceStore {
    /// A purely in-memory store.
    pub fn in_memory() -> Self {
        TraceStore {
            disk_dir: None,
            cells: CellMap::new(),
        }
    }

    /// A store that additionally persists traces under `dir`.
    pub fn with_disk_cache(dir: PathBuf) -> Self {
        TraceStore {
            disk_dir: Some(dir),
            cells: CellMap::new(),
        }
    }

    /// The disk cache directory, if persistence is enabled.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    /// The shared trace for `key`, generating (or loading) it on first
    /// request.
    pub fn get(&self, key: &TraceKey) -> Arc<Trace> {
        let (cell, missed) = self.cells.get_or_init(key, || Arc::new(self.acquire(key)));
        if missed {
            TRACE_MISSES.inc();
        } else {
            TRACE_HITS.inc();
        }
        Arc::clone(cell.get().expect("cell initialized by get_or_init"))
    }

    /// Distinct keys resident in memory.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no trace has been requested yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Miss path: disk (when configured and valid), else the generator.
    fn acquire(&self, key: &TraceKey) -> Trace {
        let _span = busprobe::span("bench.session.acquire");
        let Some(dir) = &self.disk_dir else {
            return key.generate();
        };
        let path = dir.join(key.cache_file_name());
        match trace_io::load_trace(&path) {
            Ok(trace) if trace.len() == key.values() => {
                DISK_LOADS.inc();
                return trace;
            }
            Ok(_) => {
                // Parseable but the wrong length: a stale or truncated
                // entry. Regenerate below.
                DISK_REJECTS.inc();
            }
            Err(trace_io::ReadTraceError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                DISK_REJECTS.inc();
                eprintln!(
                    "warning: discarding corrupt trace cache entry {}: {e}",
                    path.display()
                );
            }
        }
        let trace = key.generate();
        if let Err(e) = trace_io::save_trace(&trace, &path) {
            eprintln!(
                "warning: could not write trace cache entry {}: {e}",
                path.display()
            );
        }
        trace
    }
}

/// Shared experiment configuration plus the run-wide caches — the
/// redesigned `Ctx`. See the [module docs](self) for the design.
pub struct Session {
    values: usize,
    seed: u64,
    out_dir: PathBuf,
    store: TraceStore,
    baselines: CellMap<TraceKey, Activity>,
    activities: CellMap<(String, TraceKey), Activity>,
}

impl Session {
    /// A builder starting from the defaults (`values` 200 000, `seed`
    /// 1, `out_dir` `results/`, no disk cache).
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// Configuration from the environment — the canonical entry point
    /// for the `repro` binary: `REPRO_VALUES` (default 200 000),
    /// `REPRO_SEED` (default 1), `REPRO_OUT` (default `results/`), and
    /// `REPRO_CACHE` (truthy enables the on-disk trace cache in
    /// `<out>/cache/`). A malformed `REPRO_VALUES` or `REPRO_SEED` is
    /// reported on stderr and the default used — a typo must not
    /// silently change the experiment size.
    pub fn from_env() -> Self {
        let mut b = Session::builder()
            .values(crate::parse_env("REPRO_VALUES", 200_000usize))
            .seed(crate::parse_env("REPRO_SEED", 1u64));
        if let Ok(out) = std::env::var("REPRO_OUT") {
            b = b.out_dir(out);
        }
        b.disk_cache(crate::env_flag("REPRO_CACHE")).build()
    }

    /// Bus values per (workload, bus) trace.
    pub fn values(&self) -> usize {
        self.values
    }

    /// Data seed for the kernels and synthetic generators.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Directory CSV results are written into.
    pub fn out_dir(&self) -> &Path {
        &self.out_dir
    }

    /// The trace store (exposed read-only for tests and tooling).
    pub fn store(&self) -> &TraceStore {
        &self.store
    }

    /// The shared trace of `workload` at the session's full length.
    pub fn trace(&self, workload: Workload) -> Arc<Trace> {
        self.trace_with_len(workload, self.values)
    }

    /// The shared trace of `workload` at `min(values, cap)` — the
    /// idiom of experiments that bound their own cost below the
    /// session length.
    pub fn trace_capped(&self, workload: Workload, cap: usize) -> Arc<Trace> {
        self.trace_with_len(workload, self.values.min(cap))
    }

    /// The shared trace of `workload` at an explicit length.
    pub fn trace_with_len(&self, workload: Workload, values: usize) -> Arc<Trace> {
        self.store.get(&TraceKey::new(workload, values, self.seed))
    }

    /// The memoized un-encoded bus activity of `workload` at the
    /// session's full length.
    pub fn baseline(&self, workload: Workload) -> Activity {
        self.baseline_with_len(workload, self.values)
    }

    /// The memoized baseline at `min(values, cap)`.
    pub fn baseline_capped(&self, workload: Workload, cap: usize) -> Activity {
        self.baseline_with_len(workload, self.values.min(cap))
    }

    /// The memoized baseline at an explicit length.
    pub fn baseline_with_len(&self, workload: Workload, values: usize) -> Activity {
        self.baseline_for(&TraceKey::new(workload, values, self.seed))
    }

    /// The memoized baseline of an explicit trace key — the entry point
    /// the service API uses when a request overrides the session seed.
    pub fn baseline_for(&self, key: &TraceKey) -> Activity {
        let (cell, _) = self.baselines.get_or_init(key, || {
            BASELINE_MISSES.inc();
            baseline_activity(&self.store.get(key))
        });
        *cell.get().expect("cell initialized by get_or_init")
    }

    /// The memoized coded activity for `query` — the session-level
    /// coded-activity store, and the single entry point the old
    /// `activity`/`activity_capped`/`activity_with_len` trio collapsed
    /// into. The store key is `(scheme-name, workload, values, seed)`:
    /// everything that determines the counts and nothing else, so every
    /// experiment that sweeps the same (scheme, trace) pair shares one
    /// evaluation. A miss builds the scheme through
    /// [`buscoding::scheme_by_name`] and runs the block-batched
    /// [`buscoding::evaluate_blocks`] engine.
    ///
    /// Observable via `bench.session.activity_hits` /
    /// `bench.session.activity_misses`.
    ///
    /// # Panics
    ///
    /// Panics if the query's scheme is not a canonical registry name;
    /// [`try_activity`](Self::try_activity) is the non-panicking form.
    pub fn activity(&self, query: &ActivityQuery) -> Activity {
        self.try_activity(query)
            .unwrap_or_else(|e| panic!("activity store: {e}"))
    }

    /// The memoized coded activity for `query`, with an unknown scheme
    /// name surfaced as a typed error instead of a panic — what the
    /// service front ends use so a client typo cannot take a worker
    /// down.
    ///
    /// # Errors
    ///
    /// [`UnknownScheme`] when the query's scheme is not a canonical
    /// registry name; the error's `Display` lists the accepted
    /// patterns.
    pub fn try_activity(&self, query: &ActivityQuery) -> Result<Activity, UnknownScheme> {
        let trace_key = query.trace_key(self);
        let key = (query.scheme().to_string(), trace_key);
        if let Some(cached) = self.activities.peek(&key) {
            ACTIVITY_HITS.inc();
            return Ok(cached);
        }
        // Validate the name (and fetch the trace) before touching the
        // cell, so a bad query is an error — never a poisoned entry.
        let trace = self.store.get(&trace_key);
        let mut pair = buscoding::scheme_by_name(query.scheme(), trace.width())?;
        let (cell, missed) = self
            .activities
            .get_or_init(&key, || buscoding::evaluate_blocks(pair.encoder_mut(), &trace));
        if missed {
            ACTIVITY_MISSES.inc();
        } else {
            ACTIVITY_HITS.inc();
        }
        Ok(*cell.get().expect("cell initialized by get_or_init"))
    }

    /// Whether `query`'s activity is already resident (a probe that
    /// never evaluates) — the cache-provenance bit `bench::api` reports
    /// per scheme result.
    pub fn activity_cached(&self, query: &ActivityQuery) -> bool {
        let trace_key = query.trace_key(self);
        self.activities
            .peek(&(query.scheme().to_string(), trace_key))
            .is_some()
    }

    /// Distinct coded activities resident in the activity store.
    pub fn activity_store_len(&self) -> usize {
        self.activities.len()
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("values", &self.values)
            .field("seed", &self.seed)
            .field("out_dir", &self.out_dir)
            .field("disk_cache", &self.store.disk_dir())
            .field("resident_traces", &self.store.len())
            .finish()
    }
}

/// Builder for [`Session`] — replaces the ad-hoc struct literals tests
/// and examples used against the old `Ctx`.
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    values: usize,
    seed: u64,
    out_dir: PathBuf,
    disk_cache: bool,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder {
            values: 200_000,
            seed: 1,
            out_dir: "results".into(),
            disk_cache: false,
        }
    }
}

impl SessionBuilder {
    /// Bus values per trace.
    #[must_use]
    pub fn values(mut self, values: usize) -> Self {
        self.values = values;
        self
    }

    /// Data seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Output directory for CSVs (and the disk cache, when enabled).
    #[must_use]
    pub fn out_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.out_dir = dir.into();
        self
    }

    /// Whether to persist traces under `<out_dir>/cache/`.
    #[must_use]
    pub fn disk_cache(mut self, enabled: bool) -> Self {
        self.disk_cache = enabled;
        self
    }

    /// Builds the session with empty caches.
    pub fn build(self) -> Session {
        let store = if self.disk_cache {
            TraceStore::with_disk_cache(self.out_dir.join("cache"))
        } else {
            TraceStore::in_memory()
        };
        Session {
            values: self.values,
            seed: self.seed,
            out_dir: self.out_dir,
            store,
            baselines: CellMap::new(),
            activities: CellMap::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcpu::{Benchmark, BusKind};

    #[test]
    fn builder_defaults_match_from_env_defaults() {
        let s = Session::builder().build();
        assert_eq!(s.values(), 200_000);
        assert_eq!(s.seed(), 1);
        assert_eq!(s.out_dir(), Path::new("results"));
        assert!(s.store().disk_dir().is_none());
    }

    #[test]
    fn same_key_returns_the_same_allocation() {
        let s = Session::builder().values(2_000).seed(9).build();
        let w = Workload::Bench(Benchmark::Gcc, BusKind::Register);
        let a = s.trace(w);
        let b = s.trace(w);
        assert!(Arc::ptr_eq(&a, &b), "second request must share the Arc");
        assert_eq!(s.store().len(), 1);
    }

    #[test]
    fn distinct_lengths_seeds_and_workloads_do_not_alias() {
        let s = Session::builder().values(2_000).seed(9).build();
        let w = Workload::Bench(Benchmark::Gcc, BusKind::Register);
        let full = s.trace(w);
        let capped = s.trace_capped(w, 500);
        assert_eq!(full.len(), 2_000);
        assert_eq!(capped.len(), 500);
        let other_bus = s.trace(Workload::Bench(Benchmark::Gcc, BusKind::Memory));
        assert_ne!(full.values(), other_bus.values());
        assert_eq!(s.store().len(), 3);
    }

    #[test]
    fn baseline_matches_direct_computation() {
        let s = Session::builder().values(3_000).seed(4).build();
        let w = Workload::Random;
        let direct = baseline_activity(&w.trace(3_000, 4));
        assert_eq!(s.baseline(w), direct);
        // Second request is served from the memo (same value).
        assert_eq!(s.baseline(w), direct);
    }

    #[test]
    fn capped_trace_is_a_prefix_key_not_a_slice() {
        // trace_capped(w, cap) must equal generating at the capped
        // length directly — the old per-experiment idiom.
        let s = Session::builder().values(10_000).seed(2).build();
        let w = Workload::Bench(Benchmark::Li, BusKind::Register);
        let capped = s.trace_capped(w, 1_000);
        assert_eq!(*capped, w.trace(1_000, 2));
    }

    #[test]
    fn activity_store_matches_direct_evaluation_and_memoizes() {
        let s = Session::builder().values(3_000).seed(4).build();
        let w = Workload::Bench(Benchmark::Gcc, BusKind::Register);
        let trace = s.trace(w);
        let mut pair = buscoding::scheme_by_name("window(8)", trace.width()).unwrap();
        let direct = buscoding::evaluate(pair.encoder_mut(), &trace);
        let q = ActivityQuery::new("window(8)", w);
        assert!(!s.activity_cached(&q));
        assert_eq!(s.activity(&q), direct);
        assert!(s.activity_cached(&q));
        assert_eq!(s.activity(&q), direct);
        assert_eq!(s.activity_store_len(), 1);
        // A different scheme, length or workload is its own entry.
        let _ = s.activity(&q.clone().cap(1_000));
        let _ = s.activity(&ActivityQuery::new("identity", w));
        assert_eq!(s.activity_store_len(), 3);
    }

    #[test]
    fn activity_query_knobs_compose() {
        let s = Session::builder().values(3_000).seed(4).build();
        let w = Workload::Random;
        // len overrides the session length; cap bounds it; both
        // together evaluate min(len, cap); seed overrides the seed.
        let key = ActivityQuery::new("identity", w).len(700).trace_key(&s);
        assert_eq!((key.values(), key.seed()), (700, 4));
        let key = ActivityQuery::new("identity", w).cap(500).trace_key(&s);
        assert_eq!(key.values(), 500);
        let key = ActivityQuery::new("identity", w)
            .len(700)
            .cap(500)
            .trace_key(&s);
        assert_eq!(key.values(), 500);
        let key = ActivityQuery::new("identity", w).seed(9).trace_key(&s);
        assert_eq!(key.seed(), 9);
        // And the seed override addresses a genuinely different trace.
        let a = s.activity(&ActivityQuery::new("identity", w).cap(500));
        let b = s.activity(&ActivityQuery::new("identity", w).cap(500).seed(9));
        assert_ne!(a, b);
    }

    #[test]
    fn try_activity_surfaces_unknown_schemes_without_poisoning() {
        let s = Session::builder().values(100).build();
        let bad = ActivityQuery::new("windoww(8)", Workload::Random);
        let err = s.try_activity(&bad).unwrap_err();
        assert!(err.to_string().contains("unknown coding scheme"));
        assert_eq!(s.activity_store_len(), 0, "a typo must not leave an entry");
        assert!(s.try_activity(&bad.clone()).is_err(), "still an error on retry");
    }

    #[test]
    #[should_panic(expected = "unknown coding scheme")]
    fn activity_store_rejects_non_registry_names() {
        let s = Session::builder().values(100).build();
        let _ = s.activity(&ActivityQuery::new("windoww(8)", Workload::Random));
    }

    #[test]
    fn cache_file_names_are_stable_and_distinct() {
        let k1 = TraceKey::new(Workload::Bench(Benchmark::Gcc, BusKind::Register), 100, 1);
        let k2 = TraceKey::new(Workload::Bench(Benchmark::Gcc, BusKind::Memory), 100, 1);
        assert_eq!(k1.cache_file_name(), k1.cache_file_name());
        assert_ne!(k1.cache_file_name(), k2.cache_file_name());
        assert!(k1.cache_file_name().starts_with("gcc-register-v100-s1-"));
    }

    #[test]
    fn disk_cache_round_trips_and_survives_corruption() {
        let dir = std::env::temp_dir().join(format!("bench-session-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let w = Workload::Bench(Benchmark::Compress, BusKind::Register);
        let build = || {
            Session::builder()
                .values(1_500)
                .seed(11)
                .out_dir(&dir)
                .disk_cache(true)
                .build()
        };
        // Cold: generates and writes the entry.
        let fresh = build().trace(w);
        let key = TraceKey::new(w, 1_500, 11);
        let path = dir.join("cache").join(key.cache_file_name());
        assert!(path.exists(), "miss must persist {}", path.display());
        // Warm: a new session (fresh memory) loads the same words.
        assert_eq!(*build().trace(w), *fresh);
        // Corrupt the entry: the store must fall back to regeneration
        // and rewrite the file.
        std::fs::write(&path, "# bustrace v1 width=32\nzz-not-hex\n").unwrap();
        assert_eq!(*build().trace(w), *fresh);
        assert_eq!(bustrace::io::load_trace(&path).unwrap(), *fresh);
        // Truncated-but-parseable entry: rejected by the length check.
        std::fs::write(&path, "# bustrace v1 width=32\nff\n").unwrap();
        assert_eq!(*build().trace(w), *fresh);
        std::fs::remove_dir_all(&dir).ok();
    }
}
