//! Section 4.2 reproductions: the trace-statistics figures (7 and 8)
//! that motivate the dictionary-style coders.

use bustrace::stats::{window_uniqueness_series, ValueCensus};
use simcpu::{Benchmark, BusKind};

use crate::experiments::par_map;
use crate::report::{f, Table};
use crate::workloads::Workload;
use crate::Session;

/// The four benchmarks the paper plots in Figures 7 and 8.
fn figure_benchmarks() -> [Benchmark; 4] {
    [
        Benchmark::Gcc,
        Benchmark::Su2cor,
        Benchmark::Swim,
        Benchmark::Turb3d,
    ]
}

/// The workload grid of both figures: four benchmarks on both buses.
fn figure_workloads() -> Vec<Workload> {
    let mut jobs = Vec::new();
    for b in figure_benchmarks() {
        for bus in [BusKind::Register, BusKind::Memory] {
            jobs.push(Workload::Bench(b, bus));
        }
    }
    jobs
}

/// Figure 7: CDF of the most frequent unique values.
pub fn fig7(session: &Session) -> Vec<Table> {
    let mut t = Table::new(
        "fig7",
        "Fraction of trace covered by the k most frequent unique values",
        &["workload", "k", "coverage"],
    );
    let results = par_map(figure_workloads(), |w| {
        let trace = session.trace(w);
        let census = ValueCensus::of(&trace);
        (w.name(), census.cdf_series())
    });
    for (name, series) in results {
        for (k, cov) in series {
            t.push(vec![name.clone(), k.to_string(), f(cov, 4)]);
        }
    }
    vec![t]
}

/// Figure 8: average fraction of values unique within a window.
pub fn fig8(session: &Session) -> Vec<Table> {
    let mut t = Table::new(
        "fig8",
        "Average fraction of unique values within a window vs window size",
        &["workload", "window", "unique_fraction"],
    );
    let results = par_map(figure_workloads(), |w| {
        let trace = session.trace(w);
        (w.name(), window_uniqueness_series(&trace))
    });
    for (name, series) in results {
        for (w, frac) in series {
            t.push(vec![name.clone(), w.to_string(), f(frac, 4)]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_session() -> Session {
        Session::builder().values(20_000).build()
    }

    #[test]
    fn fig7_coverage_needs_many_values() {
        // The paper's point: no tiny unique-value set covers the trace.
        let t = &fig7(&small_session())[0];
        for b in figure_benchmarks() {
            let name = format!("{b}/register");
            let cov_at_8: f64 = t
                .rows
                .iter()
                .filter(|r| r[0] == name)
                .find(|r| r[1] == "8")
                .map(|r| r[2].parse().unwrap())
                .expect("k=8 present");
            assert!(cov_at_8 < 0.9, "{name}: 8 values already cover {cov_at_8}");
        }
    }

    #[test]
    fn fig8_uniqueness_falls_with_window_size() {
        let t = &fig8(&small_session())[0];
        let name = "swim/register";
        let rows: Vec<(usize, f64)> = t
            .rows
            .iter()
            .filter(|r| r[0] == name)
            .map(|r| (r[1].parse().unwrap(), r[2].parse().unwrap()))
            .collect();
        let at_1 = rows.iter().find(|&&(w, _)| w == 1).unwrap().1;
        let big = rows.iter().rev().find(|&&(w, _)| w >= 4096).unwrap().1;
        assert!(at_1 == 1.0);
        assert!(big < 0.6, "window uniqueness should fall: {big}");
    }
}
