//! `adaptive`: the online scheme-selection controller versus the best
//! static choice and the clairvoyant oracle.
//!
//! Three tables:
//!
//! * `adaptive-policy` — per workload: the best single static scheme
//!   (untaxed — the strongest baseline), the greedy-shadow and
//!   banded-hysteresis controllers, and the oracle-per-window replay,
//!   with net energy *after* the switch/flush tax and the shifted
//!   crossover;
//! * `adaptive-sweep` — decision period × hysteresis band on the
//!   phase-change workload;
//! * `adaptive-residency` — how many words each candidate scheme
//!   actually carried under the greedy controller.
//!
//! Switch pricing: every decision boundary is an epoch flush, and a
//! switch adds one more flush-equivalent (the incoming scheme's state
//! must be cleared at both ends). Both are charged through
//! `CodingOutcome::with_resync_tax` at the Window CAM-clear energy,
//! matching `fault-sweep`'s resync accounting.

use busadapt::{
    oracle_schedule, AdaptReport, AdaptiveConfig, AdaptiveTranscoder, BandedHysteresisPolicy,
    GreedyShadowPolicy, OraclePolicy, Policy,
};
use buscoding::{evaluate_blocks, Activity};
use bustrace::Trace;
use hwmodel::crossover::CodingOutcome;
use hwmodel::CircuitModel;
use simcpu::{Benchmark, BusKind};
use wiremodel::{Technology, Wire, WireStyle};

use crate::experiments::par_map;
use crate::report::{f, opt_mm, Table};
use crate::session::ActivityQuery;
use crate::workloads::Workload;
use crate::Session;

/// The candidate pool every controller in this experiment selects from.
pub const CANDIDATES: [&str; 6] = [
    "identity",
    "inversion(1ch l1)",
    "window(8)",
    "stride(8)",
    "fcm(2 2^12)",
    "workzone(4)",
];

/// Default decision period in words.
const PERIOD: u64 = 512;

/// Per-trace word cap: enough for several phases of both phased
/// workloads without dominating `repro all`.
const CAP: usize = 16_384;

/// The reference wire for net-energy comparisons.
const NORM_MM: f64 = 10.0;

/// Per-flush (and per-switch) energy: clearing the Window CAM rewrites
/// every entry at both ends — the same price `fault-sweep` charges.
fn pj_per_flush(tech: Technology) -> f64 {
    const ENTRIES: usize = 8;
    2.0 * ENTRIES as f64 * CircuitModel::window(tech, ENTRIES).energies().shift
}

/// Runs a controller with the given policy over a trace and returns the
/// wire activity it actually produced plus its own tally.
fn run_controller(
    trace: &Trace,
    period: u64,
    policy: Box<dyn Policy>,
    initial: usize,
) -> (Activity, AdaptReport) {
    let cfg = AdaptiveConfig::new(trace.width(), CANDIDATES, period).with_initial(initial);
    let mut adaptive =
        AdaptiveTranscoder::new(cfg, policy).expect("candidate pool uses registry names");
    let coded = evaluate_blocks(adaptive.transcoder_mut().encoder_mut(), trace);
    (coded, adaptive.report())
}

/// Net outcome of an adaptive run: wire activity plus the flush/switch
/// tax (a switch costs one extra flush-equivalent on top of the
/// boundary flush it rides on).
fn taxed_outcome(
    baseline: Activity,
    coded: Activity,
    values: u64,
    report: &AdaptReport,
    tech: Technology,
) -> CodingOutcome {
    CodingOutcome::new(baseline, coded, values, 0.0)
        .with_resync_tax(report.flushes + report.switches, pj_per_flush(tech))
}

/// One `adaptive-policy` row.
fn policy_row(
    workload: &str,
    policy: &str,
    base_cost: f64,
    coded: &Activity,
    outcome: &CodingOutcome,
    report: Option<&AdaptReport>,
    tech: Technology,
) -> Vec<String> {
    let wire = Wire::new(tech, WireStyle::Repeated, NORM_MM).expect("valid length");
    vec![
        workload.to_string(),
        policy.to_string(),
        f((1.0 - coded.weighted(1.0) / base_cost) * 100.0, 1),
        report.map_or(0, |r| r.switches).to_string(),
        report.map_or(0, |r| r.flushes).to_string(),
        report.map_or(0, |r| r.resyncs).to_string(),
        f(outcome.normalized_total_energy(&wire), 4),
        opt_mm(outcome.crossover_mm(tech, WireStyle::Repeated)),
    ]
}

/// The workloads of `adaptive-policy` and `adaptive-residency`: both
/// synthetic phase-change classes plus two `simcpu` kernels.
fn policy_workloads() -> Vec<Workload> {
    vec![
        Workload::PHASED,
        Workload::PHASED_FAST,
        Workload::Bench(Benchmark::Gcc, BusKind::Register),
        Workload::Bench(Benchmark::Swim, BusKind::Memory),
    ]
}

/// The experiment entry point: three tables.
pub fn adaptive(session: &Session) -> Vec<Table> {
    let _span = busprobe::span("bench.experiments.adaptive");
    vec![
        policy_table(session),
        sweep_table(session),
        residency_table(session),
    ]
}

/// Adaptive vs best-static vs oracle, per workload.
fn policy_table(session: &Session) -> Table {
    let mut t = Table::new(
        "adaptive-policy",
        "Adaptive scheme selection vs best static and oracle (net of switch tax)",
        &[
            "workload",
            "policy",
            "percent_removed",
            "switches",
            "flushes",
            "resyncs",
            "norm_energy_10mm",
            "crossover_mm",
        ],
    );
    let tech = Technology::tech_013();
    let rows = par_map(policy_workloads(), |w| {
        let trace = session.trace_capped(w, CAP);
        let baseline = session.baseline_capped(w, CAP);
        let base_cost = baseline.weighted(1.0);
        let values = trace.len() as u64;
        let name = w.name();
        let mut rows = Vec::new();

        // Best static scheme, untaxed: no controller, no flushes — the
        // strongest baseline the adaptive policies must beat. The pool
        // names are registry names, so the session store carries them.
        let static_runs: Vec<(&str, Activity)> = CANDIDATES
            .iter()
            .map(|&s| (s, session.activity(&ActivityQuery::new(s, w).cap(CAP))))
            .collect();
        let (best_name, best_coded) = static_runs
            .into_iter()
            .min_by(|(_, a), (_, b)| {
                a.weighted(1.0)
                    .partial_cmp(&b.weighted(1.0))
                    .expect("costs are finite")
            })
            .expect("non-empty pool");
        let outcome = CodingOutcome::new(baseline, best_coded, values, 0.0);
        rows.push(policy_row(
            &name,
            &format!("static:{best_name}"),
            base_cost,
            &best_coded,
            &outcome,
            None,
            tech,
        ));

        let policies: Vec<Box<dyn Policy>> = vec![
            Box::new(GreedyShadowPolicy::new(0.02)),
            Box::new(BandedHysteresisPolicy::new(0.05, 2)),
        ];
        for policy in policies {
            let label = policy.name();
            let (coded, report) = run_controller(&trace, PERIOD, policy, 0);
            let outcome = taxed_outcome(baseline, coded, values, &report, tech);
            rows.push(policy_row(
                &name,
                &label,
                base_cost,
                &coded,
                &outcome,
                Some(&report),
                tech,
            ));
        }

        let candidates: Vec<String> = CANDIDATES.iter().map(|s| s.to_string()).collect();
        let schedule = oracle_schedule(&trace, &candidates, PERIOD, 1.0).expect("registry names");
        let initial = schedule.first().copied().unwrap_or(0);
        let (coded, report) = run_controller(
            &trace,
            PERIOD,
            Box::new(OraclePolicy::new(schedule)),
            initial,
        );
        let outcome = taxed_outcome(baseline, coded, values, &report, tech);
        rows.push(policy_row(
            &name,
            "oracle",
            base_cost,
            &coded,
            &outcome,
            Some(&report),
            tech,
        ));
        rows
    });
    for row in rows.into_iter().flatten() {
        t.push(row);
    }
    t
}

/// Decision period × hysteresis band, greedy policy, phase-change
/// workload.
fn sweep_table(session: &Session) -> Table {
    let mut t = Table::new(
        "adaptive-sweep",
        "Greedy controller: decision period x hysteresis band (phased/4096)",
        &[
            "period",
            "hysteresis",
            "switches",
            "flushes",
            "percent_removed",
            "norm_energy_10mm",
            "crossover_mm",
        ],
    );
    let tech = Technology::tech_013();
    let trace = session.trace_capped(Workload::PHASED, CAP);
    let baseline = session.baseline_capped(Workload::PHASED, CAP);
    let base_cost = baseline.weighted(1.0);
    let values = trace.len() as u64;
    let wire = Wire::new(tech, WireStyle::Repeated, NORM_MM).expect("valid length");
    let mut grid = Vec::new();
    for &period in &[128u64, 512, 2048] {
        for &band in &[0.0f64, 0.05, 0.20] {
            grid.push((period, band));
        }
    }
    let rows = par_map(grid, |(period, band)| {
        let (coded, report) =
            run_controller(&trace, period, Box::new(GreedyShadowPolicy::new(band)), 0);
        let outcome = taxed_outcome(baseline, coded, values, &report, tech);
        vec![
            period.to_string(),
            f(band, 2),
            report.switches.to_string(),
            report.flushes.to_string(),
            f((1.0 - coded.weighted(1.0) / base_cost) * 100.0, 1),
            f(outcome.normalized_total_energy(&wire), 4),
            opt_mm(outcome.crossover_mm(tech, WireStyle::Repeated)),
        ]
    });
    for row in rows {
        t.push(row);
    }
    t
}

/// Words each candidate actually carried under the greedy controller.
fn residency_table(session: &Session) -> Table {
    let mut t = Table::new(
        "adaptive-residency",
        "Greedy controller residency: words carried per candidate scheme",
        &["workload", "scheme", "words", "share_pct"],
    );
    let rows = par_map(policy_workloads(), |w| {
        let trace = session.trace_capped(w, CAP);
        let (_, report) =
            run_controller(&trace, PERIOD, Box::new(GreedyShadowPolicy::new(0.02)), 0);
        let total = report.words.max(1);
        report
            .residency
            .iter()
            .map(|(scheme, words)| {
                vec![
                    w.name(),
                    scheme.clone(),
                    words.to_string(),
                    f(*words as f64 / total as f64 * 100.0, 1),
                ]
            })
            .collect::<Vec<_>>()
    });
    for row in rows.into_iter().flatten() {
        t.push(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_session() -> Session {
        Session::builder().values(6000).seed(7).build()
    }

    #[test]
    fn adaptive_produces_three_tables() {
        let tables = adaptive(&small_session());
        let ids: Vec<&str> = tables.iter().map(|t| t.id.as_str()).collect();
        assert_eq!(
            ids,
            ["adaptive-policy", "adaptive-sweep", "adaptive-residency"]
        );
        for table in &tables {
            assert!(!table.rows.is_empty(), "{} is empty", table.id);
        }
        // Four workloads x (best-static + greedy + banded + oracle).
        assert_eq!(tables[0].rows.len(), 16);
        // Every workload's residency shares sum to ~100.
        for w in policy_workloads() {
            let total: f64 = tables[2]
                .rows
                .iter()
                .filter(|r| r[0] == w.name())
                .map(|r| r[3].parse::<f64>().unwrap())
                .sum();
            assert!((total - 100.0).abs() < 1.0, "{}: {total}", w.name());
        }
    }

    #[test]
    fn adaptive_is_deterministic() {
        let a = adaptive(&small_session());
        let b = adaptive(&small_session());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rows, y.rows, "{} differs between runs", x.id);
        }
    }

    #[test]
    fn greedy_beats_best_static_after_tax_on_phase_changes() {
        // The headline acceptance claim, on the fast-phase workload with
        // enough words for many phases.
        let session = Session::builder().values(CAP).seed(1).build();
        let table = policy_table(&session);
        let energy = |workload: &str, policy_prefix: &str| -> f64 {
            table
                .rows
                .iter()
                .find(|r| r[0] == workload && r[1].starts_with(policy_prefix))
                .unwrap_or_else(|| panic!("missing {workload}/{policy_prefix}"))[6]
                .parse()
                .unwrap()
        };
        let mut greedy_won = false;
        for w in ["phased/4096", "phased/1024"] {
            let stat = energy(w, "static:");
            let greedy = energy(w, "greedy(");
            let oracle = energy(w, "oracle");
            // The oracle is a floor for every adaptive policy.
            assert!(
                oracle <= greedy + 1e-9,
                "{w}: oracle {oracle} worse than greedy {greedy}"
            );
            greedy_won |= greedy < stat;
        }
        assert!(
            greedy_won,
            "greedy never beat the best static scheme on a phase-change workload"
        );
    }
}
