//! Extension experiments beyond the paper's evaluation: the Section 6
//! future-work items and additional design-space probes.

use buscoding::predict::{MissPolicy, PredictiveEncoder, WindowPredictor};
use buscoding::spatial::spatial_activity;
use buscoding::varlen::huffman_study;
use buscoding::{evaluate_blocks, percent_energy_removed, CostModel};
use bustrace::generators::{TraceGenerator, WorkingSetGen};
use bustrace::Width;
use simcpu::{Benchmark, BusKind};

use crate::experiments::par_map;
use crate::report::{f, Table};
use crate::schemes::Scheme;
use crate::session::ActivityQuery;
use crate::workloads::Workload;
use crate::Session;

/// Most extension studies cap their traces at 100k values.
const CAP: usize = 100_000;

/// Section 6: how much would variable-length coding buy, and at what
/// timing cost? Oracle Huffman over each trace, serialized over 8 and
/// 32 lanes, against the window transcoder's fixed-length savings.
pub fn varlen(session: &Session) -> Vec<Table> {
    let mut t = Table::new(
        "ext-varlen",
        "Variable-length (oracle Huffman) coding vs fixed-length transcoding (register bus)",
        &[
            "workload",
            "huffman_bits_per_value",
            "escape_frac",
            "cycles_per_value_8lanes",
            "varlen_tau_ratio",
            "window8_removed_pct",
        ],
    );
    let rows = par_map(
        vec![
            Benchmark::Li,
            Benchmark::Gcc,
            Benchmark::Compress,
            Benchmark::Swim,
            Benchmark::M88ksim,
        ],
        move |b| {
            let w = Workload::Bench(b, BusKind::Register);
            let trace = session.trace_capped(w, CAP);
            let study = huffman_study(&trace, 256, 8);
            let baseline = session.baseline_capped(w, CAP);
            let tau_ratio = study.serialized.tau() as f64 / baseline.tau() as f64;
            let coded =
                session.activity(&ActivityQuery::new(Scheme::Window { entries: 8 }.name(), w).cap(CAP));
            let window = percent_energy_removed(&coded, &baseline, 1.0);
            (
                format!("{b}/register"),
                study.huffman_bits_per_value,
                study.escape_fraction,
                study.cycles_per_value,
                tau_ratio,
                window,
            )
        },
    );
    for (name, bits, escape, cpv, ratio, window) in rows {
        t.push(vec![
            name,
            f(bits, 2),
            f(escape, 3),
            f(cpv, 2),
            f(ratio, 3),
            f(window, 1),
        ]);
    }
    vec![t]
}

/// Bus-width sensitivity: the same working-set traffic carried on buses
/// of different widths. Wider buses pay more per miss, so dictionary
/// coding helps more.
pub fn width(session: &Session) -> Vec<Table> {
    let mut t = Table::new(
        "ext-width",
        "Window-8 savings vs bus width (working-set traffic)",
        &["width_bits", "percent_removed"],
    );
    let values = session.values().min(CAP);
    for bits in [8u32, 16, 24, 32, 48, 62] {
        let w = Width::new(bits).expect("valid width");
        let trace = WorkingSetGen::new(w, 32, 0.8, 0.005, session.seed()).generate(values);
        let removed = Scheme::Window { entries: 8 }.percent_removed(&trace, 1.0);
        t.push(vec![bits.to_string(), f(removed, 1)]);
    }
    vec![t]
}

/// The spatial coder as a bound: exact one-hot activity (2^32 wires,
/// utterly impractical) against the window transcoder on the same
/// traffic — quantifying how much headroom fixed-width transcoding
/// leaves on the table.
pub fn spatial_bound(session: &Session) -> Vec<Table> {
    let mut t = Table::new(
        "ext-spatial",
        "Spatial (one-hot) bound vs window transcoder, tau only (register bus)",
        &[
            "workload",
            "baseline_tau_per_value",
            "spatial_tau_per_value",
            "window8_tau_per_value",
        ],
    );
    let rows = par_map(
        vec![Benchmark::Go, Benchmark::Li, Benchmark::Gcc],
        move |b| {
            let w = Workload::Bench(b, BusKind::Register);
            let trace = session.trace_capped(w, CAP);
            let n = trace.len() as f64;
            let baseline = session.baseline_capped(w, CAP);
            let spatial = spatial_activity(&trace);
            let window =
                session.activity(&ActivityQuery::new(Scheme::Window { entries: 8 }.name(), w).cap(CAP));
            (
                format!("{b}/register"),
                baseline.tau() as f64 / n,
                spatial.tau as f64 / n,
                window.tau() as f64 / n,
            )
        },
    );
    for (name, base, spatial, window) in rows {
        t.push(vec![name, f(base, 2), f(spatial, 2), f(window, 2)]);
    }
    vec![t]
}

/// Address-bus study: the related-work domain. Spatial-locality coding
/// (working zones) against the paper's value-locality schemes on the
/// memory address bus.
pub fn address_bus(session: &Session) -> Vec<Table> {
    let mut t = Table::new(
        "ext-address",
        "Coding schemes on the memory address bus (% energy removed)",
        &[
            "workload",
            "workzone4",
            "stride8",
            "window8",
            "context28",
            "businvert",
        ],
    );
    let schemes = [
        Scheme::WorkZone { zones: 4 },
        Scheme::Stride { strides: 8 },
        Scheme::Window { entries: 8 },
        Scheme::ContextValue {
            table: 28,
            shift: 8,
            divide: 4096,
        },
        Scheme::Inversion {
            chunks: 1,
            design_lambda: 1.0,
        },
    ];
    let rows = par_map(
        vec![
            Benchmark::Gcc,
            Benchmark::Li,
            Benchmark::Swim,
            Benchmark::Mgrid,
            Benchmark::Wave5,
            Benchmark::Compress,
        ],
        move |b| {
            let w = Workload::Bench(b, BusKind::Address);
            let baseline = session.baseline_capped(w, CAP);
            let removed: Vec<f64> = schemes
                .iter()
                .map(|s| {
                    let coded = session.activity(&ActivityQuery::new(s.name(), w).cap(CAP));
                    percent_energy_removed(&coded, &baseline, 1.0)
                })
                .collect();
            (format!("{b}/address"), removed)
        },
    );
    for (name, removed) in rows {
        let mut row = vec![name];
        row.extend(removed.iter().map(|&r| f(r, 1)));
        t.push(row);
    }
    vec![t]
}

/// Ablation: the inverted-miss fallback's contribution — window-8 with
/// and without the "raw inverted" control state.
pub fn miss_policy(session: &Session) -> Vec<Table> {
    let mut t = Table::new(
        "ablation-invert",
        "Miss policy: raw-or-inverted vs raw-only (window-8, register bus)",
        &["workload", "raw_or_inverted_pct", "raw_only_pct"],
    );
    let rows = par_map(
        vec![
            Benchmark::Gcc,
            Benchmark::Swim,
            Benchmark::M88ksim,
            Benchmark::Wave5,
        ],
        move |b| {
            let w = Workload::Bench(b, BusKind::Register);
            let trace = session.trace_capped(w, CAP);
            let baseline = session.baseline_capped(w, CAP);
            // The raw-or-inverted default *is* window(8): share the
            // session store. RawOnly isn't a registry scheme, so it
            // runs the block engine directly.
            let both =
                session.activity(&ActivityQuery::new(Scheme::Window { entries: 8 }.name(), w).cap(CAP));
            let cost = CostModel::default();
            let mut raw_only: PredictiveEncoder<WindowPredictor> =
                PredictiveEncoder::new(trace.width(), WindowPredictor::new(8), cost)
                    .with_miss_policy(MissPolicy::RawOnly);
            let a = percent_energy_removed(&both, &baseline, 1.0);
            let b_pct =
                percent_energy_removed(&evaluate_blocks(&mut raw_only, &trace), &baseline, 1.0);
            (format!("{b}/register"), a, b_pct)
        },
    );
    for (name, both, raw) in rows {
        t.push(vec![name, f(both, 1), f(raw, 1)]);
    }
    vec![t]
}

/// Timing feasibility (Table 2 meets Figure 6): at each technology's
/// cycle time, how far can the bus reach bare vs through the transcoder
/// pair, and how many cycles does the crossover-length path need?
pub fn timing_budget(_session: &Session) -> Vec<Table> {
    use hwmodel::timing::{max_length_within, path_timing};
    use hwmodel::CircuitModel;
    use wiremodel::Technology;
    let mut t = Table::new(
        "ext-timing",
        "Reachable wire length within one cycle time, bare vs transcoded",
        &[
            "technology",
            "cycle_ns",
            "bare_reach_mm",
            "coded_reach_mm",
            "crossover_path_cycles",
        ],
    );
    for tech in Technology::all() {
        let circuit = CircuitModel::window(tech, 8);
        let budget = circuit.cycle_time_ns();
        let bare = max_length_within(&circuit, budget, false);
        let coded = max_length_within(&circuit, budget, true);
        let path = path_timing(&circuit, 11.5).expect("valid length");
        t.push(vec![
            tech.kind.to_string(),
            f(budget, 1),
            bare.map_or("-".into(), |l| f(l, 1)),
            coded.map_or("-".into(), |l| f(l, 1)),
            path.cycles_at(budget).to_string(),
        ]);
    }
    vec![t]
}

/// Head-to-head of every stateful predictor family on the register bus
/// (the engine is predictor-agnostic; this is the menu a design team
/// would choose from).
pub fn predictors(session: &Session) -> Vec<Table> {
    let mut t = Table::new(
        "ext-predictors",
        "Predictor families on the register bus (% energy removed)",
        &["workload", "stride16", "window8", "context28", "fcm_o2_4k"],
    );
    let schemes = [
        Scheme::Stride { strides: 16 },
        Scheme::Window { entries: 8 },
        Scheme::ContextValue {
            table: 28,
            shift: 8,
            divide: 4096,
        },
        Scheme::Fcm {
            order: 2,
            table_bits: 12,
        },
    ];
    let rows = par_map(Benchmark::ALL.to_vec(), move |b| {
        let w = Workload::Bench(b, BusKind::Register);
        let baseline = session.baseline_capped(w, CAP);
        let removed: Vec<f64> = schemes
            .iter()
            .map(|s| {
                let coded = session.activity(&ActivityQuery::new(s.name(), w).cap(CAP));
                percent_energy_removed(&coded, &baseline, 1.0)
            })
            .collect();
        (format!("{b}/register"), removed)
    });
    for (name, removed) in rows {
        let mut row = vec![name];
        row.extend(removed.iter().map(|&r| f(r, 1)));
        t.push(row);
    }
    vec![t]
}

/// Per-wire transition histogram: where the switching actually happens
/// across the 32 data bits, for an integer kernel and a floating-point
/// kernel — the structural difference the codebook's bit-position
/// preferences interact with.
pub fn wire_histogram(session: &Session) -> Vec<Table> {
    use buscoding::WireActivity;
    let mut t = Table::new(
        "ext-wirehist",
        "Transitions per wire per 1000 values, memory bus (int vs fp traffic)",
        &["wire", "go_int", "swim_fp", "apsi_fp"],
    );
    let profiles: Vec<Vec<f64>> = par_map(
        vec![Benchmark::Go, Benchmark::Swim, Benchmark::Apsi],
        move |b| {
            let trace = session.trace_capped(Workload::Bench(b, BusKind::Memory), CAP);
            let mut w = WireActivity::new(32);
            w.step(0);
            for v in trace.iter() {
                w.step(v);
            }
            let n = trace.len() as f64;
            w.tau_per_wire()
                .iter()
                .map(|&tau| 1000.0 * tau as f64 / n)
                .collect()
        },
    );
    for (wire, ((go, swim), apsi)) in profiles[0]
        .iter()
        .zip(&profiles[1])
        .zip(&profiles[2])
        .enumerate()
    {
        t.push(vec![wire.to_string(), f(*go, 1), f(*swim, 1), f(*apsi, 1)]);
    }
    vec![t]
}

/// Ablation: is the memory-bus coding result sensitive to the re-timing
/// model? Compare the single-level default against the two-level (L2)
/// hierarchy — same values, different interleaving. These alternative
/// machine configurations are deliberately *not* store-keyed: each
/// variant is generated once, used once.
pub fn timing_model(session: &Session) -> Vec<Table> {
    use simcpu::{MachineConfig, OooConfig};
    let mut t = Table::new(
        "ablation-timing",
        "Memory-bus window-8 savings under three timing models",
        &["workload", "functional_pct", "l2_pct", "ooo_pct"],
    );
    let values = session.values().min(CAP);
    let seed = session.seed();
    let rows = par_map(
        vec![
            Benchmark::Gcc,
            Benchmark::Li,
            Benchmark::Tomcatv,
            Benchmark::Mgrid,
        ],
        move |b| {
            let flat = b.trace(BusKind::Memory, values, seed);
            let deep = b.trace_with(BusKind::Memory, values, seed, MachineConfig::with_l2());
            let ooo = b.trace_ooo(BusKind::Memory, values, seed, OooConfig::default());
            let s = Scheme::Window { entries: 8 };
            (
                format!("{b}/memory"),
                s.percent_removed(&flat, 1.0),
                s.percent_removed(&deep, 1.0),
                s.percent_removed(&ooo, 1.0),
            )
        },
    );
    for (name, flat, deep, ooo) in rows {
        t.push(vec![name, f(flat, 1), f(deep, 1), f(ooo, 1)]);
    }
    vec![t]
}

/// Desync robustness: the paper's transcoders rest on perfectly
/// synchronized FSMs at the two bus ends. A single-event upset on the
/// wire breaks that silently — this study injects one bit flip per
/// trial and measures whether (and how fast) the decoder *notices*,
/// and how much silently corrupted data escapes meanwhile.
pub fn desync(session: &Session) -> Vec<Table> {
    use buscoding::predict::{context_value_codec, window_codec, ContextConfig, WindowConfig};
    use buscoding::workzone::{WorkZoneDecoder, WorkZoneEncoder};
    use buscoding::{Decoder, Transcoder};

    let mut t = Table::new(
        "ext-desync",
        "Single bit-flip injection: detection rate and silent corruption (gcc register bus)",
        &[
            "scheme",
            "detected_pct",
            "mean_words_to_detect",
            "mean_silent_wrong_words",
        ],
    );
    let trace = session.trace_capped(Workload::Bench(Benchmark::Gcc, BusKind::Register), 20_000);
    let values = trace.len();
    const TRIALS: usize = 200;

    // One trial: encode the whole trace, flip `bit` of word `at`, and
    // decode, reporting (error index, indices of silently wrong words
    // before the error or end).
    fn trial(
        bus: &[u64],
        original: &bustrace::Trace,
        dec: &mut dyn Decoder,
        at: usize,
        bit: u32,
    ) -> (Option<usize>, usize) {
        dec.reset();
        let mut silent_wrong = 0usize;
        for (i, (&state, expect)) in bus.iter().zip(original.iter()).enumerate() {
            let state = if i == at { state ^ (1 << bit) } else { state };
            match dec.decode(state) {
                Err(_) => return (Some(i), silent_wrong),
                Ok(v) => {
                    if i >= at && v != expect {
                        silent_wrong += 1;
                    }
                }
            }
        }
        (None, silent_wrong)
    }

    // Deterministic injection points.
    let mut x = 0x9E37_79B9u64 ^ session.seed();
    let mut points = Vec::with_capacity(TRIALS);
    for _ in 0..TRIALS {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        points.push((
            (x >> 16) as usize % (values / 2) + 100,
            ((x >> 58) % 34) as u32,
        ));
    }

    let schemes: Vec<Transcoder> = {
        let w = trace.width();
        let (we, wd) = window_codec(WindowConfig::new(w, 8));
        let (ce, cd) = context_value_codec(ContextConfig::new(w, 28, 8));
        vec![
            Transcoder::new("window(8)", we, wd),
            Transcoder::new("context-value(28+8)", ce, cd),
            Transcoder::new(
                "workzone(4)",
                WorkZoneEncoder::new(w, 4),
                WorkZoneDecoder::new(w, 4),
            ),
        ]
    };

    for mut pair in schemes {
        pair.reset();
        let lines = pair.lines();
        let bus: Vec<u64> = trace.iter().map(|v| pair.encode(v)).collect();
        let mut detected = 0usize;
        let mut latency_sum = 0usize;
        let mut silent_sum = 0usize;
        for &(at, bit) in &points {
            let bit = bit % lines;
            let (err_at, silent) = trial(&bus, &trace, pair.decoder_mut(), at, bit);
            if let Some(e) = err_at {
                detected += 1;
                latency_sum += e - at;
            }
            silent_sum += silent;
        }
        let detected_pct = 100.0 * detected as f64 / TRIALS as f64;
        let mean_latency = if detected > 0 {
            latency_sum as f64 / detected as f64
        } else {
            f64::NAN
        };
        t.push(vec![
            pair.name().into(),
            f(detected_pct, 1),
            if detected > 0 {
                f(mean_latency, 1)
            } else {
                "-".into()
            },
            f(silent_sum as f64 / TRIALS as f64, 1),
        ]);
    }
    vec![t]
}

/// Wire-order optimization (the A²BC direction, paper ref \[9\]): how
/// much coupling energy does re-routing wires remove, with no circuit
/// at all? Complementary to transcoding — it attacks κ where the
/// transcoders attack τ.
pub fn wire_reorder(session: &Session) -> Vec<Table> {
    use buscoding::wireorder::{permute_trace, CouplingMatrix};
    use buscoding::Activity;
    let mut t = Table::new(
        "ext-reorder",
        "Wire-order optimization: coupling (kappa) before/after, memory bus",
        &[
            "workload",
            "kappa_identity",
            "kappa_optimized",
            "kappa_removed_pct",
            "energy_removed_pct_l1",
        ],
    );
    let rows = par_map(
        vec![
            Workload::Bench(Benchmark::Apsi, BusKind::Memory),
            Workload::Bench(Benchmark::Swim, BusKind::Memory),
            Workload::Bench(Benchmark::Go, BusKind::Memory),
            Workload::Bench(Benchmark::Gcc, BusKind::Address),
            Workload::Random,
        ],
        move |w| {
            let trace = session.trace_capped(w, CAP);
            let matrix = CouplingMatrix::of(&trace);
            let order = matrix.optimize();
            let permuted = permute_trace(&trace, &order);
            let measure = |tr: &bustrace::Trace| {
                let mut a = Activity::new(tr.width().bits());
                for v in tr.iter() {
                    a.step(v);
                }
                a
            };
            let before = measure(&trace);
            let after = measure(&permuted);
            let energy_removed = 100.0 * (1.0 - after.weighted(1.0) / before.weighted(1.0));
            (w.name(), before.kappa(), after.kappa(), energy_removed)
        },
    );
    for (name, before, after, energy) in rows {
        let kappa_removed = 100.0 * (1.0 - after as f64 / before.max(1) as f64);
        t.push(vec![
            name,
            before.to_string(),
            after.to_string(),
            f(kappa_removed, 1),
            f(energy, 1),
        ]);
    }
    vec![t]
}

/// Kernel realism dashboard: IPC, branch prediction and cache behaviour
/// of every kernel under the out-of-order engine — the evidence that
/// the synthetic suite behaves like programs, not noise generators.
pub fn kernel_stats(session: &Session) -> Vec<Table> {
    use simcpu::{Machine, MachineConfig, OooConfig, OooMachine};
    let mut t = Table::new(
        "ext-kernels",
        "Kernel execution characteristics (out-of-order engine)",
        &[
            "kernel",
            "ipc",
            "mispredict_pct",
            "l1_hit_pct",
            "mem_frac_pct",
            "fp_frac_pct",
        ],
    );
    let budget = (session.values() as u64).clamp(100_000, 2_000_000);
    let seed = session.seed();
    let rows = par_map(Benchmark::ALL.to_vec(), move |b| {
        let spec = b.kernel(seed);
        let mut ooo = OooMachine::new(spec.program.clone(), OooConfig::default());
        ooo.load_memory(0, &spec.memory);
        let s = ooo.run(budget, usize::MAX, usize::MAX);
        // Cache stats and instruction mix from the in-order machine
        // (identical architectural execution).
        let mut m = Machine::new(spec.program, MachineConfig::default());
        m.load_memory(0, &spec.memory);
        let r = m.run(budget, usize::MAX, usize::MAX);
        let mix = r.mix;
        (
            b.name().to_string(),
            s.ipc,
            100.0 * s.mispredictions as f64 / s.branches.max(1) as f64,
            100.0 * r.cache_hit_rate,
            100.0 * mix.memory_fraction(),
            100.0 * mix.fpu as f64 / mix.total().max(1) as f64,
        )
    });
    for (name, ipc, mis, hit, memf, fpf) in rows {
        t.push(vec![
            name,
            f(ipc, 2),
            f(mis, 1),
            f(hit, 1),
            f(memf, 1),
            f(fpf, 1),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Session {
        Session::builder().values(10_000).build()
    }

    #[test]
    fn wire_reorder_never_hurts() {
        let t = &wire_reorder(&Session::builder().values(8_000).build())[0];
        for row in &t.rows {
            let removed: f64 = row[3].parse().unwrap();
            assert!(
                removed >= -0.001,
                "optimizer must not increase kappa: {row:?}"
            );
        }
    }

    #[test]
    fn desync_study_shape() {
        let t = &desync(&Session::builder().values(5_000).build())[0];
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            let detected: f64 = row[1].parse().unwrap();
            assert!(detected > 30.0, "most flips should be caught: {row:?}");
            let silent: f64 = row[3].parse().unwrap();
            assert!(
                silent < 50.0,
                "silent corruption must stay bounded: {row:?}"
            );
        }
    }

    #[test]
    fn timing_model_results_are_close() {
        // The coding *sign* and rough magnitude must not hinge on
        // re-timing detail. The L2 hierarchy barely moves anything; the
        // out-of-order clustering can shift a stencil kernel by 10+
        // points (mgrid's stride-6 loads end up adjacent after issue
        // reordering) without ever flipping a conclusion.
        let t = &timing_model(&tiny())[0];
        for row in &t.rows {
            let flat: f64 = row[1].parse().unwrap();
            let deep: f64 = row[2].parse().unwrap();
            let ooo: f64 = row[3].parse().unwrap();
            assert!((flat - deep).abs() < 12.0, "{row:?}");
            assert!((flat - ooo).abs() < 20.0, "{row:?}");
            assert_eq!(flat.signum(), ooo.signum(), "{row:?}");
        }
    }

    #[test]
    fn varlen_reports_are_consistent() {
        let t = &varlen(&tiny())[0];
        assert_eq!(t.rows.len(), 5);
        for row in &t.rows {
            let bits: f64 = row[1].parse().unwrap();
            let cpv: f64 = row[3].parse().unwrap();
            // 8 lanes: cycles/value ~ bits/8.
            assert!((cpv - bits / 8.0).abs() < 0.3, "{row:?}");
        }
    }

    #[test]
    fn spatial_bound_dominates() {
        let t = &spatial_bound(&tiny())[0];
        for row in &t.rows {
            let base: f64 = row[1].parse().unwrap();
            let spatial: f64 = row[2].parse().unwrap();
            assert!(
                spatial <= 2.0 + 1e-9,
                "one-hot can't exceed 2 toggles: {row:?}"
            );
            assert!(spatial < base, "{row:?}");
        }
    }

    #[test]
    fn inverted_fallback_never_hurts() {
        let t = &miss_policy(&tiny())[0];
        for row in &t.rows {
            let both: f64 = row[1].parse().unwrap();
            let raw: f64 = row[2].parse().unwrap();
            assert!(
                both >= raw - 0.5,
                "inversion option should not lose: {row:?}"
            );
        }
    }
}
