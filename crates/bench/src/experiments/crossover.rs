//! Section 5.4.3 reproductions: total-energy curves (Figures 35–36),
//! scaling trends (Figures 37–38), median crossover lengths (Table 3),
//! and the Section 7 headline number.

use buscoding::Activity;
use hwmodel::crossover::{median, CodingOutcome};
use hwmodel::OpCounts;
use simcpu::{Benchmark, BusKind};
use wiremodel::{Technology, WireStyle};

use crate::experiments::par_map;
use crate::report::{f, opt_mm, Table};
use crate::schemes::{window_hw_ops, window_outcome_from_parts, Scheme};
use crate::session::ActivityQuery;
use crate::workloads::Workload;
use crate::Session;

const LENGTHS: [f64; 8] = [1.0, 3.0, 5.0, 8.0, 11.5, 15.0, 20.0, 30.0];

/// The technology-independent measurements of one benchmark under the
/// Window design: memoized baseline and coded activities (session
/// stores) plus the hardware op tally. A tech × entries grid computes
/// these once per (benchmark, entries) and prices them per technology.
struct WindowParts {
    bench: Benchmark,
    baseline: Activity,
    coded: Activity,
    ops: OpCounts,
    values: u64,
}

/// Gathers [`WindowParts`] for every benchmark on a bus at one entry
/// count. Traces, baselines and coded activities come from the session
/// caches, so the grids of Figures 37–38 and Table 3 walk each
/// benchmark trace once no matter how many grid points reuse it.
fn window_parts(
    session: &Session,
    bus: BusKind,
    entries: usize,
    benches: &[Benchmark],
) -> Vec<WindowParts> {
    par_map(benches.to_vec(), move |b| {
        let w = Workload::Bench(b, bus);
        let trace = session.trace(w);
        WindowParts {
            bench: b,
            baseline: session.baseline(w),
            coded: session.activity(&ActivityQuery::new(Scheme::Window { entries }.name(), w)),
            ops: window_hw_ops(&trace, entries),
            values: trace.len() as u64,
        }
    })
}

/// Prices the parts for one technology.
fn outcomes_from_parts(
    parts: &[WindowParts],
    entries: usize,
    tech: Technology,
) -> Vec<(Benchmark, CodingOutcome)> {
    parts
        .iter()
        .map(|p| {
            (
                p.bench,
                window_outcome_from_parts(p.baseline, p.coded, p.values, &p.ops, entries, tech),
            )
        })
        .collect()
}

fn total_energy_figure(id: &str, title: &str, session: &Session, bus: BusKind) -> Table {
    let mut t = Table::new(id, title, &["workload", "length_mm", "normalized_energy"]);
    let tech = Technology::tech_013();
    let parts = window_parts(session, bus, 8, &Benchmark::ALL);
    for (b, outcome) in outcomes_from_parts(&parts, 8, tech) {
        let curve = outcome
            .normalized_curve(tech, WireStyle::Repeated, &LENGTHS)
            .expect("valid lengths");
        for (l, e) in curve {
            t.push(vec![format!("{b}/{bus}"), f(l, 1), f(e, 4)]);
        }
    }
    t
}

/// Figure 35: Window-8 total energy normalized to the un-encoded bus,
/// register bus, 0.13 µm.
pub fn fig35(session: &Session) -> Vec<Table> {
    vec![total_energy_figure(
        "fig35",
        "Window-8 total energy vs wire length, register bus, 0.13um",
        session,
        BusKind::Register,
    )]
}

/// Figure 36: same on the memory bus.
pub fn fig36(session: &Session) -> Vec<Table> {
    vec![total_energy_figure(
        "fig36",
        "Window-8 total energy vs wire length, memory bus, 0.13um",
        session,
        BusKind::Memory,
    )]
}

/// Median normalized-energy curves per technology and entry count, split
/// into SPECint and SPECfp (Figures 37–38).
fn trend_figure(id: &str, title: &str, session: &Session, bus: BusKind) -> Table {
    let mut t = Table::new(
        id,
        title,
        &[
            "technology",
            "entries",
            "suite",
            "length_mm",
            "median_normalized_energy",
        ],
    );
    // The per-benchmark activities and hardware walks are
    // technology-independent: gather them once per entry count, then
    // price every technology off the same parts.
    let parts: Vec<(usize, Vec<WindowParts>)> = [8usize, 16]
        .iter()
        .map(|&entries| {
            (
                entries,
                window_parts(session, bus, entries, &Benchmark::ALL),
            )
        })
        .collect();
    for tech in Technology::all() {
        for (entries, parts) in &parts {
            let entries = *entries;
            let all = outcomes_from_parts(parts, entries, tech);
            for (suite, filter) in [("int", false), ("fp", true)]
                .map(|(s, fp)| (s, move |b: &Benchmark| b.is_fp() == fp))
            {
                for &l in &LENGTHS {
                    let wire =
                        wiremodel::Wire::new(tech, WireStyle::Repeated, l).expect("valid length");
                    let energies: Vec<f64> = all
                        .iter()
                        .filter(|(b, _)| filter(b))
                        .map(|(_, o)| o.normalized_total_energy(&wire))
                        .collect();
                    let m = median(energies).expect("non-empty suite");
                    t.push(vec![
                        tech.kind.to_string(),
                        entries.to_string(),
                        suite.into(),
                        f(l, 1),
                        f(m, 4),
                    ]);
                }
            }
        }
    }
    t
}

/// Figure 37: scaling trends on the register bus.
pub fn fig37(session: &Session) -> Vec<Table> {
    vec![trend_figure(
        "fig37",
        "Median normalized energy vs length, register bus (tech x entries x suite)",
        session,
        BusKind::Register,
    )]
}

/// Figure 38: scaling trends on the memory bus.
pub fn fig38(session: &Session) -> Vec<Table> {
    vec![trend_figure(
        "fig38",
        "Median normalized energy vs length, memory bus (tech x entries x suite)",
        session,
        BusKind::Memory,
    )]
}

/// Table 3: median crossover lengths for the Window design on the
/// register bus.
pub fn table3(session: &Session) -> Vec<Table> {
    let mut t = Table::new(
        "table3",
        "Median crossover lengths, register bus (paper: 11.5mm @0.13um/8e ... 2.7mm @0.07um/16e)",
        &["technology", "entries", "specint_mm", "specfp_mm", "all_mm"],
    );
    let parts: Vec<(usize, Vec<WindowParts>)> = [8usize, 16]
        .iter()
        .map(|&entries| {
            (
                entries,
                window_parts(session, BusKind::Register, entries, &Benchmark::ALL),
            )
        })
        .collect();
    for tech in Technology::all() {
        for (entries, parts) in &parts {
            let entries = *entries;
            let all = outcomes_from_parts(parts, entries, tech);
            let xover = |filter: &dyn Fn(&Benchmark) -> bool| -> Option<f64> {
                let xs: Vec<f64> = all
                    .iter()
                    .filter(|(b, _)| filter(b))
                    .filter_map(|(_, o)| o.crossover_mm(tech, WireStyle::Repeated))
                    .collect();
                median(xs)
            };
            t.push(vec![
                tech.kind.to_string(),
                entries.to_string(),
                opt_mm(xover(&|b| !b.is_fp())),
                opt_mm(xover(&|b| b.is_fp())),
                opt_mm(xover(&|_| true)),
            ]);
        }
    }
    vec![t]
}

/// The Section 7 headline: average percent of transitions removed on
/// the register bus (paper: 36%).
pub fn headline(session: &Session) -> Vec<Table> {
    let mut t = Table::new(
        "headline",
        "Average % of weighted transitions removed, register bus (paper headline: 36%)",
        &["scheme", "average_percent_removed"],
    );
    let schemes = [
        Scheme::Window { entries: 8 },
        Scheme::Window { entries: 16 },
        Scheme::ContextValue {
            table: 28,
            shift: 8,
            divide: 4096,
        },
    ];
    let per_bench: Vec<Vec<f64>> = par_map(Benchmark::ALL.to_vec(), move |b| {
        let w = Workload::Bench(b, BusKind::Register);
        let baseline = session.baseline(w);
        schemes
            .iter()
            .map(|s| {
                let coded = session.activity(&ActivityQuery::new(s.name(), w));
                buscoding::percent_energy_removed(&coded, &baseline, 1.0)
            })
            .collect()
    });
    for (i, scheme) in schemes.iter().enumerate() {
        let avg: f64 = per_bench.iter().map(|row| row[i]).sum::<f64>() / per_bench.len() as f64;
        t.push(vec![scheme.name(), f(avg, 1)]);
    }
    vec![t]
}

/// Shared check used by trend figures' tests and `paper_claims`.
pub fn activity_ratio(coded: &Activity, baseline: &Activity) -> f64 {
    coded.weighted(1.0) / baseline.weighted(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Session {
        Session::builder().values(15_000).build()
    }

    #[test]
    fn fig35_curves_decay_with_length() {
        let t = &fig35(&tiny())[0];
        // li is this reproduction's friendliest register-bus trace (the
        // role swim plays in the paper).
        let li: Vec<f64> = t
            .rows
            .iter()
            .filter(|r| r[0] == "li/register")
            .map(|r| r[2].parse().unwrap())
            .collect();
        assert_eq!(li.len(), LENGTHS.len());
        assert!(li.windows(2).all(|w| w[0] >= w[1]), "{li:?}");
        // At 30mm the friendly trace must be saving energy.
        assert!(*li.last().unwrap() < 1.0, "{li:?}");
    }

    #[test]
    fn table3_crossovers_shrink_with_technology() {
        let t = &table3(&tiny())[0];
        let all_col = |tech: &str, entries: &str| -> Option<f64> {
            t.rows
                .iter()
                .find(|r| r[0] == tech && r[1] == entries)
                .and_then(|r| r[4].parse().ok())
        };
        if let (Some(l13), Some(l07)) = (all_col("0.13um", "8"), all_col("0.07um", "8")) {
            assert!(l07 < l13, "crossover must shrink: {l13} -> {l07}");
        } else {
            panic!("crossover columns missing: {:?}", t.rows);
        }
    }
}
