//! Section 3 reproductions: Table 1, Figures 5 and 6.

use wiremodel::{Technology, Wire, WireStyle};

use crate::report::{f, Table};
use crate::Session;

const LENGTHS: [f64; 7] = [1.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0];

/// Table 1: effective λ for unbuffered vs repeatered wires.
pub fn table1(_session: &Session) -> Vec<Table> {
    let mut t = Table::new(
        "table1",
        "Effective lambda (paper: 14.0/0.670, 16.6/0.576, 14.5/0.591)",
        &["technology", "wire_type", "lambda", "paper"],
    );
    let paper = [
        ("0.13um", 14.0, 0.670),
        ("0.10um", 16.6, 0.576),
        ("0.07um", 14.5, 0.591),
    ];
    for (tech, (name, unbuf, rep)) in Technology::all().iter().zip(paper) {
        let bare = Wire::new(*tech, WireStyle::Unbuffered, 20.0).expect("valid length");
        let repeated = Wire::new(*tech, WireStyle::Repeated, 20.0).expect("valid length");
        t.push(vec![
            name.into(),
            "unbuffered".into(),
            f(bare.lambda(), 2),
            f(unbuf, 2),
        ]);
        t.push(vec![
            name.into(),
            "repeated".into(),
            f(repeated.lambda(), 3),
            f(rep, 3),
        ]);
    }
    vec![t]
}

/// Figure 5: energy per transition vs wire length.
pub fn fig5(_session: &Session) -> Vec<Table> {
    let mut t = Table::new(
        "fig5",
        "Wire energy (pJ per transition incl. one coupling event) vs length",
        &[
            "length_mm",
            "rep_013",
            "rep_010",
            "rep_007",
            "wire_013",
            "wire_010",
            "wire_007",
        ],
    );
    for &l in &LENGTHS {
        let mut row = vec![f(l, 0)];
        for style in [WireStyle::Repeated, WireStyle::Unbuffered] {
            for tech in Technology::all() {
                let w = Wire::new(tech, style, l).expect("valid length");
                row.push(f(w.transition_energy_pj(), 3));
            }
        }
        t.push(row);
    }
    vec![t]
}

/// Figure 6: propagation delay vs wire length.
pub fn fig6(_session: &Session) -> Vec<Table> {
    let mut t = Table::new(
        "fig6",
        "Wire delay (ps) vs length: repeated linear, unbuffered quadratic",
        &[
            "length_mm",
            "rep_013",
            "rep_010",
            "rep_007",
            "wire_013",
            "wire_010",
            "wire_007",
        ],
    );
    for &l in &LENGTHS {
        let mut row = vec![f(l, 0)];
        for style in [WireStyle::Repeated, WireStyle::Unbuffered] {
            for tech in Technology::all() {
                let w = Wire::new(tech, style, l).expect("valid length");
                row.push(f(w.delay_ps(), 0));
            }
        }
        t.push(row);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_six_rows() {
        let t = &table1(&Session::builder().build())[0];
        assert_eq!(t.rows.len(), 6);
        // Model column within 15% of the paper column for every row.
        for row in &t.rows {
            let model: f64 = row[2].parse().unwrap();
            let paper: f64 = row[3].parse().unwrap();
            assert!((model - paper).abs() / paper < 0.15, "{row:?}");
        }
    }

    #[test]
    fn fig5_energy_increases_with_length() {
        let t = &fig5(&Session::builder().build())[0];
        let first: f64 = t.rows[0][1].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[1].parse().unwrap();
        assert!(last > 10.0 * first);
    }

    #[test]
    fn fig6_unbuffered_exceeds_repeated_at_length() {
        let t = &fig6(&Session::builder().build())[0];
        let last = t.rows.last().unwrap();
        let rep: f64 = last[1].parse().unwrap();
        let bare: f64 = last[4].parse().unwrap();
        assert!(bare > 2.0 * rep, "{last:?}");
    }
}
