//! `fault-sweep`: corruption, detection and recovery of predictive
//! transcoders under injected bus faults.
//!
//! The paper's pairs assume an error-free channel; this experiment
//! quantifies what that assumption costs and what the
//! `buscoding::robust` countermeasures buy back:
//!
//! * upset-rate sweep (scheme × rate × resync interval) — mean silently
//!   corrupted words per upset and detection counts;
//! * single-flip recovery — every predictive scheme under epoch
//!   resync + bounded-recovery decode must reconverge within one epoch;
//! * resync energy — the epoch-flush tax priced through the Window
//!   hardware model, shifted crossover included;
//! * timing-error mode — upset probabilities derived from the wire
//!   model's delay distribution, worsening with length.

use buscoding::predict::{
    context_value_codec, fcm_codec, stride_codec, window_codec, ContextConfig, FcmConfig,
    StrideConfig, WindowConfig,
};
use buscoding::robust::{epoch_wrap, RecoveringDecoder};
use buscoding::{evaluate, Encoder, Transcoder};
use busfault::{ErrorPolicy, FaultChannel, RandomUpsets, SingleFlip, TimingFaults};
use bustrace::Trace;
use hwmodel::crossover::CodingOutcome;
use hwmodel::CircuitModel;
use simcpu::{Benchmark, BusKind};
use wiremodel::{Technology, Wire, WireStyle};

use crate::report::{f, opt_mm, Table};
use crate::schemes::{baseline_activity, window_transcoder_pj_per_value};
use crate::workloads::Workload;
use crate::Session;

/// The predictive schemes under test, as fresh transcoder pairs.
fn predictive_schemes(trace: &Trace) -> Vec<Transcoder> {
    let w = trace.width();
    let (se, sd) = stride_codec(StrideConfig::new(w, 8));
    let (we, wd) = window_codec(WindowConfig::new(w, 8));
    let (ce, cd) = context_value_codec(ContextConfig::new(w, 28, 8).with_divide_period(4096));
    let (fe, fd) = fcm_codec(FcmConfig::new(w, 2, 12));
    vec![
        Transcoder::new("stride(8)", se, sd),
        Transcoder::new("window(8)", we, wd),
        Transcoder::new("context-value(28+8)", ce, cd),
        Transcoder::new("fcm(o2/2^12)", fe, fd),
    ]
}

/// Splits a seed deterministically per (scheme, cell) without
/// correlating adjacent cells.
fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut x =
        seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^ (x >> 33)
}

/// The fault-injection sweep: four tables covering random upsets,
/// single-flip recovery, the resync energy tax, and wire-derived
/// timing errors.
pub fn fault_sweep(session: &Session) -> Vec<Table> {
    let trace = session.trace_capped(Workload::Bench(Benchmark::Gcc, BusKind::Register), 20_000);
    let seed = session.seed();
    vec![
        upset_sweep(seed, &trace),
        single_flip_recovery(seed, &trace),
        resync_energy(&trace),
        timing_mode(seed, &trace),
    ]
}

/// Scheme × upset rate × resync interval: silent corruption and
/// detection under uniformly random single-line upsets.
fn upset_sweep(seed: u64, trace: &Trace) -> Table {
    let mut t = Table::new(
        "fault-sweep-upsets",
        "Random upsets: corruption and detection vs resync interval (gcc register bus)",
        &[
            "scheme",
            "upset_rate",
            "resync_interval",
            "faulted_steps",
            "detected",
            "corrupted_words",
            "corrupted_per_upset",
            "resynced_by_end",
        ],
    );
    const RATES: [f64; 2] = [1e-4, 1e-3];
    const INTERVALS: [u64; 2] = [0, 256]; // 0 = no resync
    let channel = FaultChannel::new(ErrorPolicy::Continue);
    let names: Vec<String> = predictive_schemes(trace)
        .iter()
        .map(|p| p.name().to_string())
        .collect();
    for (si, name) in names.iter().enumerate() {
        for (ri, &rate) in RATES.iter().enumerate() {
            for &interval in &INTERVALS {
                // Fresh FSMs per cell: the channel resets state, but a
                // fresh pair keeps cells fully independent.
                let pair = predictive_schemes(trace).swap_remove(si);
                let mut fault =
                    RandomUpsets::new(rate, mix(seed, si as u64, ((ri as u64) << 16) | interval));
                let report = if interval == 0 {
                    let mut pair = pair;
                    channel.run_pair(&mut pair, &mut fault, trace)
                } else {
                    let (enc, dec) = pair.into_parts();
                    let (mut enc, mut dec) = epoch_wrap(enc, dec, interval);
                    channel.run(&mut enc, &mut dec, &mut fault, trace)
                };
                t.push(vec![
                    name.clone(),
                    format!("{rate:e}"),
                    if interval == 0 {
                        "none".to_string()
                    } else {
                        interval.to_string()
                    },
                    report.faulted_steps.to_string(),
                    report.detected_errors.to_string(),
                    report.corrupted_words.to_string(),
                    f(report.corrupted_per_upset(), 2),
                    if report.resynchronized() { "yes" } else { "no" }.to_string(),
                ]);
            }
        }
    }
    t
}

/// One flipped bit per trial under epoch(128) resync plus
/// bounded-recovery decode: every trial must reconverge within one
/// epoch of the flip.
fn single_flip_recovery(seed: u64, trace: &Trace) -> Table {
    let mut t = Table::new(
        "fault-sweep-flip",
        "Single bit flip under epoch(128) + recovering decode (gcc register bus)",
        &[
            "scheme",
            "trials",
            "recovered_within_epoch_pct",
            "mean_corrupted_words",
            "max_recovery_latency",
        ],
    );
    const INTERVAL: u64 = 128;
    const TRIALS: u64 = 40;
    let words = trace.len() as u64;
    let channel = FaultChannel::new(ErrorPolicy::Continue);
    let names: Vec<String> = predictive_schemes(trace)
        .iter()
        .map(|p| p.name().to_string())
        .collect();
    for (si, name) in names.iter().enumerate() {
        let mut recovered = 0u64;
        let mut corrupted_sum = 0u64;
        let mut max_latency = 0u64;
        for trial in 0..TRIALS {
            let (enc, dec) = predictive_schemes(trace).swap_remove(si).into_parts();
            let dec = RecoveringDecoder::new(dec, trace.width());
            let (mut enc, mut dec) = epoch_wrap(enc, dec, INTERVAL);
            let x = mix(seed, si as u64, trial);
            // Leave at least one full epoch after the flip. (For very
            // short traces, fall back to flipping anywhere.)
            let at = if words > 2 * INTERVAL {
                x % (words - 2 * INTERVAL) + INTERVAL
            } else {
                x % words.max(1)
            };
            let line = ((x >> 32) % u64::from(enc.lines())) as u32;
            let mut fault = SingleFlip::new(at, line);
            let report = channel.run(&mut enc, &mut dec, &mut fault, trace);
            let boundary = (at / INTERVAL + 1) * INTERVAL;
            if let Some(rc) = report.reconverged_at {
                if rc <= boundary {
                    recovered += 1;
                    max_latency = max_latency.max(rc.saturating_sub(at));
                }
            }
            corrupted_sum += report.corrupted_words;
        }
        t.push(vec![
            name.clone(),
            TRIALS.to_string(),
            f(recovered as f64 / TRIALS as f64 * 100.0, 1),
            f(corrupted_sum as f64 / TRIALS as f64, 2),
            max_latency.to_string(),
        ]);
    }
    t
}

/// The price of robustness: epoch flushes cost predictor-refill wire
/// energy (visible in the coded activity) plus transcoder state-clear
/// energy (priced via the Window hardware model), moving the crossover.
fn resync_energy(trace: &Trace) -> Table {
    let mut t = Table::new(
        "fault-sweep-energy",
        "Resync energy tax: window(8) percent removed and crossover vs epoch interval",
        &[
            "resync_interval",
            "percent_removed",
            "flushes",
            "transcoder_pj_per_value",
            "crossover_mm",
        ],
    );
    const ENTRIES: usize = 8;
    let tech = Technology::tech_013();
    let baseline = baseline_activity(trace);
    let base_tau = baseline.weighted(1.0);
    let transcoder = window_transcoder_pj_per_value(trace, ENTRIES, tech);
    // Clearing the CAM on a flush rewrites every entry at both ends.
    let pj_per_flush = 2.0 * ENTRIES as f64 * CircuitModel::window(tech, ENTRIES).energies().shift;
    for interval in [0u64, 64, 256, 1024, 4096] {
        let (enc, dec) = window_codec(WindowConfig::new(trace.width(), ENTRIES));
        let (coded, flushes) = if interval == 0 {
            let mut enc = enc;
            (evaluate(&mut enc, trace), 0)
        } else {
            let (mut enc, _dec) = epoch_wrap(enc, dec, interval);
            let a = evaluate(&mut enc, trace);
            (a, enc.flushes())
        };
        let removed = (1.0 - coded.weighted(1.0) / base_tau) * 100.0;
        let outcome = CodingOutcome::new(baseline, coded, trace.len() as u64, transcoder)
            .with_resync_tax(flushes, pj_per_flush);
        t.push(vec![
            if interval == 0 {
                "none".to_string()
            } else {
                interval.to_string()
            },
            f(removed, 1),
            flushes.to_string(),
            f(outcome.transcoder_pj_per_value, 3),
            opt_mm(outcome.crossover_mm(tech, WireStyle::Repeated)),
        ]);
    }
    t
}

/// Wire-derived timing errors: per-line upset probability from the
/// delay model, with corruption measured end to end under epoch
/// resync + recovery.
fn timing_mode(seed: u64, trace: &Trace) -> Table {
    let mut t = Table::new(
        "fault-sweep-timing",
        "Timing-error mode: wire-length-derived upsets, window(8), epoch(256) + recovery",
        &[
            "length_mm",
            "base_upset_prob",
            "faulted_steps",
            "corrupted_words",
            "resynced_by_end",
        ],
    );
    const CYCLE_PS: f64 = 1000.0;
    const SIGMA_PS: f64 = 100.0;
    let tech = Technology::tech_013();
    let channel = FaultChannel::new(ErrorPolicy::Continue);
    for (i, &len) in [5.0f64, 15.0, 25.0, 35.0].iter().enumerate() {
        let wire = Wire::new(tech, WireStyle::Repeated, len).expect("valid length");
        let mut fault =
            TimingFaults::from_wire(&wire, CYCLE_PS, SIGMA_PS, mix(seed, 0xD1A6, i as u64));
        let (enc, dec) = window_codec(WindowConfig::new(trace.width(), 8));
        let dec = RecoveringDecoder::new(dec, trace.width());
        let (mut enc, mut dec) = epoch_wrap(enc, dec, 256);
        let report = channel.run(&mut enc, &mut dec, &mut fault, trace);
        t.push(vec![
            f(len, 0),
            format!("{:.2e}", fault.base_probability()),
            report.faulted_steps.to_string(),
            report.corrupted_words.to_string(),
            if report.resynchronized() { "yes" } else { "no" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_session() -> Session {
        Session::builder().values(4000).seed(7).build()
    }

    #[test]
    fn fault_sweep_produces_four_tables() {
        let tables = fault_sweep(&small_session());
        assert_eq!(tables.len(), 4);
        let ids: Vec<&str> = tables.iter().map(|t| t.id.as_str()).collect();
        assert_eq!(
            ids,
            [
                "fault-sweep-upsets",
                "fault-sweep-flip",
                "fault-sweep-energy",
                "fault-sweep-timing"
            ]
        );
        for table in &tables {
            assert!(!table.rows.is_empty(), "{} is empty", table.id);
        }
    }

    #[test]
    fn fault_sweep_is_deterministic() {
        let a = fault_sweep(&small_session());
        let b = fault_sweep(&small_session());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rows, y.rows, "{} differs between runs", x.id);
        }
    }

    #[test]
    fn single_flip_always_recovers_within_epoch() {
        let session = small_session();
        let trace = session.trace(Workload::Bench(Benchmark::Gcc, BusKind::Register));
        let table = single_flip_recovery(session.seed(), &trace);
        for row in &table.rows {
            assert_eq!(
                row[2], "100.0",
                "scheme {} failed to recover: {row:?}",
                row[0]
            );
        }
    }

    #[test]
    fn resync_shrinks_savings_monotonically_in_flush_rate() {
        let session = small_session();
        let trace = session.trace(Workload::Bench(Benchmark::Gcc, BusKind::Register));
        let table = resync_energy(&trace);
        // Row 0 is "none"; tighter intervals (row 1) must not beat it.
        let removed: Vec<f64> = table.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(
            removed[1] <= removed[0] + 1e-9,
            "interval 64 saved more than no-resync: {removed:?}"
        );
        let flushes: Vec<u64> = table.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert_eq!(flushes[0], 0);
        assert!(flushes[1] > flushes[2], "{flushes:?}");
    }
}
