//! Section 4 reproductions: coding-effectiveness figures 15–25.
//!
//! All percentages are λ-weighted energy removed relative to the
//! un-encoded bus with λ = 1, the paper's default (Section 4.4).

use buscoding::normalized_energy_remaining;
use simcpu::{Benchmark, BusKind};

use crate::api::{EvalRequest, Evaluator};
use crate::experiments::par_map;
use crate::report::{f, Table};
use crate::schemes::Scheme;
use crate::session::ActivityQuery;
use crate::workloads::Workload;
use crate::Session;

const LAMBDA: f64 = 1.0;

/// Generic sweep: for every workload line and every x-axis
/// configuration, the percent of energy removed. Each workload line is
/// one [`EvalRequest`] through the shared [`Evaluator`] surface — the
/// same computation a `repro serve` daemon runs for the same request —
/// so the batch binary and the service cannot drift. Traces and
/// baseline activities come from the session caches, so sweeps sharing
/// a workload grid (figures 16/20/22, 17/21/23, ...) pay for each
/// trace and baseline once per run.
fn percent_sweep(
    id: &str,
    title: &str,
    session: &Session,
    workloads: Vec<Workload>,
    configs: Vec<(String, Scheme)>,
) -> Table {
    let mut t = Table::new(id, title, &["workload", "x", "scheme", "percent_removed"]);
    let schemes: Vec<String> = configs.iter().map(|(_, s)| s.name()).collect();
    let results = par_map(workloads, |w| {
        let request = EvalRequest::stored(w, schemes.clone()).lambda(LAMBDA);
        let response = session
            .evaluate(&request)
            .expect("every swept scheme is a registry name");
        let rows: Vec<(String, String, f64)> = configs
            .iter()
            .zip(response.results)
            .map(|((x, _), r)| (x.clone(), r.scheme, r.percent_removed))
            .collect();
        (w.name(), rows)
    });
    for (name, rows) in results {
        for (x, scheme, pct) in rows {
            t.push(vec![name.clone(), x, scheme, f(pct, 2)]);
        }
    }
    t
}

/// Figure 15: inversion-coder normalized energy vs the wire's actual λ,
/// for minimizers designed against λ=0 (classic bus-invert), λ=1, and
/// the true λ.
pub fn fig15(session: &Session) -> Vec<Table> {
    let mut t = Table::new(
        "fig15",
        "Inversion coder: % energy remaining vs actual lambda (lower is better)",
        &["traffic", "design", "actual_lambda", "percent_remaining"],
    );
    let lambdas = [0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0];
    let benches = [
        Benchmark::Gcc,
        Benchmark::Su2cor,
        Benchmark::Swim,
        Benchmark::Turb3d,
    ];

    // Traffic groups: register average, memory average, random.
    let mut groups: Vec<(String, Vec<Workload>)> = vec![
        (
            "register".into(),
            benches
                .iter()
                .map(|&b| Workload::Bench(b, BusKind::Register))
                .collect(),
        ),
        (
            "memory".into(),
            benches
                .iter()
                .map(|&b| Workload::Bench(b, BusKind::Memory))
                .collect(),
        ),
        ("random".into(), vec![Workload::Random]),
    ];

    const CAP: usize = 100_000;
    let results = par_map(std::mem::take(&mut groups), |(group, members)| {
        let baselines: Vec<_> = members
            .iter()
            .map(|w| session.baseline_capped(*w, CAP))
            .collect();
        // All coded activities go through the session store; the λN
        // design at actual λ = 1 shares its entry with the fixed λ1
        // design (identical scheme name).
        let inversion = |w: Workload, design: f64| {
            let scheme = Scheme::Inversion {
                chunks: 6,
                design_lambda: design,
            };
            session.activity(&ActivityQuery::new(scheme.name(), w).cap(CAP))
        };
        // λ0 and λ1 designs are independent of the actual λ.
        let fixed: Vec<(String, Vec<buscoding::Activity>)> = [("l0", 0.0), ("l1", 1.0)]
            .iter()
            .map(|&(name, design)| {
                let acts = members.iter().map(|&w| inversion(w, design)).collect();
                (name.to_string(), acts)
            })
            .collect();
        let mut rows = Vec::new();
        for &actual in &lambdas {
            for (design, acts) in &fixed {
                let avg: f64 = acts
                    .iter()
                    .zip(&baselines)
                    .map(|(a, b)| normalized_energy_remaining(a, b, actual))
                    .sum::<f64>()
                    / acts.len() as f64;
                rows.push((design.clone(), actual, 100.0 * avg));
            }
            // λN: redesigned per actual λ.
            let avg: f64 = members
                .iter()
                .zip(&baselines)
                .map(|(&w, b)| {
                    let a = inversion(w, actual);
                    normalized_energy_remaining(&a, b, actual)
                })
                .sum::<f64>()
                / members.len() as f64;
            rows.push(("lN".into(), actual, 100.0 * avg));
        }
        (group, rows)
    });
    for (group, rows) in results {
        for (design, actual, pct) in rows {
            t.push(vec![group.clone(), design, f(actual, 1), f(pct, 2)]);
        }
    }
    vec![t]
}

fn stride_configs() -> Vec<(String, Scheme)> {
    [1usize, 2, 4, 8, 12, 16, 20, 24, 28, 32]
        .iter()
        .map(|&s| (s.to_string(), Scheme::Stride { strides: s }))
        .collect()
}

/// Figure 16: strided predictor on the memory bus.
pub fn fig16(session: &Session) -> Vec<Table> {
    vec![percent_sweep(
        "fig16",
        "% energy removed vs number of stride predictors (memory bus)",
        session,
        Workload::figure_lines(BusKind::Memory),
        stride_configs(),
    )]
}

/// Figure 17: strided predictor on the register bus.
pub fn fig17(session: &Session) -> Vec<Table> {
    vec![percent_sweep(
        "fig17",
        "% energy removed vs number of stride predictors (register bus)",
        session,
        Workload::figure_lines(BusKind::Register),
        stride_configs(),
    )]
}

fn window_configs() -> Vec<(String, Scheme)> {
    [2usize, 4, 8, 12, 16, 24, 32, 48, 64]
        .iter()
        .map(|&n| (n.to_string(), Scheme::Window { entries: n }))
        .collect()
}

/// Figure 18: window-based transcoder on the memory bus.
pub fn fig18(session: &Session) -> Vec<Table> {
    vec![percent_sweep(
        "fig18",
        "% energy removed vs shift register size (memory bus)",
        session,
        Workload::all_benchmarks(BusKind::Memory),
        window_configs(),
    )]
}

/// Figure 19: window-based transcoder on the register bus.
pub fn fig19(session: &Session) -> Vec<Table> {
    vec![percent_sweep(
        "fig19",
        "% energy removed vs shift register size (register bus)",
        session,
        Workload::all_benchmarks(BusKind::Register),
        window_configs(),
    )]
}

fn table_sizes() -> Vec<usize> {
    vec![4, 8, 12, 16, 20, 24, 28, 32, 40, 48, 56, 64]
}

fn context_configs(transition: bool) -> Vec<(String, Scheme)> {
    table_sizes()
        .into_iter()
        .map(|n| {
            let scheme = if transition {
                Scheme::ContextTransition {
                    table: n,
                    shift: 8,
                    divide: 4096,
                }
            } else {
                Scheme::ContextValue {
                    table: n,
                    shift: 8,
                    divide: 4096,
                }
            };
            (n.to_string(), scheme)
        })
        .collect()
}

/// Figure 20: transition-flavor context transcoder, memory bus.
pub fn fig20(session: &Session) -> Vec<Table> {
    vec![percent_sweep(
        "fig20",
        "% energy removed vs table size, transition-based (memory bus, SR=8)",
        session,
        Workload::figure_lines(BusKind::Memory),
        context_configs(true),
    )]
}

/// Figure 21: transition-flavor context transcoder, register bus.
pub fn fig21(session: &Session) -> Vec<Table> {
    vec![percent_sweep(
        "fig21",
        "% energy removed vs table size, transition-based (register bus, SR=8)",
        session,
        Workload::figure_lines(BusKind::Register),
        context_configs(true),
    )]
}

/// Figure 22: value-flavor context transcoder, memory bus.
pub fn fig22(session: &Session) -> Vec<Table> {
    vec![percent_sweep(
        "fig22",
        "% energy removed vs table size, value-based (memory bus, SR=8)",
        session,
        Workload::figure_lines(BusKind::Memory),
        context_configs(false),
    )]
}

/// Figure 23: value-flavor context transcoder, register bus.
pub fn fig23(session: &Session) -> Vec<Table> {
    vec![percent_sweep(
        "fig23",
        "% energy removed vs table size, value-based (register bus, SR=8)",
        session,
        Workload::figure_lines(BusKind::Register),
        context_configs(false),
    )]
}

/// The benchmark subset of Figures 24–25.
fn fig24_benchmarks() -> Vec<Workload> {
    [
        Benchmark::Li,
        Benchmark::Compress,
        Benchmark::Gcc,
        Benchmark::Perl,
        Benchmark::Fpppp,
        Benchmark::Apsi,
        Benchmark::Swim,
    ]
    .iter()
    .map(|&b| Workload::Bench(b, BusKind::Register))
    .collect()
}

/// Figure 24: value-based context vs shift-register size (tables 16, 64).
pub fn fig24(session: &Session) -> Vec<Table> {
    let mut configs = Vec::new();
    for &table in &[16usize, 64] {
        for &sr in &[2usize, 4, 8, 12, 16, 24, 32] {
            configs.push((
                format!("{sr}@{table}"),
                Scheme::ContextValue {
                    table,
                    shift: sr,
                    divide: 4096,
                },
            ));
        }
    }
    vec![percent_sweep(
        "fig24",
        "% energy removed vs shift register size (register bus, tables 16 & 64)",
        session,
        fig24_benchmarks(),
        configs,
    )]
}

/// Figure 25: value-based context vs counter divide period.
pub fn fig25(session: &Session) -> Vec<Table> {
    let mut configs = Vec::new();
    for &table in &[16usize, 64] {
        for &period in &[4u64, 16, 64, 256, 1024, 4096, 16384] {
            configs.push((
                format!("{period}@{table}"),
                Scheme::ContextValue {
                    table,
                    shift: 8,
                    divide: period,
                },
            ));
        }
    }
    vec![percent_sweep(
        "fig25",
        "% energy removed vs counter divide period (register bus, tables 16 & 64)",
        session,
        fig24_benchmarks(),
        configs,
    )]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Session {
        Session::builder().values(20_000).build()
    }

    #[test]
    fn window_sweep_has_expected_shape() {
        let t = &fig19(&tiny())[0];
        // Every benchmark × every window size.
        assert_eq!(t.rows.len(), 17 * 9);
        // Energy removed grows (or holds) with window size on li, the
        // most locality-friendly integer kernel.
        let li: Vec<f64> = t
            .rows
            .iter()
            .filter(|r| r[0] == "li/register")
            .map(|r| r[3].parse().unwrap())
            .collect();
        assert!(li.last().unwrap() >= &li[0], "{li:?}");
        assert!(li.iter().any(|&p| p > 10.0), "li should benefit: {li:?}");
    }

    #[test]
    fn fig15_random_designs_agree_at_their_lambda() {
        let session = Session::builder().values(10_000).build();
        let t = &fig15(&session)[0];
        // At actual λ = 1, the λ1 and λN designs coincide by definition.
        let get = |design: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == "random" && r[1] == design && r[2] == "1.0")
                .map(|r| r[3].parse().unwrap())
                .expect("row present")
        };
        assert!((get("l1") - get("lN")).abs() < 1e-9);
    }
}
