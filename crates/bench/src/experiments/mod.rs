//! The experiment registry: one entry per paper table/figure plus the
//! ablations DESIGN.md calls out.

pub mod ablations;
pub mod adaptive;
pub mod circuits;
pub mod coding;
pub mod crossover;
pub mod extensions;
pub mod faults;
pub mod traces;
pub mod training;
pub mod wires;

use crate::report::Table;
use crate::Session;

/// A reproducible experiment.
pub struct Experiment {
    /// Identifier, e.g. `fig18` or `table3`.
    pub id: &'static str,
    /// What it regenerates.
    pub title: &'static str,
    /// Produces the result table(s). Experiments pull traces and
    /// baselines through the shared [`Session`] caches, so the same
    /// function is safe (and cheap) to run concurrently with its
    /// registry siblings.
    pub run: fn(&Session) -> Vec<Table>,
}

/// Every experiment, in paper order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            title: "Effective lambda per technology (Table 1)",
            run: wires::table1,
        },
        Experiment {
            id: "fig5",
            title: "Wire energy vs length (Figure 5)",
            run: wires::fig5,
        },
        Experiment {
            id: "fig6",
            title: "Wire delay vs length (Figure 6)",
            run: wires::fig6,
        },
        Experiment {
            id: "fig7",
            title: "Unique-value CDF (Figure 7)",
            run: traces::fig7,
        },
        Experiment {
            id: "fig8",
            title: "Window uniqueness (Figure 8)",
            run: traces::fig8,
        },
        Experiment {
            id: "fig15",
            title: "Inversion coder vs actual lambda (Figure 15)",
            run: coding::fig15,
        },
        Experiment {
            id: "fig16",
            title: "Strided predictor, memory bus (Figure 16)",
            run: coding::fig16,
        },
        Experiment {
            id: "fig17",
            title: "Strided predictor, register bus (Figure 17)",
            run: coding::fig17,
        },
        Experiment {
            id: "fig18",
            title: "Window transcoder, memory bus (Figure 18)",
            run: coding::fig18,
        },
        Experiment {
            id: "fig19",
            title: "Window transcoder, register bus (Figure 19)",
            run: coding::fig19,
        },
        Experiment {
            id: "fig20",
            title: "Context (transition), memory bus (Figure 20)",
            run: coding::fig20,
        },
        Experiment {
            id: "fig21",
            title: "Context (transition), register bus (Figure 21)",
            run: coding::fig21,
        },
        Experiment {
            id: "fig22",
            title: "Context (value), memory bus (Figure 22)",
            run: coding::fig22,
        },
        Experiment {
            id: "fig23",
            title: "Context (value), register bus (Figure 23)",
            run: coding::fig23,
        },
        Experiment {
            id: "fig24",
            title: "Context vs shift-register size (Figure 24)",
            run: coding::fig24,
        },
        Experiment {
            id: "fig25",
            title: "Context vs counter divide period (Figure 25)",
            run: coding::fig25,
        },
        Experiment {
            id: "fig26",
            title: "Transcoder energy budget (Figure 26)",
            run: circuits::fig26,
        },
        Experiment {
            id: "table2",
            title: "Transcoder circuit characteristics (Table 2)",
            run: circuits::table2,
        },
        Experiment {
            id: "fig35",
            title: "Window total energy vs length, register bus (Figure 35)",
            run: crossover::fig35,
        },
        Experiment {
            id: "fig36",
            title: "Window total energy vs length, memory bus (Figure 36)",
            run: crossover::fig36,
        },
        Experiment {
            id: "fig37",
            title: "Crossover trends, register bus (Figure 37)",
            run: crossover::fig37,
        },
        Experiment {
            id: "fig38",
            title: "Crossover trends, memory bus (Figure 38)",
            run: crossover::fig38,
        },
        Experiment {
            id: "table3",
            title: "Median crossover lengths (Table 3)",
            run: crossover::table3,
        },
        Experiment {
            id: "headline",
            title: "Average transition reduction on the register bus (Section 7)",
            run: crossover::headline,
        },
        Experiment {
            id: "ablation-sort",
            title: "Pending-bit sort vs ideal re-sort",
            run: ablations::sort,
        },
        Experiment {
            id: "ablation-precharge",
            title: "Selective precharge vs full matching",
            run: ablations::precharge,
        },
        Experiment {
            id: "ablation-counter",
            title: "Johnson vs binary counters",
            run: ablations::counter,
        },
        Experiment {
            id: "ablation-last",
            title: "LAST-value code-0 contribution",
            run: ablations::last_value,
        },
        Experiment {
            id: "ablation-invert",
            title: "Inverted-miss fallback contribution",
            run: extensions::miss_policy,
        },
        Experiment {
            id: "ext-varlen",
            title: "Variable-length coding study (Section 6 future work)",
            run: extensions::varlen,
        },
        Experiment {
            id: "ext-width",
            title: "Bus-width sensitivity",
            run: extensions::width,
        },
        Experiment {
            id: "ext-spatial",
            title: "Spatial one-hot bound",
            run: extensions::spatial_bound,
        },
        Experiment {
            id: "ext-address",
            title: "Address-bus coding study",
            run: extensions::address_bus,
        },
        Experiment {
            id: "ablation-timing",
            title: "Re-timing model sensitivity",
            run: extensions::timing_model,
        },
        Experiment {
            id: "ext-wirehist",
            title: "Per-wire transition histogram",
            run: extensions::wire_histogram,
        },
        Experiment {
            id: "ext-predictors",
            title: "Predictor-family head-to-head",
            run: extensions::predictors,
        },
        Experiment {
            id: "ext-timing",
            title: "Timing feasibility: reach within one cycle",
            run: extensions::timing_budget,
        },
        Experiment {
            id: "ext-desync",
            title: "Bit-flip desync robustness",
            run: extensions::desync,
        },
        Experiment {
            id: "fault-sweep",
            title: "Fault injection: upset sweep, recovery, resync energy tax",
            run: faults::fault_sweep,
        },
        Experiment {
            id: "ext-reorder",
            title: "Wire-order (coupling) optimization",
            run: extensions::wire_reorder,
        },
        Experiment {
            id: "ext-kernels",
            title: "Kernel execution characteristics",
            run: extensions::kernel_stats,
        },
        Experiment {
            id: "adaptive",
            title: "Online adaptive scheme selection vs static and oracle",
            run: adaptive::adaptive,
        },
        Experiment {
            id: "generalize",
            title: "Offline-trained predictor generalization vs static schemes",
            run: training::generalize,
        },
    ]
}

/// Acquires a mutex even when a panicking sibling poisoned it — the
/// protected data (a work queue, a slot table) stays structurally valid
/// across a panic in user code, which never runs under these locks.
fn relock<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// On panic, drains the pending work queue so sibling workers stop
/// picking up new items and the pool can wind down promptly.
struct DrainOnPanic<'a, T>(&'a std::sync::Mutex<Vec<T>>);

impl<T> Drop for DrainOnPanic<'_, T> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            relock(self.0).clear();
        }
    }
}

/// Runs closures over items on worker threads, preserving input order.
///
/// Used both inside experiments (fanning a workload list out) and by
/// the `repro` runner (fanning the experiments themselves out).
///
/// Workers adopt the calling thread's busprobe span context before
/// touching any work, so spans opened inside `f` record under the
/// caller's active path (`fig16/buscoding.codec.evaluate_blocks`, not a
/// bare `buscoding.codec.evaluate_blocks`) — metrics and trace
/// recording stay attributable under parallel execution.
///
/// # Panics
///
/// A panicking closure does not take the pool down with it: pending
/// work is drained, sibling workers finish their in-flight items with
/// poison-tolerant locking, and the *original* panic payload is
/// re-raised on the calling thread once every worker has stopped.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16);
    let mut out: Vec<Option<R>> = Vec::new();
    out.resize_with(items.len(), || None);
    let work: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let queue = std::sync::Mutex::new(work);
    let slots = std::sync::Mutex::new(&mut out);
    let span_ctx = busprobe::span_context();
    let first_panic = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let (span_ctx, queue, slots, f) = (&span_ctx, &queue, &slots, &f);
                s.spawn(move || {
                    busprobe::adopt_span_context(span_ctx);
                    loop {
                        let item = relock(queue).pop();
                        let Some((i, t)) = item else { break };
                        let drain = DrainOnPanic(queue);
                        let r = f(t);
                        drop(drain);
                        relock(slots)[i] = Some(r);
                    }
                })
            })
            .collect();
        let mut first = None;
        for h in handles {
            if let Err(payload) = h.join() {
                first.get_or_insert(payload);
            }
        }
        first
    });
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
    out.into_iter()
        .map(|r| r.expect("all items processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let mut ids: Vec<&str> = registry().iter().map(|e| e.id).collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
        assert!(n >= 24, "expected at least 24 experiments, found {n}");
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..100).collect::<Vec<i32>>(), |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_propagates_the_original_panic() {
        // A panicking closure used to poison the queue mutex, killing
        // sibling workers on `expect("queue")` before the real panic
        // could surface. The original payload must come through intact.
        let payload = std::panic::catch_unwind(|| {
            par_map((0..64).collect::<Vec<i32>>(), |x| {
                if x == 13 {
                    panic!("boom at {x}");
                }
                x
            })
        })
        .expect_err("a panicking closure must fail the call");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(ToString::to_string))
            .unwrap_or_default();
        assert!(msg.contains("boom at 13"), "wrong payload: {msg:?}");
        // The pool is reusable afterwards: nothing global was poisoned.
        assert_eq!(par_map(vec![1, 2, 3], |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn par_map_workers_adopt_the_callers_span_context() {
        // Trace recording is process-global; other tests' spans may land
        // in the buffer concurrently, so assert on our own unique names
        // only instead of on the drained set as a whole.
        busprobe::trace::set_enabled(true);
        {
            let _parent = busprobe::span("test.parmap.parent");
            par_map(vec![1u32, 2, 3, 4], |_| {
                let _child = busprobe::span("test.parmap.child");
            });
        }
        busprobe::trace::set_enabled(false);
        let spans = busprobe::trace::drain();
        let children = spans
            .iter()
            .filter(|s| s.path.ends_with("test.parmap.child"))
            .count();
        assert_eq!(children, 4, "every worker item records its span");
        assert!(
            spans
                .iter()
                .filter(|s| s.path.ends_with("test.parmap.child"))
                .all(|s| s.path.ends_with("test.parmap.parent/test.parmap.child")),
            "worker spans must carry the caller's path prefix"
        );
    }
}
