//! Train/test generalization: offline-trained predictors vs the
//! paper's online schemes — the headline study of the train/serve
//! extension.
//!
//! The paper's predictors learn online inside the priced trace, so
//! they can never be *wrong about the workload* — they just start
//! cold. An offline-trained predictor inverts the trade: it starts
//! hot, but everything it knows comes from the training corpus, so the
//! interesting question is generalization. This experiment trains on
//! solo SPEC register streams and then prices both splits:
//!
//! * the **train** rows measure headroom (how much do frozen tables
//!   capture of the traffic they saw?);
//! * the **test** rows measure transfer to a held-out *workload
//!   class* — multi-program interleavings ([`Workload::Mixed`]) whose
//!   quantum switches no solo trace contains — and to an entirely
//!   unseen program, where trained tables are expected to lose to
//!   online adaptation (the honesty row).

use std::sync::Arc;

use buscoding::predict::trained::trained_codec;
use buscoding::{evaluate_blocks, percent_energy_removed, CostModel};
use bustrain::{Role, TrainerConfig};

use crate::experiments::par_map;
use crate::report::{f, Table};
use crate::session::ActivityQuery;
use crate::training::resolve_corpus;
use crate::workloads::Workload;
use crate::Session;

/// Trace cap, matching the other extension studies.
const CAP: usize = 100_000;

/// The paper's static schemes the trained predictor is raced against —
/// one representative per family, at the sizes the paper's evaluation
/// settled on.
const STATIC_SCHEMES: &[&str] = &[
    "window(8)",
    "stride(4)",
    "context-value(28+8 d4096)",
    "context-transition(28+8 d4096)",
    "fcm(2 2^12)",
    "inversion(1ch l1)",
    "workzone(4)",
];

/// The `generalize` experiment: train on the built-in `generalize`
/// corpus's train split, then price every corpus entry under the
/// trained scheme and every static scheme, reporting percent energy
/// removed and who won per row.
pub fn generalize(session: &Session) -> Vec<Table> {
    let corpus = resolve_corpus(session, "generalize").expect("built-in corpus resolves");
    let values = session.values().min(CAP);
    // Train in-memory: the tables go straight into a codec, no artifact
    // file and no global artifact directory involved, so the experiment
    // is safe to run concurrently with anything.
    let tables = Arc::new(
        bustrain::train_corpus(&corpus, session, values, &TrainerConfig::default())
            .expect("the built-in corpus trains"),
    );

    let mut t = Table::new(
        "generalize",
        "Offline-trained predictor vs static paper schemes (train/test split)",
        &[
            "split",
            "workload",
            "trained_removed_pct",
            "best_static",
            "best_static_removed_pct",
            "trained_wins",
        ],
    );
    let entries: Vec<(Role, String)> = corpus
        .entries()
        .iter()
        .map(|e| (e.role, e.workload.clone()))
        .collect();
    let rows = par_map(entries, move |(role, name)| {
        let workload = Workload::parse(&name).expect("corpus workloads parse");
        let trace = session.trace_capped(workload, CAP);
        let baseline = session.baseline_capped(workload, CAP);
        let (mut enc, _dec) = trained_codec(Arc::clone(&tables), CostModel::default());
        let coded = evaluate_blocks(&mut enc, &trace);
        let trained = percent_energy_removed(&coded, &baseline, 1.0);
        let (best_static, best_removed) = STATIC_SCHEMES
            .iter()
            .map(|&scheme| {
                let coded = session.activity(&ActivityQuery::new(scheme, workload).cap(CAP));
                (scheme, percent_energy_removed(&coded, &baseline, 1.0))
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("static scheme list is non-empty");
        (role, name, trained, best_static, best_removed)
    });
    for (role, name, trained, best_static, best_removed) in rows {
        t.push(vec![
            role.keyword().to_string(),
            name,
            f(trained, 2),
            best_static.to_string(),
            f(best_removed, 2),
            if trained > best_removed { "yes" } else { "no" }.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance property of the whole train/serve extension: on
    /// at least one held-out (test-split) workload class, the trained
    /// scheme must beat every static paper scheme.
    #[test]
    fn trained_beats_every_static_on_a_held_out_class() {
        let session = Session::builder().values(30_000).build();
        let tables = generalize(&session);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        let rows = &t.rows;
        assert!(rows.len() >= 6, "one row per corpus entry");
        let test_wins = rows
            .iter()
            .filter(|r| r[0] == "test" && r[5] == "yes")
            .count();
        assert!(
            test_wins >= 1,
            "no held-out win; rows: {rows:?}"
        );
        // Train rows should be strong too — the tables saw this exact
        // traffic.
        assert!(
            rows.iter().filter(|r| r[0] == "train").all(|r| r[5] == "yes"),
            "trained tables must win on their own training traffic; rows: {rows:?}"
        );
    }
}
