//! Section 5 circuit reproductions: Table 2 and Figure 26.

use hwmodel::budget::energy_budget_pj_per_cycle;
use hwmodel::{CircuitModel, ContextHwConfig, WindowHardware};
use simcpu::BusKind;
use wiremodel::{Technology, Wire, WireStyle};

use crate::experiments::par_map;
use crate::report::{f, Table};
use crate::schemes::Scheme;
use crate::session::ActivityQuery;
use crate::workloads::Workload;
use crate::Session;

/// The circuit experiments cap their reference workload at 100k values;
/// the hardware-model tallies stabilize well before that.
const CAP: usize = 100_000;

/// Table 2: transcoder characteristics per technology.
///
/// Area, delay, cycle time and leakage come from the circuit model's
/// calibrated constants; the per-cycle op energy is *measured* by
/// running the hardware model over a reference register-bus workload and
/// pricing the tally — the paper's own methodology (Figure 34).
pub fn table2(session: &Session) -> Vec<Table> {
    let mut t = Table::new(
        "table2",
        "Transcoder characteristics (paper op energies: 1.39/1.07/0.55, inverter 1.76 pJ)",
        &[
            "design",
            "voltage_v",
            "area_um2",
            "op_energy_pj",
            "leakage_pj",
            "delay_ns",
            "cycle_ns",
        ],
    );
    // Reference workload: average the measured per-cycle energy over
    // every register-bus benchmark.
    let traces = par_map(Workload::all_benchmarks(BusKind::Register), |w| {
        session.trace_capped(w, CAP)
    });
    for tech in Technology::all() {
        let circuit = CircuitModel::window(tech, 8);
        let mut per_cycle = 0.0;
        for trace in &traces {
            let mut hw = WindowHardware::new(8);
            for v in trace.iter() {
                hw.present(v);
            }
            per_cycle += circuit.dynamic_energy_pj(hw.ops()) / hw.ops().cycles as f64;
        }
        per_cycle /= traces.len() as f64;
        t.push(vec![
            format!("window-8 {}", tech.kind),
            f(tech.vdd, 1),
            f(circuit.area_um2(), 0),
            f(per_cycle, 2),
            format!("{:.5}", circuit.leakage_pj_per_cycle()),
            f(circuit.delay_ns(), 1),
            f(circuit.cycle_time_ns(), 1),
        ]);
    }
    let inv = CircuitModel::inverter(Technology::tech_013());
    let one_cycle = hwmodel::OpCounts {
        cycles: 1,
        ..hwmodel::OpCounts::new()
    };
    t.push(vec![
        "invert-coder 0.13um".into(),
        f(1.2, 1),
        f(inv.area_um2(), 0),
        f(inv.dynamic_energy_pj(&one_cycle), 2),
        format!("{:.5}", inv.leakage_pj_per_cycle()),
        f(inv.delay_ns(), 1),
        f(inv.cycle_time_ns(), 1),
    ]);
    vec![t]
}

/// Figure 26: energy budget vs total dictionary entries, for 5/10/15 mm
/// wires, Window and Context designs, averaged over the register-bus
/// benchmarks.
pub fn fig26(session: &Session) -> Vec<Table> {
    let mut t = Table::new(
        "fig26",
        "Energy budget (pJ/cycle of wire energy saved) vs total entries",
        &["design", "length_mm", "entries", "budget_pj"],
    );
    let entry_counts = [4usize, 8, 16, 24, 32, 48, 64];
    let values = session.values().min(CAP);
    let tech = Technology::tech_013();

    let workloads = Workload::all_benchmarks(BusKind::Register);
    let baselines: Vec<_> = workloads
        .iter()
        .map(|w| session.baseline_capped(*w, CAP))
        .collect();

    let jobs: Vec<(&'static str, usize)> = entry_counts
        .iter()
        .flat_map(|&n| [("window", n), ("context", n)])
        .collect();
    let results = par_map(jobs, |(design, entries)| {
        let acts: Vec<_> = workloads
            .iter()
            .map(|&w| {
                let scheme = match design {
                    "window" => Scheme::Window { entries },
                    _ => {
                        let cfg = ContextHwConfig::paper_layout();
                        let table = entries.saturating_sub(cfg.shift).max(1);
                        Scheme::ContextValue {
                            table,
                            shift: cfg.shift,
                            divide: 4096,
                        }
                    }
                };
                session.activity(&ActivityQuery::new(scheme.name(), w).cap(CAP))
            })
            .collect();
        (design, entries, acts)
    });

    for &len in &[5.0f64, 10.0, 15.0] {
        let wire = Wire::new(tech, WireStyle::Repeated, len).expect("valid length");
        for (design, entries, acts) in &results {
            let budget: f64 = acts
                .iter()
                .zip(&baselines)
                .map(|(a, b)| energy_budget_pj_per_cycle(b, a, &wire, values as u64))
                .sum::<f64>()
                / acts.len() as f64;
            t.push(vec![
                design.to_string(),
                f(len, 0),
                entries.to_string(),
                f(budget, 3),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Session {
        Session::builder().values(10_000).build()
    }

    #[test]
    fn table2_op_energy_near_paper() {
        let t = &table2(&tiny())[0];
        let row13 = t
            .rows
            .iter()
            .find(|r| r[0].contains("0.13um") && r[0].contains("window"))
            .unwrap();
        let e: f64 = row13[3].parse().unwrap();
        assert!(
            (e - 1.39).abs() / 1.39 < 0.35,
            "0.13um op energy {e} vs paper 1.39"
        );
        let inv = t.rows.iter().find(|r| r[0].contains("invert")).unwrap();
        assert_eq!(inv[3], "1.76");
    }

    #[test]
    fn fig26_budget_grows_with_length() {
        let t = &fig26(&tiny())[0];
        let pick = |len: &str, entries: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == "window" && r[1] == len && r[2] == entries)
                .map(|r| r[3].parse().unwrap())
                .expect("row")
        };
        assert!(pick("15", "8") > pick("5", "8"));
    }
}
