//! Ablation studies of the design choices DESIGN.md calls out.

use buscoding::predict::{context_value_codec, ContextConfig};
use buscoding::Encoder;
use hwmodel::{CircuitModel, ContextHardware, ContextHwConfig, WindowHardware};
use simcpu::{Benchmark, BusKind};
use wiremodel::Technology;

use crate::experiments::par_map;
use crate::report::{f, Table};
use crate::schemes::Scheme;
use crate::session::ActivityQuery;
use crate::workloads::Workload;
use crate::Session;

/// The ablations cap their traces at 100k values, like the circuit
/// experiments.
const CAP: usize = 100_000;

fn ablation_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark::Gcc,
        Benchmark::Li,
        Benchmark::Swim,
        Benchmark::Mgrid,
        Benchmark::Perl,
    ]
}

/// Pending-bit neighbor-swap sort vs the ideal (immediately re-sorted)
/// behavioral table: how much hit-rate and energy the restricted
/// hardware sort gives up.
pub fn sort(session: &Session) -> Vec<Table> {
    let mut t = Table::new(
        "ablation-sort",
        "Pending-bit hardware sort vs ideal re-sort (register bus)",
        &[
            "workload",
            "ideal_removed_pct",
            "hw_hit_rate",
            "ideal_hit_rate",
            "hw_swaps_per_cycle",
        ],
    );
    let rows = par_map(ablation_benchmarks(), move |b| {
        let w = Workload::Bench(b, BusKind::Register);
        let trace = session.trace_capped(w, CAP);
        let cfg = ContextConfig::new(trace.width(), 28, 8);
        // Ideal: behavioral codec — `cfg` is exactly the registry's
        // context-value(28+8 d4096), so the session store supplies it.
        let coded = session.activity(
            &ActivityQuery::new(
                Scheme::ContextValue {
                    table: 28,
                    shift: 8,
                    divide: 4096,
                }
                .name(),
                w,
            )
            .cap(CAP),
        );
        let baseline = session.baseline_capped(w, CAP);
        let ideal_removed = buscoding::percent_energy_removed(&coded, &baseline, 1.0);
        // Ideal hit rate: count engine hits by re-running with outcome taps.
        let (mut enc2, _) = context_value_codec(cfg);
        enc2.reset();
        let mut ideal_hits = 0u64;
        for v in trace.iter() {
            enc2.encode(v);
            if matches!(
                enc2.last_outcome(),
                Some(buscoding::predict::EncodeOutcome::Hit { .. })
            ) {
                ideal_hits += 1;
            }
        }
        // Hardware: pending-bit model.
        let mut hw = ContextHardware::new(ContextHwConfig {
            table: 28,
            shift: 8,
            divide_period: 4096,
            promote_threshold: 2,
        });
        let mut hw_hits = 0u64;
        for v in trace.iter() {
            if matches!(hw.present(v), hwmodel::HwOutcome::Hit { .. }) {
                hw_hits += 1;
            }
        }
        let n = trace.len() as f64;
        (
            format!("{b}/register"),
            ideal_removed,
            hw_hits as f64 / n,
            ideal_hits as f64 / n,
            hw.ops().swaps as f64 / n,
        )
    });
    for (name, removed, hw_rate, ideal_rate, swaps) in rows {
        t.push(vec![
            name,
            f(removed, 1),
            f(hw_rate, 3),
            f(ideal_rate, 3),
            f(swaps, 3),
        ]);
    }
    vec![t]
}

/// Selective precharge vs full-width matching: the match-energy saving
/// of the two-stage comparator.
pub fn precharge(session: &Session) -> Vec<Table> {
    let mut t = Table::new(
        "ablation-precharge",
        "Selective precharge vs full-width matching (window-8, register bus, 0.13um)",
        &[
            "workload",
            "selective_pj_per_cycle",
            "full_pj_per_cycle",
            "saving_pct",
        ],
    );
    let tech = Technology::tech_013();
    let circuit = CircuitModel::window(tech, 8);
    let rows = par_map(ablation_benchmarks(), move |b| {
        let trace = session.trace_capped(Workload::Bench(b, BusKind::Register), CAP);
        let mut hw = WindowHardware::new(8);
        for v in trace.iter() {
            hw.present(v);
        }
        let selective = circuit.dynamic_energy_pj(hw.ops()) / hw.ops().cycles as f64;
        // Full-width matching: every precharge becomes a full compare.
        let mut full_ops = *hw.ops();
        full_ops.full_matches = full_ops.precharge_matches;
        full_ops.precharge_matches = 0;
        let full = circuit.dynamic_energy_pj(&full_ops) / full_ops.cycles as f64;
        (format!("{b}/register"), selective, full)
    });
    for (name, sel, full) in rows {
        t.push(vec![
            name,
            f(sel, 3),
            f(full, 3),
            f(100.0 * (1.0 - sel / full), 1),
        ]);
    }
    vec![t]
}

/// Johnson vs binary counters: bit transitions per increment.
pub fn counter(session: &Session) -> Vec<Table> {
    let mut t = Table::new(
        "ablation-counter",
        "Johnson vs binary counter energy in the context design (register bus, 0.13um)",
        &[
            "workload",
            "increments_per_cycle",
            "johnson_pj_per_cycle",
            "binary_pj_per_cycle",
        ],
    );
    let tech = Technology::tech_013();
    let circuit = CircuitModel::context(tech, 28, 8);
    let rows = par_map(ablation_benchmarks(), move |b| {
        let trace = session.trace_capped(Workload::Bench(b, BusKind::Register), CAP);
        let mut hw = ContextHardware::new(ContextHwConfig::paper_layout());
        for v in trace.iter() {
            hw.present(v);
        }
        let ops = hw.ops();
        let per_inc = circuit.energies().counter_increment;
        // A Johnson counter flips exactly one bit per count; a binary
        // counter flips 2 on average (1 + 1/2 + 1/4 + ...).
        let johnson = per_inc * ops.counter_increments as f64 / ops.cycles as f64;
        let binary = 2.0 * johnson;
        (
            format!("{b}/register"),
            ops.counter_increments as f64 / ops.cycles as f64,
            johnson,
            binary,
        )
    });
    for (name, rate, j, bin) in rows {
        t.push(vec![name, f(rate, 3), f(j, 4), f(bin, 4)]);
    }
    vec![t]
}

/// LAST-value code-0 contribution: window coding with the shift register
/// alone, sized one entry smaller, versus the full design — how much of
/// the win is just "repeats are free".
pub fn last_value(session: &Session) -> Vec<Table> {
    let mut t = Table::new(
        "ablation-last",
        "Contribution of repeats (window-1) vs the full window-8 (register bus)",
        &["workload", "window1_removed_pct", "window8_removed_pct"],
    );
    let rows = par_map(ablation_benchmarks(), move |b| {
        let w = Workload::Bench(b, BusKind::Register);
        let baseline = session.baseline_capped(w, CAP);
        let mut removed = Vec::new();
        for entries in [1usize, 8] {
            let coded =
                session.activity(&ActivityQuery::new(Scheme::Window { entries }.name(), w).cap(CAP));
            removed.push(buscoding::percent_energy_removed(&coded, &baseline, 1.0));
        }
        (format!("{b}/register"), removed[0], removed[1])
    });
    for (name, w1, w8) in rows {
        t.push(vec![name, f(w1, 1), f(w8, 1)]);
    }
    vec![t]
}
