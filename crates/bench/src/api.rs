//! The versioned evaluation API: one request/response surface shared by
//! every front end.
//!
//! Historically each experiment called ad-hoc `Session` methods and the
//! only way to evaluate a scheme was to link against `bench` and write
//! Rust. This module names that operation: an [`EvalRequest`] describes
//! *what* to evaluate (a stored workload or an inline trace, one or
//! more schemes, the lambda weighting, optional circuit pricing), an
//! [`EvalResponse`] carries *what came out* (per-scheme transition
//! counts and energy, cache provenance, timing), and the [`Evaluator`]
//! trait is the seam between them. [`Session`] implements `Evaluator`;
//! the `repro` batch binary and the `repro serve` daemon are two thin
//! front ends over this one surface, so a request evaluated over the
//! socket is byte-for-byte the computation the batch binary runs.
//!
//! [`ApiService`] adapts an evaluator to the wire: it implements
//! [`busserve::Service`], translating JSON request bodies into
//! [`EvalRequest`]s and typed [`ApiError`]s into protocol error
//! envelopes. The wire grammar is documented in `docs/SERVICE.md`.

use std::sync::Mutex;
use std::time::Instant;

use buscoding::predict::trained::ArtifactError;
use buscoding::{percent_energy_removed, Activity, UnknownScheme, SCHEME_PATTERNS};
use busprobe::JsonValue;
use busserve::{Service, ServiceError};
use bustrace::{Trace, Width};
use wiremodel::{BusEnergyModel, Technology, TechnologyKind, Wire, WireStyle};

use crate::schemes::baseline_activity;
use crate::session::{ActivityQuery, Session};
use crate::workloads::Workload;

/// Version of the eval request/response schema. Bump on any change that
/// is not purely additive; responses echo it as `api`.
pub const API_VERSION: i64 = 1;

/// Largest inline trace a request may carry, in words — the same cap
/// [`bustrace::io`] applies when reading traces from disk.
pub const MAX_INLINE_WORDS: usize = bustrace::io::DEFAULT_MAX_WORDS;

static EVALS: busprobe::StaticCounter = busprobe::StaticCounter::new("bench.api.evals");
static EVAL_SCHEMES: busprobe::StaticCounter = busprobe::StaticCounter::new("bench.api.schemes");

/// Where the words under evaluation come from.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceSource {
    /// A workload the session can regenerate deterministically, with
    /// optional overrides mirroring [`ActivityQuery`]'s knobs.
    Stored {
        /// The workload, addressed by [`Workload::name`].
        workload: Workload,
        /// Explicit trace length; defaults to the session length.
        len: Option<usize>,
        /// Upper bound applied after `len` resolves.
        cap: Option<usize>,
        /// Generator seed; defaults to the session seed.
        seed: Option<u64>,
    },
    /// Raw words shipped inside the request. Never memoized: the store
    /// is keyed by (workload, len, seed) provenance, which inline data
    /// does not have.
    Inline {
        /// Bus width the words are masked to.
        width: Width,
        /// The word stream.
        words: Vec<u64>,
    },
}

/// Optional circuit-level pricing: when present, each result also
/// carries wire energy in picojoules from [`wiremodel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pricing {
    /// Process technology.
    pub tech: TechnologyKind,
    /// Wire style (unbuffered or repeated).
    pub style: WireStyle,
    /// Wire length in millimetres.
    pub length_mm: f64,
    /// Supply-voltage override in volts; defaults to the technology's
    /// nominal Vdd.
    pub vdd: Option<f64>,
}

impl Pricing {
    /// Builds the energy model this pricing describes.
    ///
    /// # Errors
    ///
    /// [`ApiError::BadRequest`] when the wire length or voltage is out
    /// of range.
    pub fn model(&self) -> Result<BusEnergyModel, ApiError> {
        let mut tech = Technology::of(self.tech);
        if let Some(vdd) = self.vdd {
            if !vdd.is_finite() || vdd <= 0.0 || vdd > 10.0 {
                return Err(ApiError::BadRequest(format!(
                    "pricing.vdd must be in (0, 10] volts, got {vdd}"
                )));
            }
            tech.vdd = vdd;
        }
        let wire = Wire::new(tech, self.style, self.length_mm)
            .map_err(|e| ApiError::BadRequest(format!("pricing: {e}")))?;
        Ok(BusEnergyModel::new(wire))
    }
}

/// One evaluation request: schemes × one trace source, plus pricing.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRequest {
    /// Registry scheme names to evaluate, in response order.
    pub schemes: Vec<String>,
    /// The trace to run them over.
    pub source: TraceSource,
    /// Weight of coupling transitions relative to self transitions.
    pub lambda: f64,
    /// Optional circuit pricing.
    pub pricing: Option<Pricing>,
}

impl EvalRequest {
    /// A request over a stored workload with default knobs.
    pub fn stored(workload: Workload, schemes: Vec<String>) -> Self {
        EvalRequest {
            schemes,
            source: TraceSource::Stored {
                workload,
                len: None,
                cap: None,
                seed: None,
            },
            lambda: 1.0,
            pricing: None,
        }
    }

    /// A request over words shipped inline.
    pub fn inline(width: Width, words: Vec<u64>, schemes: Vec<String>) -> Self {
        EvalRequest {
            schemes,
            source: TraceSource::Inline { width, words },
            lambda: 1.0,
            pricing: None,
        }
    }

    /// Sets the lambda weighting.
    #[must_use]
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Caps a stored source's trace length (no-op for inline sources).
    #[must_use]
    pub fn cap(mut self, cap: usize) -> Self {
        if let TraceSource::Stored { cap: slot, .. } = &mut self.source {
            *slot = Some(cap);
        }
        self
    }

    /// Sets a stored source's explicit length (no-op for inline).
    #[must_use]
    pub fn len(mut self, len: usize) -> Self {
        if let TraceSource::Stored { len: slot, .. } = &mut self.source {
            *slot = Some(len);
        }
        self
    }

    /// Overrides a stored source's seed (no-op for inline).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        if let TraceSource::Stored { seed: slot, .. } = &mut self.source {
            *slot = Some(seed);
        }
        self
    }

    /// Attaches circuit pricing.
    #[must_use]
    pub fn pricing(mut self, pricing: Pricing) -> Self {
        self.pricing = Some(pricing);
        self
    }

    /// Parses a request from a JSON body (the flat object the wire
    /// envelope carries; `v`/`verb` keys are ignored here).
    ///
    /// # Errors
    ///
    /// Typed [`ApiError`]s for malformed fields, unknown workloads, and
    /// oversized inline traces. Unknown *schemes* are deliberately not
    /// rejected here — they surface per-evaluation so the error can
    /// name the offending scheme.
    pub fn from_json(body: &JsonValue) -> Result<Self, ApiError> {
        let schemes = parse_schemes(body)?;
        let source = if let Some(trace) = body.get("trace") {
            parse_inline(trace)?
        } else {
            parse_stored(body)?
        };
        let lambda = match body.get("lambda") {
            None => 1.0,
            Some(v) => {
                let l = v
                    .as_f64()
                    .ok_or_else(|| ApiError::BadRequest("`lambda` must be a number".into()))?;
                if !l.is_finite() || l < 0.0 {
                    return Err(ApiError::BadRequest(format!(
                        "`lambda` must be finite and non-negative, got {l}"
                    )));
                }
                l
            }
        };
        let pricing = match body.get("pricing") {
            None | Some(JsonValue::Null) => None,
            Some(p) => Some(parse_pricing(p)?),
        };
        Ok(EvalRequest {
            schemes,
            source,
            lambda,
            pricing,
        })
    }

    /// Renders the request as a JSON body — the inverse of
    /// [`from_json`](Self::from_json); front ends add the envelope's
    /// `v` and `verb` keys.
    pub fn to_json(&self) -> JsonValue {
        let mut pairs: Vec<(String, JsonValue)> = vec![(
            "schemes".into(),
            JsonValue::Arr(
                self.schemes
                    .iter()
                    .map(|s| JsonValue::Str(s.clone()))
                    .collect(),
            ),
        )];
        match &self.source {
            TraceSource::Stored {
                workload,
                len,
                cap,
                seed,
            } => {
                pairs.push(("workload".into(), JsonValue::Str(workload.name())));
                if let Some(len) = len {
                    pairs.push(("len".into(), int(*len as u64)));
                }
                if let Some(cap) = cap {
                    pairs.push(("cap".into(), int(*cap as u64)));
                }
                if let Some(seed) = seed {
                    pairs.push(("seed".into(), int(*seed)));
                }
            }
            TraceSource::Inline { width, words } => {
                pairs.push((
                    "trace".into(),
                    JsonValue::Obj(vec![
                        ("width".into(), int(u64::from(width.bits()))),
                        (
                            "words".into(),
                            JsonValue::Arr(words.iter().map(|&w| int(w)).collect()),
                        ),
                    ]),
                ));
            }
        }
        pairs.push(("lambda".into(), JsonValue::Num(self.lambda)));
        if let Some(p) = &self.pricing {
            let mut pp = vec![
                ("tech".into(), JsonValue::Str(p.tech.to_string())),
                ("style".into(), JsonValue::Str(p.style.to_string())),
                ("length_mm".into(), JsonValue::Num(p.length_mm)),
            ];
            if let Some(vdd) = p.vdd {
                pp.push(("vdd".into(), JsonValue::Num(vdd)));
            }
            pairs.push(("pricing".into(), JsonValue::Obj(pp)));
        }
        JsonValue::Obj(pairs)
    }
}

fn parse_schemes(body: &JsonValue) -> Result<Vec<String>, ApiError> {
    let schemes: Vec<String> = match body.get("schemes") {
        Some(JsonValue::Arr(items)) => items
            .iter()
            .map(|v| {
                v.as_str().map(String::from).ok_or_else(|| {
                    ApiError::BadRequest("`schemes` entries must be strings".into())
                })
            })
            .collect::<Result<_, _>>()?,
        Some(JsonValue::Str(one)) => vec![one.clone()],
        Some(_) => {
            return Err(ApiError::BadRequest(
                "`schemes` must be an array of scheme names".into(),
            ))
        }
        None => {
            return Err(ApiError::BadRequest(
                "request needs a `schemes` array".into(),
            ))
        }
    };
    if schemes.is_empty() {
        return Err(ApiError::BadRequest("`schemes` must not be empty".into()));
    }
    Ok(schemes)
}

fn parse_stored(body: &JsonValue) -> Result<TraceSource, ApiError> {
    let name = body
        .get("workload")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| {
            ApiError::BadRequest("request needs a `workload` name or an inline `trace`".into())
        })?;
    let workload =
        Workload::parse(name).ok_or_else(|| ApiError::UnknownWorkload(name.to_string()))?;
    let usize_field = |key: &str| -> Result<Option<usize>, ApiError> {
        match body.get(key) {
            None | Some(JsonValue::Null) => Ok(None),
            Some(v) => v
                .as_u64()
                .map(|n| Some(n as usize))
                .ok_or_else(|| ApiError::BadRequest(format!("`{key}` must be a non-negative integer"))),
        }
    };
    let seed = match body.get("seed") {
        None | Some(JsonValue::Null) => None,
        Some(v) => Some(v.as_u64().ok_or_else(|| {
            ApiError::BadRequest("`seed` must be a non-negative integer".into())
        })?),
    };
    Ok(TraceSource::Stored {
        workload,
        len: usize_field("len")?,
        cap: usize_field("cap")?,
        seed,
    })
}

fn parse_inline(trace: &JsonValue) -> Result<TraceSource, ApiError> {
    let bits = trace
        .get("width")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| ApiError::BadRequest("`trace.width` must be a bit count".into()))?;
    let bits = u32::try_from(bits)
        .map_err(|_| ApiError::BadRequest(format!("`trace.width` out of range: {bits}")))?;
    let width = Width::new(bits).map_err(|e| ApiError::BadRequest(format!("`trace.width`: {e}")))?;
    let words = match trace.get("words") {
        Some(JsonValue::Arr(items)) => {
            if items.len() > MAX_INLINE_WORDS {
                return Err(ApiError::TooLarge {
                    words: items.len(),
                    limit: MAX_INLINE_WORDS,
                });
            }
            items
                .iter()
                .map(|v| {
                    v.as_u64().ok_or_else(|| {
                        ApiError::BadRequest(
                            "`trace.words` entries must be non-negative integers".into(),
                        )
                    })
                })
                .collect::<Result<Vec<u64>, _>>()?
        }
        _ => {
            return Err(ApiError::BadRequest(
                "`trace.words` must be an array of words".into(),
            ))
        }
    };
    Ok(TraceSource::Inline { width, words })
}

fn parse_pricing(p: &JsonValue) -> Result<Pricing, ApiError> {
    let tech = match p.get("tech").and_then(JsonValue::as_str) {
        Some("0.13um") => TechnologyKind::Tech013,
        Some("0.10um") => TechnologyKind::Tech010,
        Some("0.07um") => TechnologyKind::Tech007,
        Some(other) => {
            return Err(ApiError::BadRequest(format!(
                "`pricing.tech` must be one of 0.13um, 0.10um, 0.07um; got {other:?}"
            )))
        }
        None => {
            return Err(ApiError::BadRequest(
                "`pricing.tech` must be a technology name".into(),
            ))
        }
    };
    let style = match p.get("style").and_then(JsonValue::as_str) {
        Some("unbuffered") => WireStyle::Unbuffered,
        Some("repeated") | None => WireStyle::Repeated,
        Some(other) => {
            return Err(ApiError::BadRequest(format!(
                "`pricing.style` must be `unbuffered` or `repeated`; got {other:?}"
            )))
        }
    };
    let length_mm = p
        .get("length_mm")
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| ApiError::BadRequest("`pricing.length_mm` must be a number".into()))?;
    let vdd = match p.get("vdd") {
        None | Some(JsonValue::Null) => None,
        Some(v) => Some(
            v.as_f64()
                .ok_or_else(|| ApiError::BadRequest("`pricing.vdd` must be a number".into()))?,
        ),
    };
    Ok(Pricing {
        tech,
        style,
        length_mm,
        vdd,
    })
}

/// What went wrong with an evaluation request.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiError {
    /// A field was missing or malformed.
    BadRequest(String),
    /// The workload name parsed but names nothing.
    UnknownWorkload(String),
    /// A scheme name is not in the registry.
    UnknownScheme(UnknownScheme),
    /// The inline trace exceeds [`MAX_INLINE_WORDS`].
    TooLarge {
        /// Words the request carried.
        words: usize,
        /// The accepted maximum.
        limit: usize,
    },
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::BadRequest(msg) => write!(f, "{msg}"),
            ApiError::UnknownWorkload(name) => write!(
                f,
                "unknown workload {name:?} (expected e.g. `random`, `phased/4096`, `gcc/register`)"
            ),
            ApiError::UnknownScheme(e) => write!(f, "{e}"),
            ApiError::TooLarge { words, limit } => write!(
                f,
                "inline trace of {words} words exceeds the {limit}-word limit"
            ),
        }
    }
}

impl std::error::Error for ApiError {}

impl From<UnknownScheme> for ApiError {
    fn from(e: UnknownScheme) -> Self {
        ApiError::UnknownScheme(e)
    }
}

impl From<ApiError> for ServiceError {
    fn from(e: ApiError) -> Self {
        let message = e.to_string();
        match e {
            ApiError::BadRequest(_) => ServiceError::bad_request(message),
            ApiError::UnknownWorkload(_) => ServiceError::new("unknown_workload", message),
            // A `trained:` name whose grammar is fine but whose
            // artifact cannot be loaded is its own wire condition:
            // `artifact_missing` when nothing was ever trained here,
            // `artifact_invalid` when the file exists but fails
            // validation. Everything else stays `unknown_scheme`, with
            // candidates that include concrete `trained:<name>` entries
            // only when the artifact directory actually has them.
            ApiError::UnknownScheme(err) => match err.artifact_error() {
                Some(artifact) => {
                    let kind = match artifact {
                        ArtifactError::Missing { .. } => "artifact_missing",
                        _ => "artifact_invalid",
                    };
                    ServiceError::new(kind, message)
                        .with_detail("scheme", JsonValue::Str(err.name().to_string()))
                }
                None => ServiceError::new("unknown_scheme", message)
                    .with_detail("scheme", JsonValue::Str(err.name().to_string()))
                    .with_detail(
                        "candidates",
                        JsonValue::Arr(
                            buscoding::scheme_candidates()
                                .into_iter()
                                .map(JsonValue::Str)
                                .collect(),
                        ),
                    ),
            },
            ApiError::TooLarge { words, limit } => ServiceError::new("too_large", message)
                .with_detail("words", int(words as u64))
                .with_detail("limit", int(limit as u64)),
        }
    }
}

/// One scheme's evaluation inside a response.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeResult {
    /// The scheme's registry name, echoed from the request.
    pub scheme: String,
    /// Physical lines the coded bus uses.
    pub lines: u32,
    /// Self (ground-referenced) transitions.
    pub tau: u64,
    /// Coupling (inter-wire) transitions.
    pub kappa: u64,
    /// Words evaluated.
    pub steps: u64,
    /// `tau + lambda * kappa` under the request's lambda.
    pub weighted: f64,
    /// Percent of weighted baseline energy removed — the paper's
    /// headline metric.
    pub percent_removed: f64,
    /// Wire energy in picojoules under the request's pricing, when
    /// pricing was supplied.
    pub energy_pj: Option<f64>,
    /// Whether the activity was already resident in the session store
    /// before this request (never true for inline sources).
    pub cached: bool,
}

/// The un-encoded bus the percentages are relative to.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineSummary {
    /// Physical lines of the raw bus.
    pub lines: u32,
    /// Self transitions.
    pub tau: u64,
    /// Coupling transitions.
    pub kappa: u64,
    /// Words evaluated.
    pub steps: u64,
    /// `tau + lambda * kappa` under the request's lambda.
    pub weighted: f64,
    /// Wire energy in picojoules, when pricing was supplied.
    pub energy_pj: Option<f64>,
}

/// The outcome of one [`EvalRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResponse {
    /// Workload name, or `inline` for shipped words.
    pub workload: String,
    /// Resolved trace length actually evaluated.
    pub values: usize,
    /// Resolved generator seed; `None` for inline sources.
    pub seed: Option<u64>,
    /// The lambda the weighted figures use.
    pub lambda: f64,
    /// The un-encoded reference bus.
    pub baseline: BaselineSummary,
    /// Per-scheme results, in request order.
    pub results: Vec<SchemeResult>,
    /// How many schemes were served from the session store.
    pub cached: usize,
    /// How many schemes were evaluated fresh.
    pub computed: usize,
    /// Wall-clock time of the evaluation, in microseconds.
    pub wall_us: u64,
}

impl EvalResponse {
    /// Renders the response as JSON. The `results` array is fully
    /// deterministic — a function of the request alone — so front ends
    /// can be compared byte-for-byte on it; provenance (`cached` /
    /// `computed` counts) and `wall_us` live outside it because they
    /// legitimately differ between a cold batch run and a warm daemon.
    pub fn to_json(&self) -> JsonValue {
        let scheme_result = |r: &SchemeResult| {
            let mut pairs = vec![
                ("scheme".into(), JsonValue::Str(r.scheme.clone())),
                ("lines".into(), int(u64::from(r.lines))),
                ("tau".into(), int(r.tau)),
                ("kappa".into(), int(r.kappa)),
                ("steps".into(), int(r.steps)),
                ("weighted".into(), JsonValue::Num(r.weighted)),
                ("percent_removed".into(), JsonValue::Num(r.percent_removed)),
            ];
            if let Some(e) = r.energy_pj {
                pairs.push(("energy_pj".into(), JsonValue::Num(e)));
            }
            JsonValue::Obj(pairs)
        };
        let mut baseline = vec![
            ("lines".into(), int(u64::from(self.baseline.lines))),
            ("tau".into(), int(self.baseline.tau)),
            ("kappa".into(), int(self.baseline.kappa)),
            ("steps".into(), int(self.baseline.steps)),
            ("weighted".into(), JsonValue::Num(self.baseline.weighted)),
        ];
        if let Some(e) = self.baseline.energy_pj {
            baseline.push(("energy_pj".into(), JsonValue::Num(e)));
        }
        JsonValue::Obj(vec![
            ("api".into(), JsonValue::Int(API_VERSION)),
            ("workload".into(), JsonValue::Str(self.workload.clone())),
            ("values".into(), int(self.values as u64)),
            (
                "seed".into(),
                match self.seed {
                    Some(s) => int(s),
                    None => JsonValue::Null,
                },
            ),
            ("lambda".into(), JsonValue::Num(self.lambda)),
            ("baseline".into(), JsonValue::Obj(baseline)),
            (
                "results".into(),
                JsonValue::Arr(self.results.iter().map(scheme_result).collect()),
            ),
            (
                "provenance".into(),
                JsonValue::Obj(vec![
                    ("cached".into(), int(self.cached as u64)),
                    ("computed".into(), int(self.computed as u64)),
                ]),
            ),
            ("wall_us".into(), int(self.wall_us)),
        ])
    }
}

/// Anything that can answer an [`EvalRequest`]. [`Session`] is the
/// canonical implementation; front ends and tests depend on the trait
/// so a daemon, the batch binary, and a mock all present one surface.
pub trait Evaluator {
    /// Evaluates every scheme in the request over its trace source.
    ///
    /// # Errors
    ///
    /// A typed [`ApiError`]; implementations must not panic on bad
    /// requests.
    fn evaluate(&self, request: &EvalRequest) -> Result<EvalResponse, ApiError>;
}

impl Evaluator for Session {
    /// Schemes are evaluated in request order, serially: request-level
    /// parallelism belongs to the caller (the batch runner fans out
    /// over workloads; the daemon over shards), and keeping this leaf
    /// serial keeps thread fan-out bounded and results deterministic.
    fn evaluate(&self, request: &EvalRequest) -> Result<EvalResponse, ApiError> {
        let _span = busprobe::span("bench.api.evaluate");
        EVALS.inc();
        EVAL_SCHEMES.add(request.schemes.len() as u64);
        let start = Instant::now();
        let model = request.pricing.as_ref().map(Pricing::model).transpose()?;
        let price = |a: &Activity| model.as_ref().map(|m| m.energy_pj(a.tau(), a.kappa()));

        let (baseline, evaluated, workload, values, seed) = match &request.source {
            TraceSource::Stored {
                workload,
                len,
                cap,
                seed,
            } => {
                let mut evaluated = Vec::with_capacity(request.schemes.len());
                let mut key = None;
                for scheme in &request.schemes {
                    let mut query = ActivityQuery::new(scheme.clone(), *workload);
                    if let Some(len) = len {
                        query = query.len(*len);
                    }
                    if let Some(cap) = cap {
                        query = query.cap(*cap);
                    }
                    if let Some(seed) = seed {
                        query = query.seed(*seed);
                    }
                    let cached = self.activity_cached(&query);
                    let activity = self.try_activity(&query)?;
                    key.get_or_insert_with(|| query.trace_key(self));
                    evaluated.push((activity, cached));
                }
                let key = key.expect("schemes is non-empty");
                let baseline = self.baseline_for(&key);
                (
                    baseline,
                    evaluated,
                    workload.name(),
                    key.values(),
                    Some(key.seed()),
                )
            }
            TraceSource::Inline { width, words } => {
                if words.len() > MAX_INLINE_WORDS {
                    return Err(ApiError::TooLarge {
                        words: words.len(),
                        limit: MAX_INLINE_WORDS,
                    });
                }
                let trace = Trace::from_values(*width, words.iter().copied());
                let mut evaluated = Vec::with_capacity(request.schemes.len());
                for scheme in &request.schemes {
                    let mut pair = buscoding::scheme_by_name(scheme, *width)?;
                    evaluated.push((
                        buscoding::evaluate_blocks(pair.encoder_mut(), &trace),
                        false,
                    ));
                }
                let baseline = baseline_activity(&trace);
                (baseline, evaluated, "inline".to_string(), trace.len(), None)
            }
        };

        let results: Vec<SchemeResult> = request
            .schemes
            .iter()
            .zip(&evaluated)
            .map(|(scheme, (activity, cached))| SchemeResult {
                scheme: scheme.clone(),
                lines: activity.lines(),
                tau: activity.tau(),
                kappa: activity.kappa(),
                steps: activity.steps(),
                weighted: activity.weighted(request.lambda),
                percent_removed: percent_energy_removed(activity, &baseline, request.lambda),
                energy_pj: price(activity),
                cached: *cached,
            })
            .collect();
        let cached = results.iter().filter(|r| r.cached).count();
        Ok(EvalResponse {
            workload,
            values,
            seed,
            lambda: request.lambda,
            baseline: BaselineSummary {
                lines: baseline.lines(),
                tau: baseline.tau(),
                kappa: baseline.kappa(),
                steps: baseline.steps(),
                weighted: baseline.weighted(request.lambda),
                energy_pj: price(&baseline),
            },
            computed: results.len() - cached,
            cached,
            results,
            wall_us: start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
        })
    }
}

/// The wire adapter: implements [`busserve::Service`] over an
/// [`Evaluator`], exposing the `ping`, `eval`, `metrics`, and `profile`
/// verbs. Both `repro serve` front ends (socket daemon and stdio
/// single-shot) are this one struct behind different transports.
pub struct ApiService {
    session: Session,
}

impl ApiService {
    /// Wraps a session for serving.
    pub fn new(session: Session) -> Self {
        ApiService { session }
    }

    /// The resident session.
    pub fn session(&self) -> &Session {
        &self.session
    }

    fn eval(&self, body: &JsonValue) -> Result<JsonValue, ServiceError> {
        let request = EvalRequest::from_json(body)?;
        let response = self.session.evaluate(&request)?;
        Ok(response.to_json())
    }

    fn metrics(&self) -> JsonValue {
        let snaps = busprobe::snapshot();
        let value_of = |name: &str| {
            snaps
                .iter()
                .find(|s| s.name == name)
                .and_then(|s| match &s.kind {
                    busprobe::MetricKind::Counter { value } => Some(*value),
                    _ => None,
                })
                .unwrap_or(0)
        };
        let hits = value_of("bench.session.activity_hits");
        let misses = value_of("bench.session.activity_misses");
        let total = hits + misses;
        let hit_rate = if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        };
        JsonValue::Obj(vec![
            (
                "activity".into(),
                JsonValue::Obj(vec![
                    ("hits".into(), int(hits)),
                    ("misses".into(), int(misses)),
                    ("hit_rate".into(), JsonValue::Num(hit_rate)),
                ]),
            ),
            ("metrics".into(), busprobe::snapshot_to_json(&snaps)),
        ])
    }

    /// Runs one evaluation under the span recorder and returns the
    /// response together with its Chrome-trace span dump. The recorder
    /// is process-global, so concurrent `profile` requests serialize on
    /// a lock; spans from other in-flight requests are excluded by
    /// restricting to this request's subtree.
    fn profile(&self, body: &JsonValue) -> Result<JsonValue, ServiceError> {
        static RECORDER: Mutex<()> = Mutex::new(());
        let request = EvalRequest::from_json(body)?;
        let _guard = RECORDER.lock().unwrap_or_else(|p| p.into_inner());
        let was_on = busprobe::trace::enabled();
        busprobe::trace::clear();
        busprobe::trace::set_enabled(true);
        let outcome = {
            let _root = busprobe::span("bench.api.profile");
            self.session.evaluate(&request)
        };
        busprobe::trace::set_enabled(was_on);
        let drained = busprobe::trace::drain();
        // The daemon wraps every request in its own span, so the root
        // recorded here may carry a transport prefix (e.g.
        // `busserve.request/bench.api.profile`); find it by suffix.
        let spans = drained
            .iter()
            .find(|s| {
                s.path == "bench.api.profile" || s.path.ends_with("/bench.api.profile")
            })
            .map(|root| root.path.clone())
            .map(|id| crate::profile::subtree(&drained, &id))
            .unwrap_or_default();
        let response = outcome.map_err(ServiceError::from)?;
        Ok(JsonValue::Obj(vec![
            ("eval".into(), response.to_json()),
            ("spans".into(), int(spans.len() as u64)),
            ("chrome_trace".into(), busprobe::trace::chrome_trace(&spans)),
        ]))
    }
}

impl Service for ApiService {
    fn handle(&self, verb: &str, body: &JsonValue) -> Result<JsonValue, ServiceError> {
        match verb {
            "ping" => Ok(JsonValue::Obj(vec![
                ("pong".into(), JsonValue::Bool(true)),
                ("api".into(), JsonValue::Int(API_VERSION)),
                (
                    "schemes".into(),
                    JsonValue::Arr(
                        SCHEME_PATTERNS
                            .iter()
                            .map(|p| JsonValue::Str((*p).to_string()))
                            .collect(),
                    ),
                ),
            ])),
            "eval" => self.eval(body),
            "metrics" => Ok(self.metrics()),
            "profile" => self.profile(body),
            other => Err(ServiceError::new(
                "unknown_verb",
                format!("no such verb `{other}` (expected ping, eval, metrics, profile)"),
            )),
        }
    }

    /// Routes stored-source evaluations by their resolved trace key so
    /// repeated requests for one trace serialize onto one shard and hit
    /// its warm activity store. Inline sources and other verbs
    /// round-robin.
    fn route(&self, verb: &str, body: &JsonValue) -> Option<u64> {
        if verb != "eval" && verb != "profile" {
            return None;
        }
        let name = body.get("workload")?.as_str()?;
        let len = body.get("len").and_then(JsonValue::as_u64);
        let cap = body.get("cap").and_then(JsonValue::as_u64);
        let seed = body
            .get("seed")
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| self.session.seed());
        let mut values = len.unwrap_or_else(|| self.session.values() as u64);
        if let Some(cap) = cap {
            values = values.min(cap);
        }
        Some(fnv1a(format!("{name}|{values}|{seed}").as_bytes()))
    }
}

/// 64-bit FNV-1a — a stable, dependency-free shard key.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn int(v: u64) -> JsonValue {
    JsonValue::Int(i64::try_from(v).unwrap_or(i64::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        Session::builder().values(400).seed(7).build()
    }

    #[test]
    fn request_json_round_trips() {
        let req = EvalRequest::stored(
            Workload::Random,
            vec!["window(8)".into(), "inversion(1ch l1.0)".into()],
        )
        .cap(100)
        .seed(9)
        .lambda(2.0)
        .pricing(Pricing {
            tech: TechnologyKind::Tech010,
            style: WireStyle::Repeated,
            length_mm: 10.0,
            vdd: Some(1.0),
        });
        let back = EvalRequest::from_json(&req.to_json()).expect("parses");
        assert_eq!(back, req);

        let inline = EvalRequest::inline(Width::W32, vec![1, 2, 3], vec!["identity".into()]);
        let back = EvalRequest::from_json(&inline.to_json()).expect("parses");
        assert_eq!(back, inline);
    }

    #[test]
    fn evaluate_matches_direct_session_calls() {
        let s = session();
        let req = EvalRequest::stored(Workload::Random, vec!["window(8)".into()]);
        let resp = s.evaluate(&req).expect("evaluates");
        let direct = s.activity(&ActivityQuery::new("window(8)", Workload::Random));
        let baseline = s.baseline(Workload::Random);
        assert_eq!(resp.results.len(), 1);
        assert_eq!(resp.results[0].tau, direct.tau());
        assert_eq!(resp.results[0].kappa, direct.kappa());
        assert_eq!(
            resp.results[0].percent_removed,
            percent_energy_removed(&direct, &baseline, 1.0)
        );
        assert_eq!(resp.baseline.tau, baseline.tau());
        assert_eq!(resp.workload, "random");
        assert_eq!(resp.values, 400);
        assert_eq!(resp.seed, Some(7));
    }

    #[test]
    fn evaluate_reports_cache_provenance() {
        let s = session();
        let req = EvalRequest::stored(Workload::Random, vec!["window(4)".into()]);
        let cold = s.evaluate(&req).expect("cold");
        assert_eq!((cold.cached, cold.computed), (0, 1));
        let warm = s.evaluate(&req).expect("warm");
        assert_eq!((warm.cached, warm.computed), (1, 0));
        assert!(warm.results[0].cached);
        // The deterministic half of the response is identical.
        assert_eq!(warm.results, {
            let mut r = cold.results.clone();
            r[0].cached = true;
            r
        });
    }

    #[test]
    fn evaluate_inline_matches_stored_trace_content() {
        let s = session();
        let trace = Workload::Random.trace(400, 7);
        let req = EvalRequest::inline(
            trace.width(),
            trace.values().to_vec(),
            vec!["window(8)".into()],
        );
        let inline = s.evaluate(&req).expect("inline");
        let stored = s
            .evaluate(&EvalRequest::stored(
                Workload::Random,
                vec!["window(8)".into()],
            ))
            .expect("stored");
        assert_eq!(inline.results[0].tau, stored.results[0].tau);
        assert_eq!(inline.results[0].kappa, stored.results[0].kappa);
        assert_eq!(inline.workload, "inline");
        assert_eq!(inline.seed, None);
        assert!(!inline.results[0].cached);
    }

    #[test]
    fn unknown_scheme_is_typed_with_candidates() {
        let s = session();
        let req = EvalRequest::stored(Workload::Random, vec!["tarot(3)".into()]);
        let err = s.evaluate(&req).expect_err("unknown scheme");
        assert!(matches!(err, ApiError::UnknownScheme(_)), "{err}");
        let service_err = ServiceError::from(err);
        assert_eq!(service_err.kind, "unknown_scheme");
        let candidates = service_err
            .detail
            .iter()
            .find(|(k, _)| k == "candidates")
            .map(|(_, v)| v.clone());
        // At least every static pattern; concrete `trained:<name>`
        // entries ride along only when the artifact directory has them.
        assert!(
            matches!(candidates, Some(JsonValue::Arr(ref items)) if items.len() >= SCHEME_PATTERNS.len()
                && items.iter().any(|v| matches!(v, JsonValue::Str(s) if s == "window(<entries>)"))),
            "{service_err:?}"
        );
    }

    #[test]
    fn pricing_attaches_energy() {
        let s = session();
        let req = EvalRequest::stored(Workload::Random, vec!["identity".into()]).pricing(Pricing {
            tech: TechnologyKind::Tech013,
            style: WireStyle::Repeated,
            length_mm: 10.0,
            vdd: None,
        });
        let resp = s.evaluate(&req).expect("evaluates");
        let energy = resp.results[0].energy_pj.expect("priced");
        assert!(energy > 0.0);
        // Identity coding leaves the trace alone: same counts as the
        // baseline, so the same energy.
        assert_eq!(Some(energy), resp.baseline.energy_pj);
        // Lower Vdd, quadratically less energy.
        let mut cheap = req.clone();
        cheap.pricing.as_mut().expect("set").vdd = Some(0.6);
        let cheap = s.evaluate(&cheap).expect("evaluates");
        assert!(cheap.results[0].energy_pj.expect("priced") < energy);
    }

    #[test]
    fn bad_requests_are_typed_not_panics() {
        let cases: &[(&str, &str)] = &[
            (r#"{"workload":"random"}"#, "schemes"),
            (r#"{"schemes":[],"workload":"random"}"#, "empty"),
            (r#"{"schemes":["identity"]}"#, "workload"),
            (r#"{"schemes":["identity"],"workload":"gcc/cache"}"#, "unknown workload"),
            (
                r#"{"schemes":["identity"],"workload":"random","lambda":-1}"#,
                "lambda",
            ),
            (
                r#"{"schemes":["identity"],"trace":{"width":99,"words":[1]}}"#,
                "width",
            ),
            (
                r#"{"schemes":["identity"],"workload":"random","pricing":{"tech":"5um","length_mm":1}}"#,
                "tech",
            ),
        ];
        for (raw, why) in cases {
            let body = busprobe::json::parse(raw).expect("test json");
            assert!(EvalRequest::from_json(&body).is_err(), "{why}: {raw}");
        }
    }

    #[test]
    fn service_verbs_answer_over_handle() {
        let service = ApiService::new(session());
        let ping = service
            .handle("ping", &JsonValue::Obj(vec![]))
            .expect("ping");
        assert_eq!(ping.get("pong"), Some(&JsonValue::Bool(true)));

        let body = EvalRequest::stored(Workload::Random, vec!["window(8)".into()]).to_json();
        let eval = service.handle("eval", &body).expect("eval");
        assert_eq!(eval.get("workload").and_then(JsonValue::as_str), Some("random"));

        let metrics = service.handle("metrics", &JsonValue::Obj(vec![])).expect("metrics");
        assert!(metrics.get("activity").is_some());

        let err = service
            .handle("frobnicate", &JsonValue::Obj(vec![]))
            .expect_err("unknown verb");
        assert_eq!(err.kind, "unknown_verb");
    }

    #[test]
    fn routing_keys_depend_on_the_resolved_trace() {
        let service = ApiService::new(session());
        let body = |raw: &str| busprobe::json::parse(raw).expect("test json");
        let a = service.route("eval", &body(r#"{"workload":"random"}"#));
        // len equal to the session default resolves to the same key.
        let b = service.route("eval", &body(r#"{"workload":"random","len":400}"#));
        assert_eq!(a, b);
        assert!(a.is_some());
        // A different length is a different trace, hence a different key.
        assert_ne!(a, service.route("eval", &body(r#"{"workload":"random","len":100}"#)));
        // Inline sources and non-eval verbs round-robin.
        assert_eq!(service.route("eval", &body(r#"{"trace":{"width":32,"words":[]}}"#)), None);
        assert_eq!(service.route("metrics", &body(r#"{"workload":"random"}"#)), None);
    }
}
