//! Workload acquisition: benchmark bus traces and the controlled
//! synthetic traffic classes the paper contrasts them with.

use bustrace::generators::{PhasedGen, StrideGen, TraceGenerator, UniformRandomGen, WorkingSetGen};
use bustrace::{Trace, Width};
use simcpu::{Benchmark, BusKind};

/// Stride of the phased workload's ramp: the golden-ratio constant, so
/// consecutive words differ in about half their bits — an expensive
/// baseline that only a stride predictor can flatten.
const PHASED_STRIDE: u64 = 0x9E37_79B9;

/// Parses a bus-kind name (`register`, `memory`, `address`).
fn parse_bus(name: &str) -> Option<BusKind> {
    match name {
        "register" => Some(BusKind::Register),
        "memory" => Some(BusKind::Memory),
        "address" => Some(BusKind::Address),
        _ => None,
    }
}

/// A named workload: either a benchmark bus tap or synthetic traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// A SPEC-like kernel observed on one bus.
    Bench(Benchmark, BusKind),
    /// Uniformly random words — the traffic previous studies used.
    Random,
    /// Phase-changing traffic: a hot working-set loop alternating with
    /// a large-stride ramp every `phase` words. The ramp's stride
    /// toggles roughly half the bus per word, so both phases carry real
    /// energy, yet each is cheap for exactly one predictor family —
    /// window codecs own the loop, stride codecs own the ramp. No
    /// single static scheme fits both — the stress case for the
    /// adaptive controller.
    Phased {
        /// Words per phase before the traffic character flips.
        phase: usize,
    },
    /// A multi-program interleaving: two benchmark streams sharing one
    /// bus, switching every `quantum` words — the traffic a bus sees
    /// under context switching. Each component stream advances
    /// independently (program A resumes where it left off), so the bus
    /// alternates between two working sets at quantum granularity. This
    /// is the held-out *workload class* of the train/test generalization
    /// study: its within-quantum structure matches the component
    /// programs, but no single-program corpus entry ever shows the
    /// cross-quantum switches.
    Mixed {
        /// First component program.
        a: Benchmark,
        /// Second component program.
        b: Benchmark,
        /// The bus both streams are observed on.
        bus: BusKind,
        /// Words each program runs before the other is scheduled.
        quantum: usize,
    },
}

impl Workload {
    /// Phase-change traffic with the adaptive experiments' default
    /// phase length.
    pub const PHASED: Workload = Workload::Phased { phase: 4096 };

    /// Phase-change traffic with short phases — stresses decision
    /// periods that are a sizable fraction of the phase.
    pub const PHASED_FAST: Workload = Workload::Phased { phase: 1024 };

    /// Display name, e.g. `gcc/register`, `phased/4096`, or
    /// `mixed/gcc+perl/register/64`.
    pub fn name(&self) -> String {
        match self {
            Workload::Bench(b, bus) => format!("{b}/{bus}"),
            Workload::Random => "random".into(),
            Workload::Phased { phase } => format!("phased/{phase}"),
            Workload::Mixed { a, b, bus, quantum } => format!("mixed/{a}+{b}/{bus}/{quantum}"),
        }
    }

    /// The inverse of [`name`](Self::name): parses `gcc/register`,
    /// `random`, `phased/4096`, … back into a workload. This is how
    /// service requests address workloads, so `parse(w.name())`
    /// round-trips for every constructible workload.
    pub fn parse(name: &str) -> Option<Workload> {
        if name == "random" {
            return Some(Workload::Random);
        }
        if let Some(phase) = name.strip_prefix("phased/") {
            return phase.parse().ok().map(|phase| Workload::Phased { phase });
        }
        if let Some(rest) = name.strip_prefix("mixed/") {
            let (programs, rest) = rest.split_once('/')?;
            let (a, b) = programs.split_once('+')?;
            let (bus, quantum) = rest.split_once('/')?;
            let quantum: usize = quantum.parse().ok().filter(|&q| q > 0)?;
            return Some(Workload::Mixed {
                a: Benchmark::from_name(a)?,
                b: Benchmark::from_name(b)?,
                bus: parse_bus(bus)?,
                quantum,
            });
        }
        let (bench, bus) = name.split_once('/')?;
        let bench = Benchmark::from_name(bench)?;
        Some(Workload::Bench(bench, parse_bus(bus)?))
    }

    /// Produces `values` words of this workload, deterministically per
    /// seed.
    pub fn trace(&self, values: usize, seed: u64) -> Trace {
        static TRACES: busprobe::StaticCounter =
            busprobe::StaticCounter::new("bench.workload.traces");
        let _span = busprobe::span("bench.workload.trace");
        TRACES.inc();
        match self {
            Workload::Bench(b, bus) => b.trace(*bus, values, seed),
            Workload::Random => UniformRandomGen::new(Width::W32, seed).generate(values),
            Workload::Phased { phase } => {
                let loops = WorkingSetGen::new(Width::W32, 6, 1.2, 0.0, seed);
                let ramp = StrideGen::new(Width::W32, 0x4000_0000, PHASED_STRIDE);
                PhasedGen::new(vec![Box::new(loops), Box::new(ramp)], *phase).generate(values)
            }
            Workload::Mixed { a, b, bus, quantum } => {
                assert!(*quantum > 0, "mixed workload quantum must be positive");
                // Each component runs at full length under the shared
                // seed, then the bus sees quantum-sized slices of each
                // in turn. Every within-quantum subsequence is an exact
                // subsequence of the component's solo trace — which is
                // what lets offline training on the solo programs
                // transfer to the mix.
                let streams = [a.trace(*bus, values, seed), b.trace(*bus, values, seed)];
                let mut trace = Trace::new(streams[0].width());
                let mut consumed = [0usize, 0usize];
                let mut turn = 0;
                while trace.len() < values {
                    let src = streams[turn].values();
                    let at = consumed[turn];
                    let take = (*quantum).min(values - trace.len()).min(src.len() - at);
                    for &v in &src[at..at + take] {
                        trace.push(v);
                    }
                    consumed[turn] += take;
                    turn ^= 1;
                }
                trace
            }
        }
    }

    /// Every benchmark on the given bus.
    pub fn all_benchmarks(bus: BusKind) -> Vec<Workload> {
        Benchmark::ALL
            .iter()
            .map(|&b| Workload::Bench(b, bus))
            .collect()
    }

    /// Every benchmark on the given bus, plus random traffic — the
    /// line-set of Figures 16–23.
    pub fn figure_lines(bus: BusKind) -> Vec<Workload> {
        let mut v = vec![Workload::Random];
        v.extend(Workload::all_benchmarks(bus));
        v
    }

    /// The SPECint workloads on a bus.
    pub fn spec_int(bus: BusKind) -> Vec<Workload> {
        Benchmark::spec_int()
            .into_iter()
            .map(|b| Workload::Bench(b, bus))
            .collect()
    }

    /// The SPECfp workloads on a bus.
    pub fn spec_fp(bus: BusKind) -> Vec<Workload> {
        Benchmark::spec_fp()
            .into_iter()
            .map(|b| Workload::Bench(b, bus))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(
            Workload::Bench(Benchmark::Gcc, BusKind::Register).name(),
            "gcc/register"
        );
        assert_eq!(Workload::Random.name(), "random");
        assert_eq!(Workload::PHASED.name(), "phased/4096");
        assert_eq!(
            Workload::Mixed {
                a: Benchmark::Gcc,
                b: Benchmark::Perl,
                bus: BusKind::Register,
                quantum: 64,
            }
            .name(),
            "mixed/gcc+perl/register/64"
        );
    }

    #[test]
    fn parse_inverts_name_for_every_workload() {
        let mut all = vec![
            Workload::Random,
            Workload::PHASED,
            Workload::PHASED_FAST,
            Workload::Mixed {
                a: Benchmark::Gcc,
                b: Benchmark::M88ksim,
                bus: BusKind::Memory,
                quantum: 256,
            },
        ];
        for bus in [BusKind::Register, BusKind::Memory, BusKind::Address] {
            all.extend(Workload::all_benchmarks(bus));
        }
        for w in all {
            assert_eq!(Workload::parse(&w.name()), Some(w), "{}", w.name());
        }
        for bad in [
            "",
            "gcc",
            "gcc/cache",
            "nope/register",
            "phased/x",
            "phased/",
            "mixed/gcc/register/64",
            "mixed/gcc+nope/register/64",
            "mixed/gcc+perl/register/0",
            "mixed/gcc+perl/register",
            "mixed/gcc+perl/cache/64",
        ] {
            assert_eq!(Workload::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn mixed_interleaves_exact_component_slices() {
        let w = Workload::Mixed {
            a: Benchmark::Gcc,
            b: Benchmark::Perl,
            bus: BusKind::Register,
            quantum: 64,
        };
        let n = 1000;
        let t = w.trace(n, 1);
        assert_eq!(t.len(), n);
        let gcc = Workload::Bench(Benchmark::Gcc, BusKind::Register).trace(n, 1);
        let perl = Workload::Bench(Benchmark::Perl, BusKind::Register).trace(n, 1);
        let v = t.values();
        // Quantum 0 is gcc's first 64 words, quantum 1 is perl's first
        // 64, quantum 2 resumes gcc at word 64 — programs advance
        // independently across their scheduling gaps.
        assert_eq!(&v[0..64], &gcc.values()[0..64]);
        assert_eq!(&v[64..128], &perl.values()[0..64]);
        assert_eq!(&v[128..192], &gcc.values()[64..128]);
        // Deterministic per seed, different across seeds.
        assert_eq!(w.trace(n, 1), t);
        assert_ne!(w.trace(n, 2), t);
    }

    #[test]
    fn phased_trace_alternates_character() {
        let t = Workload::PHASED_FAST.trace(4096, 3);
        assert_eq!(t.len(), 4096);
        // Second phase (words 1024..2048) is a pure strided ramp.
        let v = t.values();
        assert!(
            (1025..2048).all(|i| v[i] == v[i - 1].wrapping_add(PHASED_STRIDE) & Width::W32.mask())
        );
        // First phase revisits a small working set.
        let unique: std::collections::HashSet<_> = v[..1024].iter().collect();
        assert!(unique.len() <= 6, "{} unique loop values", unique.len());
    }

    #[test]
    fn figure_lines_cover_random_plus_all() {
        let lines = Workload::figure_lines(BusKind::Memory);
        assert_eq!(lines.len(), 18);
        assert_eq!(lines[0], Workload::Random);
    }

    #[test]
    fn random_trace_is_deterministic() {
        let a = Workload::Random.trace(100, 5);
        let b = Workload::Random.trace(100, 5);
        assert_eq!(a, b);
    }
}
