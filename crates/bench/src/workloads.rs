//! Workload acquisition: benchmark bus traces and the controlled
//! synthetic traffic classes the paper contrasts them with.

use bustrace::generators::{TraceGenerator, UniformRandomGen};
use bustrace::{Trace, Width};
use simcpu::{Benchmark, BusKind};

/// A named workload: either a benchmark bus tap or synthetic traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// A SPEC-like kernel observed on one bus.
    Bench(Benchmark, BusKind),
    /// Uniformly random words — the traffic previous studies used.
    Random,
}

impl Workload {
    /// Display name, e.g. `gcc/register` or `random`.
    pub fn name(&self) -> String {
        match self {
            Workload::Bench(b, bus) => format!("{b}/{bus}"),
            Workload::Random => "random".into(),
        }
    }

    /// Produces `values` words of this workload, deterministically per
    /// seed.
    pub fn trace(&self, values: usize, seed: u64) -> Trace {
        static TRACES: busprobe::StaticCounter =
            busprobe::StaticCounter::new("bench.workload.traces");
        let _span = busprobe::span("bench.workload.trace");
        TRACES.inc();
        match self {
            Workload::Bench(b, bus) => b.trace(*bus, values, seed),
            Workload::Random => UniformRandomGen::new(Width::W32, seed).generate(values),
        }
    }

    /// Every benchmark on the given bus.
    pub fn all_benchmarks(bus: BusKind) -> Vec<Workload> {
        Benchmark::ALL
            .iter()
            .map(|&b| Workload::Bench(b, bus))
            .collect()
    }

    /// Every benchmark on the given bus, plus random traffic — the
    /// line-set of Figures 16–23.
    pub fn figure_lines(bus: BusKind) -> Vec<Workload> {
        let mut v = vec![Workload::Random];
        v.extend(Workload::all_benchmarks(bus));
        v
    }

    /// The SPECint workloads on a bus.
    pub fn spec_int(bus: BusKind) -> Vec<Workload> {
        Benchmark::spec_int()
            .into_iter()
            .map(|b| Workload::Bench(b, bus))
            .collect()
    }

    /// The SPECfp workloads on a bus.
    pub fn spec_fp(bus: BusKind) -> Vec<Workload> {
        Benchmark::spec_fp()
            .into_iter()
            .map(|b| Workload::Bench(b, bus))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(
            Workload::Bench(Benchmark::Gcc, BusKind::Register).name(),
            "gcc/register"
        );
        assert_eq!(Workload::Random.name(), "random");
    }

    #[test]
    fn figure_lines_cover_random_plus_all() {
        let lines = Workload::figure_lines(BusKind::Memory);
        assert_eq!(lines.len(), 18);
        assert_eq!(lines[0], Workload::Random);
    }

    #[test]
    fn random_trace_is_deterministic() {
        let a = Workload::Random.trace(100, 5);
        let b = Workload::Random.trace(100, 5);
        assert_eq!(a, b);
    }
}
