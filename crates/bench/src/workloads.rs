//! Workload acquisition: benchmark bus traces and the controlled
//! synthetic traffic classes the paper contrasts them with.

use bustrace::generators::{PhasedGen, StrideGen, TraceGenerator, UniformRandomGen, WorkingSetGen};
use bustrace::{Trace, Width};
use simcpu::{Benchmark, BusKind};

/// Stride of the phased workload's ramp: the golden-ratio constant, so
/// consecutive words differ in about half their bits — an expensive
/// baseline that only a stride predictor can flatten.
const PHASED_STRIDE: u64 = 0x9E37_79B9;

/// A named workload: either a benchmark bus tap or synthetic traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// A SPEC-like kernel observed on one bus.
    Bench(Benchmark, BusKind),
    /// Uniformly random words — the traffic previous studies used.
    Random,
    /// Phase-changing traffic: a hot working-set loop alternating with
    /// a large-stride ramp every `phase` words. The ramp's stride
    /// toggles roughly half the bus per word, so both phases carry real
    /// energy, yet each is cheap for exactly one predictor family —
    /// window codecs own the loop, stride codecs own the ramp. No
    /// single static scheme fits both — the stress case for the
    /// adaptive controller.
    Phased {
        /// Words per phase before the traffic character flips.
        phase: usize,
    },
}

impl Workload {
    /// Phase-change traffic with the adaptive experiments' default
    /// phase length.
    pub const PHASED: Workload = Workload::Phased { phase: 4096 };

    /// Phase-change traffic with short phases — stresses decision
    /// periods that are a sizable fraction of the phase.
    pub const PHASED_FAST: Workload = Workload::Phased { phase: 1024 };

    /// Display name, e.g. `gcc/register` or `phased/4096`.
    pub fn name(&self) -> String {
        match self {
            Workload::Bench(b, bus) => format!("{b}/{bus}"),
            Workload::Random => "random".into(),
            Workload::Phased { phase } => format!("phased/{phase}"),
        }
    }

    /// The inverse of [`name`](Self::name): parses `gcc/register`,
    /// `random`, `phased/4096`, … back into a workload. This is how
    /// service requests address workloads, so `parse(w.name())`
    /// round-trips for every constructible workload.
    pub fn parse(name: &str) -> Option<Workload> {
        if name == "random" {
            return Some(Workload::Random);
        }
        if let Some(phase) = name.strip_prefix("phased/") {
            return phase.parse().ok().map(|phase| Workload::Phased { phase });
        }
        let (bench, bus) = name.split_once('/')?;
        let bench = Benchmark::from_name(bench)?;
        let bus = match bus {
            "register" => BusKind::Register,
            "memory" => BusKind::Memory,
            "address" => BusKind::Address,
            _ => return None,
        };
        Some(Workload::Bench(bench, bus))
    }

    /// Produces `values` words of this workload, deterministically per
    /// seed.
    pub fn trace(&self, values: usize, seed: u64) -> Trace {
        static TRACES: busprobe::StaticCounter =
            busprobe::StaticCounter::new("bench.workload.traces");
        let _span = busprobe::span("bench.workload.trace");
        TRACES.inc();
        match self {
            Workload::Bench(b, bus) => b.trace(*bus, values, seed),
            Workload::Random => UniformRandomGen::new(Width::W32, seed).generate(values),
            Workload::Phased { phase } => {
                let loops = WorkingSetGen::new(Width::W32, 6, 1.2, 0.0, seed);
                let ramp = StrideGen::new(Width::W32, 0x4000_0000, PHASED_STRIDE);
                PhasedGen::new(vec![Box::new(loops), Box::new(ramp)], *phase).generate(values)
            }
        }
    }

    /// Every benchmark on the given bus.
    pub fn all_benchmarks(bus: BusKind) -> Vec<Workload> {
        Benchmark::ALL
            .iter()
            .map(|&b| Workload::Bench(b, bus))
            .collect()
    }

    /// Every benchmark on the given bus, plus random traffic — the
    /// line-set of Figures 16–23.
    pub fn figure_lines(bus: BusKind) -> Vec<Workload> {
        let mut v = vec![Workload::Random];
        v.extend(Workload::all_benchmarks(bus));
        v
    }

    /// The SPECint workloads on a bus.
    pub fn spec_int(bus: BusKind) -> Vec<Workload> {
        Benchmark::spec_int()
            .into_iter()
            .map(|b| Workload::Bench(b, bus))
            .collect()
    }

    /// The SPECfp workloads on a bus.
    pub fn spec_fp(bus: BusKind) -> Vec<Workload> {
        Benchmark::spec_fp()
            .into_iter()
            .map(|b| Workload::Bench(b, bus))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(
            Workload::Bench(Benchmark::Gcc, BusKind::Register).name(),
            "gcc/register"
        );
        assert_eq!(Workload::Random.name(), "random");
        assert_eq!(Workload::PHASED.name(), "phased/4096");
    }

    #[test]
    fn parse_inverts_name_for_every_workload() {
        let mut all = vec![Workload::Random, Workload::PHASED, Workload::PHASED_FAST];
        for bus in [BusKind::Register, BusKind::Memory, BusKind::Address] {
            all.extend(Workload::all_benchmarks(bus));
        }
        for w in all {
            assert_eq!(Workload::parse(&w.name()), Some(w), "{}", w.name());
        }
        for bad in ["", "gcc", "gcc/cache", "nope/register", "phased/x", "phased/"] {
            assert_eq!(Workload::parse(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn phased_trace_alternates_character() {
        let t = Workload::PHASED_FAST.trace(4096, 3);
        assert_eq!(t.len(), 4096);
        // Second phase (words 1024..2048) is a pure strided ramp.
        let v = t.values();
        assert!(
            (1025..2048).all(|i| v[i] == v[i - 1].wrapping_add(PHASED_STRIDE) & Width::W32.mask())
        );
        // First phase revisits a small working set.
        let unique: std::collections::HashSet<_> = v[..1024].iter().collect();
        assert!(unique.len() <= 6, "{} unique loop values", unique.len());
    }

    #[test]
    fn figure_lines_cover_random_plus_all() {
        let lines = Workload::figure_lines(BusKind::Memory);
        assert_eq!(lines.len(), 18);
        assert_eq!(lines[0], Workload::Random);
    }

    #[test]
    fn random_trace_is_deterministic() {
        let a = Workload::Random.trace(100, 5);
        let b = Workload::Random.trace(100, 5);
        assert_eq!(a, b);
    }
}
