//! `tracedump` — export kernel bus traces for external analysis.
//!
//! ```text
//! tracedump <benchmark> <register|memory|address> <values> [seed] > out.trace
//! tracedump --stats <benchmark> <bus> <values> [seed]
//! ```
//!
//! Output is the `bustrace` text format (hex words, one per line).

use std::io::Write as _;
use std::process::ExitCode;

use bustrace::io::write_trace;
use bustrace::stats::{repeat_fraction, ValueCensus};
use simcpu::{Benchmark, BusKind};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let stats_only = args.first().map(String::as_str) == Some("--stats");
    if stats_only {
        args.remove(0);
    }
    if args.len() < 3 {
        eprintln!(
            "usage: tracedump [--stats] <benchmark> <register|memory|address> <values> [seed]"
        );
        eprintln!("benchmarks: {}", Benchmark::ALL.map(|b| b.name()).join(" "));
        return ExitCode::FAILURE;
    }
    let Some(benchmark) = Benchmark::from_name(&args[0]) else {
        eprintln!("unknown benchmark `{}`", args[0]);
        return ExitCode::FAILURE;
    };
    let bus = match args[1].as_str() {
        "register" => BusKind::Register,
        "memory" => BusKind::Memory,
        "address" => BusKind::Address,
        other => {
            eprintln!("unknown bus `{other}` (register|memory|address)");
            return ExitCode::FAILURE;
        }
    };
    let Ok(values) = args[2].parse::<usize>() else {
        eprintln!("bad value count `{}`", args[2]);
        return ExitCode::FAILURE;
    };
    let seed: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);

    let trace = benchmark.trace(bus, values, seed);
    if stats_only {
        let census = ValueCensus::of(&trace);
        println!("workload:        {benchmark}/{bus}");
        println!("values:          {}", trace.len());
        println!("unique values:   {}", census.unique_count());
        println!("entropy (bits):  {:.2}", census.entropy_bits());
        println!("top-16 coverage: {:.3}", census.coverage(16));
        println!("repeat fraction: {:.3}", repeat_fraction(&trace));
        return ExitCode::SUCCESS;
    }
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    if let Err(e) = write_trace(&trace, &mut lock) {
        eprintln!("write failed: {e}");
        return ExitCode::FAILURE;
    }
    let _ = lock.flush();
    ExitCode::SUCCESS
}
