//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list                   # show every experiment
//! repro fig18 table3 ...       # run selected experiments
//! repro all                    # run everything
//! repro --metrics fig18        # also record instrumentation metrics
//! repro metrics-check [file]   # validate a metrics.jsonl file
//! ```
//!
//! Environment: `REPRO_VALUES` (trace length, default 200000),
//! `REPRO_SEED` (default 1), `REPRO_OUT` (CSV directory, default
//! `results/`), `REPRO_METRICS=1` (same as `--metrics`). Figure-class
//! experiments additionally render SVG charts into `<out>/plots/`.
//!
//! With metrics on, each experiment appends one JSON record to
//! `<out>/metrics.jsonl` and prints a per-probe summary table on
//! stderr; see `docs/OBSERVABILITY.md`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use std::time::Instant;

use bench::experiments::{registry, Experiment};
use bench::{metrics, Ctx};

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut metrics_on = busprobe::init_from_env();
    if let Some(pos) = args.iter().position(|a| a == "--metrics") {
        args.remove(pos);
        busprobe::set_enabled(true);
        metrics_on = true;
    }

    let experiments = registry();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage(&experiments);
        return ExitCode::SUCCESS;
    }
    if args[0] == "list" {
        for e in &experiments {
            println!("{:<22} {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }
    if args[0] == "metrics-check" {
        let file = args
            .get(1)
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| metrics::path(&Ctx::from_env()));
        return match metrics::check_file(&file) {
            Ok(n) => {
                eprintln!("{}: {n} valid metric record(s)", file.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("metrics-check failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let selected: Vec<&Experiment> = if args.iter().any(|a| a == "all") {
        experiments.iter().collect()
    } else {
        let mut sel = Vec::new();
        for a in &args {
            match experiments.iter().find(|e| e.id == a.as_str()) {
                Some(e) => sel.push(e),
                None => {
                    eprintln!("unknown experiment `{a}` (try `repro list`)");
                    return ExitCode::FAILURE;
                }
            }
        }
        sel
    };

    let ctx = Ctx::from_env();
    eprintln!(
        "running {} experiment(s): {} values/trace, seed {}, output {}{}",
        selected.len(),
        ctx.values,
        ctx.seed,
        ctx.out_dir.display(),
        if metrics_on { ", metrics on" } else { "" }
    );
    let total = selected.len();
    let grand_start = Instant::now();
    let mut grand_tables = 0usize;
    let mut grand_rows = 0u64;
    let mut failed: Vec<&str> = Vec::new();
    for e in &selected {
        if metrics_on {
            // Each record carries only its own experiment's counts.
            busprobe::reset();
        }
        let start = Instant::now();
        // A panicking experiment must not take the rest of the run down
        // with it: report it, skip its tables, keep going, and fail the
        // process at the end.
        let tables = match catch_unwind(AssertUnwindSafe(|| (e.run)(&ctx))) {
            Ok(tables) => tables,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(ToString::to_string)
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                eprintln!("[{}] FAILED: experiment panicked: {msg}", e.id);
                failed.push(e.id);
                continue;
            }
        };
        let rows: u64 = tables.iter().map(|t| t.rows.len() as u64).sum();
        for table in &tables {
            print!("{}", table.to_console());
            if let Err(err) = table.write_csv(&ctx.out_dir) {
                eprintln!("warning: could not write {}.csv: {err}", table.id);
            }
            if let Some(spec) = bench::plot::spec_for(&table.id) {
                if let Some(svg) = bench::plot::chart_table(table, &spec) {
                    let dir = ctx.out_dir.join("plots");
                    let path = dir.join(format!("{}.svg", table.id));
                    let write =
                        std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, svg));
                    if let Err(err) = write {
                        eprintln!("warning: could not write {}: {err}", path.display());
                    }
                }
            }
        }
        let wall_s = start.elapsed().as_secs_f64();
        grand_tables += tables.len();
        grand_rows += rows;
        eprintln!(
            "[{}] done in {:.1}s: {} table(s), {} row(s)",
            e.id,
            wall_s,
            tables.len(),
            rows
        );
        if metrics_on {
            busprobe::counter("bench.experiment.rows").add(rows);
            busprobe::histogram("bench.experiment.wall_ms", busprobe::DEFAULT_BOUNDS)
                .observe((wall_s * 1000.0) as u64);
            eprint!("{}", metrics::summary(e.id));
            match metrics::emit(&ctx, e.id, wall_s, rows) {
                Ok(file) => eprintln!("[{}] metrics appended to {}", e.id, file.display()),
                Err(err) => eprintln!("warning: could not write metrics for {}: {err}", e.id),
            }
        }
    }
    if total > 1 {
        eprintln!(
            "[all] {} experiment(s) done in {:.1}s: {} table(s), {} row(s)",
            total,
            grand_start.elapsed().as_secs_f64(),
            grand_tables,
            grand_rows
        );
    }
    if !failed.is_empty() {
        eprintln!(
            "{} experiment(s) FAILED: {}",
            failed.len(),
            failed.join(", ")
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn print_usage(experiments: &[Experiment]) {
    println!("usage: repro [--metrics] <experiment>... | all | list | metrics-check [file]");
    println!("experiments:");
    for e in experiments {
        println!("  {:<22} {}", e.id, e.title);
    }
}
