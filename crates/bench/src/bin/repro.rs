//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list                   # show every experiment
//! repro fig18 table3 ...       # run selected experiments
//! repro all                    # run everything
//! repro --metrics fig18        # also record instrumentation metrics
//! repro metrics-check [file]   # validate a metrics.jsonl file
//! repro bench [reps]           # time every experiment, write BENCH_repro.json
//! ```
//!
//! Environment: `REPRO_VALUES` (trace length, default 200000),
//! `REPRO_SEED` (default 1), `REPRO_OUT` (CSV directory, default
//! `results/`), `REPRO_METRICS=1` (same as `--metrics`),
//! `REPRO_CACHE=1` (persist generated traces under `<out>/cache/` and
//! reload them on later runs), `REPRO_SERIAL=1` (disable
//! cross-experiment parallelism). Figure-class experiments additionally
//! render SVG charts into `<out>/plots/`.
//!
//! Experiments share one [`Session`]: every trace is generated at most
//! once per run no matter how many experiments ask for it, and
//! independent experiments run concurrently on the worker pool. Output
//! (console tables, CSVs, plots, timing lines) is always emitted in
//! registry order, so a parallel run is byte-identical to a serial one.
//! Metrics mode forces serial execution — the probe registry is
//! process-global and is reset between experiments so each record
//! carries only its own counts.
//!
//! With metrics on, each experiment appends one JSON record to
//! `<out>/metrics.jsonl` and prints a per-probe summary table on
//! stderr; see `docs/OBSERVABILITY.md`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use std::time::Instant;

use bench::experiments::{par_map, registry, Experiment};
use bench::report::Table;
use bench::{env_flag, metrics, Session};

/// Outcome of one experiment: its tables (or the panic message) and the
/// wall-clock seconds it took.
type RunResult = (Result<Vec<Table>, String>, f64);

/// Runs one experiment, converting a panic into an error message so a
/// failing experiment cannot take the rest of the run down with it.
fn execute(e: &Experiment, session: &Session) -> RunResult {
    let start = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| (e.run)(session))).map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(ToString::to_string)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string())
    });
    (result, start.elapsed().as_secs_f64())
}

/// Prints an experiment's tables, writes its CSVs and plots, and emits
/// the timing line. Returns the row count.
fn emit_output(id: &str, tables: &[Table], wall_s: f64, session: &Session) -> u64 {
    let rows: u64 = tables.iter().map(|t| t.rows.len() as u64).sum();
    for table in tables {
        print!("{}", table.to_console());
        if let Err(err) = table.write_csv(session.out_dir()) {
            eprintln!("warning: could not write {}.csv: {err}", table.id);
        }
        if let Some(spec) = bench::plot::spec_for(&table.id) {
            if let Some(svg) = bench::plot::chart_table(table, &spec) {
                let dir = session.out_dir().join("plots");
                let path = dir.join(format!("{}.svg", table.id));
                let write = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, svg));
                if let Err(err) = write {
                    eprintln!("warning: could not write {}: {err}", path.display());
                }
            }
        }
    }
    eprintln!(
        "[{}] done in {:.1}s: {} table(s), {} row(s)",
        id,
        wall_s,
        tables.len(),
        rows
    );
    rows
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut metrics_on = busprobe::init_from_env();
    if let Some(pos) = args.iter().position(|a| a == "--metrics") {
        args.remove(pos);
        busprobe::set_enabled(true);
        metrics_on = true;
    }

    let experiments = registry();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage(&experiments);
        return ExitCode::SUCCESS;
    }
    if args[0] == "list" {
        for e in &experiments {
            println!("{:<22} {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }
    if args[0] == "bench" {
        let reps = match args.get(1) {
            None => 1,
            Some(a) => match a.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    eprintln!("bench: reps must be a positive integer, got `{a}`");
                    return ExitCode::FAILURE;
                }
            },
        };
        return run_bench(&experiments, reps);
    }
    if args[0] == "metrics-check" {
        let file = args
            .get(1)
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| metrics::path(&Session::from_env()));
        return match metrics::check_file(&file) {
            Ok(n) => {
                eprintln!("{}: {n} valid metric record(s)", file.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("metrics-check failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let selected: Vec<&Experiment> = if args.iter().any(|a| a == "all") {
        experiments.iter().collect()
    } else {
        let mut sel = Vec::new();
        for a in &args {
            match experiments.iter().find(|e| e.id == a.as_str()) {
                Some(e) => sel.push(e),
                None => {
                    eprintln!("unknown experiment `{a}` (try `repro list`)");
                    return ExitCode::FAILURE;
                }
            }
        }
        sel
    };

    let session = Session::from_env();
    // The probe registry is process-global and reset per experiment in
    // metrics mode, so concurrent experiments would corrupt each
    // other's records.
    let parallel = selected.len() > 1 && !metrics_on && !env_flag("REPRO_SERIAL");
    eprintln!(
        "running {} experiment(s): {} values/trace, seed {}, output {}{}{}{}",
        selected.len(),
        session.values(),
        session.seed(),
        session.out_dir().display(),
        if metrics_on { ", metrics on" } else { "" },
        if session.store().disk_dir().is_some() {
            ", trace cache on"
        } else {
            ""
        },
        if parallel { ", parallel" } else { "" }
    );
    let total = selected.len();
    let grand_start = Instant::now();
    let mut grand_tables = 0usize;
    let mut grand_rows = 0u64;
    let mut failed: Vec<&str> = Vec::new();

    // Run. In parallel mode the results are collected first and emitted
    // afterwards in registry order; serial mode emits as it goes (so
    // metrics summaries interleave with their experiments).
    let emit = |e: &Experiment,
                result: Result<Vec<Table>, String>,
                wall_s: f64,
                failed: &mut Vec<&'static str>,
                grand_tables: &mut usize,
                grand_rows: &mut u64|
     -> Option<u64> {
        match result {
            Ok(tables) => {
                let rows = emit_output(e.id, &tables, wall_s, &session);
                *grand_tables += tables.len();
                *grand_rows += rows;
                Some(rows)
            }
            Err(msg) => {
                eprintln!("[{}] FAILED: experiment panicked: {msg}", e.id);
                failed.push(e.id);
                None
            }
        }
    };

    if parallel {
        let results = par_map(selected.clone(), |e| execute(e, &session));
        for (e, (result, wall_s)) in selected.iter().zip(results) {
            emit(
                e,
                result,
                wall_s,
                &mut failed,
                &mut grand_tables,
                &mut grand_rows,
            );
        }
    } else {
        for e in &selected {
            if metrics_on {
                // Each record carries only its own experiment's counts.
                busprobe::reset();
            }
            let (result, wall_s) = execute(e, &session);
            let rows = emit(
                e,
                result,
                wall_s,
                &mut failed,
                &mut grand_tables,
                &mut grand_rows,
            );
            if let (true, Some(rows)) = (metrics_on, rows) {
                busprobe::counter("bench.experiment.rows").add(rows);
                busprobe::histogram("bench.experiment.wall_ms", busprobe::DEFAULT_BOUNDS)
                    .observe((wall_s * 1000.0) as u64);
                eprint!("{}", metrics::summary(e.id));
                match metrics::emit(&session, e.id, wall_s, rows) {
                    Ok(file) => eprintln!("[{}] metrics appended to {}", e.id, file.display()),
                    Err(err) => eprintln!("warning: could not write metrics for {}: {err}", e.id),
                }
            }
        }
    }

    if total > 1 {
        eprintln!(
            "[all] {} experiment(s) done in {:.1}s: {} table(s), {} row(s), {} trace(s) generated",
            total,
            grand_start.elapsed().as_secs_f64(),
            grand_tables,
            grand_rows,
            session.store().len()
        );
    }
    if !failed.is_empty() {
        eprintln!(
            "{} experiment(s) FAILED: {}",
            failed.len(),
            failed.join(", ")
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `repro bench [reps]`: wall-clock benchmark of the whole experiment
/// registry. Each rep runs every experiment serially in registry order
/// against a *fresh* session — every rep pays the same cold trace and
/// activity stores, like a real `repro all`. Per experiment the minimum
/// wall time across reps is kept (the least-noise estimate), alongside
/// the values-encoded tally from the block evaluation engine's probe,
/// giving values/second throughput. The report is rendered to
/// `<out>/BENCH_repro.json` and re-parsed before being written, so a
/// file that exists is guaranteed well-formed.
fn run_bench(experiments: &[Experiment], reps: usize) -> ExitCode {
    use busprobe::json::JsonValue;
    // The values/sec figures come from the probe registry.
    busprobe::set_enabled(true);
    let cfg = Session::from_env();
    eprintln!(
        "bench: {} experiment(s) x {} rep(s), {} values/trace, seed {}",
        experiments.len(),
        reps,
        cfg.values(),
        cfg.seed()
    );
    let mut wall = vec![f64::INFINITY; experiments.len()];
    let mut encoded = vec![0u64; experiments.len()];
    let mut total_wall = f64::INFINITY;
    let mut failed: Vec<&str> = Vec::new();
    for rep in 0..reps {
        let session = Session::from_env();
        let rep_start = Instant::now();
        for (i, e) in experiments.iter().enumerate() {
            // Each experiment's tally must carry only its own counts.
            busprobe::reset();
            let (result, wall_s) = execute(e, &session);
            if let Err(msg) = result {
                eprintln!("[bench] {} FAILED: {msg}", e.id);
                if !failed.contains(&e.id) {
                    failed.push(e.id);
                }
                continue;
            }
            wall[i] = wall[i].min(wall_s);
            encoded[i] =
                encoded[i].max(busprobe::counter("buscoding.codec.values_encoded").value());
            eprintln!("[bench {}/{}] {:<22} {:.2}s", rep + 1, reps, e.id, wall_s);
        }
        total_wall = total_wall.min(rep_start.elapsed().as_secs_f64());
    }
    if !failed.is_empty() {
        eprintln!("bench aborted: {} experiment(s) failed", failed.len());
        return ExitCode::FAILURE;
    }

    let per_experiment: Vec<JsonValue> = experiments
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let vps = if wall[i] > 0.0 {
                encoded[i] as f64 / wall[i]
            } else {
                0.0
            };
            JsonValue::Obj(vec![
                ("id".into(), JsonValue::Str(e.id.into())),
                ("wall_s".into(), JsonValue::Num(wall[i])),
                ("values_encoded".into(), JsonValue::Int(encoded[i] as i64)),
                ("values_per_sec".into(), JsonValue::Num(vps)),
            ])
        })
        .collect();
    let doc = JsonValue::Obj(vec![
        ("schema".into(), JsonValue::Str("bench-repro/1".into())),
        ("reps".into(), JsonValue::Int(reps as i64)),
        ("values".into(), JsonValue::Int(cfg.values() as i64)),
        ("seed".into(), JsonValue::Int(cfg.seed() as i64)),
        ("total_wall_s".into(), JsonValue::Num(total_wall)),
        ("experiments".into(), JsonValue::Arr(per_experiment)),
    ]);
    let rendered = format!("{doc}\n");
    // Self-validate before writing: the emitted report must round-trip
    // through the strict parser with a non-empty experiment list.
    match busprobe::json::parse(rendered.trim_end()) {
        Ok(parsed) => match parsed.get("experiments") {
            Some(JsonValue::Arr(items)) if !items.is_empty() => {}
            _ => {
                eprintln!("bench: emitted report has no experiments");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("bench: emitted report does not parse: {e}");
            return ExitCode::FAILURE;
        }
    }
    let path = cfg.out_dir().join("BENCH_repro.json");
    if let Err(e) =
        std::fs::create_dir_all(cfg.out_dir()).and_then(|()| std::fs::write(&path, &rendered))
    {
        eprintln!("bench: could not write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    eprintln!(
        "[bench] total {:.1}s (min over {} rep(s)); wrote {}",
        total_wall,
        reps,
        path.display()
    );
    ExitCode::SUCCESS
}

fn print_usage(experiments: &[Experiment]) {
    println!(
        "usage: repro [--metrics] <experiment>... | all | list | metrics-check [file] | bench [reps]"
    );
    println!("env: REPRO_VALUES, REPRO_SEED, REPRO_OUT, REPRO_METRICS, REPRO_CACHE, REPRO_SERIAL");
    println!("experiments:");
    for e in experiments {
        println!("  {:<22} {}", e.id, e.title);
    }
}
