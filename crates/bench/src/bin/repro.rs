//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list                 # show every experiment
//! repro fig18 table3 ...     # run selected experiments
//! repro all                  # run everything
//! ```
//!
//! Environment: `REPRO_VALUES` (trace length, default 200000),
//! `REPRO_SEED` (default 1), `REPRO_OUT` (CSV directory, default
//! `results/`). Figure-class experiments additionally render SVG charts
//! into `<out>/plots/`.

use std::process::ExitCode;
use std::time::Instant;

use bench::experiments::{registry, Experiment};
use bench::Ctx;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiments = registry();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage(&experiments);
        return ExitCode::SUCCESS;
    }
    if args[0] == "list" {
        for e in &experiments {
            println!("{:<22} {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }

    let selected: Vec<&Experiment> = if args.iter().any(|a| a == "all") {
        experiments.iter().collect()
    } else {
        let mut sel = Vec::new();
        for a in &args {
            match experiments.iter().find(|e| e.id == a.as_str()) {
                Some(e) => sel.push(e),
                None => {
                    eprintln!("unknown experiment `{a}` (try `repro list`)");
                    return ExitCode::FAILURE;
                }
            }
        }
        sel
    };

    let ctx = Ctx::from_env();
    eprintln!(
        "running {} experiment(s): {} values/trace, seed {}, output {}",
        selected.len(),
        ctx.values,
        ctx.seed,
        ctx.out_dir.display()
    );
    for e in selected {
        let start = Instant::now();
        let tables = (e.run)(&ctx);
        for table in &tables {
            print!("{}", table.to_console());
            if let Err(err) = table.write_csv(&ctx.out_dir) {
                eprintln!("warning: could not write {}.csv: {err}", table.id);
            }
            if let Some(spec) = bench::plot::spec_for(&table.id) {
                if let Some(svg) = bench::plot::chart_table(table, &spec) {
                    let dir = ctx.out_dir.join("plots");
                    let path = dir.join(format!("{}.svg", table.id));
                    let write =
                        std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, svg));
                    if let Err(err) = write {
                        eprintln!("warning: could not write {}: {err}", path.display());
                    }
                }
            }
        }
        eprintln!("[{}] done in {:.1}s", e.id, start.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}

fn print_usage(experiments: &[Experiment]) {
    println!("usage: repro <experiment>... | all | list");
    println!("experiments:");
    for e in experiments {
        println!("  {:<22} {}", e.id, e.title);
    }
}
