//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro list                   # show every experiment
//! repro fig18 table3 ...       # run selected experiments
//! repro all                    # run everything
//! repro --metrics fig18        # also record instrumentation metrics
//! repro metrics-check [file]   # validate a metrics.jsonl file
//! repro profile fig16 ...      # hierarchical trace profile per experiment
//! repro bench [reps]           # time every experiment, write BENCH_repro.json
//! repro bench [reps] --check   # compare against the committed baseline
//! repro eval <file|->          # answer one eval request (JSON in, JSON out)
//! repro train <corpus>         # fit predictor tables, write trained/<name>-v1.bin
//! repro serve --socket <path>  # resident daemon over a unix socket
//! repro serve --stdio          # single-shot framed server on stdin/stdout
//! ```
//!
//! Environment: `REPRO_VALUES` (trace length, default 200000),
//! `REPRO_SEED` (default 1), `REPRO_OUT` (CSV directory, default
//! `results/`), `REPRO_METRICS=1` (same as `--metrics`),
//! `REPRO_CACHE=1` (persist generated traces under `<out>/cache/` and
//! reload them on later runs), `REPRO_SERIAL=1` (disable
//! cross-experiment parallelism). Figure-class experiments additionally
//! render SVG charts into `<out>/plots/`.
//!
//! Experiments share one [`Session`]: every trace is generated at most
//! once per run no matter how many experiments ask for it, and
//! independent experiments run concurrently on the worker pool. Output
//! (console tables, CSVs, plots, timing lines) is always emitted in
//! registry order, so a parallel run is byte-identical to a serial one.
//!
//! With metrics on, each experiment appends one JSON record to
//! `<out>/metrics.jsonl` and prints a per-probe summary table on
//! stderr; see `docs/OBSERVABILITY.md`. Metrics no longer force serial
//! execution: under the parallel runner each experiment runs inside a
//! root trace span, its record carries that span subtree (exactly
//! attributable even with siblings in flight), and a final `_run`
//! record carries the whole-process registry snapshot. `REPRO_SERIAL=1`
//! (or selecting a single experiment) restores the old one-registry-
//! reset-per-experiment records.
//!
//! `repro profile <exp>` runs experiments serially with the
//! hierarchical trace recorder on and writes `<out>/trace-<id>.json`
//! (Chrome trace-event format — load in `chrome://tracing` or
//! <https://ui.perfetto.dev>) plus `<out>/trace-<id>.folded` (folded
//! stacks for flamegraph tooling), and prints a per-phase breakdown.
//! See the profiling section of `docs/OBSERVABILITY.md`.
//!
//! `repro eval` and `repro serve` are the two service front ends over
//! [`bench::api`]: `eval` answers one request body in-process (the
//! golden path CI diffs the daemon against), `serve` keeps the session
//! resident behind the framed protocol documented in
//! `docs/SERVICE.md`. `serve` drains gracefully on SIGTERM/SIGINT and
//! exits 0.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use std::time::Instant;

use bench::bencheck::{self, CheckConfig, CheckOutcome};
use bench::experiments::{par_map, registry, Experiment};
use bench::report::Table;
use bench::{env_flag, metrics, profile, Session};
use busprobe::trace;

/// Outcome of one experiment: its tables (or the panic message) and the
/// wall-clock seconds it took.
type RunResult = (Result<Vec<Table>, String>, f64);

/// Runs one experiment, converting a panic into an error message so a
/// failing experiment cannot take the rest of the run down with it.
fn execute(e: &Experiment, session: &Session) -> RunResult {
    let start = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| (e.run)(session))).map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(ToString::to_string)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string())
    });
    (result, start.elapsed().as_secs_f64())
}

/// Prints an experiment's tables, writes its CSVs and plots, and emits
/// the timing line. Returns the row count.
fn emit_output(id: &str, tables: &[Table], wall_s: f64, session: &Session) -> u64 {
    let _span = busprobe::span("bench.report.emit");
    let rows: u64 = tables.iter().map(|t| t.rows.len() as u64).sum();
    for table in tables {
        print!("{}", table.to_console());
        if let Err(err) = table.write_csv(session.out_dir()) {
            eprintln!("warning: could not write {}.csv: {err}", table.id);
        }
        if let Some(spec) = bench::plot::spec_for(&table.id) {
            if let Some(svg) = bench::plot::chart_table(table, &spec) {
                let dir = session.out_dir().join("plots");
                let path = dir.join(format!("{}.svg", table.id));
                let write = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, svg));
                if let Err(err) = write {
                    eprintln!("warning: could not write {}: {err}", path.display());
                }
            }
        }
    }
    eprintln!(
        "[{}] done in {:.1}s: {} table(s), {} row(s)",
        id,
        wall_s,
        tables.len(),
        rows
    );
    rows
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut metrics_on = busprobe::init_from_env();
    if let Some(pos) = args.iter().position(|a| a == "--metrics") {
        args.remove(pos);
        busprobe::set_enabled(true);
        metrics_on = true;
    }

    let experiments = registry();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage(&experiments);
        return ExitCode::SUCCESS;
    }
    if args[0] == "list" {
        for e in &experiments {
            println!("{:<22} {}", e.id, e.title);
        }
        return ExitCode::SUCCESS;
    }
    if args[0] == "bench" {
        let mut reps = 1usize;
        let mut check = false;
        let mut baseline: Option<std::path::PathBuf> = None;
        let mut cfg = CheckConfig::default();
        fn flag_value<'a>(
            it: &mut std::slice::Iter<'a, String>,
            flag: &str,
        ) -> Result<&'a String, String> {
            it.next()
                .ok_or_else(|| format!("bench: {flag} needs a value"))
        }
        let mut it = args[1..].iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--check" => check = true,
                "--baseline" => match flag_value(&mut it, "--baseline") {
                    Ok(v) => baseline = Some(std::path::PathBuf::from(v)),
                    Err(e) => return usage_error(&e),
                },
                "--threshold" => match flag_value(&mut it, "--threshold")
                    .and_then(|v| v.parse::<f64>().map_err(|e| format!("bench: --threshold: {e}")))
                {
                    Ok(v) if v >= 1.0 => cfg.threshold = v,
                    Ok(v) => return usage_error(&format!("bench: --threshold must be >= 1, got {v}")),
                    Err(e) => return usage_error(&e),
                },
                "--phase-threshold" => match flag_value(&mut it, "--phase-threshold").and_then(|v| {
                    v.parse::<f64>()
                        .map_err(|e| format!("bench: --phase-threshold: {e}"))
                }) {
                    Ok(v) if v >= 1.0 => cfg.phase_threshold = v,
                    Ok(v) => {
                        return usage_error(&format!("bench: --phase-threshold must be >= 1, got {v}"))
                    }
                    Err(e) => return usage_error(&e),
                },
                other => match other.parse::<usize>() {
                    Ok(n) if n >= 1 => reps = n,
                    _ => {
                        return usage_error(&format!(
                            "bench: expected reps or a flag, got `{other}`"
                        ))
                    }
                },
            }
        }
        return run_bench(&experiments, reps, check.then_some((baseline, cfg)));
    }
    if args[0] == "profile" {
        return run_profile(&experiments, &args[1..]);
    }
    if args[0] == "serve" {
        return run_serve(&args[1..]);
    }
    if args[0] == "eval" {
        return run_eval(&args[1..]);
    }
    if args[0] == "train" {
        return run_train(&args[1..], metrics_on);
    }
    if args[0] == "metrics-check" {
        let file = args
            .get(1)
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| metrics::path(&Session::from_env()));
        return match metrics::check_file(&file) {
            Ok(n) => {
                eprintln!("{}: {n} valid metric record(s)", file.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("metrics-check failed: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let selected: Vec<&Experiment> = if args.iter().any(|a| a == "all") {
        experiments.iter().collect()
    } else {
        let mut sel = Vec::new();
        for a in &args {
            match experiments.iter().find(|e| e.id == a.as_str()) {
                Some(e) => sel.push(e),
                None => {
                    eprintln!("unknown experiment `{a}` (try `repro list`)");
                    return ExitCode::FAILURE;
                }
            }
        }
        sel
    };

    let session = Session::from_env();
    // Metrics no longer force serial execution: parallel mode records
    // every experiment under a root trace span and attributes metrics
    // from the span subtrees instead of registry resets.
    let parallel = selected.len() > 1 && !env_flag("REPRO_SERIAL");
    eprintln!(
        "running {} experiment(s): {} values/trace, seed {}, output {}{}{}{}",
        selected.len(),
        session.values(),
        session.seed(),
        session.out_dir().display(),
        if metrics_on { ", metrics on" } else { "" },
        if session.store().disk_dir().is_some() {
            ", trace cache on"
        } else {
            ""
        },
        if parallel { ", parallel" } else { "" }
    );
    let total = selected.len();
    let grand_start = Instant::now();
    let mut grand_tables = 0usize;
    let mut grand_rows = 0u64;
    let mut failed: Vec<&str> = Vec::new();

    // Run. In parallel mode the results are collected first and emitted
    // afterwards in registry order; serial mode emits as it goes (so
    // metrics summaries interleave with their experiments).
    let emit = |e: &Experiment,
                result: Result<Vec<Table>, String>,
                wall_s: f64,
                failed: &mut Vec<&'static str>,
                grand_tables: &mut usize,
                grand_rows: &mut u64|
     -> Option<u64> {
        match result {
            Ok(tables) => {
                let rows = emit_output(e.id, &tables, wall_s, &session);
                *grand_tables += tables.len();
                *grand_rows += rows;
                Some(rows)
            }
            Err(msg) => {
                eprintln!("[{}] FAILED: experiment panicked: {msg}", e.id);
                failed.push(e.id);
                None
            }
        }
    };

    if parallel {
        if metrics_on {
            // Fresh window: counters cover this run, spans this drain.
            busprobe::reset();
            trace::clear();
            trace::set_enabled(true);
        }
        let results = par_map(selected.clone(), |e| {
            // The root span names the experiment; everything the
            // experiment's own threads record lands under `<id>/...`
            // (par_map workers adopt the caller's span context).
            let _root = busprobe::span(e.id);
            execute(e, &session)
        });
        let spans = if metrics_on {
            trace::set_enabled(false);
            trace::drain()
        } else {
            Vec::new()
        };
        for (e, (result, wall_s)) in selected.iter().zip(results) {
            let rows = emit(
                e,
                result,
                wall_s,
                &mut failed,
                &mut grand_tables,
                &mut grand_rows,
            );
            if let (true, Some(rows)) = (metrics_on, rows) {
                busprobe::counter("bench.experiment.rows").add(rows);
                busprobe::histogram("bench.experiment.wall_ms", busprobe::DEFAULT_BOUNDS)
                    .observe((wall_s * 1000.0) as u64);
                let nodes = trace::aggregate(&profile::subtree(&spans, e.id));
                let snaps = profile::nodes_to_snapshots(&nodes);
                eprint!(
                    "--- metrics [{}] (span subtree) ---\n{}",
                    e.id,
                    busprobe::render_summary(&snaps)
                );
                match metrics::emit_record(&session, e.id, wall_s, rows, profile::nodes_to_json(&nodes))
                {
                    Ok(file) => eprintln!("[{}] metrics appended to {}", e.id, file.display()),
                    Err(err) => eprintln!("warning: could not write metrics for {}: {err}", e.id),
                }
            }
        }
        if metrics_on {
            // The whole-process registry view: counters cannot be
            // attributed per experiment while siblings run, so they are
            // published once, honestly, for the run.
            let run_wall = grand_start.elapsed().as_secs_f64();
            eprint!("{}", metrics::summary("_run"));
            match metrics::emit(&session, "_run", run_wall, grand_rows) {
                Ok(file) => eprintln!("[_run] metrics appended to {}", file.display()),
                Err(err) => eprintln!("warning: could not write run metrics: {err}"),
            }
        }
    } else {
        for e in &selected {
            if metrics_on {
                // Each record carries only its own experiment's counts.
                busprobe::reset();
            }
            let (result, wall_s) = execute(e, &session);
            let rows = emit(
                e,
                result,
                wall_s,
                &mut failed,
                &mut grand_tables,
                &mut grand_rows,
            );
            if let (true, Some(rows)) = (metrics_on, rows) {
                busprobe::counter("bench.experiment.rows").add(rows);
                busprobe::histogram("bench.experiment.wall_ms", busprobe::DEFAULT_BOUNDS)
                    .observe((wall_s * 1000.0) as u64);
                eprint!("{}", metrics::summary(e.id));
                match metrics::emit(&session, e.id, wall_s, rows) {
                    Ok(file) => eprintln!("[{}] metrics appended to {}", e.id, file.display()),
                    Err(err) => eprintln!("warning: could not write metrics for {}: {err}", e.id),
                }
            }
        }
    }

    if total > 1 {
        eprintln!(
            "[all] {} experiment(s) done in {:.1}s: {} table(s), {} row(s), {} trace(s) generated",
            total,
            grand_start.elapsed().as_secs_f64(),
            grand_tables,
            grand_rows,
            session.store().len()
        );
    }
    if !failed.is_empty() {
        eprintln!(
            "{} experiment(s) FAILED: {}",
            failed.len(),
            failed.join(", ")
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    ExitCode::FAILURE
}

/// `repro bench [reps] [--check ...]`: wall-clock benchmark of the
/// whole experiment registry. Each rep runs every experiment serially
/// in registry order against a *fresh* session — every rep pays the
/// same cold trace and activity stores, like a real `repro all`. Per
/// experiment the minimum wall time across reps is kept (the
/// least-noise estimate) together with the max−min rep spread (the
/// gate's noise floor), alongside the values-encoded tally from the
/// block evaluation engine's probe, giving values/second throughput.
///
/// After the timed reps, one extra **untimed** rep runs with the trace
/// recorder on and folds each experiment's span subtree into the
/// pipeline phases (`trace_gen`/`encode`/`accumulate`/`pricing`/
/// `emit`/`other` — see [`bench::profile`]). Tracing stays off during
/// the timed reps so its overhead can never leak into `wall_s`; the
/// phase rep reports its own `phase_wall_s` alongside.
///
/// Without `--check`, the schema `bench-repro/2` report is validated
/// and written to `<out>/BENCH_repro.json`. With `--check`, nothing is
/// written: the fresh report is compared against the baseline file
/// (default `<out>/BENCH_repro.json`) by [`bencheck::compare`] —
/// regressions exit non-zero, an incompatible baseline (different
/// `values`/`seed`) warns and exits zero.
fn run_bench(
    experiments: &[Experiment],
    reps: usize,
    check: Option<(Option<std::path::PathBuf>, CheckConfig)>,
) -> ExitCode {
    use busprobe::json::JsonValue;
    // The values/sec figures come from the probe registry.
    busprobe::set_enabled(true);
    let cfg = Session::from_env();
    eprintln!(
        "bench: {} experiment(s) x {} rep(s), {} values/trace, seed {}",
        experiments.len(),
        reps,
        cfg.values(),
        cfg.seed()
    );
    let mut wall = vec![f64::INFINITY; experiments.len()];
    let mut wall_max = vec![0.0f64; experiments.len()];
    let mut encoded = vec![0u64; experiments.len()];
    let mut total_wall = f64::INFINITY;
    let mut failed: Vec<&str> = Vec::new();
    for rep in 0..reps {
        let session = Session::from_env();
        let rep_start = Instant::now();
        for (i, e) in experiments.iter().enumerate() {
            // Each experiment's tally must carry only its own counts.
            busprobe::reset();
            let (result, wall_s) = execute(e, &session);
            if let Err(msg) = result {
                eprintln!("[bench] {} FAILED: {msg}", e.id);
                if !failed.contains(&e.id) {
                    failed.push(e.id);
                }
                continue;
            }
            wall[i] = wall[i].min(wall_s);
            wall_max[i] = wall_max[i].max(wall_s);
            encoded[i] =
                encoded[i].max(busprobe::counter("buscoding.codec.values_encoded").value());
            eprintln!("[bench {}/{}] {:<22} {:.2}s", rep + 1, reps, e.id, wall_s);
        }
        total_wall = total_wall.min(rep_start.elapsed().as_secs_f64());
    }
    if !failed.is_empty() {
        eprintln!("bench aborted: {} experiment(s) failed", failed.len());
        return ExitCode::FAILURE;
    }

    // The phase rep: same workload, trace recorder on, never timed into
    // `wall_s`. CSV rendering cost is probed in memory (no writes).
    eprintln!("[bench] phase rep (untimed, trace recorder on)");
    let phase_session = Session::from_env();
    let mut phases: Vec<Vec<(&'static str, f64)>> = Vec::with_capacity(experiments.len());
    let mut phase_wall = vec![0.0f64; experiments.len()];
    trace::clear();
    trace::set_enabled(true);
    for (i, e) in experiments.iter().enumerate() {
        busprobe::reset();
        trace::clear();
        let (result, wall_s) = {
            let _root = busprobe::span(e.id);
            let (result, wall_s) = execute(e, &phase_session);
            if let Ok(tables) = &result {
                let _emit = busprobe::span("bench.report.emit");
                for t in tables {
                    std::hint::black_box(t.to_csv());
                }
            }
            (result, wall_s)
        };
        let spans = trace::drain();
        phase_wall[i] = wall_s;
        if result.is_err() {
            phases.push(profile::phase_breakdown(&[], 0.0));
            continue;
        }
        let nodes = trace::aggregate(&profile::subtree(&spans, e.id));
        phases.push(profile::phase_breakdown(&nodes, wall_s));
    }
    trace::set_enabled(false);

    let per_experiment: Vec<JsonValue> = experiments
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let vps = if wall[i] > 0.0 {
                encoded[i] as f64 / wall[i]
            } else {
                0.0
            };
            let spread = if reps > 1 {
                (wall_max[i] - wall[i]).max(0.0)
            } else {
                0.0
            };
            JsonValue::Obj(vec![
                ("id".into(), JsonValue::Str(e.id.into())),
                ("wall_s".into(), JsonValue::Num(wall[i])),
                ("values_encoded".into(), JsonValue::Int(encoded[i] as i64)),
                ("values_per_sec".into(), JsonValue::Num(vps)),
                ("rep_spread_s".into(), JsonValue::Num(spread)),
                ("phase_wall_s".into(), JsonValue::Num(phase_wall[i])),
                (
                    "phases".into(),
                    JsonValue::Obj(
                        phases[i]
                            .iter()
                            .map(|(p, s)| ((*p).to_string(), JsonValue::Num(*s)))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let doc = JsonValue::Obj(vec![
        ("schema".into(), JsonValue::Str("bench-repro/2".into())),
        ("reps".into(), JsonValue::Int(reps as i64)),
        ("values".into(), JsonValue::Int(cfg.values() as i64)),
        ("seed".into(), JsonValue::Int(cfg.seed() as i64)),
        ("total_wall_s".into(), JsonValue::Num(total_wall)),
        (
            "phase_total_s".into(),
            JsonValue::Num(phase_wall.iter().sum()),
        ),
        ("experiments".into(), JsonValue::Arr(per_experiment)),
    ]);
    let rendered = format!("{doc}\n");
    // Self-validate before writing or comparing: the emitted report
    // must round-trip through the strict parser and satisfy the v2
    // schema contract.
    let reparsed = match busprobe::json::parse(rendered.trim_end()) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("bench: emitted report does not parse: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = bencheck::validate_report(&reparsed) {
        eprintln!("bench: emitted report is not a valid bench-repro/2 document: {e}");
        return ExitCode::FAILURE;
    }

    if let Some((baseline_path, check_cfg)) = check {
        let baseline_path =
            baseline_path.unwrap_or_else(|| cfg.out_dir().join("BENCH_repro.json"));
        return run_check(&baseline_path, &reparsed, &check_cfg);
    }

    let path = cfg.out_dir().join("BENCH_repro.json");
    if let Err(e) =
        std::fs::create_dir_all(cfg.out_dir()).and_then(|()| std::fs::write(&path, &rendered))
    {
        eprintln!("bench: could not write {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    eprintln!(
        "[bench] total {:.1}s (min over {} rep(s)); wrote {}",
        total_wall,
        reps,
        path.display()
    );
    ExitCode::SUCCESS
}

/// Exit code for a `--check` that could not run at all: the baseline is
/// missing or unreadable. Distinct from `1` (a real regression) so CI
/// can warn-and-continue on an absent baseline while still failing hard
/// on a slowdown.
const EXIT_NO_BASELINE: u8 = 2;

/// The `--check` tail of [`run_bench`]: loads the baseline, compares,
/// reports. An incompatible baseline is a warning (exit 0) — the gate
/// refuses to guess; a missing or unparseable baseline exits
/// [`EXIT_NO_BASELINE`] with a regeneration hint; an actual regression
/// exits 1.
fn run_check(
    baseline_path: &std::path::Path,
    current: &busprobe::JsonValue,
    cfg: &CheckConfig,
) -> ExitCode {
    let no_baseline = |why: &str| {
        eprintln!("[bench --check] {why}");
        eprintln!(
            "[bench --check] regenerate it with `repro bench` (writes {})",
            baseline_path.display()
        );
        ExitCode::from(EXIT_NO_BASELINE)
    };
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            return no_baseline(&format!(
                "no baseline at {} ({e}); nothing to compare",
                baseline_path.display()
            ));
        }
    };
    let baseline = match busprobe::json::parse(text.trim_end()) {
        Ok(b) => b,
        Err(e) => {
            return no_baseline(&format!(
                "baseline {} does not parse: {e}",
                baseline_path.display()
            ));
        }
    };
    match bencheck::compare(&baseline, current, cfg) {
        CheckOutcome::Incompatible(reason) => {
            eprintln!("[bench --check] not comparable: {reason}");
            ExitCode::SUCCESS
        }
        CheckOutcome::Compared(regs) if regs.is_empty() => {
            eprintln!(
                "[bench --check] OK against {} (threshold {}x, phase {}x)",
                baseline_path.display(),
                cfg.threshold,
                cfg.phase_threshold
            );
            ExitCode::SUCCESS
        }
        CheckOutcome::Compared(regs) => {
            for r in &regs {
                eprintln!(
                    "[bench --check] REGRESSION {} {}: {:.3}s -> {:.3}s (limit {:.3}s)",
                    r.id, r.metric, r.baseline_s, r.current_s, r.limit_s
                );
            }
            eprintln!(
                "[bench --check] {} regression(s) against {}",
                regs.len(),
                baseline_path.display()
            );
            ExitCode::FAILURE
        }
    }
}

/// `repro serve`: the resident evaluation daemon (or its stdio
/// single-shot twin). The session, its trace store, and the coded
/// activity store stay warm across requests, so a client sweeping one
/// workload pays for each trace and activity once — exactly the batch
/// binary's economics, held across process boundaries.
///
/// Flags: `--socket <path>` (unix-socket daemon; drains on
/// SIGTERM/SIGINT and exits 0), `--stdio` (serve frames on
/// stdin/stdout until EOF), `--shards N`, `--queue N` (per-shard
/// in-flight bound; overload answers typed `busy`), `--quota N`
/// (requests per connection).
fn run_serve(args: &[String]) -> ExitCode {
    let mut socket: Option<std::path::PathBuf> = None;
    let mut stdio = false;
    let mut config = busserve::ServerConfig::default();
    let mut it = args.iter();
    fn flag_value<'a>(
        it: &mut std::slice::Iter<'a, String>,
        flag: &str,
    ) -> Result<&'a String, String> {
        it.next()
            .ok_or_else(|| format!("serve: {flag} needs a value"))
    }
    fn flag_usize(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<usize, String> {
        flag_value(it, flag).and_then(|v| {
            v.parse::<usize>()
                .map_err(|e| format!("serve: {flag}: {e}"))
                .and_then(|n| {
                    if n >= 1 {
                        Ok(n)
                    } else {
                        Err(format!("serve: {flag} must be >= 1"))
                    }
                })
        })
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => match flag_value(&mut it, "--socket") {
                Ok(v) => socket = Some(std::path::PathBuf::from(v)),
                Err(e) => return usage_error(&e),
            },
            "--stdio" => stdio = true,
            "--shards" => match flag_usize(&mut it, "--shards") {
                Ok(n) => config.shards = n,
                Err(e) => return usage_error(&e),
            },
            "--queue" => match flag_usize(&mut it, "--queue") {
                Ok(n) => config.queue_depth = n,
                Err(e) => return usage_error(&e),
            },
            "--quota" => match flag_usize(&mut it, "--quota") {
                Ok(n) => config.client_quota = n as u64,
                Err(e) => return usage_error(&e),
            },
            other => return usage_error(&format!("serve: unknown flag `{other}`")),
        }
    }
    if stdio == socket.is_some() {
        return usage_error("serve: pass exactly one of --socket <path> or --stdio");
    }
    // Metrics on so the `metrics` verb (and the activity hit-rate
    // headline) reflect live counters.
    busprobe::set_enabled(true);
    let session = Session::from_env();
    eprintln!(
        "[serve] session: {} values/trace, seed {}{}",
        session.values(),
        session.seed(),
        if session.store().disk_dir().is_some() {
            ", trace cache on"
        } else {
            ""
        }
    );
    let server = busserve::Server::new(bench::api::ApiService::new(session), config.clone());
    let stats = if stdio {
        server.serve_stdio()
    } else {
        let path = socket.expect("checked above");
        let shutdown = busserve::signal::install();
        eprintln!(
            "[serve] listening on {} ({} shard(s), queue {}, quota {}/conn)",
            path.display(),
            config.shards,
            config.queue_depth,
            config.client_quota
        );
        server.serve_unix(&path, shutdown)
    };
    match stats {
        Ok(s) => {
            eprintln!(
                "[serve] drained: {} connection(s), {} request(s), {} busy, {} over quota, {} protocol error(s)",
                s.connections, s.requests, s.busy, s.quota, s.protocol_errors
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro eval <file|->`: answers one eval request body in-process and
/// prints the response JSON on stdout — the same computation `serve`
/// runs for the same body, without a daemon. CI uses it to produce the
/// golden the daemon's responses are diffed against.
fn run_eval(args: &[String]) -> ExitCode {
    use bench::api::{EvalRequest, Evaluator};
    let raw = match args.first().map(String::as_str) {
        None | Some("-") => {
            use std::io::Read;
            let mut buf = String::new();
            match std::io::stdin().read_to_string(&mut buf) {
                Ok(_) => buf,
                Err(e) => return usage_error(&format!("eval: could not read stdin: {e}")),
            }
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return usage_error(&format!("eval: could not read {path}: {e}")),
        },
    };
    let body = match busprobe::json::parse(raw.trim()) {
        Ok(b) => b,
        Err(e) => return usage_error(&format!("eval: request does not parse: {e}")),
    };
    let request = match EvalRequest::from_json(&body) {
        Ok(r) => r,
        Err(e) => return usage_error(&format!("eval: {e}")),
    };
    let session = Session::from_env();
    match session.evaluate(&request) {
        Ok(response) => {
            println!("{}", response.to_json());
            ExitCode::SUCCESS
        }
        Err(e) => {
            // `e` names the candidates itself for unknown schemes —
            // the same list the daemon ships as the `candidates`
            // detail.
            eprintln!("eval: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro train <corpus>`: fits predictor tables over the corpus's
/// train split and persists them as a versioned artifact under
/// `<out>/trained/`. The corpus is a built-in name (`demo`,
/// `generalize`) or a manifest file path; the resulting artifact is
/// addressable as scheme `trained:<name>` everywhere schemes are
/// named — experiments, `eval` bodies, and the daemon. Prints the
/// artifact path on stdout.
fn run_train(args: &[String], metrics_on: bool) -> ExitCode {
    use bench::training::{artifact_dir_for, resolve_corpus, train_with_session};
    let Some(arg) = args.first() else {
        return usage_error("train: name a corpus (demo, generalize, or a manifest file)");
    };
    if args.len() > 1 {
        return usage_error("train: expected exactly one corpus argument");
    }
    let session = Session::from_env();
    let corpus = match resolve_corpus(&session, arg) {
        Ok(c) => c,
        Err(e) => return usage_error(&format!("train: {e}")),
    };
    eprintln!(
        "training corpus `{}`: {} entr(ies), {} values/trace, seed {}, artifacts under {}",
        corpus.name(),
        corpus.entries().len(),
        session.values(),
        session.seed(),
        artifact_dir_for(&session).display()
    );
    let start = Instant::now();
    let tables = match train_with_session(&session, &corpus) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("train: {e}");
            return ExitCode::FAILURE;
        }
    };
    let path = match bustrain::save_trained(&tables, &artifact_dir_for(&session)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("train: {e}");
            return ExitCode::FAILURE;
        }
    };
    let wall_s = start.elapsed().as_secs_f64();
    eprintln!(
        "[train] `{}` done in {wall_s:.1}s: {} codebook + {} signature + {} stride entries \
         over {} values -> scheme trained:{}",
        tables.name,
        tables.codebook.len(),
        tables
            .signatures
            .iter()
            .map(|t| t.entries.len())
            .sum::<usize>(),
        tables.strides.len(),
        tables.trained_values,
        tables.name
    );
    println!("{}", path.display());
    if metrics_on {
        eprint!("{}", metrics::summary("train"));
        match metrics::emit(&session, "train", wall_s, tables.total_entries() as u64) {
            Ok(file) => eprintln!("[train] metrics appended to {}", file.display()),
            Err(err) => eprintln!("warning: could not write train metrics: {err}"),
        }
    }
    ExitCode::SUCCESS
}

/// `repro profile <experiment>...`: serial runs with the hierarchical
/// trace recorder and per-span counter capture on. Per experiment,
/// writes the Chrome trace (`<out>/trace-<id>.json`, validated before
/// writing) and folded stacks (`<out>/trace-<id>.folded`), then prints
/// the phase breakdown and the largest self-time spans.
fn run_profile(experiments: &[Experiment], args: &[String]) -> ExitCode {
    let selected: Vec<&Experiment> = if args.iter().any(|a| a == "all") {
        experiments.iter().collect()
    } else {
        let mut sel = Vec::new();
        for a in args {
            match experiments.iter().find(|e| e.id == a.as_str()) {
                Some(e) => sel.push(e),
                None => {
                    return usage_error(&format!("unknown experiment `{a}` (try `repro list`)"))
                }
            }
        }
        sel
    };
    if selected.is_empty() {
        return usage_error("profile: name at least one experiment (or `all`)");
    }
    let session = Session::from_env();
    // Serial on purpose: per-span counter deltas come from the global
    // registry, so concurrent experiments would bleed into each other's
    // args. Metrics on so the counters move; trace on so spans record.
    busprobe::set_enabled(true);
    trace::set_enabled(true);
    trace::set_capture_counters(true);
    eprintln!(
        "profiling {} experiment(s): {} values/trace, seed {}, output {}",
        selected.len(),
        session.values(),
        session.seed(),
        session.out_dir().display()
    );
    let mut failed: Vec<&str> = Vec::new();
    for e in &selected {
        busprobe::reset();
        trace::clear();
        let ok = {
            let _root = busprobe::span(e.id);
            let (result, wall_s) = execute(e, &session);
            match result {
                Ok(tables) => {
                    emit_output(e.id, &tables, wall_s, &session);
                    true
                }
                Err(msg) => {
                    eprintln!("[{}] FAILED: experiment panicked: {msg}", e.id);
                    false
                }
            }
        };
        let spans = trace::drain();
        if !ok {
            failed.push(e.id);
            continue;
        }
        let doc = trace::chrome_trace(&spans);
        let pairs = match trace::validate_chrome(&doc) {
            Ok(n) => n,
            Err(err) => {
                eprintln!("[{}] FAILED: emitted trace is invalid: {err}", e.id);
                failed.push(e.id);
                continue;
            }
        };
        let trace_path = session.out_dir().join(format!("trace-{}.json", e.id));
        let folded_path = session.out_dir().join(format!("trace-{}.folded", e.id));
        let write = std::fs::create_dir_all(session.out_dir())
            .and_then(|()| std::fs::write(&trace_path, format!("{doc}\n")))
            .and_then(|()| std::fs::write(&folded_path, trace::folded_stacks(&spans)));
        if let Err(err) = write {
            eprintln!("[{}] FAILED: could not write trace files: {err}", e.id);
            failed.push(e.id);
            continue;
        }
        eprintln!(
            "[{}] profile: {} span(s) -> {} and {}",
            e.id,
            pairs,
            trace_path.display(),
            folded_path.display()
        );
        let root_wall_s = spans
            .iter()
            .find(|s| s.path == e.id)
            .map_or(0.0, |s| s.dur_ns() as f64 / 1e9);
        let nodes = trace::aggregate(&profile::subtree(&spans, e.id));
        let breakdown = profile::phase_breakdown(&nodes, root_wall_s);
        let line: Vec<String> = breakdown
            .iter()
            .map(|(p, s)| format!("{p} {s:.2}s"))
            .collect();
        eprintln!("[{}] phases: {}", e.id, line.join("  "));
        let mut by_self = nodes;
        by_self.sort_by_key(|n| std::cmp::Reverse(n.self_ns));
        eprintln!("[{}] top self-time:", e.id);
        for node in by_self.iter().take(8).filter(|n| n.self_ns > 0) {
            eprintln!(
                "  {:>8.3}s  {} (n={})",
                node.self_ns as f64 / 1e9,
                node.path,
                node.count
            );
        }
    }
    trace::set_capture_counters(false);
    trace::set_enabled(false);
    if !failed.is_empty() {
        eprintln!(
            "{} experiment(s) FAILED to profile: {}",
            failed.len(),
            failed.join(", ")
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn print_usage(experiments: &[Experiment]) {
    println!(
        "usage: repro [--metrics] <experiment>... | all | list | metrics-check [file] \
         | profile <experiment>... | bench [reps] [--check] [--baseline <file>] \
         [--threshold X] [--phase-threshold Y] | eval <file|-> | train <corpus> \
         | serve (--socket <path> | --stdio) [--shards N] [--queue N] [--quota N]"
    );
    println!("env: REPRO_VALUES, REPRO_SEED, REPRO_OUT, REPRO_METRICS, REPRO_CACHE, REPRO_SERIAL");
    println!("experiments:");
    for e in experiments {
        println!("  {:<22} {}", e.id, e.title);
    }
}
