//! `report` — assemble `results/*.csv` into a single Markdown results
//! browser (`results/REPORT.md`), with embedded charts where they exist.
//!
//! ```text
//! report [results-dir]
//! ```
//!
//! Run `repro all` first; this tool only formats what is on disk.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use bench::experiments::registry;

const MAX_ROWS: usize = 14;

fn main() -> ExitCode {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| "results".into());
    if !dir.is_dir() {
        eprintln!(
            "no results directory at {} (run `repro all` first)",
            dir.display()
        );
        return ExitCode::FAILURE;
    }
    let mut out = String::new();
    let _ = writeln!(out, "# Results report\n");
    let _ = writeln!(
        out,
        "Auto-generated from `{}/*.csv` by `cargo run -p bench --bin report`.",
        dir.display()
    );
    let _ = writeln!(
        out,
        "See EXPERIMENTS.md for the curated paper-vs-measured analysis.\n"
    );

    let mut rendered = 0usize;
    for e in registry() {
        let csv = dir.join(format!("{}.csv", e.id));
        let Ok(content) = std::fs::read_to_string(&csv) else {
            continue;
        };
        rendered += 1;
        let _ = writeln!(out, "## {} — {}\n", e.id, e.title);
        if dir.join("plots").join(format!("{}.svg", e.id)).is_file() {
            let _ = writeln!(out, "![{}](plots/{}.svg)\n", e.id, e.id);
        }
        render_csv_table(&mut out, e.id, &content);
        out.push('\n');
    }
    if rendered == 0 {
        eprintln!(
            "no experiment CSVs found in {} (run `repro all` first)",
            dir.display()
        );
        return ExitCode::FAILURE;
    }
    let target = dir.join("REPORT.md");
    if let Err(err) = std::fs::write(&target, &out) {
        eprintln!("could not write {}: {err}", target.display());
        return ExitCode::FAILURE;
    }
    println!("wrote {} ({rendered} experiments)", target.display());
    ExitCode::SUCCESS
}

fn render_csv_table(out: &mut String, id: &str, csv: &str) {
    let mut lines = csv.lines();
    let Some(header) = lines.next() else {
        return;
    };
    let cols = header.split(',').count();
    let _ = writeln!(
        out,
        "| {} |",
        header.split(',').collect::<Vec<_>>().join(" | ")
    );
    let _ = writeln!(out, "|{}", "---|".repeat(cols));
    let rows: Vec<&str> = lines.collect();
    for row in rows.iter().take(MAX_ROWS) {
        let _ = writeln!(
            out,
            "| {} |",
            row.split(',').collect::<Vec<_>>().join(" | ")
        );
    }
    if rows.len() > MAX_ROWS {
        let _ = writeln!(
            out,
            "\n*… {} more rows in [{id}.csv]({id}.csv).*",
            rows.len() - MAX_ROWS,
        );
    }
}
