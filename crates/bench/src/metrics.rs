//! Metrics emission and validation for the experiment runner.
//!
//! With metrics enabled (`--metrics` or `REPRO_METRICS=1`), `repro`
//! appends one JSON object per experiment to `<out>/metrics.jsonl` and
//! prints a human-readable summary table on stderr. The registry is
//! reset between experiments, so each line carries that experiment's
//! own counts. See `docs/OBSERVABILITY.md` for the line format and the
//! metric naming convention.

use std::path::{Path, PathBuf};

use busprobe::JsonValue;

use crate::Session;

/// Where the runner streams metric records for this configuration.
pub fn path(session: &Session) -> PathBuf {
    session.out_dir().join("metrics.jsonl")
}

/// Snapshots the probe registry and appends one record for `experiment`
/// to [`path`], creating directories as needed. Returns the file
/// written.
///
/// # Errors
///
/// Propagates I/O failures from creating or appending to the file.
pub fn emit(
    session: &Session,
    experiment: &str,
    wall_s: f64,
    rows: u64,
) -> std::io::Result<PathBuf> {
    let snaps = busprobe::snapshot();
    emit_record(
        session,
        experiment,
        wall_s,
        rows,
        busprobe::snapshot_to_json(&snaps),
    )
}

/// [`emit`] with a caller-supplied `metrics` object instead of a
/// registry snapshot — the parallel runner uses this to attach an
/// experiment's span-subtree metrics, which stay attributable while
/// sibling experiments run concurrently.
///
/// # Errors
///
/// Propagates I/O failures from creating or appending to the file.
pub fn emit_record(
    session: &Session,
    experiment: &str,
    wall_s: f64,
    rows: u64,
    metrics: JsonValue,
) -> std::io::Result<PathBuf> {
    let record = JsonValue::Obj(vec![
        ("experiment".into(), JsonValue::Str(experiment.into())),
        ("wall_s".into(), JsonValue::Num(wall_s)),
        ("values".into(), JsonValue::Int(session.values() as i64)),
        ("seed".into(), JsonValue::Int(session.seed() as i64)),
        ("rows".into(), JsonValue::Int(rows as i64)),
        ("metrics".into(), metrics),
    ]);
    let file = path(session);
    busprobe::append_jsonl(&file, &record)?;
    Ok(file)
}

/// Renders the current registry as the stderr summary block shown after
/// each experiment.
pub fn summary(experiment: &str) -> String {
    let snaps = busprobe::snapshot();
    format!(
        "--- metrics [{experiment}] ---\n{}",
        busprobe::render_summary(&snaps)
    )
}

/// Validates a metrics.jsonl file: every non-empty line must be a JSON
/// object with a string `experiment` and an object `metrics`. Returns
/// the number of records.
///
/// # Errors
///
/// Returns a human-readable description of the first problem found
/// (unreadable file, empty file, malformed line, or missing key).
pub fn check_file(file: &Path) -> Result<usize, String> {
    let text = std::fs::read_to_string(file)
        .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
    let mut records = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = busprobe::json::parse(line)
            .map_err(|e| format!("{}:{}: {e}", file.display(), lineno + 1))?;
        let experiment = value.get("experiment").and_then(JsonValue::as_str);
        if experiment.is_none() {
            return Err(format!(
                "{}:{}: record lacks a string `experiment` field",
                file.display(),
                lineno + 1
            ));
        }
        if value.get("metrics").and_then(JsonValue::entries).is_none() {
            return Err(format!(
                "{}:{}: record lacks an object `metrics` field",
                file.display(),
                lineno + 1
            ));
        }
        records += 1;
    }
    if records == 0 {
        return Err(format!("{} contains no metric records", file.display()));
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("busprobe-metrics-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn check_rejects_missing_and_malformed() {
        let dir = tmp_dir("check");
        let f = dir.join("missing.jsonl");
        assert!(check_file(&f).is_err());

        let bad = dir.join("bad.jsonl");
        std::fs::write(&bad, "not json\n").unwrap();
        assert!(check_file(&bad).unwrap_err().contains("bad.jsonl:1"));

        let keyless = dir.join("keyless.jsonl");
        std::fs::write(&keyless, "{\"wall_s\":1.0}\n").unwrap();
        assert!(check_file(&keyless).unwrap_err().contains("experiment"));

        let empty = dir.join("empty.jsonl");
        std::fs::write(&empty, "\n\n").unwrap();
        assert!(check_file(&empty)
            .unwrap_err()
            .contains("no metric records"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn check_accepts_emitted_records() {
        let dir = tmp_dir("emit");
        let session = Session::builder()
            .values(10)
            .seed(3)
            .out_dir(dir.clone())
            .build();
        let file = emit(&session, "figX", 0.5, 4).unwrap();
        let n = check_file(&file).unwrap();
        assert_eq!(n, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
