//! Glue between the offline trainer and the evaluation session.
//!
//! `bustrain` sits below this crate and only knows traces, not
//! sessions; this module implements its [`TraceProvider`] over
//! [`Session`]'s content-addressed trace store (so corpus assembly
//! shares cached traces with every experiment) and packages the
//! "train a named corpus with this session" flow the `repro train`
//! subcommand and the `generalize` experiment share.

use std::path::PathBuf;
use std::sync::Arc;

use bustrace::Trace;
use bustrain::{train_corpus, Corpus, TraceProvider, TrainError, TrainerConfig};
use buscoding::predict::trained::TrainedTables;

use crate::session::{Session, TraceKey};
use crate::workloads::Workload;

impl TraceProvider for Session {
    /// Resolves `workload` through the [`Workload`] name grammar and
    /// fetches the trace from the session's store — cached, content-
    /// addressed, and shared with every other consumer of the session.
    fn trace(&self, workload: &str, values: usize, seed: u64) -> Result<Arc<Trace>, String> {
        let workload = Workload::parse(workload)
            .ok_or_else(|| format!("unknown workload {workload:?} (expected the Workload grammar, e.g. gcc/register or mixed/gcc+perl/register/64)"))?;
        Ok(self.store().get(&TraceKey::new(workload, values, seed)))
    }
}

/// The session's trained-artifact directory: `<out_dir>/trained`, next
/// to the `<out_dir>/cache` trace store.
pub fn artifact_dir_for(session: &Session) -> PathBuf {
    session.out_dir().join("trained")
}

/// Resolves a corpus argument the way `repro train <corpus>` does: a
/// built-in corpus name first (`demo`, `generalize`), else a manifest
/// file path. Built-ins are instantiated at the session's seed.
///
/// # Errors
///
/// A description when the argument is neither a built-in nor a readable,
/// parseable manifest.
pub fn resolve_corpus(session: &Session, arg: &str) -> Result<Corpus, String> {
    if let Some(corpus) = Corpus::builtin(arg, session.seed()) {
        return Ok(corpus);
    }
    let path = std::path::Path::new(arg);
    if !path.exists() {
        return Err(format!(
            "{arg:?} is neither a built-in corpus (demo, generalize) nor a manifest file"
        ));
    }
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading manifest {arg:?}: {e}"))?;
    Corpus::parse(&text).map_err(|e| e.to_string())
}

/// Trains `corpus` over the session's trace store at the session's
/// trace length, with the default table sizes.
///
/// # Errors
///
/// The underlying [`TrainError`].
pub fn train_with_session(session: &Session, corpus: &Corpus) -> Result<TrainedTables, TrainError> {
    train_corpus(corpus, session, session.values(), &TrainerConfig::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bustrain::Role;

    #[test]
    fn session_provides_traces_by_name() {
        let s = Session::builder().values(500).build();
        let t = TraceProvider::trace(&s, "gcc/register", 500, 1).unwrap();
        assert_eq!(t.len(), 500);
        // Mixed workloads resolve through the same grammar.
        assert!(TraceProvider::trace(&s, "mixed/gcc+perl/register/64", 500, 1).is_ok());
        let err = TraceProvider::trace(&s, "gcc/cache", 500, 1).unwrap_err();
        assert!(err.contains("unknown workload"), "{err}");
    }

    #[test]
    fn training_through_a_session_fits_real_tables() {
        let s = Session::builder().values(2_000).build();
        let corpus = Corpus::builtin("demo", s.seed()).unwrap();
        let tables = train_with_session(&s, &corpus).unwrap();
        assert_eq!(tables.name, "demo");
        assert_eq!(tables.trained_traces, 2);
        assert_eq!(tables.trained_values, 4_000);
        assert!(!tables.codebook.is_empty());
        assert!(tables.signatures.iter().any(|t| !t.entries.is_empty()));
    }

    #[test]
    fn resolve_corpus_handles_builtins_files_and_junk() {
        let s = Session::builder().values(100).seed(3).build();
        let demo = resolve_corpus(&s, "demo").unwrap();
        assert_eq!(demo.name(), "demo");
        assert!(demo.entries().iter().all(|e| e.seed == 3));

        let dir = std::env::temp_dir().join(format!("corpus-res-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.corpus");
        let mut manifest = Corpus::new("tiny").unwrap();
        manifest.push(Role::Train, "random", 5);
        std::fs::write(&path, manifest.manifest()).unwrap();
        let parsed = resolve_corpus(&s, path.to_str().unwrap()).unwrap();
        assert_eq!(parsed, manifest);

        assert!(resolve_corpus(&s, "no-such-corpus").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
