//! Scheme construction and evaluation: behavioral bus activity plus
//! circuit-level transcoder energy.

use buscoding::{evaluate_blocks, scheme_by_name, Activity, IdentityCodec, Transcoder};
use bustrace::{Trace, Width};
use hwmodel::crossover::CodingOutcome;
use hwmodel::{CircuitModel, ContextHardware, ContextHwConfig, OpCounts, WindowHardware};
use wiremodel::Technology;

/// Activity of the un-encoded bus over a trace.
pub fn baseline_activity(trace: &Trace) -> Activity {
    evaluate_blocks(&mut IdentityCodec::new(trace.width()), trace)
}

/// A coding scheme under evaluation (paper Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scheme {
    /// Window-based transcoder with this many shift-register entries.
    Window {
        /// Shift-register entries.
        entries: usize,
    },
    /// Strided predictor bank with strides `1..=strides`.
    Stride {
        /// Number of stride predictors.
        strides: usize,
    },
    /// Value-based context transcoder.
    ContextValue {
        /// Frequency-table entries.
        table: usize,
        /// Staging shift-register entries.
        shift: usize,
        /// Counter-division period (0 disables).
        divide: u64,
    },
    /// Transition-based context transcoder.
    ContextTransition {
        /// Frequency-table entries.
        table: usize,
        /// Staging shift-register entries.
        shift: usize,
        /// Counter-division period (0 disables).
        divide: u64,
    },
    /// Generalized inversion coder over `2^chunks` patterns, designed
    /// against the given λ (the λ0/λ1/λN families of Figure 15).
    Inversion {
        /// Independently invertible fields.
        chunks: u32,
        /// Design-time λ of the minimizing cost function.
        design_lambda: f64,
    },
    /// Working-zone encoding (Musoll et al., the paper's reference
    /// \[15\]) — the classic address-bus baseline.
    WorkZone {
        /// Zone registers.
        zones: usize,
    },
    /// FCM + DFCM value prediction (Sazeides & Smith, the paper's
    /// reference \[19\]).
    Fcm {
        /// Context order.
        order: usize,
        /// log2 of the prediction-table size.
        table_bits: u32,
    },
}

impl Scheme {
    /// Display name, e.g. `window(8)`.
    pub fn name(&self) -> String {
        match self {
            Scheme::Window { entries } => format!("window({entries})"),
            Scheme::Stride { strides } => format!("stride({strides})"),
            Scheme::ContextValue {
                table,
                shift,
                divide,
            } => {
                format!("context-value({table}+{shift} d{divide})")
            }
            Scheme::ContextTransition {
                table,
                shift,
                divide,
            } => {
                format!("context-transition({table}+{shift} d{divide})")
            }
            Scheme::Inversion {
                chunks,
                design_lambda,
            } => {
                format!("inversion({chunks}ch l{design_lambda})")
            }
            Scheme::WorkZone { zones } => format!("workzone({zones})"),
            Scheme::Fcm { order, table_bits } => format!("fcm({order} 2^{table_bits})"),
        }
    }

    /// A fresh encoder/decoder pair for this scheme at the given bus
    /// width, built through the shared `buscoding` factory registry —
    /// [`Scheme::name`] strings *are* the registry's grammar, so this
    /// can never drift from what other registry consumers (the adaptive
    /// controller, tools) construct for the same name.
    ///
    /// # Panics
    ///
    /// Panics only if the enum and the registry grammar fall out of
    /// sync — a bug, covered by `scheme_names_build_via_registry`.
    pub fn transcoder(&self, width: Width) -> Transcoder {
        scheme_by_name(&self.name(), width)
            .unwrap_or_else(|e| panic!("Scheme::name emitted an unregistered name: {e}"))
    }

    /// Behavioral bus activity of this scheme over a trace, with the
    /// paper's default λ = 1 codebook ordering. Runs the block-batched
    /// engine; repeated evaluations inside a `repro` run should prefer
    /// the memoized [`crate::Session::activity`] store.
    pub fn activity(&self, trace: &Trace) -> Activity {
        let mut pair = self.transcoder(trace.width());
        evaluate_blocks(pair.encoder_mut(), trace)
    }

    /// Percent of λ-weighted energy removed relative to the un-encoded
    /// bus.
    pub fn percent_removed(&self, trace: &Trace, lambda: f64) -> f64 {
        let coded = self.activity(trace);
        let baseline = baseline_activity(trace);
        buscoding::percent_energy_removed(&coded, &baseline, lambda)
    }
}

/// Runs the Window hardware model over a trace and returns its op
/// tally. The walk is technology-independent: sweeps over technologies
/// compute this once and price it per technology.
pub fn window_hw_ops(trace: &Trace, entries: usize) -> OpCounts {
    let mut hw = WindowHardware::new(entries);
    for v in trace.iter() {
        hw.present(v);
    }
    *hw.ops()
}

/// Prices a Window op tally for one technology: total transcoder energy
/// (both ends, dynamic + leakage) per bus value, in picojoules.
pub fn price_window_ops(ops: &OpCounts, entries: usize, tech: Technology, values: u64) -> f64 {
    price_both_ends(&CircuitModel::window(tech, entries), ops, values)
}

/// Runs the Window hardware model over a trace and prices it: total
/// transcoder energy (both ends, dynamic + leakage) per bus value, in
/// picojoules.
pub fn window_transcoder_pj_per_value(trace: &Trace, entries: usize, tech: Technology) -> f64 {
    price_window_ops(
        &window_hw_ops(trace, entries),
        entries,
        tech,
        trace.len() as u64,
    )
}

/// Runs the Context hardware model over a trace and prices it.
pub fn context_transcoder_pj_per_value(
    trace: &Trace,
    cfg: ContextHwConfig,
    tech: Technology,
) -> f64 {
    let mut hw = ContextHardware::new(cfg);
    for v in trace.iter() {
        hw.present(v);
    }
    price_both_ends(
        &CircuitModel::context(tech, cfg.table, cfg.shift),
        hw.ops(),
        trace.len() as u64,
    )
}

/// Prices an inversion coder per value (flat per-cycle cost).
pub fn inverter_transcoder_pj_per_value(tech: Technology) -> f64 {
    let circuit = CircuitModel::inverter(tech);
    let ops = OpCounts {
        cycles: 1,
        ..OpCounts::new()
    };
    2.0 * circuit.total_energy_pj(&ops)
}

fn price_both_ends(circuit: &CircuitModel, ops: &OpCounts, values: u64) -> f64 {
    // A zero-length trace performs no transcoder work; returning 0.0
    // (instead of dividing — a release-mode NaN/inf behind the old
    // debug_assert) keeps callers total-able.
    if values == 0 {
        return 0.0;
    }
    2.0 * circuit.total_energy_pj(ops) / values as f64
}

/// Full measurement of the Window design on a trace: behavioral wire
/// activity plus hardware energy, ready for crossover analysis.
pub fn window_outcome(trace: &Trace, entries: usize, tech: Technology) -> CodingOutcome {
    window_outcome_with_baseline(trace, baseline_activity(trace), entries, tech)
}

/// [`window_outcome`] with a precomputed baseline, so sweeps over entry
/// counts and technologies (the crossover experiments) can reuse a
/// memoized [`crate::Session::baseline`] instead of re-walking the
/// trace for every grid point.
pub fn window_outcome_with_baseline(
    trace: &Trace,
    baseline: Activity,
    entries: usize,
    tech: Technology,
) -> CodingOutcome {
    let coded = Scheme::Window { entries }.activity(trace);
    let ops = window_hw_ops(trace, entries);
    window_outcome_from_parts(baseline, coded, trace.len() as u64, &ops, entries, tech)
}

/// [`window_outcome`] from fully precomputed parts: a memoized coded
/// activity (the session store) and a hoisted technology-independent op
/// tally ([`window_hw_ops`]). Technology grids pay only the pricing
/// arithmetic per point.
pub fn window_outcome_from_parts(
    baseline: Activity,
    coded: Activity,
    values: u64,
    ops: &OpCounts,
    entries: usize,
    tech: Technology,
) -> CodingOutcome {
    let transcoder = price_window_ops(ops, entries, tech, values);
    CodingOutcome::new(baseline, coded, values, transcoder)
}

/// Full measurement of the Context design on a trace.
pub fn context_outcome(trace: &Trace, cfg: ContextHwConfig, tech: Technology) -> CodingOutcome {
    let coded = Scheme::ContextValue {
        table: cfg.table,
        shift: cfg.shift,
        divide: cfg.divide_period,
    }
    .activity(trace);
    let baseline = baseline_activity(trace);
    let transcoder = context_transcoder_pj_per_value(trace, cfg, tech);
    CodingOutcome::new(baseline, coded, trace.len() as u64, transcoder)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bustrace::Width;

    fn looping_trace(n: usize) -> Trace {
        let set = [
            0xDEAD_BEEFu64,
            0x1234_5678,
            0xCAFE_F00D,
            0xABAD_CAFE,
            0x0BAD_F00D,
        ];
        Trace::from_values(Width::W32, (0..n).map(|i| set[i % 5]))
    }

    #[test]
    fn scheme_names() {
        assert_eq!(Scheme::Window { entries: 8 }.name(), "window(8)");
        assert_eq!(
            Scheme::ContextValue {
                table: 28,
                shift: 8,
                divide: 4096
            }
            .name(),
            "context-value(28+8 d4096)"
        );
        assert_eq!(
            Scheme::Inversion {
                chunks: 1,
                design_lambda: 0.0
            }
            .name(),
            "inversion(1ch l0)"
        );
        assert_eq!(Scheme::WorkZone { zones: 4 }.name(), "workzone(4)");
        assert_eq!(
            Scheme::Fcm {
                order: 2,
                table_bits: 12
            }
            .name(),
            "fcm(2 2^12)"
        );
    }

    #[test]
    fn window_removes_energy_on_looping_traffic() {
        let t = looping_trace(20_000);
        let removed = Scheme::Window { entries: 8 }.percent_removed(&t, 1.0);
        assert!(removed > 60.0, "{removed}");
    }

    #[test]
    fn hardware_pricing_is_positive_and_sane() {
        let t = looping_trace(5_000);
        let pj = window_transcoder_pj_per_value(&t, 8, Technology::tech_013());
        // Table 2: ~1.39 pJ/cycle per end, so both ends land near 2.8.
        assert!(pj > 1.0 && pj < 6.0, "window pricing {pj} pJ/value");
        let ctx = context_transcoder_pj_per_value(
            &t,
            ContextHwConfig::paper_layout(),
            Technology::tech_013(),
        );
        assert!(
            ctx > pj,
            "context hardware must cost more than window: {ctx} vs {pj}"
        );
    }

    #[test]
    fn empty_trace_prices_to_zero() {
        // Regression: a zero-length trace must price to 0.0, not divide
        // by zero (NaN/inf in release builds).
        let empty = Trace::from_values(Width::W32, std::iter::empty::<u64>());
        let pj = window_transcoder_pj_per_value(&empty, 8, Technology::tech_013());
        assert_eq!(pj, 0.0);
        let ctx = context_transcoder_pj_per_value(
            &empty,
            ContextHwConfig::paper_layout(),
            Technology::tech_013(),
        );
        assert_eq!(ctx, 0.0);
    }

    #[test]
    fn inverter_pricing_matches_table2() {
        let pj = inverter_transcoder_pj_per_value(Technology::tech_013());
        assert!((pj - 2.0 * (1.76 + 0.00055)).abs() < 1e-6);
    }

    #[test]
    fn outcome_crosses_over_for_friendly_traffic() {
        use wiremodel::WireStyle;
        let t = looping_trace(20_000);
        let o = window_outcome(&t, 8, Technology::tech_013());
        let l = o.crossover_mm(Technology::tech_013(), WireStyle::Repeated);
        assert!(l.is_some(), "looping traffic must break even");
        assert!(l.unwrap() < 30.0, "crossover {l:?} too long");
    }
}
