//! Shared harness for the reproduction experiments.
//!
//! The `repro` binary regenerates every table and figure of the paper's
//! evaluation (see DESIGN.md for the per-experiment index); this library
//! holds the pieces the experiments share: workload acquisition,
//! scheme evaluation (behavioral activity plus circuit-level transcoder
//! energy), and CSV/console reporting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod plot;
pub mod report;
pub mod schemes;
pub mod workloads;

use std::path::PathBuf;

/// Shared experiment configuration.
#[derive(Debug, Clone)]
pub struct Ctx {
    /// Bus values per (benchmark, bus) trace.
    pub values: usize,
    /// Data seed for the kernels and synthetic generators.
    pub seed: u64,
    /// Directory CSV results are written into.
    pub out_dir: PathBuf,
}

impl Ctx {
    /// Configuration from the environment: `REPRO_VALUES` (default
    /// 200 000), `REPRO_SEED` (default 1), `REPRO_OUT` (default
    /// `results/`).
    pub fn from_env() -> Self {
        let values = std::env::var("REPRO_VALUES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200_000);
        let seed = std::env::var("REPRO_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        let out_dir = std::env::var("REPRO_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|_| "results".into());
        Ctx {
            values,
            seed,
            out_dir,
        }
    }
}

impl Default for Ctx {
    fn default() -> Self {
        Ctx {
            values: 200_000,
            seed: 1,
            out_dir: "results".into(),
        }
    }
}
