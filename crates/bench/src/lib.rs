//! Shared harness for the reproduction experiments.
//!
//! The `repro` binary regenerates every table and figure of the paper's
//! evaluation (see DESIGN.md for the per-experiment index); this library
//! holds the pieces the experiments share: workload acquisition,
//! scheme evaluation (behavioral activity plus circuit-level transcoder
//! energy), and CSV/console reporting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod metrics;
pub mod plot;
pub mod report;
pub mod schemes;
pub mod workloads;

use std::path::PathBuf;

/// Shared experiment configuration.
#[derive(Debug, Clone)]
pub struct Ctx {
    /// Bus values per (benchmark, bus) trace.
    pub values: usize,
    /// Data seed for the kernels and synthetic generators.
    pub seed: u64,
    /// Directory CSV results are written into.
    pub out_dir: PathBuf,
}

impl Ctx {
    /// Configuration from the environment: `REPRO_VALUES` (default
    /// 200 000), `REPRO_SEED` (default 1), `REPRO_OUT` (default
    /// `results/`). A malformed `REPRO_VALUES` or `REPRO_SEED` is
    /// reported on stderr and the default used — a typo must not
    /// silently change the experiment size.
    pub fn from_env() -> Self {
        let values = parse_env("REPRO_VALUES", 200_000usize);
        let seed = parse_env("REPRO_SEED", 1u64);
        let out_dir = std::env::var("REPRO_OUT")
            .map(PathBuf::from)
            .unwrap_or_else(|_| "results".into());
        Ctx {
            values,
            seed,
            out_dir,
        }
    }
}

/// Parses an environment variable, warning (rather than silently
/// ignoring) when it is set but unusable.
fn parse_env<T>(var: &str, default: T) -> T
where
    T: std::str::FromStr + std::fmt::Display,
{
    match std::env::var(var) {
        Ok(raw) => match raw.trim().parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("warning: {var}={raw:?} is not a valid value; using default {default}");
                default
            }
        },
        Err(std::env::VarError::NotPresent) => default,
        Err(std::env::VarError::NotUnicode(_)) => {
            eprintln!("warning: {var} is not valid unicode; using default {default}");
            default
        }
    }
}

impl Default for Ctx {
    fn default() -> Self {
        Ctx {
            values: 200_000,
            seed: 1,
            out_dir: "results".into(),
        }
    }
}
