//! Shared harness for the reproduction experiments.
//!
//! The `repro` binary regenerates every table and figure of the paper's
//! evaluation (see DESIGN.md for the per-experiment index); this library
//! holds the pieces the experiments share: the evaluation [`Session`]
//! (configuration plus the content-addressed trace store and memoized
//! baselines — see [`session`]), workload acquisition, scheme evaluation
//! (behavioral activity plus circuit-level transcoder energy), and
//! CSV/console reporting. The [`api`] module is the versioned
//! request/response surface the `repro` batch binary and the
//! `repro serve` daemon share (see `docs/SERVICE.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod bencheck;
pub mod experiments;
pub mod metrics;
pub mod plot;
pub mod profile;
pub mod report;
pub mod schemes;
pub mod session;
pub mod training;
pub mod workloads;

pub use session::{ActivityQuery, Session, SessionBuilder, TraceKey, TraceStore};

/// Parses an environment variable, warning (rather than silently
/// ignoring) when it is set but unusable.
pub(crate) fn parse_env<T>(var: &str, default: T) -> T
where
    T: std::str::FromStr + std::fmt::Display,
{
    match std::env::var(var) {
        Ok(raw) => match raw.trim().parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("warning: {var}={raw:?} is not a valid value; using default {default}");
                default
            }
        },
        Err(std::env::VarError::NotPresent) => default,
        Err(std::env::VarError::NotUnicode(_)) => {
            eprintln!("warning: {var} is not valid unicode; using default {default}");
            default
        }
    }
}

/// Whether an environment variable is set to a truthy value (anything
/// except empty, `0`, `false`, `off`, `no`) — the convention `repro`
/// flags like `REPRO_CACHE` and `REPRO_SERIAL` follow, matching
/// `busprobe::init_from_env`.
pub fn env_flag(var: &str) -> bool {
    match std::env::var(var) {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !v.is_empty() && v != "0" && v != "false" && v != "off" && v != "no"
        }
        Err(_) => false,
    }
}
