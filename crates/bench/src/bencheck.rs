//! The bench regression gate: compares a fresh `repro bench` report
//! against a committed baseline and decides, statistically honestly,
//! whether anything got slower.
//!
//! Honesty here means three things:
//!
//! * **min-of-N vs min-of-N.** Both sides of the comparison are minima
//!   over their reps — the least-noise estimator either run produced.
//! * **A noise floor from the data.** The observed rep spread
//!   (max−min across reps, recorded per experiment in the report) is
//!   added to the allowance: an experiment whose own reps disagree by
//!   0.3 s cannot flag a 0.2 s "regression".
//! * **Incomparable runs refuse to answer.** A baseline taken at
//!   different `values`/`seed` measures a different workload;
//!   [`compare`] returns [`CheckOutcome::Incompatible`] instead of a
//!   fabricated verdict, and the CLI treats that as a warning, not a
//!   failure.
//!
//! Wall-clock regressions use [`CheckConfig::threshold`]; per-phase
//! regressions (schema `bench-repro/2` reports carry a `phases`
//! breakdown) use the looser [`CheckConfig::phase_threshold`], since
//! phase attribution rides on span self-times that jitter more than the
//! experiment total. Experiments and phases below
//! [`CheckConfig::min_wall_s`] in the baseline are skipped outright —
//! sub-noise-floor timings compare as coin flips.

use busprobe::JsonValue;

/// Tunables of the gate. The defaults are deliberately loose: the gate
/// runs on shared CI machines, and a false "regression" that trains
/// people to ignore the gate is worse than a missed 20 % slip.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// A wall-clock regression needs `current > baseline × threshold +
    /// spread`. Default 1.5.
    pub threshold: f64,
    /// Per-phase multiplier, applied the same way. Default 2.0.
    pub phase_threshold: f64,
    /// Baseline entries (experiments or phases) faster than this are
    /// not compared at all. Default 0.05 s.
    pub min_wall_s: f64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            threshold: 1.5,
            phase_threshold: 2.0,
            min_wall_s: 0.05,
        }
    }
}

/// One flagged slowdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Experiment id.
    pub id: String,
    /// `"wall"` or `"phase:<name>"`.
    pub metric: String,
    /// Baseline seconds (min over its reps).
    pub baseline_s: f64,
    /// Current seconds (min over its reps).
    pub current_s: f64,
    /// The allowance the current value exceeded.
    pub limit_s: f64,
}

/// What a comparison concluded.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckOutcome {
    /// The runs were comparable; the list holds every flagged
    /// regression (empty = gate passes).
    Compared(Vec<Regression>),
    /// The runs measure different workloads; no verdict.
    Incompatible(String),
}

fn num(doc: &JsonValue, key: &str) -> Option<f64> {
    doc.get(key).and_then(JsonValue::as_f64)
}

fn experiments(doc: &JsonValue) -> Vec<&JsonValue> {
    match doc.get("experiments") {
        Some(JsonValue::Arr(items)) => items.iter().collect(),
        _ => Vec::new(),
    }
}

fn exp_id(e: &JsonValue) -> Option<&str> {
    e.get("id").and_then(JsonValue::as_str)
}

/// Compares a current `bench-repro` report against a baseline one.
/// Baselines may be schema v1 (no `phases`/`rep_spread_s`); phase
/// comparison simply doesn't happen for entries that lack either side.
pub fn compare(baseline: &JsonValue, current: &JsonValue, cfg: &CheckConfig) -> CheckOutcome {
    for key in ["values", "seed"] {
        let (b, c) = (num(baseline, key), num(current, key));
        if b != c {
            return CheckOutcome::Incompatible(format!(
                "baseline {key}={} vs current {key}={} — different workloads, not comparing",
                b.map_or("?".into(), |v| v.to_string()),
                c.map_or("?".into(), |v| v.to_string()),
            ));
        }
    }
    let base_by_id: Vec<(&str, &JsonValue)> = experiments(baseline)
        .into_iter()
        .filter_map(|e| exp_id(e).map(|id| (id, e)))
        .collect();
    let mut regressions = Vec::new();
    for cur in experiments(current) {
        let Some(id) = exp_id(cur) else { continue };
        let Some((_, base)) = base_by_id.iter().find(|(b, _)| *b == id) else {
            continue; // new experiment: nothing to regress against
        };
        let (Some(base_wall), Some(cur_wall)) = (num(base, "wall_s"), num(cur, "wall_s")) else {
            continue;
        };
        if base_wall < cfg.min_wall_s {
            continue;
        }
        // The noise floor: whichever run was noisier sets the bar.
        let spread = num(base, "rep_spread_s")
            .unwrap_or(0.0)
            .max(num(cur, "rep_spread_s").unwrap_or(0.0));
        let limit = base_wall * cfg.threshold + spread;
        if cur_wall > limit {
            regressions.push(Regression {
                id: id.to_string(),
                metric: "wall".into(),
                baseline_s: base_wall,
                current_s: cur_wall,
                limit_s: limit,
            });
        }
        let (Some(base_phases), Some(cur_phases)) = (base.get("phases"), cur.get("phases")) else {
            continue;
        };
        let Some(entries) = base_phases.entries() else { continue };
        for (phase, base_v) in entries {
            let Some(base_p) = base_v.as_f64() else { continue };
            if base_p < cfg.min_wall_s {
                continue;
            }
            let Some(cur_p) = cur_phases.get(phase).and_then(JsonValue::as_f64) else {
                continue;
            };
            let limit = base_p * cfg.phase_threshold + cfg.min_wall_s;
            if cur_p > limit {
                regressions.push(Regression {
                    id: id.to_string(),
                    metric: format!("phase:{phase}"),
                    baseline_s: base_p,
                    current_s: cur_p,
                    limit_s: limit,
                });
            }
        }
    }
    CheckOutcome::Compared(regressions)
}

/// Validates a schema `bench-repro/2` report: the v1 fields must all be
/// present (`schema`, `reps`, `values`, `seed`, `total_wall_s`, and
/// per-experiment `id`/`wall_s`/`values_encoded`/`values_per_sec`),
/// plus the v2 additions — per-experiment `phases` (an object covering
/// every [`crate::profile::PHASES`] key and `other`), `rep_spread_s`,
/// `phase_wall_s`, and a top-level `phase_total_s`.
///
/// # Errors
///
/// Returns a description of the first missing or malformed field.
pub fn validate_report(doc: &JsonValue) -> Result<(), String> {
    match doc.get("schema").and_then(JsonValue::as_str) {
        Some("bench-repro/2") => {}
        Some(other) => return Err(format!("schema is `{other}`, expected `bench-repro/2`")),
        None => return Err("report lacks a string `schema` field".into()),
    }
    for key in ["reps", "values", "seed", "total_wall_s", "phase_total_s"] {
        if num(doc, key).is_none() {
            return Err(format!("report lacks a numeric `{key}` field"));
        }
    }
    let exps = experiments(doc);
    if exps.is_empty() {
        return Err("report has no experiments".into());
    }
    for e in exps {
        let id = exp_id(e).ok_or("experiment lacks a string `id`")?;
        for key in ["wall_s", "values_encoded", "values_per_sec", "rep_spread_s", "phase_wall_s"] {
            if num(e, key).is_none() {
                return Err(format!("experiment `{id}` lacks a numeric `{key}`"));
            }
        }
        let phases = e
            .get("phases")
            .ok_or_else(|| format!("experiment `{id}` lacks a `phases` object"))?;
        for phase in crate::profile::PHASES.iter().chain(std::iter::once(&"other")) {
            if phases.get(phase).and_then(JsonValue::as_f64).is_none() {
                return Err(format!("experiment `{id}` phases lack numeric `{phase}`"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    type Entry<'a> = (&'a str, f64, f64, &'a [(&'a str, f64)]);

    fn report(entries: &[Entry]) -> JsonValue {
        let exps = entries
            .iter()
            .map(|(id, wall, spread, phases)| {
                JsonValue::Obj(vec![
                    ("id".into(), JsonValue::Str((*id).into())),
                    ("wall_s".into(), JsonValue::Num(*wall)),
                    ("values_encoded".into(), JsonValue::Int(1000)),
                    ("values_per_sec".into(), JsonValue::Num(1000.0 / wall)),
                    ("rep_spread_s".into(), JsonValue::Num(*spread)),
                    ("phase_wall_s".into(), JsonValue::Num(*wall)),
                    (
                        "phases".into(),
                        JsonValue::Obj(
                            phases
                                .iter()
                                .map(|(p, s)| ((*p).to_string(), JsonValue::Num(*s)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        JsonValue::Obj(vec![
            ("schema".into(), JsonValue::Str("bench-repro/2".into())),
            ("reps".into(), JsonValue::Int(2)),
            ("values".into(), JsonValue::Int(200000)),
            ("seed".into(), JsonValue::Int(1)),
            ("total_wall_s".into(), JsonValue::Num(10.0)),
            ("phase_total_s".into(), JsonValue::Num(10.0)),
            ("experiments".into(), JsonValue::Arr(exps)),
        ])
    }

    const QUIET: &[(&str, f64)] = &[("encode", 0.8)];

    #[test]
    fn identical_runs_pass() {
        let base = report(&[("fig16", 1.0, 0.02, QUIET)]);
        let out = compare(&base, &base, &CheckConfig::default());
        assert_eq!(out, CheckOutcome::Compared(vec![]));
    }

    #[test]
    fn synthetic_two_x_slowdown_is_flagged() {
        let base = report(&[("fig16", 1.0, 0.02, QUIET)]);
        let slow = report(&[("fig16", 2.0, 0.02, QUIET)]);
        let CheckOutcome::Compared(regs) = compare(&base, &slow, &CheckConfig::default()) else {
            panic!("runs are compatible");
        };
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].id, "fig16");
        assert_eq!(regs[0].metric, "wall");
        assert!(regs[0].current_s > regs[0].limit_s);
    }

    #[test]
    fn rep_spread_raises_the_bar() {
        let base = report(&[("fig16", 1.0, 0.0, QUIET)]);
        // 1.6 s exceeds 1.0 × 1.5 — but a 0.3 s rep spread on the
        // current run absorbs it.
        let noisy = report(&[("fig16", 1.6, 0.3, QUIET)]);
        assert_eq!(
            compare(&base, &noisy, &CheckConfig::default()),
            CheckOutcome::Compared(vec![])
        );
        let calm = report(&[("fig16", 1.6, 0.0, QUIET)]);
        let CheckOutcome::Compared(regs) = compare(&base, &calm, &CheckConfig::default()) else {
            panic!("compatible");
        };
        assert_eq!(regs.len(), 1, "without spread the same delta flags");
    }

    #[test]
    fn phase_regressions_are_flagged_separately() {
        let base = report(&[("fig16", 1.0, 0.0, &[("encode", 0.4), ("accumulate", 0.3)])]);
        // Wall holds steady but accumulate tripled: phase gate fires.
        let skewed = report(&[("fig16", 1.1, 0.0, &[("encode", 0.1), ("accumulate", 0.9)])]);
        let CheckOutcome::Compared(regs) = compare(&base, &skewed, &CheckConfig::default()) else {
            panic!("compatible");
        };
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "phase:accumulate");
    }

    #[test]
    fn sub_floor_experiments_never_flag() {
        let base = report(&[("table1", 0.0001, 0.0, &[])]);
        let slow = report(&[("table1", 0.04, 0.0, &[])]);
        assert_eq!(
            compare(&base, &slow, &CheckConfig::default()),
            CheckOutcome::Compared(vec![]),
            "a 400× slowdown below the noise floor is still noise"
        );
    }

    #[test]
    fn mismatched_workloads_are_incompatible() {
        let base = report(&[("fig16", 1.0, 0.0, QUIET)]);
        let mut small = report(&[("fig16", 0.1, 0.0, QUIET)]);
        if let JsonValue::Obj(pairs) = &mut small {
            for (k, v) in pairs.iter_mut() {
                if k == "values" {
                    *v = JsonValue::Int(3000);
                }
            }
        }
        match compare(&base, &small, &CheckConfig::default()) {
            CheckOutcome::Incompatible(msg) => assert!(msg.contains("values"), "{msg}"),
            other => panic!("expected Incompatible, got {other:?}"),
        }
    }

    #[test]
    fn v1_baselines_compare_wall_only() {
        let mut base = report(&[("fig16", 1.0, 0.0, QUIET)]);
        // Strip the v2 fields to fake an old baseline.
        if let JsonValue::Obj(pairs) = &mut base {
            if let Some((_, JsonValue::Arr(exps))) = pairs.iter_mut().find(|(k, _)| k == "experiments")
            {
                for e in exps {
                    if let JsonValue::Obj(fields) = e {
                        fields.retain(|(k, _)| {
                            !matches!(k.as_str(), "phases" | "rep_spread_s" | "phase_wall_s")
                        });
                    }
                }
            }
        }
        let slow = report(&[("fig16", 2.0, 0.0, &[("encode", 10.0)])]);
        let CheckOutcome::Compared(regs) = compare(&base, &slow, &CheckConfig::default()) else {
            panic!("compatible");
        };
        assert_eq!(regs.len(), 1, "wall flags; phases silently skipped");
        assert_eq!(regs[0].metric, "wall");
    }

    #[test]
    fn validate_accepts_v2_and_rejects_gaps() {
        let good = report(&[(
            "fig16",
            1.0,
            0.0,
            &[
                ("trace_gen", 0.1),
                ("encode", 0.5),
                ("accumulate", 0.2),
                ("pricing", 0.05),
                ("emit", 0.01),
                ("other", 0.14),
            ],
        )]);
        validate_report(&good).expect("complete v2 report validates");
        let missing_phase = report(&[("fig16", 1.0, 0.0, &[("encode", 0.5)])]);
        assert!(validate_report(&missing_phase).unwrap_err().contains("phases"));
        let mut v1 = good.clone();
        if let JsonValue::Obj(pairs) = &mut v1 {
            for (k, v) in pairs.iter_mut() {
                if k == "schema" {
                    *v = JsonValue::Str("bench-repro/1".into());
                }
            }
        }
        assert!(validate_report(&v1).unwrap_err().contains("bench-repro/2"));
    }
}
