//! Statistical characterization of bus traces (paper Section 4.2).
//!
//! Two statistics from the paper motivate the coding-scheme design space:
//!
//! * the cumulative distribution of the most frequent unique values
//!   (Figure 7), which shows that a *frequency-based* dictionary needs
//!   hundreds to thousands of entries to get useful coverage; and
//! * the average fraction of values that are unique within a window of a
//!   given size (Figure 8), which shows that a *window-based* dictionary
//!   of only tens of entries captures most short-term reuse.
//!
//! This module computes both, plus supporting statistics (value run
//! lengths for LAST-value prediction, stride hit rates for the strided
//! predictor, and empirical value entropy).

use std::collections::HashMap;

use crate::{Trace, Word};

/// Frequency census of a trace: every distinct word and its occurrence
/// count, sorted most-frequent first.
///
/// # Example
///
/// ```
/// use bustrace::{Trace, Width};
/// use bustrace::stats::ValueCensus;
///
/// let t = Trace::from_values(Width::W32, [5u64, 5, 5, 9, 9, 1]);
/// let census = ValueCensus::of(&t);
/// assert_eq!(census.unique_count(), 3);
/// assert_eq!(census.counts()[0], (5, 3));
/// assert!((census.coverage(1) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueCensus {
    /// `(value, count)` pairs sorted by descending count, ties broken by
    /// ascending value for determinism.
    counts: Vec<(Word, u64)>,
    total: u64,
}

impl ValueCensus {
    /// Builds the census of a trace.
    pub fn of(trace: &Trace) -> Self {
        let mut map: HashMap<Word, u64> = HashMap::new();
        for v in trace.iter() {
            *map.entry(v).or_insert(0) += 1;
        }
        let mut counts: Vec<(Word, u64)> = map.into_iter().collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ValueCensus {
            counts,
            total: trace.len() as u64,
        }
    }

    /// `(value, count)` pairs, most frequent first.
    pub fn counts(&self) -> &[(Word, u64)] {
        &self.counts
    }

    /// Number of distinct words in the trace.
    pub fn unique_count(&self) -> usize {
        self.counts.len()
    }

    /// Total number of words in the trace.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of the trace covered by the `k` most frequent values
    /// (the y-axis of Figure 7 at x = `k`). Returns 0.0 for an empty
    /// trace.
    pub fn coverage(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let covered: u64 = self.counts.iter().take(k).map(|&(_, c)| c).sum();
        covered as f64 / self.total as f64
    }

    /// The full CDF series of Figure 7: for each point `k` in
    /// `1, 2, 4, 8, ...` up to the number of unique values, the coverage
    /// fraction. Log-spaced points keep the series compact for traces
    /// with millions of unique values.
    pub fn cdf_series(&self) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        let mut k = 1usize;
        while k < self.unique_count() {
            out.push((k, self.coverage(k)));
            k *= 2;
        }
        if self.unique_count() > 0 {
            out.push((self.unique_count(), 1.0));
        }
        out
    }

    /// Empirical Shannon entropy of the value distribution, in bits.
    ///
    /// An upper bound on what any value-frequency code could achieve.
    pub fn entropy_bits(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.total as f64;
        -self
            .counts
            .iter()
            .map(|&(_, c)| {
                let p = c as f64 / n;
                p * p.log2()
            })
            .sum::<f64>()
    }
}

/// Average fraction of values within a window that are unique, for a
/// given window size (the y-axis of Figure 8).
///
/// Windows are tiled (non-overlapping), matching the paper's definition
/// closely enough while keeping the computation `O(n)` per window size;
/// a trailing partial window is ignored. Returns `None` when the trace is
/// shorter than one window.
///
/// # Example
///
/// ```
/// use bustrace::{Trace, Width};
/// use bustrace::stats::window_uniqueness;
///
/// // Window of 4 over [1,1,2,3, 4,4,4,4]: first window has 3 unique of
/// // 4 values, second has 1 of 4 -> average 0.5.
/// let t = Trace::from_values(Width::W32, [1u64, 1, 2, 3, 4, 4, 4, 4]);
/// assert_eq!(window_uniqueness(&t, 4), Some(0.5));
/// ```
pub fn window_uniqueness(trace: &Trace, window: usize) -> Option<f64> {
    if window == 0 || trace.len() < window {
        return None;
    }
    let values = trace.values();
    let full_windows = values.len() / window;
    let mut fraction_sum = 0.0;
    let mut seen: HashMap<Word, ()> = HashMap::with_capacity(window);
    for w in 0..full_windows {
        seen.clear();
        let chunk = &values[w * window..(w + 1) * window];
        for &v in chunk {
            seen.insert(v, ());
        }
        fraction_sum += seen.len() as f64 / window as f64;
    }
    Some(fraction_sum / full_windows as f64)
}

/// The Figure 8 series: window uniqueness at power-of-two window sizes
/// from 1 up to the trace length.
pub fn window_uniqueness_series(trace: &Trace) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    let mut w = 1usize;
    while w <= trace.len() {
        if let Some(frac) = window_uniqueness(trace, w) {
            out.push((w, frac));
        }
        match w.checked_mul(2) {
            Some(next) => w = next,
            None => break,
        }
    }
    out
}

/// Fraction of values equal to their immediate predecessor
/// (the hit rate of the LAST-value predictor; code "0" in every scheme).
pub fn repeat_fraction(trace: &Trace) -> f64 {
    let v = trace.values();
    if v.len() < 2 {
        return 0.0;
    }
    let repeats = v.windows(2).filter(|w| w[0] == w[1]).count();
    repeats as f64 / (v.len() - 1) as f64
}

/// Fraction of values correctly predicted by a stride-`k` predictor:
/// `v[t] == v[t-k] + (v[t-k] - v[t-2k])` in wrapping arithmetic at the
/// trace's width.
///
/// Positions with insufficient history are counted as misses, matching a
/// cold-started hardware predictor.
pub fn stride_hit_fraction(trace: &Trace, k: usize) -> f64 {
    let v = trace.values();
    if k == 0 || v.len() <= 2 * k {
        return 0.0;
    }
    let mask = trace.width().mask();
    let mut hits = 0usize;
    for t in 2 * k..v.len() {
        let predicted = v[t - k].wrapping_add(v[t - k].wrapping_sub(v[t - 2 * k])) & mask;
        if predicted == v[t] {
            hits += 1;
        }
    }
    hits as f64 / (v.len() - 2 * k).max(1) as f64
}

/// Summary of run lengths of repeated values (strings the LAST-value
/// predictor captures entirely after the first word).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunLengthStats {
    /// Number of maximal runs in the trace.
    pub runs: usize,
    /// Mean run length (1.0 means no value ever repeats back-to-back).
    pub mean: f64,
    /// Longest run observed.
    pub max: usize,
}

/// Computes [`RunLengthStats`] for a trace. Returns `None` for an empty
/// trace.
pub fn run_lengths(trace: &Trace) -> Option<RunLengthStats> {
    let v = trace.values();
    if v.is_empty() {
        return None;
    }
    let mut runs = 0usize;
    let mut max = 0usize;
    let mut current = 1usize;
    for i in 1..v.len() {
        if v[i] == v[i - 1] {
            current += 1;
        } else {
            runs += 1;
            max = max.max(current);
            current = 1;
        }
    }
    runs += 1;
    max = max.max(current);
    Some(RunLengthStats {
        runs,
        mean: v.len() as f64 / runs as f64,
        max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Width;

    fn trace(values: &[u64]) -> Trace {
        Trace::from_values(Width::W32, values.iter().copied())
    }

    #[test]
    fn census_orders_by_frequency_then_value() {
        let t = trace(&[3, 1, 1, 2, 2, 2]);
        let c = ValueCensus::of(&t);
        assert_eq!(c.counts(), &[(2, 3), (1, 2), (3, 1)]);
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn census_coverage_monotone_and_complete() {
        let t = trace(&[1, 1, 2, 3, 3, 3, 4, 5]);
        let c = ValueCensus::of(&t);
        let mut prev = 0.0;
        for k in 0..=c.unique_count() {
            let cov = c.coverage(k);
            assert!(cov >= prev);
            prev = cov;
        }
        assert!((c.coverage(c.unique_count()) - 1.0).abs() < 1e-12);
        assert!((c.coverage(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn census_empty_trace() {
        let c = ValueCensus::of(&Trace::new(Width::W32));
        assert_eq!(c.unique_count(), 0);
        assert_eq!(c.coverage(5), 0.0);
        assert_eq!(c.entropy_bits(), 0.0);
        assert!(c.cdf_series().is_empty());
    }

    #[test]
    fn cdf_series_ends_at_one() {
        let t = trace(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let series = ValueCensus::of(&t).cdf_series();
        let last = series.last().unwrap();
        assert_eq!(last.0, 10);
        assert!((last.1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_uniform_values() {
        let t = trace(&[0, 1, 2, 3]);
        let e = ValueCensus::of(&t).entropy_bits();
        assert!((e - 2.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_constant_is_zero() {
        let t = trace(&[7; 100]);
        assert_eq!(ValueCensus::of(&t).entropy_bits(), 0.0);
    }

    #[test]
    fn window_uniqueness_basics() {
        let t = trace(&[1, 1, 2, 3, 4, 4, 4, 4]);
        assert_eq!(window_uniqueness(&t, 4), Some(0.5));
        assert_eq!(window_uniqueness(&t, 1), Some(1.0));
        assert_eq!(window_uniqueness(&t, 0), None);
        assert_eq!(window_uniqueness(&t, 9), None);
    }

    #[test]
    fn window_uniqueness_constant_trace() {
        let t = trace(&[5; 64]);
        assert_eq!(window_uniqueness(&t, 8), Some(1.0 / 8.0));
    }

    #[test]
    fn window_series_is_decreasing_for_repetitive_traffic() {
        // A looping trace: bigger windows see proportionally less unique.
        let values: Vec<u64> = (0..1024).map(|i| i % 16).collect();
        let t = trace(&values);
        let series = window_uniqueness_series(&t);
        // At window 16 and beyond, only 16 unique values per window.
        let at_16 = series.iter().find(|&&(w, _)| w == 16).unwrap().1;
        let at_64 = series.iter().find(|&&(w, _)| w == 64).unwrap().1;
        assert!((at_16 - 1.0).abs() < 1e-12);
        assert!((at_64 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn repeat_fraction_examples() {
        assert_eq!(repeat_fraction(&trace(&[1, 1, 1, 1])), 1.0);
        assert_eq!(repeat_fraction(&trace(&[1, 2, 3, 4])), 0.0);
        assert_eq!(repeat_fraction(&trace(&[1])), 0.0);
        let t = trace(&[1, 1, 2, 2]);
        assert!((repeat_fraction(&t) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stride_hits_on_arithmetic_sequence() {
        let values: Vec<u64> = (0..100).map(|i| 10 + 3 * i).collect();
        let t = trace(&values);
        assert!((stride_hit_fraction(&t, 1) - 1.0).abs() < 1e-12);
        // A stride-2 predictor also fits an arithmetic sequence.
        assert!((stride_hit_fraction(&t, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stride_hits_on_interleaved_streams() {
        // Two interleaved arithmetic streams: stride-1 fails, stride-2 hits.
        let mut values = Vec::new();
        for i in 0..50u64 {
            values.push(1000 + 4 * i);
            values.push(77); // constant stream interleaved
        }
        let t = trace(&values);
        assert!(stride_hit_fraction(&t, 1) < 0.1);
        assert!(stride_hit_fraction(&t, 2) > 0.95);
    }

    #[test]
    fn stride_zero_or_short_trace_is_zero() {
        let t = trace(&[1, 2, 3]);
        assert_eq!(stride_hit_fraction(&t, 0), 0.0);
        assert_eq!(stride_hit_fraction(&t, 2), 0.0);
    }

    #[test]
    fn run_length_stats() {
        let t = trace(&[1, 1, 1, 2, 3, 3]);
        let s = run_lengths(&t).unwrap();
        assert_eq!(s.runs, 3);
        assert_eq!(s.max, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!(run_lengths(&Trace::new(Width::W32)).is_none());
    }
}
