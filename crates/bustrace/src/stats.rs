//! Statistical characterization of bus traces (paper Section 4.2).
//!
//! Two statistics from the paper motivate the coding-scheme design space:
//!
//! * the cumulative distribution of the most frequent unique values
//!   (Figure 7), which shows that a *frequency-based* dictionary needs
//!   hundreds to thousands of entries to get useful coverage; and
//! * the average fraction of values that are unique within a window of a
//!   given size (Figure 8), which shows that a *window-based* dictionary
//!   of only tens of entries captures most short-term reuse.
//!
//! This module computes both, plus supporting statistics (value run
//! lengths for LAST-value prediction, stride hit rates for the strided
//! predictor, and empirical value entropy).

use std::collections::HashMap;

use crate::{Trace, Width, Word};

/// Frequency census of a trace: every distinct word and its occurrence
/// count, sorted most-frequent first.
///
/// # Example
///
/// ```
/// use bustrace::{Trace, Width};
/// use bustrace::stats::ValueCensus;
///
/// let t = Trace::from_values(Width::W32, [5u64, 5, 5, 9, 9, 1]);
/// let census = ValueCensus::of(&t);
/// assert_eq!(census.unique_count(), 3);
/// assert_eq!(census.counts()[0], (5, 3));
/// assert!((census.coverage(1) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueCensus {
    /// `(value, count)` pairs sorted by descending count, ties broken by
    /// ascending value for determinism.
    counts: Vec<(Word, u64)>,
    total: u64,
}

impl ValueCensus {
    /// Builds the census of a trace.
    pub fn of(trace: &Trace) -> Self {
        let mut map: HashMap<Word, u64> = HashMap::new();
        for v in trace.iter() {
            *map.entry(v).or_insert(0) += 1;
        }
        let mut counts: Vec<(Word, u64)> = map.into_iter().collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ValueCensus {
            counts,
            total: trace.len() as u64,
        }
    }

    /// `(value, count)` pairs, most frequent first.
    pub fn counts(&self) -> &[(Word, u64)] {
        &self.counts
    }

    /// Number of distinct words in the trace.
    pub fn unique_count(&self) -> usize {
        self.counts.len()
    }

    /// Total number of words in the trace.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of the trace covered by the `k` most frequent values
    /// (the y-axis of Figure 7 at x = `k`). Returns 0.0 for an empty
    /// trace.
    pub fn coverage(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let covered: u64 = self.counts.iter().take(k).map(|&(_, c)| c).sum();
        covered as f64 / self.total as f64
    }

    /// The full CDF series of Figure 7: for each point `k` in
    /// `1, 2, 4, 8, ...` up to the number of unique values, the coverage
    /// fraction. Log-spaced points keep the series compact for traces
    /// with millions of unique values.
    pub fn cdf_series(&self) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        let mut k = 1usize;
        while k < self.unique_count() {
            out.push((k, self.coverage(k)));
            k *= 2;
        }
        if self.unique_count() > 0 {
            out.push((self.unique_count(), 1.0));
        }
        out
    }

    /// Empirical Shannon entropy of the value distribution, in bits.
    ///
    /// An upper bound on what any value-frequency code could achieve.
    pub fn entropy_bits(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.total as f64;
        -self
            .counts
            .iter()
            .map(|&(_, c)| {
                let p = c as f64 / n;
                p * p.log2()
            })
            .sum::<f64>()
    }
}

/// Average fraction of values within a window that are unique, for a
/// given window size (the y-axis of Figure 8).
///
/// Windows are tiled (non-overlapping), matching the paper's definition
/// closely enough while keeping the computation `O(n)` per window size;
/// a trailing partial window is ignored. Returns `None` when the trace is
/// shorter than one window.
///
/// # Example
///
/// ```
/// use bustrace::{Trace, Width};
/// use bustrace::stats::window_uniqueness;
///
/// // Window of 4 over [1,1,2,3, 4,4,4,4]: first window has 3 unique of
/// // 4 values, second has 1 of 4 -> average 0.5.
/// let t = Trace::from_values(Width::W32, [1u64, 1, 2, 3, 4, 4, 4, 4]);
/// assert_eq!(window_uniqueness(&t, 4), Some(0.5));
/// ```
pub fn window_uniqueness(trace: &Trace, window: usize) -> Option<f64> {
    if window == 0 || trace.len() < window {
        return None;
    }
    let values = trace.values();
    let full_windows = values.len() / window;
    let mut fraction_sum = 0.0;
    let mut seen: HashMap<Word, ()> = HashMap::with_capacity(window);
    for w in 0..full_windows {
        seen.clear();
        let chunk = &values[w * window..(w + 1) * window];
        for &v in chunk {
            seen.insert(v, ());
        }
        fraction_sum += seen.len() as f64 / window as f64;
    }
    Some(fraction_sum / full_windows as f64)
}

/// The Figure 8 series: window uniqueness at power-of-two window sizes
/// from 1 up to the trace length.
pub fn window_uniqueness_series(trace: &Trace) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    let mut w = 1usize;
    while w <= trace.len() {
        if let Some(frac) = window_uniqueness(trace, w) {
            out.push((w, frac));
        }
        match w.checked_mul(2) {
            Some(next) => w = next,
            None => break,
        }
    }
    out
}

/// Fraction of values equal to their immediate predecessor
/// (the hit rate of the LAST-value predictor; code "0" in every scheme).
pub fn repeat_fraction(trace: &Trace) -> f64 {
    let v = trace.values();
    if v.len() < 2 {
        return 0.0;
    }
    let repeats = v.windows(2).filter(|w| w[0] == w[1]).count();
    repeats as f64 / (v.len() - 1) as f64
}

/// Fraction of values correctly predicted by a stride-`k` predictor:
/// `v[t] == v[t-k] + (v[t-k] - v[t-2k])` in wrapping arithmetic at the
/// trace's width.
///
/// Positions with insufficient history are counted as misses, matching a
/// cold-started hardware predictor.
pub fn stride_hit_fraction(trace: &Trace, k: usize) -> f64 {
    let v = trace.values();
    if k == 0 || v.len() <= 2 * k {
        return 0.0;
    }
    let mask = trace.width().mask();
    let mut hits = 0usize;
    for t in 2 * k..v.len() {
        let predicted = v[t - k].wrapping_add(v[t - k].wrapping_sub(v[t - 2 * k])) & mask;
        if predicted == v[t] {
            hits += 1;
        }
    }
    hits as f64 / (v.len() - 2 * k).max(1) as f64
}

/// Mean fraction of bus lines flipping between consecutive words — the
/// batch counterpart of [`StreamingTransitions`]. Returns 0.0 for traces
/// shorter than two words.
pub fn transition_density(trace: &Trace) -> f64 {
    let v = trace.values();
    if v.len() < 2 {
        return 0.0;
    }
    let flips: u64 = v
        .windows(2)
        .map(|w| u64::from((w[0] ^ w[1]).count_ones()))
        .sum();
    flips as f64 / ((v.len() - 1) as f64 * f64::from(trace.width().bits()))
}

/// Streaming transition census: the incremental form of
/// [`transition_density`] and [`repeat_fraction`], fed one word at a
/// time so an online controller never has to re-scan its window.
///
/// # Example
///
/// ```
/// use bustrace::{Trace, Width};
/// use bustrace::stats::{transition_density, StreamingTransitions};
///
/// let t = Trace::from_values(Width::W32, [1u64, 1, 3, 3]);
/// let mut s = StreamingTransitions::new(Width::W32);
/// for v in t.iter() {
///     s.push(v);
/// }
/// assert_eq!(s.density(), transition_density(&t));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamingTransitions {
    width: Width,
    last: Option<Word>,
    words: u64,
    flips: u64,
    repeats: u64,
}

impl StreamingTransitions {
    /// An empty census for a bus of the given width.
    pub fn new(width: Width) -> Self {
        StreamingTransitions {
            width,
            last: None,
            words: 0,
            flips: 0,
            repeats: 0,
        }
    }

    /// Feeds the next word.
    pub fn push(&mut self, value: Word) {
        if let Some(prev) = self.last {
            self.flips += u64::from((prev ^ value).count_ones());
            if prev == value {
                self.repeats += 1;
            }
        }
        self.last = Some(value);
        self.words += 1;
    }

    /// Words observed so far.
    pub fn words(&self) -> u64 {
        self.words
    }

    /// Total line flips between consecutive words so far.
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// Mean fraction of lines flipping per word pair — equals
    /// [`transition_density`] over the words pushed so far.
    pub fn density(&self) -> f64 {
        if self.words < 2 {
            return 0.0;
        }
        self.flips as f64 / ((self.words - 1) as f64 * f64::from(self.width.bits()))
    }

    /// Fraction of words equal to their predecessor — equals
    /// [`repeat_fraction`] over the words pushed so far.
    pub fn repeat_fraction(&self) -> f64 {
        if self.words < 2 {
            return 0.0;
        }
        self.repeats as f64 / (self.words - 1) as f64
    }

    /// Forgets everything, keeping the configured width.
    pub fn reset(&mut self) {
        *self = StreamingTransitions::new(self.width);
    }
}

/// Streaming tiled-window uniqueness: the incremental form of
/// [`window_uniqueness`]. Words are pushed one at a time; every time a
/// full window of `window` words completes, its unique fraction is
/// folded into the running average. A trailing partial window is
/// ignored, exactly as in the batch function.
#[derive(Debug, Clone)]
pub struct StreamingWindowUniqueness {
    window: usize,
    current: HashMap<Word, u32>,
    filled: usize,
    fraction_sum: f64,
    full_windows: u64,
}

impl StreamingWindowUniqueness {
    /// An empty accumulator over tiled windows of `window` words.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window size must be positive");
        StreamingWindowUniqueness {
            window,
            current: HashMap::with_capacity(window),
            filled: 0,
            fraction_sum: 0.0,
            full_windows: 0,
        }
    }

    /// Feeds the next word.
    pub fn push(&mut self, value: Word) {
        *self.current.entry(value).or_insert(0) += 1;
        self.filled += 1;
        if self.filled == self.window {
            self.fraction_sum += self.current.len() as f64 / self.window as f64;
            self.full_windows += 1;
            self.current.clear();
            self.filled = 0;
        }
    }

    /// Completed windows so far.
    pub fn full_windows(&self) -> u64 {
        self.full_windows
    }

    /// Average unique fraction over completed windows — equals
    /// [`window_uniqueness`] over the words pushed so far. `None` until
    /// one window has completed.
    pub fn fraction(&self) -> Option<f64> {
        (self.full_windows > 0).then(|| self.fraction_sum / self.full_windows as f64)
    }

    /// Forgets everything, keeping the configured window size.
    pub fn reset(&mut self) {
        self.current.clear();
        self.filled = 0;
        self.fraction_sum = 0.0;
        self.full_windows = 0;
    }
}

/// Streaming stride-`k` predictor hit census: the incremental form of
/// [`stride_hit_fraction`], including its cold-start convention
/// (positions without `2k` words of history count as misses).
#[derive(Debug, Clone)]
pub struct StreamingStrideHits {
    width: Width,
    k: usize,
    /// Ring of the last `2k` observed words, oldest first.
    history: Vec<Word>,
    words: u64,
    hits: u64,
}

impl StreamingStrideHits {
    /// An empty census for a stride-`k` predictor at the given width.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(width: Width, k: usize) -> Self {
        assert!(k > 0, "stride distance must be positive");
        StreamingStrideHits {
            width,
            k,
            history: Vec::with_capacity(2 * k),
            words: 0,
            hits: 0,
        }
    }

    /// Feeds the next word.
    pub fn push(&mut self, value: Word) {
        if self.history.len() == 2 * self.k {
            let base = self.history[self.k];
            let older = self.history[0];
            let predicted = base.wrapping_add(base.wrapping_sub(older)) & self.width.mask();
            if predicted == value {
                self.hits += 1;
            }
            self.history.remove(0);
        }
        self.history.push(value);
        self.words += 1;
    }

    /// Fraction of predictable positions hit — equals
    /// [`stride_hit_fraction`] over the words pushed so far.
    pub fn fraction(&self) -> f64 {
        let k = self.k as u64;
        if self.words <= 2 * k {
            return 0.0;
        }
        self.hits as f64 / (self.words - 2 * k).max(1) as f64
    }

    /// Forgets everything, keeping the configured width and stride.
    pub fn reset(&mut self) {
        self.history.clear();
        self.words = 0;
        self.hits = 0;
    }
}

/// Summary of run lengths of repeated values (strings the LAST-value
/// predictor captures entirely after the first word).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunLengthStats {
    /// Number of maximal runs in the trace.
    pub runs: usize,
    /// Mean run length (1.0 means no value ever repeats back-to-back).
    pub mean: f64,
    /// Longest run observed.
    pub max: usize,
}

/// Computes [`RunLengthStats`] for a trace. Returns `None` for an empty
/// trace.
pub fn run_lengths(trace: &Trace) -> Option<RunLengthStats> {
    let v = trace.values();
    if v.is_empty() {
        return None;
    }
    let mut runs = 0usize;
    let mut max = 0usize;
    let mut current = 1usize;
    for i in 1..v.len() {
        if v[i] == v[i - 1] {
            current += 1;
        } else {
            runs += 1;
            max = max.max(current);
            current = 1;
        }
    }
    runs += 1;
    max = max.max(current);
    Some(RunLengthStats {
        runs,
        mean: v.len() as f64 / runs as f64,
        max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Width;

    fn trace(values: &[u64]) -> Trace {
        Trace::from_values(Width::W32, values.iter().copied())
    }

    #[test]
    fn census_orders_by_frequency_then_value() {
        let t = trace(&[3, 1, 1, 2, 2, 2]);
        let c = ValueCensus::of(&t);
        assert_eq!(c.counts(), &[(2, 3), (1, 2), (3, 1)]);
        assert_eq!(c.total(), 6);
    }

    #[test]
    fn census_coverage_monotone_and_complete() {
        let t = trace(&[1, 1, 2, 3, 3, 3, 4, 5]);
        let c = ValueCensus::of(&t);
        let mut prev = 0.0;
        for k in 0..=c.unique_count() {
            let cov = c.coverage(k);
            assert!(cov >= prev);
            prev = cov;
        }
        assert!((c.coverage(c.unique_count()) - 1.0).abs() < 1e-12);
        assert!((c.coverage(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn census_empty_trace() {
        let c = ValueCensus::of(&Trace::new(Width::W32));
        assert_eq!(c.unique_count(), 0);
        assert_eq!(c.coverage(5), 0.0);
        assert_eq!(c.entropy_bits(), 0.0);
        assert!(c.cdf_series().is_empty());
    }

    #[test]
    fn cdf_series_ends_at_one() {
        let t = trace(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let series = ValueCensus::of(&t).cdf_series();
        let last = series.last().unwrap();
        assert_eq!(last.0, 10);
        assert!((last.1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_uniform_values() {
        let t = trace(&[0, 1, 2, 3]);
        let e = ValueCensus::of(&t).entropy_bits();
        assert!((e - 2.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_constant_is_zero() {
        let t = trace(&[7; 100]);
        assert_eq!(ValueCensus::of(&t).entropy_bits(), 0.0);
    }

    #[test]
    fn window_uniqueness_basics() {
        let t = trace(&[1, 1, 2, 3, 4, 4, 4, 4]);
        assert_eq!(window_uniqueness(&t, 4), Some(0.5));
        assert_eq!(window_uniqueness(&t, 1), Some(1.0));
        assert_eq!(window_uniqueness(&t, 0), None);
        assert_eq!(window_uniqueness(&t, 9), None);
    }

    #[test]
    fn window_uniqueness_constant_trace() {
        let t = trace(&[5; 64]);
        assert_eq!(window_uniqueness(&t, 8), Some(1.0 / 8.0));
    }

    #[test]
    fn window_series_is_decreasing_for_repetitive_traffic() {
        // A looping trace: bigger windows see proportionally less unique.
        let values: Vec<u64> = (0..1024).map(|i| i % 16).collect();
        let t = trace(&values);
        let series = window_uniqueness_series(&t);
        // At window 16 and beyond, only 16 unique values per window.
        let at_16 = series.iter().find(|&&(w, _)| w == 16).unwrap().1;
        let at_64 = series.iter().find(|&&(w, _)| w == 64).unwrap().1;
        assert!((at_16 - 1.0).abs() < 1e-12);
        assert!((at_64 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn repeat_fraction_examples() {
        assert_eq!(repeat_fraction(&trace(&[1, 1, 1, 1])), 1.0);
        assert_eq!(repeat_fraction(&trace(&[1, 2, 3, 4])), 0.0);
        assert_eq!(repeat_fraction(&trace(&[1])), 0.0);
        let t = trace(&[1, 1, 2, 2]);
        assert!((repeat_fraction(&t) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stride_hits_on_arithmetic_sequence() {
        let values: Vec<u64> = (0..100).map(|i| 10 + 3 * i).collect();
        let t = trace(&values);
        assert!((stride_hit_fraction(&t, 1) - 1.0).abs() < 1e-12);
        // A stride-2 predictor also fits an arithmetic sequence.
        assert!((stride_hit_fraction(&t, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stride_hits_on_interleaved_streams() {
        // Two interleaved arithmetic streams: stride-1 fails, stride-2 hits.
        let mut values = Vec::new();
        for i in 0..50u64 {
            values.push(1000 + 4 * i);
            values.push(77); // constant stream interleaved
        }
        let t = trace(&values);
        assert!(stride_hit_fraction(&t, 1) < 0.1);
        assert!(stride_hit_fraction(&t, 2) > 0.95);
    }

    #[test]
    fn stride_zero_or_short_trace_is_zero() {
        let t = trace(&[1, 2, 3]);
        assert_eq!(stride_hit_fraction(&t, 0), 0.0);
        assert_eq!(stride_hit_fraction(&t, 2), 0.0);
    }

    /// A deterministic pseudo-random word stream (no external RNG) that
    /// mixes repeats, strided runs and noise.
    fn mixed_words(seed: u64, n: usize) -> Vec<u64> {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut out = Vec::with_capacity(n);
        let mut v: u64 = 0x1234;
        for i in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            v = match x % 5 {
                0 => v,                       // repeat
                1 | 2 => v.wrapping_add(4),   // stride run
                3 => x & 0xFFFF,              // small noise
                _ => (x >> 16) & 0xFFFF_FFFF, // fresh value
            };
            out.push(v & 0xFFFF_FFFF);
            let _ = i;
        }
        out
    }

    #[test]
    fn streaming_transitions_matches_batch() {
        for seed in [1u64, 7, 42] {
            let t = trace(&mixed_words(seed, 500));
            let mut s = StreamingTransitions::new(t.width());
            for v in t.iter() {
                s.push(v);
            }
            assert_eq!(s.words(), 500);
            assert!((s.density() - transition_density(&t)).abs() < 1e-15);
            assert!((s.repeat_fraction() - repeat_fraction(&t)).abs() < 1e-15);
        }
    }

    #[test]
    fn streaming_transitions_empty_and_reset() {
        let mut s = StreamingTransitions::new(Width::W32);
        assert_eq!(s.density(), 0.0);
        assert_eq!(s.repeat_fraction(), 0.0);
        s.push(3);
        s.push(3);
        assert_eq!(s.repeat_fraction(), 1.0);
        s.reset();
        assert_eq!(s.words(), 0);
        assert_eq!(s.flips(), 0);
    }

    #[test]
    fn streaming_window_uniqueness_matches_batch() {
        for seed in [1u64, 9] {
            let words = mixed_words(seed, 700);
            let t = trace(&words);
            for window in [1usize, 4, 16, 64] {
                let mut s = StreamingWindowUniqueness::new(window);
                for &v in &words {
                    s.push(v);
                }
                let batch = window_uniqueness(&t, window);
                match batch {
                    Some(frac) => {
                        let got = s.fraction().expect("at least one full window");
                        assert!(
                            (got - frac).abs() < 1e-12,
                            "window {window}: {got} vs {frac}"
                        );
                        assert_eq!(s.full_windows(), (words.len() / window) as u64);
                    }
                    None => assert_eq!(s.fraction(), None),
                }
            }
        }
    }

    #[test]
    fn streaming_window_uniqueness_ignores_partial_tail() {
        let mut s = StreamingWindowUniqueness::new(4);
        for v in [1u64, 1, 2, 3, 9, 9] {
            s.push(v);
        }
        // Only the first tiled window (3 unique of 4) is complete.
        assert_eq!(s.fraction(), Some(0.75));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn streaming_window_uniqueness_rejects_zero() {
        let _ = StreamingWindowUniqueness::new(0);
    }

    #[test]
    fn streaming_stride_hits_match_batch() {
        for seed in [2u64, 11] {
            let words = mixed_words(seed, 400);
            let t = trace(&words);
            for k in [1usize, 2, 4] {
                let mut s = StreamingStrideHits::new(t.width(), k);
                for &v in &words {
                    s.push(v);
                }
                let batch = stride_hit_fraction(&t, k);
                assert!(
                    (s.fraction() - batch).abs() < 1e-15,
                    "k={k}: {} vs {batch}",
                    s.fraction()
                );
            }
        }
        // Short streams are all cold-start misses, as in the batch form.
        let mut s = StreamingStrideHits::new(Width::W32, 2);
        for v in [1u64, 2, 3] {
            s.push(v);
        }
        assert_eq!(s.fraction(), 0.0);
    }

    #[test]
    fn transition_density_examples() {
        assert_eq!(transition_density(&trace(&[5])), 0.0);
        assert_eq!(transition_density(&trace(&[7, 7, 7])), 0.0);
        // 0 -> 1: one flip over 32 lines.
        assert!((transition_density(&trace(&[0, 1])) - 1.0 / 32.0).abs() < 1e-15);
    }

    #[test]
    fn run_length_stats() {
        let t = trace(&[1, 1, 1, 2, 3, 3]);
        let s = run_lengths(&t).unwrap();
        assert_eq!(s.runs, 3);
        assert_eq!(s.max, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!(run_lengths(&Trace::new(Width::W32)).is_none());
    }
}
