//! Bus width and word-masking primitives.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// The width of a bus in data wires, guaranteed to be in `1..=64`.
///
/// All words carried on a bus of width `w` occupy the low `w` bits of a
/// `u64`. The paper studies 32-bit buses throughout; the reproduction is
/// generic in the width so that narrow buses (address sub-fields) and wide
/// buses (64-bit datapaths) can be studied with the same machinery.
///
/// # Example
///
/// ```
/// use bustrace::Width;
///
/// let w = Width::new(32)?;
/// assert_eq!(w.bits(), 32);
/// assert_eq!(w.mask(), 0xFFFF_FFFF);
/// assert_eq!(w.truncate(0x1_2345_6789), 0x2345_6789);
/// # Ok::<(), bustrace::WidthError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(try_from = "u32", into = "u32")]
pub struct Width(u32);

impl Width {
    /// The 32-bit width used for every experiment in the paper.
    pub const W32: Width = Width(32);

    /// Creates a width, validating that it lies in `1..=64`.
    ///
    /// # Errors
    ///
    /// Returns [`WidthError`] if `bits` is zero or greater than 64.
    pub fn new(bits: u32) -> Result<Self, WidthError> {
        if (1..=64).contains(&bits) {
            Ok(Width(bits))
        } else {
            Err(WidthError { bits })
        }
    }

    /// The number of data wires.
    #[inline]
    pub fn bits(self) -> u32 {
        self.0
    }

    /// A mask with the low `bits()` bits set.
    #[inline]
    pub fn mask(self) -> u64 {
        if self.0 == 64 {
            u64::MAX
        } else {
            (1u64 << self.0) - 1
        }
    }

    /// Truncates a value to this width.
    #[inline]
    pub fn truncate(self, value: u64) -> u64 {
        value & self.mask()
    }

    /// Whether `value` already fits within this width.
    #[inline]
    pub fn contains(self, value: u64) -> bool {
        value & !self.mask() == 0
    }

    /// The number of distinct words representable at this width, or
    /// `None` when the count does not fit in a `u64` (width 64).
    #[inline]
    pub fn value_count(self) -> Option<u64> {
        if self.0 == 64 {
            None
        } else {
            Some(1u64 << self.0)
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.0)
    }
}

impl TryFrom<u32> for Width {
    type Error = WidthError;

    fn try_from(bits: u32) -> Result<Self, Self::Error> {
        Width::new(bits)
    }
}

impl From<Width> for u32 {
    fn from(w: Width) -> u32 {
        w.0
    }
}

/// Error returned when constructing a [`Width`] outside `1..=64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WidthError {
    bits: u32,
}

impl WidthError {
    /// The rejected bit count.
    pub fn bits(&self) -> u32 {
        self.bits
    }
}

impl fmt::Display for WidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bus width must be between 1 and 64 bits, got {}",
            self.bits
        )
    }
}

impl Error for WidthError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_full_range() {
        for bits in 1..=64 {
            assert!(Width::new(bits).is_ok(), "width {bits} should be valid");
        }
    }

    #[test]
    fn new_rejects_zero_and_oversize() {
        assert!(Width::new(0).is_err());
        assert!(Width::new(65).is_err());
        assert_eq!(Width::new(100).unwrap_err().bits(), 100);
    }

    #[test]
    fn mask_is_low_bits() {
        assert_eq!(Width::new(1).unwrap().mask(), 0b1);
        assert_eq!(Width::new(8).unwrap().mask(), 0xFF);
        assert_eq!(Width::new(32).unwrap().mask(), 0xFFFF_FFFF);
        assert_eq!(Width::new(64).unwrap().mask(), u64::MAX);
    }

    #[test]
    fn truncate_clears_high_bits() {
        let w = Width::new(16).unwrap();
        assert_eq!(w.truncate(0x1234_5678), 0x5678);
        assert!(w.contains(0xFFFF));
        assert!(!w.contains(0x1_0000));
    }

    #[test]
    fn value_count_saturates_at_64() {
        assert_eq!(Width::new(10).unwrap().value_count(), Some(1024));
        assert_eq!(Width::new(64).unwrap().value_count(), None);
    }

    #[test]
    fn display_mentions_bits() {
        assert_eq!(Width::W32.to_string(), "32-bit");
    }

    #[test]
    fn error_display_is_lowercase_without_period() {
        let e = Width::new(0).unwrap_err().to_string();
        assert!(e.starts_with("bus width"));
        assert!(!e.ends_with('.'));
    }
}
