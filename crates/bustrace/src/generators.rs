//! Synthetic bus-traffic generators.
//!
//! These generators serve two purposes. First, they provide the
//! *controlled* traffic classes used directly by the paper: uniformly
//! random words (the "random" line in Figures 15–23) and simple
//! arithmetic streams. Second, they are the building blocks from which
//! the `simcpu` crate composes SPEC-like kernels: working-set reuse,
//! phase changes, interleaved streams, and floating-point bit patterns.
//!
//! All generators are deterministic given their seed, so every experiment
//! in the repository is exactly reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{Trace, Width, Word};

/// A source of synthetic bus words.
///
/// Implementors are infinite streams: [`next_word`](Self::next_word)
/// never runs out. [`generate`](Self::generate) adapts the stream into a
/// fixed-length [`Trace`].
///
/// The `Debug` supertrait keeps composite generators (interleaves,
/// phases) debuggable, which matters when diagnosing a kernel whose
/// statistics drift from their target ranges.
pub trait TraceGenerator: std::fmt::Debug {
    /// The width of words this generator produces.
    fn width(&self) -> Width;

    /// Produces the next word of the stream.
    fn next_word(&mut self) -> Word;

    /// Collects `n` words into a trace.
    fn generate(&mut self, n: usize) -> Trace {
        let mut trace = Trace::new(self.width());
        for _ in 0..n {
            trace.push(self.next_word());
        }
        trace
    }
}

impl<G: TraceGenerator + ?Sized> TraceGenerator for Box<G> {
    fn width(&self) -> Width {
        (**self).width()
    }

    fn next_word(&mut self) -> Word {
        (**self).next_word()
    }
}

/// Emits a single constant word forever.
///
/// The degenerate best case for every predictor: after the first word the
/// LAST-value code ("0") matches every cycle.
#[derive(Debug, Clone)]
pub struct ConstantGen {
    width: Width,
    value: Word,
}

impl ConstantGen {
    /// Creates a constant generator (the value is truncated to `width`).
    pub fn new(width: Width, value: Word) -> Self {
        ConstantGen {
            width,
            value: width.truncate(value),
        }
    }
}

impl TraceGenerator for ConstantGen {
    fn width(&self) -> Width {
        self.width
    }

    fn next_word(&mut self) -> Word {
        self.value
    }
}

/// Uniformly random words — the adversarial traffic previous studies used
/// and the paper argues *underestimates* real-traffic compressibility for
/// λ below ~0.5 while overestimating it above.
#[derive(Debug, Clone)]
pub struct UniformRandomGen {
    width: Width,
    rng: SmallRng,
}

impl UniformRandomGen {
    /// Creates a seeded uniform generator.
    pub fn new(width: Width, seed: u64) -> Self {
        UniformRandomGen {
            width,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl TraceGenerator for UniformRandomGen {
    fn width(&self) -> Width {
        self.width
    }

    fn next_word(&mut self) -> Word {
        self.width.truncate(self.rng.gen::<u64>())
    }
}

/// An arithmetic sequence `start, start+stride, start+2*stride, ...` in
/// wrapping arithmetic — the pattern of array walks and address streams
/// that strided predictors capture perfectly.
#[derive(Debug, Clone)]
pub struct StrideGen {
    width: Width,
    next: Word,
    stride: Word,
}

impl StrideGen {
    /// Creates a stride generator starting at `start` stepping by `stride`.
    pub fn new(width: Width, start: Word, stride: Word) -> Self {
        StrideGen {
            width,
            next: width.truncate(start),
            stride,
        }
    }
}

impl TraceGenerator for StrideGen {
    fn width(&self) -> Width {
        self.width
    }

    fn next_word(&mut self) -> Word {
        let out = self.next;
        self.next = self.width.truncate(self.next.wrapping_add(self.stride));
        out
    }
}

/// A stride stream disturbed by occasional random jumps, modeling array
/// walks interrupted by pointer dereferences or loop restarts.
#[derive(Debug, Clone)]
pub struct NoisyStrideGen {
    inner: StrideGen,
    jump_probability: f64,
    rng: SmallRng,
}

impl NoisyStrideGen {
    /// Creates a noisy stride generator; on each word, with probability
    /// `jump_probability` the stream restarts at a random point.
    ///
    /// # Panics
    ///
    /// Panics if `jump_probability` is not in `0.0..=1.0`.
    pub fn new(width: Width, stride: Word, jump_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&jump_probability),
            "jump_probability must be a probability, got {jump_probability}"
        );
        NoisyStrideGen {
            inner: StrideGen::new(width, 0, stride),
            jump_probability,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl TraceGenerator for NoisyStrideGen {
    fn width(&self) -> Width {
        self.inner.width()
    }

    fn next_word(&mut self) -> Word {
        if self.rng.gen_bool(self.jump_probability) {
            let start = self.width().truncate(self.rng.gen::<u64>());
            self.inner = StrideGen::new(self.width(), start, self.inner.stride);
        }
        self.inner.next_word()
    }
}

/// Round-robin interleaving of several child streams, modeling a bus
/// shared by independent producers (e.g. two register read ports, or a
/// data stream interleaved with loop-counter values).
///
/// An interleave of `k` arithmetic streams is exactly the traffic a
/// stride-`k` predictor captures, which the strided-predictor experiments
/// rely on.
#[derive(Debug)]
pub struct InterleaveGen {
    width: Width,
    children: Vec<Box<dyn TraceGenerator>>,
    cursor: usize,
}

impl InterleaveGen {
    /// Creates an interleave of the given children.
    ///
    /// # Panics
    ///
    /// Panics if `children` is empty or the children disagree on width —
    /// a bus has exactly one width.
    pub fn new(children: Vec<Box<dyn TraceGenerator>>) -> Self {
        assert!(
            !children.is_empty(),
            "interleave requires at least one child"
        );
        let width = children[0].width();
        assert!(
            children.iter().all(|c| c.width() == width),
            "all interleaved children must share one bus width"
        );
        InterleaveGen {
            width,
            children,
            cursor: 0,
        }
    }
}

impl TraceGenerator for InterleaveGen {
    fn width(&self) -> Width {
        self.width
    }

    fn next_word(&mut self) -> Word {
        let word = self.children[self.cursor].next_word();
        self.cursor = (self.cursor + 1) % self.children.len();
        word
    }
}

/// Working-set traffic: draws from a slowly churning set of live values
/// with a Zipf-like popularity skew.
///
/// This is the traffic class that makes window- and context-based
/// dictionaries effective (Figure 8): within any short window, only a
/// handful of distinct values appear, even though the total unique-value
/// population over the whole trace is large.
#[derive(Debug, Clone)]
pub struct WorkingSetGen {
    width: Width,
    live: Vec<Word>,
    /// Precomputed Zipf CDF over ranks of `live`.
    cdf: Vec<f64>,
    /// Probability per word that one set member is replaced by a fresh value.
    churn: f64,
    rng: SmallRng,
}

impl WorkingSetGen {
    /// Creates working-set traffic.
    ///
    /// * `set_size` — number of simultaneously live values.
    /// * `skew` — Zipf exponent; 0.0 is uniform over the set, ~1.0 is a
    ///   strong head.
    /// * `churn` — per-word probability that a random set member is
    ///   replaced with a fresh random value (drives the long-tail unique
    ///   count of Figure 7).
    ///
    /// # Panics
    ///
    /// Panics if `set_size` is zero or `churn` is not in `0.0..=1.0`.
    pub fn new(width: Width, set_size: usize, skew: f64, churn: f64, seed: u64) -> Self {
        assert!(set_size > 0, "working set must have at least one value");
        assert!(
            (0.0..=1.0).contains(&churn),
            "churn must be a probability, got {churn}"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let live: Vec<Word> = (0..set_size)
            .map(|_| width.truncate(rng.gen::<u64>()))
            .collect();
        let weights: Vec<f64> = (1..=set_size)
            .map(|r| 1.0 / (r as f64).powf(skew))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        WorkingSetGen {
            width,
            live,
            cdf,
            churn,
            rng,
        }
    }

    fn sample_rank(&mut self) -> usize {
        let u: f64 = self.rng.gen();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

impl TraceGenerator for WorkingSetGen {
    fn width(&self) -> Width {
        self.width
    }

    fn next_word(&mut self) -> Word {
        if self.rng.gen_bool(self.churn) {
            let victim = self.rng.gen_range(0..self.live.len());
            self.live[victim] = self.width.truncate(self.rng.gen::<u64>());
        }
        let rank = self.sample_rank();
        self.live[rank]
    }
}

/// Switches between child generators every `phase_length` words,
/// modeling program phases — the behaviour the context-based coder's
/// counter-division mechanism exists to track (Figure 25).
#[derive(Debug)]
pub struct PhasedGen {
    width: Width,
    children: Vec<Box<dyn TraceGenerator>>,
    phase_length: usize,
    emitted: usize,
    current: usize,
}

impl PhasedGen {
    /// Creates a phased generator cycling through `children`.
    ///
    /// # Panics
    ///
    /// Panics if `children` is empty, widths disagree, or `phase_length`
    /// is zero.
    pub fn new(children: Vec<Box<dyn TraceGenerator>>, phase_length: usize) -> Self {
        assert!(
            !children.is_empty(),
            "phased generator requires at least one child"
        );
        assert!(phase_length > 0, "phase length must be positive");
        let width = children[0].width();
        assert!(
            children.iter().all(|c| c.width() == width),
            "all phases must share one bus width"
        );
        PhasedGen {
            width,
            children,
            phase_length,
            emitted: 0,
            current: 0,
        }
    }
}

impl TraceGenerator for PhasedGen {
    fn width(&self) -> Width {
        self.width
    }

    fn next_word(&mut self) -> Word {
        if self.emitted == self.phase_length {
            self.emitted = 0;
            self.current = (self.current + 1) % self.children.len();
        }
        self.emitted += 1;
        self.children[self.current].next_word()
    }
}

/// Repeats each word of an inner stream a geometrically distributed
/// number of times, modeling the back-to-back repeated values that make
/// LAST-value prediction profitable.
#[derive(Debug, Clone)]
pub struct RepeatGen<G> {
    inner: G,
    continue_probability: f64,
    current: Option<Word>,
    rng: SmallRng,
}

impl<G: TraceGenerator> RepeatGen<G> {
    /// Wraps `inner`; after emitting a word, with probability
    /// `continue_probability` the same word is emitted again.
    ///
    /// # Panics
    ///
    /// Panics if `continue_probability` is not in `0.0..1.0` (1.0 would
    /// never advance).
    pub fn new(inner: G, continue_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&continue_probability),
            "continue_probability must be in [0, 1), got {continue_probability}"
        );
        RepeatGen {
            inner,
            continue_probability,
            current: None,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl<G: TraceGenerator> TraceGenerator for RepeatGen<G> {
    fn width(&self) -> Width {
        self.inner.width()
    }

    fn next_word(&mut self) -> Word {
        match self.current {
            Some(word) if self.rng.gen_bool(self.continue_probability) => word,
            _ => {
                let word = self.inner.next_word();
                self.current = Some(word);
                word
            }
        }
    }
}

/// First-order Markov traffic: each value has a fixed successor
/// distribution over a small state set.
///
/// This is the traffic class where *transition* context (who follows
/// whom) carries more information than *value* frequency (who is
/// common) — the regime that separates the paper's two context-coder
/// flavors. With `fidelity = 1.0` the chain is a deterministic cycle;
/// lower fidelities mix in uniform jumps.
#[derive(Debug, Clone)]
pub struct MarkovGen {
    width: Width,
    states: Vec<Word>,
    /// `next[i]` is state `i`'s preferred successor index.
    next: Vec<usize>,
    /// Probability of following the preferred successor.
    fidelity: f64,
    current: usize,
    rng: SmallRng,
}

impl MarkovGen {
    /// Creates a chain over `n_states` distinct random values whose
    /// preferred-successor graph is a random permutation (a union of
    /// cycles).
    ///
    /// # Panics
    ///
    /// Panics if `n_states` is zero or `fidelity` is not in `0.0..=1.0`.
    pub fn new(width: Width, n_states: usize, fidelity: f64, seed: u64) -> Self {
        assert!(n_states > 0, "the chain needs at least one state");
        assert!(
            (0.0..=1.0).contains(&fidelity),
            "fidelity must be a probability"
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let states: Vec<Word> = (0..n_states)
            .map(|_| width.truncate(rng.gen::<u64>()))
            .collect();
        // Random permutation as the successor map.
        let mut next: Vec<usize> = (0..n_states).collect();
        for i in (1..n_states).rev() {
            let j = rng.gen_range(0..=i);
            next.swap(i, j);
        }
        MarkovGen {
            width,
            states,
            next,
            fidelity,
            current: 0,
            rng,
        }
    }

    /// Creates a chain whose successor graph is one big ring over all
    /// `n_states` states — every state is visited, and every state has
    /// exactly one likely successor.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`new`](Self::new).
    pub fn ring(width: Width, n_states: usize, fidelity: f64, seed: u64) -> Self {
        let mut g = MarkovGen::new(width, n_states, fidelity, seed);
        g.next = (0..n_states).map(|i| (i + 1) % n_states).collect();
        g
    }

    /// The distinct state values of the chain.
    pub fn states(&self) -> &[Word] {
        &self.states
    }
}

impl TraceGenerator for MarkovGen {
    fn width(&self) -> Width {
        self.width
    }

    fn next_word(&mut self) -> Word {
        let out = self.states[self.current];
        self.current = if self.rng.gen_bool(self.fidelity) {
            self.next[self.current]
        } else {
            self.rng.gen_range(0..self.states.len())
        };
        out
    }
}

/// Floating-point bit patterns from a smooth random walk.
///
/// Scientific-code buses (the SPECfp kernels) carry IEEE-754 words whose
/// sign/exponent bits are nearly constant while mantissa bits churn; this
/// generator walks a value multiplicatively and emits its bit pattern
/// (`f64` bits for 64-bit buses, `f32` bits for widths ≤ 32).
#[derive(Debug, Clone)]
pub struct FloatWalkGen {
    width: Width,
    value: f64,
    step: f64,
    rng: SmallRng,
}

impl FloatWalkGen {
    /// Creates a float-walk generator starting near `start` with relative
    /// step size `step` (e.g. `0.01` for 1% steps).
    ///
    /// # Panics
    ///
    /// Panics if `start` is not finite and positive, or `step` is not in
    /// `(0.0, 1.0)`.
    pub fn new(width: Width, start: f64, step: f64, seed: u64) -> Self {
        assert!(
            start.is_finite() && start > 0.0,
            "start must be finite and positive"
        );
        assert!(
            step > 0.0 && step < 1.0,
            "step must be in (0, 1), got {step}"
        );
        FloatWalkGen {
            width,
            value: start,
            step,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl TraceGenerator for FloatWalkGen {
    fn width(&self) -> Width {
        self.width
    }

    fn next_word(&mut self) -> Word {
        let factor = 1.0 + self.step * (self.rng.gen::<f64>() * 2.0 - 1.0);
        self.value *= factor;
        if !self.value.is_finite() || self.value <= f64::MIN_POSITIVE {
            self.value = 1.0;
        }
        let bits = if self.width.bits() > 32 {
            self.value.to_bits()
        } else {
            u64::from((self.value as f32).to_bits())
        };
        self.width.truncate(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    const W: Width = Width::W32;

    #[test]
    fn constant_repeats() {
        let t = ConstantGen::new(W, 42).generate(10);
        assert!(t.iter().all(|v| v == 42));
    }

    #[test]
    fn constant_truncates() {
        let g = ConstantGen::new(Width::new(8).unwrap(), 0x1FF);
        assert_eq!(ConstantGen::next_word(&mut g.clone()), 0xFF);
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let a = UniformRandomGen::new(W, 7).generate(100);
        let b = UniformRandomGen::new(W, 7).generate(100);
        let c = UniformRandomGen::new(W, 8).generate(100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_respects_width() {
        let w = Width::new(12).unwrap();
        let t = UniformRandomGen::new(w, 1).generate(1000);
        assert!(t.iter().all(|v| w.contains(v)));
    }

    #[test]
    fn stride_wraps_at_width() {
        let w = Width::new(8).unwrap();
        let t = StrideGen::new(w, 250, 4).generate(4);
        assert_eq!(t.values(), &[250, 254, 2, 6]);
    }

    #[test]
    fn noisy_stride_mostly_strides() {
        let t = NoisyStrideGen::new(W, 8, 0.01, 3).generate(10_000);
        assert!(stats::stride_hit_fraction(&t, 1) > 0.9);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn noisy_stride_rejects_bad_probability() {
        let _ = NoisyStrideGen::new(W, 8, 1.5, 0);
    }

    #[test]
    fn interleave_round_robins() {
        let g = InterleaveGen::new(vec![
            Box::new(ConstantGen::new(W, 1)),
            Box::new(ConstantGen::new(W, 2)),
        ]);
        let t = { g }.generate(5);
        assert_eq!(t.values(), &[1, 2, 1, 2, 1]);
    }

    #[test]
    fn interleaved_strides_hit_stride_k() {
        // Starts/strides chosen non-affine in the stream index so that a
        // stride-1 predictor cannot accidentally fit the interleave.
        let params = [(0u64, 4u64), (100_000, 12), (3_000, 7), (77_777, 9)];
        let children: Vec<Box<dyn TraceGenerator>> = params
            .iter()
            .map(|&(start, stride)| {
                Box::new(StrideGen::new(W, start, stride)) as Box<dyn TraceGenerator>
            })
            .collect();
        let t = InterleaveGen::new(children).generate(4000);
        assert!(stats::stride_hit_fraction(&t, 1) < 0.05);
        assert!(stats::stride_hit_fraction(&t, 4) > 0.95);
    }

    #[test]
    #[should_panic(expected = "at least one child")]
    fn interleave_rejects_empty() {
        let _ = InterleaveGen::new(Vec::new());
    }

    #[test]
    fn working_set_has_small_windows_but_growing_population() {
        let t = WorkingSetGen::new(W, 32, 0.8, 0.01, 5).generate(50_000);
        let census = stats::ValueCensus::of(&t);
        // Churn keeps introducing new values...
        assert!(census.unique_count() > 100);
        // ...but short windows see few distinct values.
        let frac = stats::window_uniqueness(&t, 64).unwrap();
        assert!(frac < 0.5, "window uniqueness {frac} should be small");
    }

    #[test]
    fn working_set_zero_churn_has_bounded_population() {
        let t = WorkingSetGen::new(W, 16, 0.5, 0.0, 5).generate(10_000);
        assert!(stats::ValueCensus::of(&t).unique_count() <= 16);
    }

    #[test]
    fn phased_switches_children() {
        let g = PhasedGen::new(
            vec![
                Box::new(ConstantGen::new(W, 1)),
                Box::new(ConstantGen::new(W, 2)),
            ],
            3,
        );
        let t = { g }.generate(9);
        assert_eq!(t.values(), &[1, 1, 1, 2, 2, 2, 1, 1, 1]);
    }

    #[test]
    fn repeat_creates_runs() {
        let inner = UniformRandomGen::new(W, 2);
        let t = RepeatGen::new(inner, 0.75, 9).generate(20_000);
        let stats = stats::run_lengths(&t).unwrap();
        // Geometric with p=0.75 continue => mean run length ~4.
        assert!(
            stats.mean > 3.0 && stats.mean < 5.0,
            "mean run {}",
            stats.mean
        );
    }

    #[test]
    fn markov_deterministic_chain_cycles() {
        let mut g = MarkovGen::new(W, 6, 1.0, 9);
        let t = g.generate(60);
        // A permutation with fidelity 1 repeats with period <= n_states.
        let first_12: Vec<u64> = t.values()[..12].to_vec();
        for start in (12..48).step_by(12) {
            // Find the period by checking the cycle containing state 0.
            let _ = start;
        }
        // Values are drawn only from the state set.
        let states = g.states().to_vec();
        assert!(t.iter().all(|v| states.contains(&v)));
        // Deterministic: the same prefix recurs.
        let t2 = MarkovGen::new(W, 6, 1.0, 9).generate(60);
        assert_eq!(t, t2);
        assert!(!first_12.is_empty());
    }

    #[test]
    fn markov_successors_are_predictable_at_high_fidelity() {
        let mut g = MarkovGen::new(W, 16, 0.95, 4);
        let t = g.generate(20_000);
        // Empirically: the most common successor of each value carries
        // ~95% of its transitions.
        use std::collections::HashMap;
        let mut succ: HashMap<(u64, u64), u64> = HashMap::new();
        let mut totals: HashMap<u64, u64> = HashMap::new();
        for w in t.values().windows(2) {
            *succ.entry((w[0], w[1])).or_insert(0) += 1;
            *totals.entry(w[0]).or_insert(0) += 1;
        }
        let mut best: HashMap<u64, u64> = HashMap::new();
        for (&(a, _), &c) in &succ {
            let e = best.entry(a).or_insert(0);
            *e = (*e).max(c);
        }
        let predictable: u64 = best.values().sum();
        let total: u64 = totals.values().sum();
        let frac = predictable as f64 / total as f64;
        assert!(frac > 0.9, "best-successor fraction {frac}");
    }

    #[test]
    fn float_walk_keeps_exponent_stable() {
        let t = FloatWalkGen::new(W, 1.0, 0.001, 4).generate(1000);
        // With 0.1% steps the f32 exponent byte rarely changes: the top
        // 9 bits (sign+exponent) should take very few distinct values.
        let mut exponents: Vec<u64> = t.iter().map(|v| v >> 23).collect();
        exponents.sort_unstable();
        exponents.dedup();
        assert!(exponents.len() <= 3, "saw {} exponents", exponents.len());
    }

    #[test]
    fn boxed_generator_is_usable() {
        let mut g: Box<dyn TraceGenerator> = Box::new(ConstantGen::new(W, 3));
        assert_eq!(g.next_word(), 3);
        assert_eq!(g.generate(2).len(), 2);
    }
}
