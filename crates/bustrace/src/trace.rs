//! The [`Trace`] type: a sequence of words observed on a bus.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Width, Word};

/// A time-ordered sequence of words observed on a bus of a fixed width.
///
/// A trace records the value presented to the bus on each cycle in which
/// the bus carried traffic. Every stored word is guaranteed to fit within
/// the trace's [`Width`]; constructors truncate or reject out-of-range
/// values so that downstream consumers (coders, energy accounting) can
/// rely on the invariant.
///
/// # Example
///
/// ```
/// use bustrace::{Trace, Width};
///
/// let trace = Trace::from_values(Width::W32, [1u64, 2, 3, 3, 3, 7]);
/// assert_eq!(trace.len(), 6);
/// assert_eq!(trace.width(), Width::W32);
/// assert_eq!(trace.values()[3], 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Trace {
    width: Width,
    values: Vec<Word>,
}

impl Trace {
    /// Creates an empty trace for a bus of the given width.
    pub fn new(width: Width) -> Self {
        Trace {
            width,
            values: Vec::new(),
        }
    }

    /// Creates a trace from an iterator of words, truncating each word to
    /// the given width.
    ///
    /// Truncation (rather than rejection) matches what physical hardware
    /// does: a 64-bit integer driven onto a 32-bit bus simply drops its
    /// high bits.
    pub fn from_values<I>(width: Width, values: I) -> Self
    where
        I: IntoIterator<Item = Word>,
    {
        static TRACES: busprobe::StaticCounter =
            busprobe::StaticCounter::new("bustrace.trace.created");
        static WORDS: busprobe::StaticCounter =
            busprobe::StaticCounter::new("bustrace.trace.words");
        let values: Vec<Word> = values.into_iter().map(|v| width.truncate(v)).collect();
        TRACES.inc();
        WORDS.add(values.len() as u64);
        Trace { width, values }
    }

    /// The bus width.
    #[inline]
    pub fn width(&self) -> Width {
        self.width
    }

    /// The recorded words, oldest first.
    #[inline]
    pub fn values(&self) -> &[Word] {
        &self.values
    }

    /// The number of recorded words.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the trace holds no words.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends a word, truncating it to the trace width.
    pub fn push(&mut self, value: Word) {
        self.values.push(self.width.truncate(value));
    }

    /// Iterates over the recorded words.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, Word>> {
        self.values.iter().copied()
    }

    /// Returns a sub-trace covering `range` (clamped to the trace length).
    ///
    /// Useful for warm-up skipping and for windowed statistics.
    pub fn slice(&self, start: usize, end: usize) -> Trace {
        let end = end.min(self.values.len());
        let start = start.min(end);
        Trace {
            width: self.width,
            values: self.values[start..end].to_vec(),
        }
    }

    /// Consumes the trace, returning the underlying vector of words.
    pub fn into_values(self) -> Vec<Word> {
        self.values
    }

    /// Concatenates another trace of the same width onto this one.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ; traces of different widths describe
    /// different physical buses and must never be spliced.
    pub fn extend_from(&mut self, other: &Trace) {
        assert_eq!(
            self.width, other.width,
            "cannot concatenate traces of different widths"
        );
        self.values.extend_from_slice(&other.values);
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} trace of {} values", self.width, self.values.len())
    }
}

impl Extend<Word> for Trace {
    fn extend<I: IntoIterator<Item = Word>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = Word;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Word>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Incremental builder for [`Trace`] used by the bus timing generators in
/// `simcpu`, which interleave idle cycles (bus holds its previous value)
/// with active cycles.
///
/// On an idle cycle a real bus simply keeps its last driven value, which
/// is exactly what [`TraceBuilder::idle`] records: repeated values are
/// energy-free in the un-encoded case and the coders must not be charged
/// or credited for them incorrectly.
///
/// # Example
///
/// ```
/// use bustrace::{TraceBuilder, Width};
///
/// let mut b = TraceBuilder::new(Width::W32);
/// b.drive(0xAB);
/// b.idle();
/// b.drive(0xCD);
/// let trace = b.finish();
/// assert_eq!(trace.values(), &[0xAB, 0xAB, 0xCD]);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    trace: Trace,
    last: Word,
}

impl TraceBuilder {
    /// Creates a builder whose idle value before any drive is zero
    /// (an undriven bus is modeled as all-low).
    pub fn new(width: Width) -> Self {
        TraceBuilder {
            trace: Trace::new(width),
            last: 0,
        }
    }

    /// Records a cycle in which `value` is driven onto the bus.
    pub fn drive(&mut self, value: Word) {
        let v = self.trace.width().truncate(value);
        self.last = v;
        self.trace.push(v);
    }

    /// Records a cycle in which the bus holds its previous value.
    pub fn idle(&mut self) {
        self.trace.push(self.last);
    }

    /// Records `n` idle cycles.
    pub fn idle_for(&mut self, n: usize) {
        for _ in 0..n {
            self.idle();
        }
    }

    /// The number of cycles recorded so far.
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Whether no cycles have been recorded.
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }

    /// Finishes the build, returning the trace.
    pub fn finish(self) -> Trace {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_values_truncates() {
        let w = Width::new(8).unwrap();
        let t = Trace::from_values(w, [0x1FF, 0x100, 0xFF]);
        assert_eq!(t.values(), &[0xFF, 0x00, 0xFF]);
    }

    #[test]
    fn push_truncates() {
        let mut t = Trace::new(Width::new(4).unwrap());
        t.push(0x1F);
        assert_eq!(t.values(), &[0xF]);
    }

    #[test]
    fn slice_clamps() {
        let t = Trace::from_values(Width::W32, [1, 2, 3, 4, 5]);
        assert_eq!(t.slice(1, 3).values(), &[2, 3]);
        assert_eq!(t.slice(3, 100).values(), &[4, 5]);
        assert_eq!(t.slice(10, 20).len(), 0);
        assert_eq!(t.slice(4, 2).len(), 0);
    }

    #[test]
    fn extend_from_same_width() {
        let mut a = Trace::from_values(Width::W32, [1, 2]);
        let b = Trace::from_values(Width::W32, [3]);
        a.extend_from(&b);
        assert_eq!(a.values(), &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "different widths")]
    fn extend_from_different_width_panics() {
        let mut a = Trace::from_values(Width::W32, [1]);
        let b = Trace::from_values(Width::new(16).unwrap(), [2]);
        a.extend_from(&b);
    }

    #[test]
    fn builder_idle_repeats_last_value() {
        let mut b = TraceBuilder::new(Width::W32);
        b.idle(); // idle before any drive holds zero
        b.drive(7);
        b.idle_for(3);
        b.drive(9);
        let t = b.finish();
        assert_eq!(t.values(), &[0, 7, 7, 7, 7, 9]);
    }

    #[test]
    fn iteration_yields_values() {
        let t = Trace::from_values(Width::W32, [1, 2, 3]);
        let collected: Vec<_> = t.iter().collect();
        assert_eq!(collected, vec![1, 2, 3]);
        let sum: u64 = (&t).into_iter().sum();
        assert_eq!(sum, 6);
    }

    #[test]
    fn extend_trait_truncates() {
        let mut t = Trace::new(Width::new(4).unwrap());
        t.extend([0x10u64, 0x1F]);
        assert_eq!(t.values(), &[0x0, 0xF]);
    }

    #[test]
    fn display_shows_width_and_len() {
        let t = Trace::from_values(Width::W32, [1, 2]);
        assert_eq!(t.to_string(), "32-bit trace of 2 values");
    }
}
