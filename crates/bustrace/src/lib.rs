//! Bus value traces, statistics, and synthetic traffic generators.
//!
//! This crate is the data substrate for the bus-transcoding study: it
//! defines the [`Trace`] type (a sequence of words observed on a bus of a
//! given [`Width`]), the statistical characterizations used in Section 4.2
//! of the paper (unique-value CDF, window uniqueness), and a family of
//! synthetic traffic generators used both for controlled experiments and
//! as building blocks for the SPEC-like kernels in the `simcpu` crate.
//!
//! # Example
//!
//! ```
//! use bustrace::{Trace, Width};
//! use bustrace::generators::{StrideGen, TraceGenerator};
//!
//! let width = Width::new(32)?;
//! let mut generator = StrideGen::new(width, 0x1000, 4);
//! let trace = generator.generate(1000);
//! assert_eq!(trace.len(), 1000);
//! assert_eq!(trace.values()[1] - trace.values()[0], 4);
//! # Ok::<(), bustrace::WidthError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod io;
pub mod stats;

mod trace;
mod word;

pub use trace::{Trace, TraceBuilder};
pub use word::{Width, WidthError};

/// Convenience alias: a single word observed on the bus.
///
/// Words are stored in the low `width` bits of a `u64`; the remaining high
/// bits are always zero for words held in a [`Trace`].
pub type Word = u64;
