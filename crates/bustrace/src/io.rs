//! Plain-text trace serialization.
//!
//! A deliberately trivial format so traces can move between this
//! toolchain and external analysis (spreadsheets, Python, the original
//! SimpleScalar tooling):
//!
//! ```text
//! # bustrace v1 width=32
//! deadbeef
//! 12345678
//! ...
//! ```
//!
//! One lowercase hex word per line; `#` lines are comments; the header
//! carries the bus width. Values wider than the declared width are
//! rejected on read (a truncating reader would silently corrupt
//! experiments).

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

use crate::{Trace, Width};

/// Errors from reading a text trace.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The header line is missing or malformed.
    BadHeader(String),
    /// A data line is not a hex word or exceeds the declared width.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content, clipped to [`BAD_LINE_CLIP`] characters
        /// so a pathological input cannot balloon the error message.
        content: String,
    },
    /// The input holds more words than the configured limit — a guard
    /// against accidentally feeding a multi-gigabyte file to an
    /// in-memory reader.
    TooManyWords {
        /// The limit that was exceeded.
        limit: usize,
    },
}

/// Maximum characters of a bad line quoted in [`ReadTraceError::BadLine`].
pub const BAD_LINE_CLIP: usize = 80;

/// Default word-count cap applied by [`read_trace`]; use
/// [`read_trace_with_limit`] to raise or lower it.
pub const DEFAULT_MAX_WORDS: usize = 64 * 1024 * 1024;

/// Clips `text` to [`BAD_LINE_CLIP`] characters, marking the cut.
fn clip(text: &str) -> String {
    if text.chars().count() <= BAD_LINE_CLIP {
        return text.to_string();
    }
    let mut s: String = text.chars().take(BAD_LINE_CLIP).collect();
    s.push('…');
    s
}

impl fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "trace read failed: {e}"),
            ReadTraceError::BadHeader(h) => write!(f, "bad trace header: {h:?}"),
            ReadTraceError::BadLine { line, content } => {
                write!(f, "bad trace value at line {line}: {content:?}")
            }
            ReadTraceError::TooManyWords { limit } => {
                write!(f, "trace exceeds the configured limit of {limit} words")
            }
        }
    }
}

impl Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ReadTraceError {
    fn from(e: std::io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

/// Writes a trace in the text format.
///
/// # Errors
///
/// Propagates I/O failures. (A `&mut` reference can be passed as the
/// writer.)
pub fn write_trace<W: Write>(trace: &Trace, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "# bustrace v1 width={}", trace.width().bits())?;
    for v in trace.iter() {
        writeln!(writer, "{v:x}")?;
    }
    Ok(())
}

/// Reads a trace in the text format. (A `&mut` reference can be passed
/// as the reader.)
///
/// # Errors
///
/// Returns [`ReadTraceError`] on I/O failure, a bad header, any
/// malformed or out-of-width value, or a trace longer than
/// [`DEFAULT_MAX_WORDS`].
pub fn read_trace<R: BufRead>(reader: R) -> Result<Trace, ReadTraceError> {
    read_trace_with_limit(reader, DEFAULT_MAX_WORDS)
}

/// [`read_trace`] with an explicit cap on the number of data words
/// accepted before the reader bails out with
/// [`ReadTraceError::TooManyWords`].
///
/// # Errors
///
/// As [`read_trace`], with `max_words` in place of the default cap.
pub fn read_trace_with_limit<R: BufRead>(
    reader: R,
    max_words: usize,
) -> Result<Trace, ReadTraceError> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| ReadTraceError::BadHeader("empty input".into()))??;
    let width = parse_header(&header)?;
    let mut trace = Trace::new(width);
    for (i, line) in lines.enumerate() {
        let line = line?;
        let text = line.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }
        let value = u64::from_str_radix(text, 16).map_err(|_| ReadTraceError::BadLine {
            line: i + 2,
            content: clip(text),
        })?;
        if !width.contains(value) {
            return Err(ReadTraceError::BadLine {
                line: i + 2,
                content: clip(text),
            });
        }
        if trace.len() >= max_words {
            return Err(ReadTraceError::TooManyWords { limit: max_words });
        }
        trace.push(value);
    }
    Ok(trace)
}

/// Reads a trace from a file in the text format.
///
/// # Errors
///
/// As [`read_trace`]; opening the file is reported as
/// [`ReadTraceError::Io`].
pub fn load_trace(path: &std::path::Path) -> Result<Trace, ReadTraceError> {
    let file = std::fs::File::open(path)?;
    read_trace(std::io::BufReader::new(file))
}

/// Writes a trace to a file in the text format, atomically: the data
/// goes to `<path>.tmp` first and is renamed into place, so a reader
/// (or a crashed writer) never observes a half-written trace.
///
/// # Errors
///
/// Propagates I/O failures from writing or renaming.
pub fn save_trace(trace: &Trace, path: &std::path::Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension("tmp");
    let mut writer = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
    write_trace(trace, &mut writer)?;
    writer.flush()?;
    drop(writer);
    std::fs::rename(&tmp, path)
}

fn parse_header(header: &str) -> Result<Width, ReadTraceError> {
    let bad = || ReadTraceError::BadHeader(clip(header));
    let rest = header
        .strip_prefix("# bustrace v1 width=")
        .ok_or_else(bad)?;
    let bits: u32 = rest.trim().parse().map_err(|_| bad())?;
    Width::new(bits).map_err(|_| bad())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(trace: &Trace) -> Trace {
        let mut buf = Vec::new();
        write_trace(trace, &mut buf).unwrap();
        read_trace(buf.as_slice()).unwrap()
    }

    #[test]
    fn write_read_round_trips() {
        let t = Trace::from_values(Width::W32, [0u64, 0xDEAD_BEEF, 42, u64::from(u32::MAX)]);
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = Trace::new(Width::new(16).unwrap());
        let r = round_trip(&t);
        assert_eq!(r, t);
        assert_eq!(r.width().bits(), 16);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# bustrace v1 width=8\n\n# a comment\nff\n\n01\n";
        let t = read_trace(text.as_bytes()).unwrap();
        assert_eq!(t.values(), &[0xFF, 0x01]);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            read_trace("width=32\nff\n".as_bytes()),
            Err(ReadTraceError::BadHeader(_))
        ));
        assert!(matches!(
            read_trace("# bustrace v1 width=0\n".as_bytes()),
            Err(ReadTraceError::BadHeader(_))
        ));
        assert!(matches!(
            read_trace("".as_bytes()),
            Err(ReadTraceError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_overwide_and_malformed_values() {
        let over = "# bustrace v1 width=8\n1ff\n";
        match read_trace(over.as_bytes()) {
            Err(ReadTraceError::BadLine { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected BadLine, got {other:?}"),
        }
        let junk = "# bustrace v1 width=8\nzz\n";
        assert!(matches!(
            read_trace(junk.as_bytes()),
            Err(ReadTraceError::BadLine { .. })
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = ReadTraceError::BadLine {
            line: 7,
            content: "xyz".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn bad_line_content_is_clipped() {
        let long = "z".repeat(10_000);
        let text = format!("# bustrace v1 width=8\n{long}\n");
        match read_trace(text.as_bytes()) {
            Err(ReadTraceError::BadLine { content, .. }) => {
                assert!(content.chars().count() <= BAD_LINE_CLIP + 1);
                assert!(content.ends_with('…'));
            }
            other => panic!("expected BadLine, got {other:?}"),
        }
    }

    #[test]
    fn bad_header_is_clipped() {
        let text = format!("not a header {}\n", "x".repeat(10_000));
        match read_trace(text.as_bytes()) {
            Err(ReadTraceError::BadHeader(h)) => {
                assert!(h.chars().count() <= BAD_LINE_CLIP + 1);
            }
            other => panic!("expected BadHeader, got {other:?}"),
        }
    }

    #[test]
    fn word_limit_is_enforced() {
        let text = "# bustrace v1 width=8\n1\n2\n3\n4\n";
        match read_trace_with_limit(text.as_bytes(), 3) {
            Err(ReadTraceError::TooManyWords { limit }) => assert_eq!(limit, 3),
            other => panic!("expected TooManyWords, got {other:?}"),
        }
        // At the limit exactly: fine.
        let t = read_trace_with_limit(text.as_bytes(), 4).unwrap();
        assert_eq!(t.len(), 4);
        // Comments and blanks do not count against the limit.
        let sparse = "# bustrace v1 width=8\n# c\n\n1\n# c\n2\n";
        assert_eq!(
            read_trace_with_limit(sparse.as_bytes(), 2).unwrap().len(),
            2
        );
    }

    #[test]
    fn save_load_round_trips_and_replaces() {
        let dir = std::env::temp_dir().join(format!("bustrace-io-{}", std::process::id()));
        let path = dir.join("nested").join("t.trace");
        let a = Trace::from_values(Width::W32, [1u64, 0xFFFF_FFFF, 0]);
        save_trace(&a, &path).unwrap();
        assert_eq!(load_trace(&path).unwrap(), a);
        // Overwrite with a different trace: the rename replaces cleanly.
        let b = Trace::from_values(Width::new(8).unwrap(), [9u64]);
        save_trace(&b, &path).unwrap();
        assert_eq!(load_trace(&path).unwrap(), b);
        assert!(!path.with_extension("tmp").exists(), "tmp file left behind");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_trace_reports_missing_file_as_io() {
        let missing = std::env::temp_dir().join("bustrace-io-definitely-missing.trace");
        assert!(matches!(load_trace(&missing), Err(ReadTraceError::Io(_))));
    }

    #[test]
    fn too_many_words_message_names_the_limit() {
        let e = ReadTraceError::TooManyWords { limit: 42 };
        assert!(e.to_string().contains("42"));
    }
}
