//! Variable-length coding study (paper Section 6, future work).
//!
//! The paper's transcoders deliberately use fixed-length codes so the
//! bus keeps its single-cycle timing; Section 6 asks how much a
//! variable-length scheme could gain and at what timing cost. This
//! module answers with an *offline oracle* study: a canonical Huffman
//! code built from the trace's own value distribution (the best case
//! any adaptive scheme could approach), with rare values escaped to a
//! raw 32-bit form, serialized over a configurable number of bus lanes.
//!
//! Two costs come out:
//!
//! * **energy** — switching activity of the serialized lane bus,
//!   comparable against the fixed-width transcoders' activity; and
//! * **timing** — cycles per value (> 1 means the narrow bus is slower
//!   than the original single-cycle bus; this is the "further
//!   complicating designer's task" cost the paper warns about).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use bustrace::{Trace, Word};

use crate::energy::Activity;

/// Result of the variable-length study over one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct VarLenReport {
    /// Bits per value of the un-encoded bus (the trace width).
    pub fixed_bits_per_value: f64,
    /// Zeroth-order entropy of the value distribution, in bits — the
    /// floor for any value-by-value code.
    pub entropy_bits_per_value: f64,
    /// Achieved Huffman bits per value, escapes included.
    pub huffman_bits_per_value: f64,
    /// Fraction of values transmitted via the raw escape.
    pub escape_fraction: f64,
    /// Switching activity of the serialized lane bus.
    pub serialized: Activity,
    /// Cycles needed to ship the whole trace over the lanes.
    pub cycles: u64,
    /// Cycles per value (> 1.0 = slower than the original bus).
    pub cycles_per_value: f64,
}

/// Node of the Huffman construction.
#[derive(Debug)]
enum Node {
    Leaf(Symbol),
    Internal(Box<Node>, Box<Node>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Symbol {
    Value(Word),
    Escape,
}

/// Builds the canonical code-length table for the given counts.
fn huffman_lengths(counts: &[(Symbol, u64)]) -> HashMap<Symbol, u32> {
    assert!(!counts.is_empty(), "cannot build a code over no symbols");
    if counts.len() == 1 {
        return HashMap::from([(counts[0].0, 1)]);
    }
    // (weight, tiebreak, node): BinaryHeap is a max-heap, Reverse flips.
    let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut nodes: Vec<Option<Node>> = Vec::new();
    for &(sym, count) in counts {
        let id = nodes.len() as u64;
        nodes.push(Some(Node::Leaf(sym)));
        heap.push(Reverse((count, id)));
    }
    while heap.len() > 1 {
        let Reverse((w1, i1)) = heap.pop().expect("len > 1");
        let Reverse((w2, i2)) = heap.pop().expect("len > 1");
        let a = nodes[i1 as usize].take().expect("node present");
        let b = nodes[i2 as usize].take().expect("node present");
        let id = nodes.len() as u64;
        nodes.push(Some(Node::Internal(Box::new(a), Box::new(b))));
        heap.push(Reverse((w1 + w2, id)));
    }
    let Reverse((_, root_id)) = heap.pop().expect("one root");
    let root = nodes[root_id as usize].take().expect("root present");
    let mut lengths = HashMap::new();
    assign_depths(&root, 0, &mut lengths);
    lengths
}

fn assign_depths(node: &Node, depth: u32, out: &mut HashMap<Symbol, u32>) {
    match node {
        Node::Leaf(sym) => {
            out.insert(*sym, depth.max(1));
        }
        Node::Internal(a, b) => {
            assign_depths(a, depth + 1, out);
            assign_depths(b, depth + 1, out);
        }
    }
}

/// Canonical codes from lengths: symbols sorted by (length, symbol
/// order) receive consecutive codes — both ends of a bus can rebuild the
/// same book from the length table alone.
fn canonical_codes(lengths: &HashMap<Symbol, u32>) -> Vec<(Symbol, u32, u64)> {
    let mut items: Vec<(Symbol, u32)> = lengths.iter().map(|(&s, &l)| (s, l)).collect();
    items.sort_by_key(|&(s, l)| {
        let order = match s {
            Symbol::Escape => (0u8, 0u64),
            Symbol::Value(v) => (1u8, v),
        };
        (l, order)
    });
    let mut out = Vec::with_capacity(items.len());
    let mut code: u64 = 0;
    let mut prev_len = 0u32;
    for (sym, len) in items {
        code <<= len - prev_len;
        out.push((sym, len, code));
        code += 1;
        prev_len = len;
    }
    out
}

/// A frozen Huffman code book over a trace's value distribution: the
/// top `dictionary` values get prefix-free codes, everything else rides
/// a shared escape followed by the raw word.
///
/// # Example
///
/// ```
/// use bustrace::{Trace, Width};
/// use buscoding::varlen::HuffmanBook;
///
/// let trace = Trace::from_values(Width::W32, [7u64, 7, 7, 9, 7, 1]);
/// let book = HuffmanBook::from_trace(&trace, 4);
/// let bits = book.encode(&trace);
/// let decoded = book.decode(&bits, trace.len()).expect("lossless");
/// assert_eq!(decoded, trace.into_values());
/// ```
#[derive(Debug, Clone)]
pub struct HuffmanBook {
    width_bits: u32,
    /// Symbol -> (length, canonical code).
    codes: HashMap<Symbol, (u32, u64)>,
    /// (length, code) -> symbol, for decoding.
    reverse: HashMap<(u32, u64), Symbol>,
    /// Values covered by the dictionary.
    in_dict: HashMap<Word, u64>,
    /// Zeroth-order entropy of the symbol distribution, bits/value.
    entropy: f64,
}

impl HuffmanBook {
    /// Builds the book from a trace's frequency census.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or `dictionary` is zero.
    pub fn from_trace(trace: &Trace, dictionary: usize) -> Self {
        assert!(!trace.is_empty(), "cannot study an empty trace");
        assert!(dictionary >= 1, "dictionary needs at least one entry");
        let mut counts: HashMap<Word, u64> = HashMap::new();
        for v in trace.iter() {
            *counts.entry(v).or_insert(0) += 1;
        }
        let mut sorted: Vec<(Word, u64)> = counts.into_iter().collect();
        sorted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let in_dict: HashMap<Word, u64> = sorted.iter().take(dictionary).copied().collect();
        let escape_count: u64 = sorted.iter().skip(dictionary).map(|&(_, c)| c).sum();

        let mut symbol_counts: Vec<(Symbol, u64)> = in_dict
            .iter()
            .map(|(&v, &c)| (Symbol::Value(v), c))
            .collect();
        symbol_counts.sort_by_key(|&(s, _)| match s {
            Symbol::Value(v) => v,
            Symbol::Escape => u64::MAX,
        });
        if escape_count > 0 {
            symbol_counts.push((Symbol::Escape, escape_count));
        }
        let lengths = huffman_lengths(&symbol_counts);
        let canon = canonical_codes(&lengths);
        let codes: HashMap<Symbol, (u32, u64)> =
            canon.iter().map(|&(s, l, c)| (s, (l, c))).collect();
        let reverse: HashMap<(u32, u64), Symbol> =
            canon.into_iter().map(|(s, l, c)| ((l, c), s)).collect();
        let n = trace.len() as f64;
        let entropy: f64 = -symbol_counts
            .iter()
            .map(|&(_, c)| {
                let p = c as f64 / n;
                p * p.log2()
            })
            .sum::<f64>();
        HuffmanBook {
            width_bits: trace.width().bits(),
            codes,
            reverse,
            in_dict,
            entropy,
        }
    }

    /// Entropy floor of the symbol distribution, in bits per value.
    pub fn entropy_bits(&self) -> f64 {
        self.entropy
    }

    /// Whether a value has its own code (vs escaping).
    pub fn contains(&self, value: Word) -> bool {
        self.in_dict.contains_key(&value)
    }

    /// Encodes a trace into a flat bitstream (MSB-first per code).
    pub fn encode(&self, trace: &Trace) -> Vec<bool> {
        let mut bits = Vec::new();
        for v in trace.iter() {
            let symbol = if self.contains(v) {
                Symbol::Value(v)
            } else {
                Symbol::Escape
            };
            let &(len, code) = self.codes.get(&symbol).expect("every symbol coded");
            for k in (0..len).rev() {
                bits.push(code >> k & 1 == 1);
            }
            if symbol == Symbol::Escape {
                for k in (0..self.width_bits).rev() {
                    bits.push(v >> k & 1 == 1);
                }
            }
        }
        bits
    }

    /// Decodes `count` values back out of a bitstream.
    ///
    /// # Errors
    ///
    /// Returns a message if the stream ends early or contains a prefix
    /// no codeword matches.
    pub fn decode(&self, bits: &[bool], count: usize) -> Result<Vec<Word>, String> {
        let max_len = self.codes.values().map(|&(l, _)| l).max().unwrap_or(1);
        let mut out = Vec::with_capacity(count);
        let mut pos = 0usize;
        while out.len() < count {
            let mut len = 0u32;
            let mut acc = 0u64;
            let symbol = loop {
                let bit = *bits.get(pos).ok_or("bitstream ended mid-codeword")?;
                pos += 1;
                len += 1;
                acc = acc << 1 | u64::from(bit);
                if let Some(&s) = self.reverse.get(&(len, acc)) {
                    break s;
                }
                if len > max_len {
                    return Err(format!("prefix {acc:#b}/{len} matches no codeword"));
                }
            };
            match symbol {
                Symbol::Value(v) => out.push(v),
                Symbol::Escape => {
                    let mut raw = 0u64;
                    for _ in 0..self.width_bits {
                        let bit = *bits.get(pos).ok_or("bitstream ended mid-escape")?;
                        pos += 1;
                        raw = raw << 1 | u64::from(bit);
                    }
                    out.push(raw);
                }
            }
        }
        Ok(out)
    }
}

/// Runs the study: builds a Huffman code over the trace's most frequent
/// values (up to `dictionary` of them; the rest escape to raw), then
/// serializes the bitstream over `lanes` parallel wires and measures the
/// resulting switching activity and cycle count.
///
/// # Panics
///
/// Panics if the trace is empty, `lanes` is not in `1..=64`, or
/// `dictionary` is zero.
pub fn huffman_study(trace: &Trace, dictionary: usize, lanes: u32) -> VarLenReport {
    assert!((1..=64).contains(&lanes), "lanes must be in 1..=64");
    let width_bits = trace.width().bits();
    let book = HuffmanBook::from_trace(trace, dictionary);
    let codes = &book.codes;
    let in_dict = &book.in_dict;
    let entropy = book.entropy;
    let n = trace.len() as f64;

    // Serialize: emit each value's code bits (escape code followed by
    // the raw word) into the lane bus, most significant bit first.
    let mut activity = Activity::new(lanes);
    activity.step(0);
    let mut bit_buffer: Vec<bool> = Vec::with_capacity(lanes as usize);
    let mut cycles = 0u64;
    let mut total_bits = 0u64;
    let mut lane_state = 0u64;
    let flush =
        |buf: &mut Vec<bool>, activity: &mut Activity, state: &mut u64, cycles: &mut u64| {
            if buf.is_empty() {
                return;
            }
            let mut next = *state;
            for (i, &bit) in buf.iter().enumerate() {
                let mask = 1u64 << i;
                if bit {
                    next |= mask;
                } else {
                    next &= !mask;
                }
            }
            activity.step(next);
            *state = next;
            *cycles += 1;
            buf.clear();
        };
    let emit_bits = |value: u64,
                     len: u32,
                     buf: &mut Vec<bool>,
                     activity: &mut Activity,
                     state: &mut u64,
                     cycles: &mut u64| {
        for k in (0..len).rev() {
            buf.push(value >> k & 1 == 1);
            if buf.len() == lanes as usize {
                flush(buf, activity, state, cycles);
            }
        }
    };
    let mut escapes = 0u64;
    for v in trace.iter() {
        let symbol = if in_dict.contains_key(&v) {
            Symbol::Value(v)
        } else {
            Symbol::Escape
        };
        let &(len, code) = codes.get(&symbol).expect("every symbol coded");
        emit_bits(
            code,
            len,
            &mut bit_buffer,
            &mut activity,
            &mut lane_state,
            &mut cycles,
        );
        total_bits += u64::from(len);
        if symbol == Symbol::Escape {
            escapes += 1;
            emit_bits(
                v,
                width_bits,
                &mut bit_buffer,
                &mut activity,
                &mut lane_state,
                &mut cycles,
            );
            total_bits += u64::from(width_bits);
        }
    }
    flush(&mut bit_buffer, &mut activity, &mut lane_state, &mut cycles);

    VarLenReport {
        fixed_bits_per_value: f64::from(width_bits),
        entropy_bits_per_value: entropy,
        huffman_bits_per_value: total_bits as f64 / n,
        escape_fraction: escapes as f64 / n,
        serialized: activity,
        cycles,
        cycles_per_value: cycles as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bustrace::Width;

    fn skewed_trace(n: usize) -> Trace {
        // 70% one hot value, the rest spread over a small set.
        let mut vals = Vec::with_capacity(n);
        let mut x = 7u64;
        for i in 0..n {
            if i % 10 < 7 {
                vals.push(0xAAAA_0001);
            } else {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(3);
                vals.push(0xBB00 + (x >> 60));
            }
        }
        Trace::from_values(Width::W32, vals)
    }

    #[test]
    fn huffman_beats_fixed_on_skewed_traffic() {
        let r = huffman_study(&skewed_trace(20_000), 64, 8);
        assert!(
            r.huffman_bits_per_value < 8.0,
            "{}",
            r.huffman_bits_per_value
        );
        assert!(r.huffman_bits_per_value >= r.entropy_bits_per_value - 1e-9);
        // Kraft/optimality sanity: within 1 bit of entropy (plus escape
        // overhead, absent here since the dictionary covers everything).
        assert!(r.huffman_bits_per_value < r.entropy_bits_per_value + 1.0);
        assert_eq!(r.escape_fraction, 0.0);
    }

    #[test]
    fn uniform_random_traffic_does_not_compress() {
        let mut vals = Vec::new();
        let mut x = 3u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(9);
            vals.push(x >> 16);
        }
        let trace = Trace::from_values(Width::W32, vals);
        let r = huffman_study(&trace, 64, 8);
        // Nearly everything escapes: code bits exceed the fixed width.
        assert!(r.escape_fraction > 0.95);
        assert!(r.huffman_bits_per_value > 32.0);
        assert!(
            r.cycles_per_value > 4.0,
            "8 lanes need > 4 cycles for 32+ bits"
        );
    }

    #[test]
    fn wider_lane_groups_cut_cycles() {
        let t = skewed_trace(5_000);
        let narrow = huffman_study(&t, 64, 4);
        let wide = huffman_study(&t, 64, 16);
        assert!(wide.cycles < narrow.cycles);
        assert!((narrow.cycles_per_value - narrow.cycles as f64 / 5_000.0).abs() < 1e-12);
    }

    #[test]
    fn constant_trace_compresses_to_one_bit() {
        let t = Trace::from_values(Width::W32, std::iter::repeat_n(42u64, 1000));
        let r = huffman_study(&t, 4, 8);
        assert!((r.huffman_bits_per_value - 1.0).abs() < 1e-9);
        assert_eq!(r.entropy_bits_per_value, 0.0);
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let t = skewed_trace(5_000);
        let mut counts: HashMap<Word, u64> = HashMap::new();
        for v in t.iter() {
            *counts.entry(v).or_insert(0) += 1;
        }
        let symbol_counts: Vec<(Symbol, u64)> = {
            let mut sc: Vec<(Symbol, u64)> = counts
                .iter()
                .map(|(&v, &c)| (Symbol::Value(v), c))
                .collect();
            sc.sort_by_key(|&(s, _)| match s {
                Symbol::Value(v) => v,
                Symbol::Escape => u64::MAX,
            });
            sc
        };
        let lengths = huffman_lengths(&symbol_counts);
        let codes = canonical_codes(&lengths);
        for (i, &(_, l1, c1)) in codes.iter().enumerate() {
            for &(_, l2, c2) in codes.iter().skip(i + 1) {
                let (short, long) = if l1 <= l2 {
                    ((l1, c1), (l2, c2))
                } else {
                    ((l2, c2), (l1, c1))
                };
                assert_ne!(
                    short.1,
                    long.1 >> (long.0 - short.0),
                    "code {c1:b} is a prefix of {c2:b}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_rejected() {
        let _ = huffman_study(&Trace::new(Width::W32), 4, 8);
    }

    #[test]
    fn book_roundtrips_with_escapes() {
        let t = skewed_trace(5_000);
        // A tiny dictionary forces plenty of escapes.
        let book = HuffmanBook::from_trace(&t, 3);
        let bits = book.encode(&t);
        let decoded = book.decode(&bits, t.len()).expect("lossless");
        assert_eq!(decoded, t.values());
    }

    #[test]
    fn decode_rejects_truncated_stream() {
        let t = skewed_trace(100);
        let book = HuffmanBook::from_trace(&t, 8);
        let mut bits = book.encode(&t);
        bits.truncate(bits.len() / 2);
        assert!(book.decode(&bits, t.len()).is_err());
    }

    #[test]
    fn book_reports_entropy_and_membership() {
        let t = Trace::from_values(Width::W32, [5u64, 5, 9, 9]);
        let book = HuffmanBook::from_trace(&t, 2);
        assert!((book.entropy_bits() - 1.0).abs() < 1e-12);
        assert!(book.contains(5));
        assert!(!book.contains(123));
    }
}
