//! Robustness wrappers: desync detection and bounded recovery for
//! stateful transcoder pairs.
//!
//! The paper's schemes assume an error-free bus; a single transient bit
//! flip silently desynchronizes the two FSMs forever. This module adds
//! three composable countermeasures, each of which wraps any existing
//! [`Encoder`]/[`Decoder`] pair:
//!
//! * **Parity sideband** ([`parity_wrap`]) — one extra bus line carries
//!   even parity over the inner lines, so any odd number of flipped
//!   lines is *detected in the same cycle* instead of silently
//!   corrupting the stream.
//! * **Epoch resynchronization** ([`epoch_wrap`]) — both ends flush
//!   their predictor state every `interval` words, bounding how long a
//!   desync can persist to one epoch. The flush is free on the wire
//!   (no extra lines) but costs energy: post-flush words miss the
//!   predictor, and the extra transitions land in the ordinary
//!   `wiremodel::Activity` accounting; `hwmodel` prices the per-flush tax via
//!   `CodingOutcome::with_resync_tax`.
//! * **Bounded-recovery decode** ([`RecoveringDecoder`]) — turns a
//!   fatal [`RoundTripError`] into a counted resync event: the inner
//!   decoder is reset, a best-effort word is emitted, and decoding
//!   continues. Combined with [`epoch_wrap`], the pair provably
//!   reconverges at the next epoch boundary.
//!
//! The adversary these are measured against lives in the `busfault`
//! crate; `repro fault-sweep` reports the resulting
//! corruption/detection/energy trade-offs.
//!
//! # Example
//!
//! ```
//! use buscoding::predict::{window_codec, WindowConfig};
//! use buscoding::robust::{epoch_wrap, RecoveringDecoder};
//! use buscoding::{verify_roundtrip, Decoder};
//! use bustrace::{Trace, Width};
//!
//! let (enc, dec) = window_codec(WindowConfig::new(Width::W32, 8));
//! let dec = RecoveringDecoder::new(dec, Width::W32);
//! let (mut enc, mut dec) = epoch_wrap(enc, dec, 64);
//! let trace = Trace::from_values(Width::W32, (0..300u64).map(|i| i * 3 % 17));
//! verify_roundtrip(&mut enc, &mut dec, &trace).unwrap();
//! assert_eq!(dec.inner().resync_events(), 0); // clean channel: no recovery needed
//! ```

use bustrace::{Width, Word};

use crate::codec::{Decoder, Encoder, RoundTripError};

/// Even parity over the low `lines` bits of `state`.
fn parity_of(state: u64, lines: u32) -> u64 {
    let mask = if lines >= 64 {
        u64::MAX
    } else {
        (1u64 << lines) - 1
    };
    u64::from((state & mask).count_ones() % 2)
}

/// Encoder half of the parity sideband: drives the inner encoder's
/// lines plus one parity line above them.
#[derive(Debug, Clone)]
pub struct ParityEncoder<E> {
    inner: E,
}

/// Decoder half of the parity sideband: checks the parity line before
/// the inner decoder sees the state, so a detected upset cannot
/// corrupt the inner FSM.
#[derive(Debug, Clone)]
pub struct ParityDecoder<D> {
    inner: D,
}

/// Wraps a transcoder pair with a one-line even-parity sideband.
///
/// Any odd number of simultaneously flipped lines (in particular every
/// single-event upset) is detected in the cycle it occurs, with the
/// inner decoder state left untouched. Even-weight upsets still pass;
/// parity is a detector, not a corrector.
///
/// # Panics
///
/// Panics if the inner pair is mismatched or already drives 64 lines
/// (no room for the sideband).
pub fn parity_wrap<E: Encoder, D: Decoder>(
    encoder: E,
    decoder: D,
) -> (ParityEncoder<E>, ParityDecoder<D>) {
    assert_eq!(
        encoder.lines(),
        decoder.lines(),
        "parity_wrap requires a matched encoder/decoder pair"
    );
    assert!(
        encoder.lines() < 64,
        "parity sideband needs a free line; inner codec already drives 64"
    );
    (
        ParityEncoder { inner: encoder },
        ParityDecoder { inner: decoder },
    )
}

impl<E: Encoder> Encoder for ParityEncoder<E> {
    fn lines(&self) -> u32 {
        self.inner.lines() + 1
    }

    fn encode(&mut self, value: Word) -> u64 {
        let state = self.inner.encode(value);
        let lines = self.inner.lines();
        state | (parity_of(state, lines) << lines)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

impl<D: Decoder> Decoder for ParityDecoder<D> {
    fn lines(&self) -> u32 {
        self.inner.lines() + 1
    }

    fn decode(&mut self, bus_state: u64) -> Result<Word, RoundTripError> {
        let lines = self.inner.lines();
        let payload = bus_state & !(1u64 << lines);
        let observed = (bus_state >> lines) & 1;
        if observed != parity_of(payload, lines) {
            PROBE_PARITY.inc();
            return Err(RoundTripError::new("parity mismatch on bus state"));
        }
        self.inner.decode(payload)
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

static PROBE_PARITY: busprobe::StaticCounter =
    busprobe::StaticCounter::new("buscoding.robust.parity_errors");
static PROBE_FLUSHES: busprobe::StaticCounter =
    busprobe::StaticCounter::new("buscoding.robust.epoch_flushes");
static PROBE_RESYNCS: busprobe::StaticCounter =
    busprobe::StaticCounter::new("buscoding.robust.resyncs");

/// Encoder half of epoch resynchronization.
#[derive(Debug, Clone)]
pub struct EpochEncoder<E> {
    inner: E,
    interval: u64,
    count: u64,
    flushes: u64,
}

/// Decoder half of epoch resynchronization.
#[derive(Debug, Clone)]
pub struct EpochDecoder<D> {
    inner: D,
    interval: u64,
    count: u64,
}

/// Wraps a transcoder pair with periodic predictor-state flushes.
///
/// Every `interval` words both ends reset their inner FSM to the
/// power-on state before encoding/decoding the next word. Because the
/// bus carries *absolute* line states, the two FSMs' post-flush
/// behaviour depends only on the words that follow the boundary — so a
/// desynchronized pair provably reconverges at the next boundary, at
/// most `interval - 1` words after the upset.
///
/// The decoder counts *observed words*, not successful decodes, so it
/// stays in lockstep with the encoder even while desynchronized.
///
/// # Panics
///
/// Panics if `interval` is zero or the pair is mismatched.
pub fn epoch_wrap<E: Encoder, D: Decoder>(
    encoder: E,
    decoder: D,
    interval: u64,
) -> (EpochEncoder<E>, EpochDecoder<D>) {
    assert!(interval > 0, "epoch interval must be at least 1");
    assert_eq!(
        encoder.lines(),
        decoder.lines(),
        "epoch_wrap requires a matched encoder/decoder pair"
    );
    (
        EpochEncoder {
            inner: encoder,
            interval,
            count: 0,
            flushes: 0,
        },
        EpochDecoder {
            inner: decoder,
            interval,
            count: 0,
        },
    )
}

impl<E> EpochEncoder<E> {
    /// Flushes performed since the last [`reset`](Encoder::reset) —
    /// multiply by the per-flush energy to price the resync tax.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// The configured epoch interval in words.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// The wrapped encoder, for post-run inspection.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<D> EpochDecoder<D> {
    /// The wrapped decoder, for post-run inspection.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<E: Encoder> Encoder for EpochEncoder<E> {
    fn lines(&self) -> u32 {
        self.inner.lines()
    }

    fn encode(&mut self, value: Word) -> u64 {
        if self.count > 0 && self.count.is_multiple_of(self.interval) {
            self.inner.reset();
            self.flushes += 1;
            PROBE_FLUSHES.inc();
        }
        self.count += 1;
        self.inner.encode(value)
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.count = 0;
        self.flushes = 0;
    }
}

impl<D: Decoder> Decoder for EpochDecoder<D> {
    fn lines(&self) -> u32 {
        self.inner.lines()
    }

    fn decode(&mut self, bus_state: u64) -> Result<Word, RoundTripError> {
        if self.count > 0 && self.count.is_multiple_of(self.interval) {
            self.inner.reset();
        }
        self.count += 1;
        self.inner.decode(bus_state)
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.count = 0;
    }
}

/// Bounded-recovery wrapper: converts fatal decode errors into counted
/// resync events.
///
/// On an inner [`RoundTripError`] the wrapper resets the inner decoder,
/// emits a best-effort word (the data lines masked to the word width —
/// correct whenever the observed state happens to be raw data), and
/// keeps decoding. The stream stays lossy until the encoder's state is
/// next reachable from power-on; under [`epoch_wrap`] that is the next
/// epoch boundary, making recovery latency bounded by the interval.
///
/// Compose it *inside* the epoch wrapper —
/// `epoch_wrap(enc, RecoveringDecoder::new(dec, w), n)` — so the local
/// reset it performs on an error clears only the predictor FSM. Wrapped
/// the other way around, a recovery would also zero the epoch
/// decoder's word counter, knocking its flush boundaries out of
/// lockstep with the encoder's and defeating the bounded-recovery
/// guarantee.
#[derive(Debug, Clone)]
pub struct RecoveringDecoder<D> {
    inner: D,
    width: Width,
    resyncs: u64,
}

impl<D: Decoder> RecoveringDecoder<D> {
    /// Wraps `inner`, recovering decoded words of the given width.
    pub fn new(inner: D, width: Width) -> Self {
        RecoveringDecoder {
            inner,
            width,
            resyncs: 0,
        }
    }

    /// Resync events (inner decode errors absorbed) since construction.
    ///
    /// Deliberately survives [`reset`](Decoder::reset): the epoch
    /// wrapper's periodic flush resets the whole decoder stack, and a
    /// monitoring statistic that vanished at every flush would be
    /// useless. The FSM state is cleared; the tally is not.
    pub fn resync_events(&self) -> u64 {
        self.resyncs
    }

    /// The wrapped decoder, for post-run inspection.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: Decoder> Decoder for RecoveringDecoder<D> {
    fn lines(&self) -> u32 {
        self.inner.lines()
    }

    fn decode(&mut self, bus_state: u64) -> Result<Word, RoundTripError> {
        match self.inner.decode(bus_state) {
            Ok(word) => Ok(word),
            Err(_) => {
                self.resyncs += 1;
                PROBE_RESYNCS.inc();
                self.inner.reset();
                Ok(bus_state & self.width.mask())
            }
        }
    }

    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{evaluate, verify_roundtrip};
    use crate::identity::IdentityCodec;
    use crate::predict::{stride_codec, window_codec, StrideConfig, WindowConfig};
    use bustrace::Trace;

    fn trace(n: u64) -> Trace {
        Trace::from_values(Width::W32, (0..n).map(|i| (i * 7) % 23 + (i % 3) * 1000))
    }

    #[test]
    fn parity_roundtrip_is_lossless() {
        let (enc, dec) = window_codec(WindowConfig::new(Width::W32, 8));
        let (mut enc, mut dec) = parity_wrap(enc, dec);
        assert_eq!(enc.lines(), 35); // 32 data + 2 control + 1 parity
        assert_eq!(dec.lines(), 35);
        verify_roundtrip(&mut enc, &mut dec, &trace(500)).unwrap();
    }

    #[test]
    fn parity_detects_any_single_flip_immediately() {
        let (enc, dec) = window_codec(WindowConfig::new(Width::W32, 8));
        let (mut enc, mut dec) = parity_wrap(enc, dec);
        let t = trace(50);
        for flip_line in 0..enc.lines() {
            enc.reset();
            dec.reset();
            for (i, v) in t.iter().enumerate() {
                let state = enc.encode(v);
                if i == 20 {
                    let got = dec.decode(state ^ (1u64 << flip_line));
                    assert!(got.is_err(), "flip on line {flip_line} went undetected");
                    break;
                }
                dec.decode(state).unwrap();
            }
        }
    }

    #[test]
    fn parity_line_does_not_disturb_inner_decode() {
        // A flipped state rejected by parity must leave the inner FSM
        // untouched: the rest of the stream still decodes cleanly.
        let (enc, dec) = window_codec(WindowConfig::new(Width::W32, 8));
        let (mut enc, mut dec) = parity_wrap(enc, dec);
        for (i, v) in trace(100).iter().enumerate() {
            let state = enc.encode(v);
            if i == 10 {
                assert!(dec.decode(state ^ 1).is_err());
            }
            assert_eq!(dec.decode(state).unwrap(), v);
        }
    }

    #[test]
    #[should_panic(expected = "free line")]
    fn parity_rejects_full_bus() {
        let w64 = Width::new(64).unwrap();
        let _ = parity_wrap(IdentityCodec::new(w64), IdentityCodec::new(w64));
    }

    #[test]
    fn epoch_roundtrip_is_lossless() {
        for interval in [1, 7, 64] {
            let (enc, dec) = stride_codec(StrideConfig::new(Width::W32, 4));
            let (mut enc, mut dec) = epoch_wrap(enc, dec, interval);
            verify_roundtrip(&mut enc, &mut dec, &trace(300)).unwrap();
        }
    }

    #[test]
    fn epoch_flush_count_matches_interval() {
        let (enc, dec) = window_codec(WindowConfig::new(Width::W32, 8));
        let (mut enc, _dec) = epoch_wrap(enc, dec, 64);
        let _ = evaluate(&mut enc, &trace(1000));
        // evaluate() resets first; flushes before words 64, 128, ..., 960.
        assert_eq!(enc.flushes(), 15);
        assert_eq!(enc.interval(), 64);
        enc.reset();
        assert_eq!(enc.flushes(), 0);
    }

    #[test]
    fn epoch_bounds_desync_to_one_epoch() {
        let interval = 32u64;
        let (enc, dec) = window_codec(WindowConfig::new(Width::W32, 8));
        let (mut enc, mut dec) = epoch_wrap(enc, dec, interval);
        let t = trace(200);
        let flip_at = 40usize;
        let mut wrong_after_boundary = 0u64;
        for (i, v) in t.iter().enumerate() {
            let mut state = enc.encode(v);
            if i == flip_at {
                state ^= 1 << 2;
            }
            let got = dec.decode(state);
            let next_boundary = (flip_at as u64 / interval + 1) * interval;
            if (i as u64) >= next_boundary && got != Ok(v) {
                wrong_after_boundary += 1;
            }
        }
        assert_eq!(
            wrong_after_boundary, 0,
            "pair failed to reconverge at the epoch boundary"
        );
    }

    #[test]
    fn epoch_decoder_counts_observed_words_even_on_error() {
        // Feed garbage mid-epoch; the decoder's word counter must still
        // advance so the next flush lands on the same boundary as the
        // encoder's.
        let interval = 16u64;
        let (enc, dec) = window_codec(WindowConfig::new(Width::W32, 8));
        let (mut enc, mut dec) = epoch_wrap(enc, dec, interval);
        let t = trace(64);
        for (i, v) in t.iter().enumerate() {
            let state = enc.encode(v);
            // Corrupt a whole epoch's worth of states.
            let observed = if (4..12).contains(&i) {
                state ^ 0b101
            } else {
                state
            };
            let got = dec.decode(observed);
            if i as u64 >= interval {
                assert_eq!(got, Ok(v), "not reconverged at word {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn epoch_rejects_zero_interval() {
        let (enc, dec) = window_codec(WindowConfig::new(Width::W32, 8));
        let _ = epoch_wrap(enc, dec, 0);
    }

    #[test]
    fn recovering_decoder_never_errors() {
        let (enc, dec) = window_codec(WindowConfig::new(Width::W32, 8));
        let mut enc = enc;
        let mut dec = RecoveringDecoder::new(dec, Width::W32);
        for (i, v) in trace(100).iter().enumerate() {
            let mut state = enc.encode(v);
            if i % 9 == 3 {
                // Force the invalid control pattern 0b11: always an
                // inner decode error, hence a resync event.
                state |= 0b11 << 32;
            }
            assert!(dec.decode(state).is_ok());
        }
        let events = dec.resync_events();
        assert!(events > 0);
        // The tally is a monitoring statistic: reset() clears the FSM
        // but not the count.
        dec.reset();
        assert_eq!(dec.resync_events(), events);
    }

    #[test]
    fn recovering_epoch_pair_reconverges() {
        // Recovery inside, epoch outside: a mid-epoch local reset must
        // not disturb the flush boundaries.
        let interval = 32u64;
        for flip_line in [0u32, 5, 31, 32, 33] {
            let (enc, dec) = stride_codec(StrideConfig::new(Width::W32, 4));
            let dec = RecoveringDecoder::new(dec, Width::W32);
            let (mut enc, mut dec) = epoch_wrap(enc, dec, interval);
            let t = trace(160);
            let flip_at = 10u64;
            for (i, v) in t.iter().enumerate() {
                let mut state = enc.encode(v);
                if i as u64 == flip_at {
                    state ^= 1 << flip_line;
                }
                let got = dec.decode(state).unwrap();
                if i as u64 >= (flip_at / interval + 1) * interval {
                    assert_eq!(got, v, "line {flip_line}: not reconverged at word {i}");
                }
            }
        }
    }

    #[test]
    fn recovery_outside_epoch_breaks_lockstep_documentation() {
        // The mis-ordering the docs warn about: RecoveringDecoder
        // around EpochDecoder zeroes the epoch counter on recovery.
        // This test pins the *correct* ordering's guarantee instead:
        // flushes still fire every `interval` encoder words.
        let interval = 16u64;
        let (enc, dec) = window_codec(WindowConfig::new(Width::W32, 8));
        let dec = RecoveringDecoder::new(dec, Width::W32);
        let (mut enc, mut dec) = epoch_wrap(enc, dec, interval);
        for (i, v) in trace(64).iter().enumerate() {
            let mut state = enc.encode(v);
            if i == 3 {
                state |= 0b11 << 32; // force an inner error and local reset
            }
            let _ = dec.decode(state).unwrap();
        }
        assert_eq!(enc.flushes(), 3); // before words 16, 32, 48
        assert!(dec.inner().resync_events() >= 1);
    }

    #[test]
    fn stacked_wrappers_compose() {
        // parity outside epoch: detection plus bounded recovery.
        let (enc, dec) = window_codec(WindowConfig::new(Width::W32, 8));
        let (enc, dec) = epoch_wrap(enc, dec, 64);
        let (mut enc, mut dec) = parity_wrap(enc, dec);
        verify_roundtrip(&mut enc, &mut dec, &trace(400)).unwrap();
        assert_eq!(enc.lines(), 35);
    }
}
