//! The scheme factory registry: construct any coding scheme in this
//! crate from its display name.
//!
//! Every scheme already carries a canonical display name (the strings
//! `bench` prints in its tables: `window(8)`, `context-value(28+8
//! d4096)`, …). Before this module, each consumer that needed to build
//! schemes *by name* — the bench harness, the adaptive controller, ad
//! hoc tools — kept its own construction table. [`scheme_by_name`] is
//! the one shared table: it parses a canonical name and returns a fresh
//! [`Transcoder`] pair, so candidate lists can be plain `&str` slices
//! and two consumers can never disagree about what `stride(8)` means.
//!
//! # Example
//!
//! ```
//! use buscoding::{scheme_by_name, verify_roundtrip};
//! use bustrace::{Trace, Width};
//!
//! let mut pair = scheme_by_name("window(8)", Width::W32).unwrap();
//! let trace = Trace::from_values(Width::W32, (0..100u64).map(|i| i % 7));
//! let (enc, dec) = pair.split_mut();
//! verify_roundtrip(enc, dec, &trace).unwrap();
//! ```

use std::error::Error;
use std::fmt;

use bustrace::Width;

use std::sync::Arc;

use crate::codec::Transcoder;
use crate::energy::CostModel;
use crate::identity::IdentityCodec;
use crate::inversion::{InversionDecoder, InversionEncoder, PatternSet};
use crate::predict::trained::{
    artifact_dir, available_artifacts, load_named_artifact, trained_codec, ArtifactError,
};
use crate::predict::{
    context_transition_codec, context_value_codec, fcm_codec, stride_codec, window_codec,
    ContextConfig, FcmConfig, StrideConfig, WindowConfig,
};
use crate::workzone::{WorkZoneDecoder, WorkZoneEncoder};

/// Error returned when a scheme name cannot be parsed, names an unknown
/// family, or names a `trained:` artifact that cannot be loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownScheme {
    name: String,
    artifact: Option<ArtifactError>,
}

impl UnknownScheme {
    /// The offending name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// For `trained:<artifact>` names, why the artifact failed to load
    /// (`None` for ordinary unknown schemes). Front ends use this to
    /// distinguish "no such scheme grammar" from "scheme grammar fine,
    /// artifact missing or corrupt".
    pub fn artifact_error(&self) -> Option<&ArtifactError> {
        self.artifact.as_ref()
    }
}

impl fmt::Display for UnknownScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.artifact {
            Some(err) => write!(f, "scheme {:?}: {err}", self.name),
            None => write!(
                f,
                "unknown coding scheme {:?} (expected one of: {})",
                self.name,
                scheme_candidates().join(", ")
            ),
        }
    }
}

impl Error for UnknownScheme {}

/// The name grammar [`scheme_by_name`] accepts, one pattern per scheme
/// family.
pub const SCHEME_PATTERNS: &[&str] = &[
    "identity",
    "inversion(<chunks>ch l<lambda>)",
    "stride(<strides>)",
    "window(<entries>)",
    "context-value(<table>+<shift> d<divide>)",
    "context-transition(<table>+<shift> d<divide>)",
    "workzone(<zones>)",
    "fcm(<order> 2^<table_bits>)",
    "trained:<artifact>",
];

/// Every name [`scheme_by_name`] would currently accept: the static
/// [`SCHEME_PATTERNS`] grammar plus a concrete `trained:<name>` entry
/// per artifact present in the artifact directory. When the directory
/// is absent (nothing was ever trained) only the static patterns are
/// listed, so error messages never advertise schemes that cannot load.
pub fn scheme_candidates() -> Vec<String> {
    let mut candidates: Vec<String> = SCHEME_PATTERNS.iter().map(|s| s.to_string()).collect();
    for name in available_artifacts(&artifact_dir()) {
        candidates.push(format!("trained:{name}"));
    }
    candidates
}

/// Splits `name` into a family and the text between its parentheses;
/// a name without parentheses yields an empty argument string.
fn family_and_args(name: &str) -> Option<(&str, &str)> {
    match name.find('(') {
        None => Some((name, "")),
        Some(open) => {
            let close = name.rfind(')')?;
            if close != name.len() - 1 || close < open {
                return None;
            }
            Some((&name[..open], &name[open + 1..close]))
        }
    }
}

/// Parses `"<table>+<shift> d<divide>"` (the context-scheme argument
/// form).
fn parse_context_args(args: &str) -> Option<(usize, usize, u64)> {
    let (sizes, divide) = args.split_once(' ')?;
    let (table, shift) = sizes.split_once('+')?;
    Some((
        table.parse().ok()?,
        shift.parse().ok()?,
        divide.strip_prefix('d')?.parse().ok()?,
    ))
}

/// Parses `"<chunks>ch l<lambda>"` (the inversion-scheme argument form).
fn parse_inversion_args(args: &str) -> Option<(u32, f64)> {
    let (chunks, lambda) = args.split_once(' ')?;
    let lambda: f64 = lambda.strip_prefix('l')?.parse().ok()?;
    if !lambda.is_finite() || lambda < 0.0 {
        return None;
    }
    Some((chunks.strip_suffix("ch")?.parse().ok()?, lambda))
}

/// Builds a fresh encoder/decoder pair for the scheme named by its
/// canonical display name, at the given bus width.
///
/// Calling twice with the same arguments yields two independent pairs
/// in their power-on state — the registry is a factory, not a cache.
///
/// # Errors
///
/// Returns [`UnknownScheme`] when the name does not match any
/// [`SCHEME_PATTERNS`] entry or its parameters fail to parse.
pub fn scheme_by_name(name: &str, width: Width) -> Result<Transcoder, UnknownScheme> {
    let unknown = || UnknownScheme {
        name: name.to_string(),
        artifact: None,
    };
    // `trained:` names carry no parenthesized arguments, so they are
    // resolved before the family grammar: load the named artifact from
    // the artifact directory and deploy it.
    if let Some(artifact) = name.strip_prefix("trained:") {
        let load = load_named_artifact(&artifact_dir(), artifact).and_then(|tables| {
            if tables.width != width {
                Err(ArtifactError::Malformed(format!(
                    "artifact {artifact:?} was trained at {} but the bus is {width}",
                    tables.width
                )))
            } else {
                Ok(tables)
            }
        });
        return match load {
            Ok(tables) => {
                let (e, d) = trained_codec(Arc::new(tables), CostModel::default());
                Ok(Transcoder::new(name, e, d))
            }
            Err(err) => Err(UnknownScheme {
                name: name.to_string(),
                artifact: Some(err),
            }),
        };
    }
    let (family, args) = family_and_args(name).ok_or_else(unknown)?;
    let pair = match family {
        "identity" if args.is_empty() => {
            Transcoder::new(name, IdentityCodec::new(width), IdentityCodec::new(width))
        }
        "window" => {
            let entries: usize = args.parse().map_err(|_| unknown())?;
            let (e, d) = window_codec(WindowConfig::new(width, entries));
            Transcoder::new(name, e, d)
        }
        "stride" => {
            let strides: usize = args.parse().map_err(|_| unknown())?;
            let (e, d) = stride_codec(StrideConfig::new(width, strides));
            Transcoder::new(name, e, d)
        }
        "context-value" => {
            let (table, shift, divide) = parse_context_args(args).ok_or_else(unknown)?;
            let cfg = ContextConfig::new(width, table, shift).with_divide_period(divide);
            let (e, d) = context_value_codec(cfg);
            Transcoder::new(name, e, d)
        }
        "context-transition" => {
            let (table, shift, divide) = parse_context_args(args).ok_or_else(unknown)?;
            let cfg = ContextConfig::new(width, table, shift).with_divide_period(divide);
            let (e, d) = context_transition_codec(cfg);
            Transcoder::new(name, e, d)
        }
        "inversion" => {
            let (chunks, lambda) = parse_inversion_args(args).ok_or_else(unknown)?;
            let patterns = if chunks <= 1 {
                PatternSet::bus_invert(width)
            } else {
                PatternSet::chunked(width, chunks)
            };
            Transcoder::new(
                name,
                InversionEncoder::new(patterns.clone(), CostModel::new(lambda)),
                InversionDecoder::new(patterns),
            )
        }
        "workzone" => {
            let zones: usize = args.parse().map_err(|_| unknown())?;
            Transcoder::new(
                name,
                WorkZoneEncoder::new(width, zones),
                WorkZoneDecoder::new(width, zones),
            )
        }
        "fcm" => {
            let (order, bits) = args.split_once(' ').ok_or_else(unknown)?;
            let order: usize = order.parse().map_err(|_| unknown())?;
            let bits: u32 = bits
                .strip_prefix("2^")
                .and_then(|b| b.parse().ok())
                .ok_or_else(unknown)?;
            let (e, d) = fcm_codec(FcmConfig::new(width, order, bits));
            Transcoder::new(name, e, d)
        }
        _ => return Err(unknown()),
    };
    Ok(pair)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::verify_roundtrip;
    use bustrace::Trace;

    fn mixed_trace(n: u64) -> Trace {
        Trace::from_values(Width::W32, (0..n).map(|i| (i * 7) % 23 + (i % 3) * 0x1000))
    }

    #[test]
    fn every_family_round_trips() {
        let names = [
            "identity",
            "inversion(1ch l1)",
            "inversion(2ch l0.5)",
            "stride(8)",
            "window(8)",
            "context-value(28+8 d4096)",
            "context-transition(28+8 d4096)",
            "workzone(4)",
            "fcm(2 2^12)",
        ];
        let trace = mixed_trace(400);
        for name in names {
            let mut pair =
                scheme_by_name(name, Width::W32).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(pair.name(), name);
            let (enc, dec) = pair.split_mut();
            verify_roundtrip(enc, dec, &trace).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn two_builds_are_independent_fresh_pairs() {
        let trace = mixed_trace(100);
        let mut a = scheme_by_name("window(8)", Width::W32).unwrap();
        let mut b = scheme_by_name("window(8)", Width::W32).unwrap();
        // Warping `a`'s state must not affect `b`.
        for v in trace.iter() {
            let _ = a.encode(v);
        }
        let states: Vec<u64> = trace.iter().map(|v| b.encode(v)).collect();
        let mut fresh = scheme_by_name("window(8)", Width::W32).unwrap();
        let fresh_states: Vec<u64> = trace.iter().map(|v| fresh.encode(v)).collect();
        assert_eq!(states, fresh_states);
    }

    #[test]
    fn unknown_names_are_rejected_with_patterns() {
        for bad in [
            "windoww(8)",
            "window(8",
            "window(x)",
            "identity(3)",
            "inversion(2ch)",
            "inversion(2ch l-1)",
            "fcm(2 12)",
            "context-value(28 d4096)",
            "",
        ] {
            let err = scheme_by_name(bad, Width::W32).expect_err(bad);
            assert_eq!(err.name(), bad);
            assert!(err.to_string().contains("window(<entries>)"), "{err}");
        }
    }

    /// The one test in this crate that touches the process-global
    /// artifact directory — every scenario runs sequentially inside it
    /// so parallel tests can never observe a half-configured registry.
    #[test]
    fn trained_schemes_resolve_through_the_registry() {
        use crate::predict::trained::{
            save_artifact, set_artifact_dir, ArtifactError, SignatureTable, TrainedTables,
        };

        let dir = std::env::temp_dir().join(format!("trained-reg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        set_artifact_dir(&dir);

        // Directory absent: candidates stay static, trained names miss.
        assert_eq!(
            scheme_candidates().len(),
            SCHEME_PATTERNS.len(),
            "no artifacts should be advertised before training"
        );
        let err = scheme_by_name("trained:demo", Width::W32).unwrap_err();
        assert_eq!(err.name(), "trained:demo");
        assert!(matches!(
            err.artifact_error(),
            Some(ArtifactError::Missing { .. })
        ));
        assert!(err.to_string().contains("not found"), "{err}");
        // Plain unknown schemes still have no artifact error.
        assert_eq!(
            scheme_by_name("windoww(8)", Width::W32)
                .unwrap_err()
                .artifact_error(),
            None
        );

        // Train (well, hand-write) an artifact and resolve it.
        let tables = TrainedTables {
            name: "demo".into(),
            width: Width::W32,
            trained_values: 100,
            trained_traces: 1,
            codebook: vec![1, 2, 3],
            signatures: vec![SignatureTable {
                order: 1,
                entries: Vec::new(),
            }],
            strides: vec![4],
        };
        save_artifact(&tables, &dir).unwrap();
        let mut pair = scheme_by_name("trained:demo", Width::W32).unwrap();
        assert_eq!(pair.name(), "trained:demo");
        let trace = mixed_trace(300);
        let (enc, dec) = pair.split_mut();
        verify_roundtrip(enc, dec, &trace).unwrap();

        // The candidate list now advertises the concrete artifact.
        assert!(scheme_candidates().contains(&"trained:demo".to_string()));

        // Width mismatch is a typed artifact error, not a panic.
        let err = scheme_by_name("trained:demo", Width::new(16).unwrap()).unwrap_err();
        assert!(matches!(
            err.artifact_error(),
            Some(ArtifactError::Malformed(_))
        ));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn width_is_respected() {
        let w16 = Width::new(16).unwrap();
        let pair = scheme_by_name("stride(4)", w16).unwrap();
        assert_eq!(pair.lines(), 18); // 16 data + 2 control
        let id = scheme_by_name("identity", w16).unwrap();
        assert_eq!(id.lines(), 16);
    }
}
