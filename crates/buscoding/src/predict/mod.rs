//! Prediction-based transcoding (Figure 2 and Sections 4.3, 5.3).
//!
//! All of the paper's stateful schemes — strided, window-based, and
//! context-based — share one architecture:
//!
//! 1. identical [`Predictor`] FSMs run at both ends of the bus, fed only
//!    by the (decoded) value stream, so they stay synchronized for free;
//! 2. each cycle the predictor offers a confidence-ranked candidate
//!    list; the LAST value is always implicit candidate 0 and earns the
//!    free all-zero code;
//! 3. on a hit, the encoder XORs the rank's codeword (from a
//!    cost-ordered [`CodeBook`]) into the
//!    transition-coded data lines — the top prediction costs *nothing*;
//! 4. on a miss, the raw word (or its complement, whichever moves the
//!    bus more cheaply) is driven absolutely;
//! 5. two control lines tell the decoder which of the three cases
//!    happened.
//!
//! The engine here ([`PredictiveEncoder`] / [`PredictiveDecoder`])
//! implements 2–5 once; the concrete predictors plug in.

mod context;
mod fcm;
mod stride;
pub mod trained;
mod window;

pub use context::{
    context_transition_codec, context_value_codec, ContextConfig, TransitionContextPredictor,
    ValueContextPredictor,
};
pub use fcm::{fcm_codec, FcmConfig, FcmPredictor};
pub use stride::{stride_codec, StrideConfig, StridePredictor};
pub use trained::{trained_codec, ArtifactError, SignatureTable, TrainedPredictor, TrainedTables};
pub use window::{window_codec, WindowConfig, WindowPredictor};

use bustrace::{Width, Word};

use crate::codebook::CodeBook;
use crate::codec::{Decoder, Encoder, RoundTripError};
use crate::energy::CostModel;

/// Control-line state: the bus carries a prediction codeword
/// (transition-coded on the data lines).
const CTRL_PRED: u64 = 0b00;
/// Control-line state: the data lines carry the raw word.
const CTRL_RAW: u64 = 0b01;
/// Control-line state: the data lines carry the complemented word.
const CTRL_INV: u64 = 0b10;

/// A value predictor usable on both ends of a bus.
///
/// Implementations must be *deterministic functions of the observed
/// value stream*: the encoder and decoder each run their own instance,
/// and synchronization rests entirely on both instances seeing the same
/// `observe` calls.
///
/// Candidates are ranked by confidence (best first). Duplicate values in
/// the candidate list are permitted (the strided predictor produces them
/// naturally); first-match semantics keep the two ends consistent. The
/// engine separately maintains the LAST value as implicit rank 0, and
/// skips candidates equal to it.
pub trait Predictor: std::fmt::Debug {
    /// A short human-readable identifier, e.g. `"window(8)"`.
    fn name(&self) -> String;

    /// The most candidates [`candidate`](Self::candidate) can ever
    /// return; fixes the codebook size.
    fn max_candidates(&self) -> usize;

    /// The `index`-th ranked candidate, or `None` past the current end
    /// of the list.
    fn candidate(&self, index: usize) -> Option<Word>;

    /// The rank of `value` as the engine counts ranks: candidates equal
    /// to `last` are skipped without consuming a rank, the first other
    /// candidate is rank 1, and ranks at or beyond `cap` do not count.
    ///
    /// The default walks [`candidate`](Self::candidate) one index at a
    /// time. Predictors whose candidate list lives in a directly
    /// scannable store override this with an equivalent flat scan — the
    /// rank walk is the single hottest loop in a sweep, and the
    /// override removes a dynamic call plus re-derived bounds checks
    /// per candidate. Overrides MUST return exactly what the default
    /// returns (the `block_equivalence` property tests and the
    /// byte-identity CI smoke pin this).
    fn rank_of(&self, value: Word, last: Option<Word>, cap: usize) -> Option<usize> {
        let mut rank = 1usize;
        let mut index = 0usize;
        while rank < cap {
            let c = self.candidate(index)?;
            index += 1;
            if Some(c) == last {
                continue;
            }
            if c == value {
                return Some(rank);
            }
            rank += 1;
        }
        None
    }

    /// Feeds the confirmed bus word into the predictor's state.
    fn observe(&mut self, value: Word);

    /// Restores the power-on state.
    fn reset(&mut self);
}

/// State shared verbatim between the encoder and decoder halves.
#[derive(Debug, Clone)]
struct EngineState<P> {
    width: Width,
    predictor: P,
    book: CodeBook,
    data: u64,
    control: u64,
    last: Option<Word>,
}

impl<P: Predictor> EngineState<P> {
    fn new(width: Width, predictor: P, cost: CostModel) -> Self {
        let lines = width.bits() + 2;
        assert!(
            lines <= 64,
            "{lines} bus lines exceed the 64-line state word"
        );
        // Rank 0 is the LAST value; the predictor's candidates get the
        // following ranks. The codebook cannot exceed the number of
        // distinct data-line vectors.
        let mut entries = 1 + predictor.max_candidates();
        if let Some(max) = width.value_count() {
            assert!(
                entries as u64 <= max,
                "predictor offers more candidates than a {width} bus has codewords"
            );
            let _ = max;
        }
        entries = entries.max(1);
        let book = CodeBook::new(width.bits(), entries, cost);
        EngineState {
            width,
            predictor,
            book,
            data: 0,
            control: CTRL_PRED,
            last: None,
        }
    }

    fn lines(&self) -> u32 {
        self.width.bits() + 2
    }

    fn assemble(&self) -> u64 {
        self.data | (self.control << self.width.bits())
    }

    fn reset(&mut self) {
        self.predictor.reset();
        self.data = 0;
        self.control = CTRL_PRED;
        self.last = None;
    }

    /// Finds the rank of `value`: 0 for the LAST value, otherwise
    /// 1 + its first position among predictor candidates not equal to
    /// LAST. Ranks at or beyond the codebook size do not count as hits.
    fn rank_of_value(&self, value: Word) -> Option<usize> {
        if self.last == Some(value) {
            return Some(0);
        }
        self.predictor.rank_of(value, self.last, self.book.len())
    }

    /// The value at `rank` (inverse of [`rank_of_value`]); `None` if the
    /// rank is not currently populated.
    fn value_at_rank(&self, rank: usize) -> Option<Word> {
        if rank == 0 {
            return self.last;
        }
        let mut r = 1usize;
        let mut index = 0usize;
        loop {
            let c = self.predictor.candidate(index)?;
            index += 1;
            if Some(c) == self.last {
                continue;
            }
            if r == rank {
                return Some(c);
            }
            r += 1;
        }
    }

    fn advance(&mut self, value: Word) {
        self.predictor.observe(value);
        self.last = Some(value);
    }
}

/// The sending half of a prediction-based transcoder.
///
/// Construct pairs with the scheme helpers ([`window_codec`],
/// [`stride_codec`], [`context_value_codec`],
/// [`context_transition_codec`]) or directly via [`PredictiveEncoder::new`]
/// with any custom [`Predictor`].
#[derive(Debug, Clone)]
pub struct PredictiveEncoder<P> {
    state: EngineState<P>,
    cost: CostModel,
    miss_policy: MissPolicy,
    last_outcome: Option<EncodeOutcome>,
}

impl<P: Predictor> PredictiveEncoder<P> {
    /// Creates an encoder around a predictor. `cost` orders the codebook
    /// and settles raw-vs-inverted decisions on misses.
    ///
    /// # Panics
    ///
    /// Panics if the bus (width + 2 control lines) exceeds 64 lines, or
    /// the predictor offers more candidates than the bus has codewords.
    pub fn new(width: Width, predictor: P, cost: CostModel) -> Self {
        PredictiveEncoder {
            state: EngineState::new(width, predictor, cost),
            cost,
            miss_policy: MissPolicy::default(),
            last_outcome: None,
        }
    }

    /// Replaces the miss policy (builder style).
    #[must_use]
    pub fn with_miss_policy(mut self, policy: MissPolicy) -> Self {
        self.miss_policy = policy;
        self
    }

    /// The predictor's display name.
    pub fn name(&self) -> String {
        self.state.predictor.name()
    }

    /// Read access to the underlying predictor (for instrumentation).
    pub fn predictor(&self) -> &P {
        &self.state.predictor
    }

    /// Statistics hook: whether the most recent word hit a prediction,
    /// and at which rank.
    pub fn last_outcome(&self) -> Option<EncodeOutcome> {
        self.last_outcome
    }
}

/// How the encoder drives the data lines when no prediction matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MissPolicy {
    /// Send the raw word or its complement, whichever moves the bus more
    /// cheaply (the paper's design: Figure 2's "raw inverted" option).
    #[default]
    RawOrInverted,
    /// Always send the raw word — drops one control state and the
    /// inversion comparator; used by the inversion-fallback ablation.
    RawOnly,
}

/// What the encoder did with the most recent word (for hit-rate
/// instrumentation and the hardware operation counting in `hwmodel`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeOutcome {
    /// The word matched the prediction at this rank (0 = LAST value).
    Hit {
        /// Confidence rank whose codeword was transmitted.
        rank: usize,
    },
    /// No prediction matched; the raw word was driven.
    MissRaw,
    /// No prediction matched; the complemented word was driven.
    MissInverted,
}

/// Predictor accuracy probes, shared by every predictive scheme. Static
/// handles memoize the registry lookup, so the enabled-path cost is one
/// atomic add and the disabled path a single flag load.
static PROBE_HIT_LAST: busprobe::StaticCounter =
    busprobe::StaticCounter::new("buscoding.predict.hit_last");
static PROBE_HIT_RANKED: busprobe::StaticCounter =
    busprobe::StaticCounter::new("buscoding.predict.hit_ranked");
static PROBE_MISS: busprobe::StaticCounter = busprobe::StaticCounter::new("buscoding.predict.miss");
static PROBE_HIT_RANK: busprobe::StaticHistogram =
    busprobe::StaticHistogram::new("buscoding.predict.hit_rank", &[0, 1, 2, 4, 8, 16, 32]);

impl<P> PredictiveEncoder<P> {
    fn set_outcome(&mut self, outcome: EncodeOutcome) {
        match outcome {
            EncodeOutcome::Hit { rank: 0 } => PROBE_HIT_LAST.inc(),
            EncodeOutcome::Hit { rank } => {
                PROBE_HIT_RANKED.inc();
                PROBE_HIT_RANK.observe(rank as u64);
            }
            EncodeOutcome::MissRaw | EncodeOutcome::MissInverted => PROBE_MISS.inc(),
        }
        self.last_outcome = Some(outcome);
    }
}

impl<P: Predictor> Encoder for PredictiveEncoder<P> {
    fn lines(&self) -> u32 {
        self.state.lines()
    }

    fn encode(&mut self, value: Word) -> u64 {
        let value = self.state.width.truncate(value);
        match self.state.rank_of_value(value) {
            Some(rank) => {
                self.state.data ^= self.state.book.code(rank);
                self.state.control = CTRL_PRED;
                self.set_outcome(EncodeOutcome::Hit { rank });
            }
            None => {
                let width = self.state.width;
                let lines = self.state.lines();
                let current = self.state.assemble();
                let raw = value | (CTRL_RAW << width.bits());
                let inv = (value ^ width.mask()) | (CTRL_INV << width.bits());
                let raw_cost = self.cost.transition_cost(current, raw, lines);
                let inv_cost = match self.miss_policy {
                    MissPolicy::RawOrInverted => self.cost.transition_cost(current, inv, lines),
                    MissPolicy::RawOnly => f64::INFINITY,
                };
                if inv_cost < raw_cost {
                    self.state.data = value ^ width.mask();
                    self.state.control = CTRL_INV;
                    self.set_outcome(EncodeOutcome::MissInverted);
                } else {
                    self.state.data = value;
                    self.state.control = CTRL_RAW;
                    self.set_outcome(EncodeOutcome::MissRaw);
                }
            }
        }
        self.state.advance(value);
        self.state.assemble()
    }

    fn encode_block(&mut self, words: &[Word], out: &mut Vec<u64>) {
        // Monomorphic over the concrete predictor `P`: the rank lookup,
        // codebook XOR and predictor update all inline per block.
        out.reserve(words.len());
        for &value in words {
            out.push(self.encode(value));
        }
    }

    fn reset(&mut self) {
        self.state.reset();
        self.last_outcome = None;
    }
}

/// The receiving half of a prediction-based transcoder.
#[derive(Debug, Clone)]
pub struct PredictiveDecoder<P> {
    state: EngineState<P>,
}

impl<P: Predictor> PredictiveDecoder<P> {
    /// Creates a decoder. The predictor and cost model must be configured
    /// identically to the paired encoder's.
    pub fn new(width: Width, predictor: P, cost: CostModel) -> Self {
        PredictiveDecoder {
            state: EngineState::new(width, predictor, cost),
        }
    }
}

impl<P: Predictor> Decoder for PredictiveDecoder<P> {
    fn lines(&self) -> u32 {
        self.state.lines()
    }

    fn decode(&mut self, bus_state: u64) -> Result<Word, RoundTripError> {
        let width = self.state.width;
        let data = bus_state & width.mask();
        let control = bus_state >> width.bits();
        let value = match control {
            CTRL_PRED => {
                let delta = data ^ self.state.data;
                let rank = self.state.book.rank_of(delta).ok_or_else(|| {
                    RoundTripError::new(format!("transition vector {delta:#x} is not a codeword"))
                })?;
                self.state.value_at_rank(rank).ok_or_else(|| {
                    RoundTripError::new(format!("rank {rank} has no candidate right now"))
                })?
            }
            CTRL_RAW => data,
            CTRL_INV => data ^ width.mask(),
            other => {
                return Err(RoundTripError::new(format!(
                    "control lines carry invalid state {other:#b}"
                )))
            }
        };
        self.state.data = data;
        self.state.control = control;
        self.state.advance(value);
        Ok(value)
    }

    fn reset(&mut self) {
        self.state.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{evaluate, verify_roundtrip};
    use bustrace::Trace;

    /// A predictor that always predicts a fixed list — enough to unit
    /// test the engine in isolation.
    #[derive(Debug, Clone)]
    struct FixedPredictor {
        list: Vec<Word>,
    }

    impl Predictor for FixedPredictor {
        fn name(&self) -> String {
            "fixed".into()
        }

        fn max_candidates(&self) -> usize {
            self.list.len()
        }

        fn candidate(&self, index: usize) -> Option<Word> {
            self.list.get(index).copied()
        }

        fn observe(&mut self, _value: Word) {}

        fn reset(&mut self) {}
    }

    fn pair(
        list: Vec<Word>,
    ) -> (
        PredictiveEncoder<FixedPredictor>,
        PredictiveDecoder<FixedPredictor>,
    ) {
        let cost = CostModel::default();
        (
            PredictiveEncoder::new(Width::W32, FixedPredictor { list: list.clone() }, cost),
            PredictiveDecoder::new(Width::W32, FixedPredictor { list }, cost),
        )
    }

    #[test]
    fn repeated_value_is_free_after_first() {
        let (mut enc, _) = pair(vec![]);
        let trace = Trace::from_values(Width::W32, std::iter::repeat_n(0xCAFE, 100));
        let a = evaluate(&mut enc, &trace);
        let first_cost = a.tau();
        let trace2 = Trace::from_values(Width::W32, std::iter::repeat_n(0xCAFE, 1000));
        let a2 = evaluate(&mut enc, &trace2);
        assert_eq!(a2.tau(), first_cost);
        assert!(matches!(
            enc.last_outcome(),
            Some(EncodeOutcome::Hit { rank: 0 })
        ));
    }

    #[test]
    fn predicted_value_uses_low_weight_code() {
        let (mut enc, _) = pair(vec![0x1234_5678]);
        enc.reset();
        let s1 = enc.encode(0xFFFF); // miss, raw
        let s2 = enc.encode(0x1234_5678); // hit rank 1
                                          // Hit costs one data-line toggle plus the control change.
        let toggles = (s1 ^ s2).count_ones();
        assert!(toggles <= 3, "expected a cheap hit, got {toggles} toggles");
        assert!(matches!(
            enc.last_outcome(),
            Some(EncodeOutcome::Hit { rank: 1 })
        ));
    }

    #[test]
    fn miss_can_choose_inversion() {
        let (mut enc, mut dec) = pair(vec![]);
        enc.reset();
        dec.reset();
        // From an all-low bus, 0xFFFF_FFFE is cheaper inverted.
        let bus = enc.encode(0xFFFF_FFFE);
        assert!(matches!(
            enc.last_outcome(),
            Some(EncodeOutcome::MissInverted)
        ));
        assert_eq!(dec.decode(bus).unwrap(), 0xFFFF_FFFE);
    }

    #[test]
    fn engine_round_trips_with_fixed_predictor() {
        let list: Vec<Word> = (0..30).map(|i| 1000 + i * 3).collect();
        let (mut enc, mut dec) = pair(list);
        let mut x = 5u64;
        let mut trace = Trace::new(Width::W32);
        for i in 0..3000u64 {
            if i % 3 == 0 {
                trace.push(1000 + (i % 30) * 3); // hits
            } else {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
                trace.push(x >> 20); // misses
            }
        }
        verify_roundtrip(&mut enc, &mut dec, &trace).unwrap();
    }

    #[test]
    fn duplicate_candidates_round_trip() {
        let (mut enc, mut dec) = pair(vec![7, 7, 9, 9, 7]);
        let trace = Trace::from_values(Width::W32, [7u64, 9, 7, 9, 11, 7]);
        verify_roundtrip(&mut enc, &mut dec, &trace).unwrap();
    }

    #[test]
    fn raw_only_policy_never_inverts_and_still_roundtrips() {
        let cost = CostModel::default();
        let mut enc = PredictiveEncoder::new(Width::W32, FixedPredictor { list: vec![] }, cost)
            .with_miss_policy(MissPolicy::RawOnly);
        let mut dec = PredictiveDecoder::new(Width::W32, FixedPredictor { list: vec![] }, cost);
        enc.reset();
        dec.reset();
        // A value that the default policy would invert.
        let bus = enc.encode(0xFFFF_FFFE);
        assert!(matches!(enc.last_outcome(), Some(EncodeOutcome::MissRaw)));
        assert_eq!(dec.decode(bus).unwrap(), 0xFFFF_FFFE);
    }

    #[test]
    fn decoder_flags_desync() {
        let (_, mut dec) = pair(vec![]);
        dec.reset();
        // A PRED control state with a non-codeword delta must error.
        let bogus = 0b0000_0110u64; // two adjacent toggles: not in a 1-entry book
        assert!(dec.decode(bogus).is_err());
    }

    #[test]
    fn decoder_rejects_invalid_control() {
        let (_, mut dec) = pair(vec![]);
        dec.reset();
        let bad_ctrl = 0b11u64 << 32;
        let err = dec.decode(bad_ctrl).unwrap_err();
        assert!(err.to_string().contains("control"));
    }

    #[test]
    #[should_panic(expected = "more candidates")]
    fn engine_rejects_oversized_candidate_lists() {
        let list: Vec<Word> = (0..16).collect();
        let _ = PredictiveEncoder::new(
            Width::new(4).unwrap(),
            FixedPredictor { list },
            CostModel::default(),
        );
    }
}
