//! The window-based transcoder (Section 4.3, Figures 18–19).
//!
//! A shift register holds the last `N` *unique* bus values; a hit sends
//! the entry's low-weight code, a miss shifts the new value in and sends
//! it raw. This is the scheme the paper ultimately builds in silicon
//! (the 8-entry, 0.13 µm layout of Figure 33), because it needs no
//! counters, no sorting, and no swapping — just matching and shifting.

use std::collections::VecDeque;

use bustrace::{Width, Word};

use crate::energy::CostModel;
use crate::predict::{PredictiveDecoder, PredictiveEncoder, Predictor};

/// Configuration of a window-based transcoder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowConfig {
    /// Bus width.
    pub width: Width,
    /// Shift-register entries (the paper's sweet spot is 8).
    pub entries: usize,
    /// Cost model for codebook ordering and miss decisions.
    pub cost: CostModel,
}

impl WindowConfig {
    /// Creates a configuration with the default λ = 1 cost model.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(width: Width, entries: usize) -> Self {
        assert!(entries >= 1, "the window needs at least one entry");
        WindowConfig {
            width,
            entries,
            cost: CostModel::default(),
        }
    }

    /// Replaces the cost model.
    #[must_use]
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }
}

/// The unique-value shift register.
#[derive(Debug, Clone)]
pub struct WindowPredictor {
    entries: usize,
    /// Newest value at the back. All values distinct.
    window: VecDeque<Word>,
}

impl WindowPredictor {
    /// Creates an empty window of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries >= 1, "the window needs at least one entry");
        WindowPredictor {
            entries,
            window: VecDeque::with_capacity(entries),
        }
    }

    /// Capacity of the shift register.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Current contents, newest first.
    pub fn contents(&self) -> impl Iterator<Item = Word> + '_ {
        self.window.iter().rev().copied()
    }
}

impl Predictor for WindowPredictor {
    fn name(&self) -> String {
        format!("window({})", self.entries)
    }

    fn max_candidates(&self) -> usize {
        self.entries
    }

    fn candidate(&self, index: usize) -> Option<Word> {
        // Newest entries are likeliest to recur: rank them first.
        let n = self.window.len();
        if index < n {
            Some(self.window[n - 1 - index])
        } else {
            None
        }
    }

    /// Flat newest-first scan of the shift register — same order as
    /// [`candidate`](Predictor::candidate) without a length check per
    /// candidate.
    fn rank_of(&self, value: Word, last: Option<Word>, cap: usize) -> Option<usize> {
        let mut rank = 1usize;
        for &k in self.window.iter().rev() {
            if rank >= cap {
                return None;
            }
            if Some(k) == last {
                continue;
            }
            if k == value {
                return Some(rank);
            }
            rank += 1;
        }
        None
    }

    fn observe(&mut self, value: Word) {
        if self.window.contains(&value) {
            // A plain shift register of unique values: hits do not
            // reorder entries (the hardware is pointer-based, Figure 30).
            return;
        }
        if self.window.len() == self.entries {
            self.window.pop_front();
        }
        self.window.push_back(value);
    }

    fn reset(&mut self) {
        self.window.clear();
    }
}

/// Builds a matched encoder/decoder pair for the window-based scheme.
pub fn window_codec(
    config: WindowConfig,
) -> (
    PredictiveEncoder<WindowPredictor>,
    PredictiveDecoder<WindowPredictor>,
) {
    let enc = PredictiveEncoder::new(
        config.width,
        WindowPredictor::new(config.entries),
        config.cost,
    );
    let dec = PredictiveDecoder::new(
        config.width,
        WindowPredictor::new(config.entries),
        config.cost,
    );
    (enc, dec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{evaluate, verify_roundtrip};
    use crate::identity::IdentityCodec;
    use crate::metrics::percent_energy_removed;
    use bustrace::Trace;

    #[test]
    fn window_keeps_unique_values_in_order() {
        let mut p = WindowPredictor::new(3);
        for v in [1u64, 2, 1, 3, 4] {
            p.observe(v);
        }
        // A hit does not re-shift: 1 keeps its original (oldest) slot and
        // ages out when 4 arrives, even though it was seen again.
        let contents: Vec<Word> = p.contents().collect();
        assert_eq!(contents, vec![4, 3, 2]);
        assert_eq!(p.candidate(0), Some(4));
        assert_eq!(p.candidate(2), Some(2));
        assert_eq!(p.candidate(3), None);
    }

    #[test]
    fn round_trips_on_working_set_traffic() {
        let (mut enc, mut dec) = window_codec(WindowConfig::new(Width::W32, 8));
        let mut trace = Trace::new(Width::W32);
        let mut x = 11u64;
        for i in 0..5000u64 {
            if i % 5 == 4 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(17);
                trace.push(x >> 13);
            } else {
                trace.push(100 + (i % 6));
            }
        }
        verify_roundtrip(&mut enc, &mut dec, &trace).unwrap();
    }

    #[test]
    fn removes_energy_on_small_working_sets() {
        // A loop over 6 values fits an 8-entry window completely.
        let trace = Trace::from_values(
            Width::W32,
            (0..30_000u64)
                .map(|i| [0xDEAD, 0xBEEF, 0xCAFE, 0xF00D, 0x1234, 0xFFFF][(i % 6) as usize]),
        );
        let baseline = evaluate(&mut IdentityCodec::new(Width::W32), &trace);
        let (mut enc, _) = window_codec(WindowConfig::new(Width::W32, 8));
        let coded = evaluate(&mut enc, &trace);
        // Hits still pay their codeword toggles, so "everything fits"
        // means ~80%, not 100%.
        let removed = percent_energy_removed(&coded, &baseline, 1.0);
        assert!(removed > 70.0, "removed only {removed:.1}%");
    }

    #[test]
    fn bigger_windows_help_until_working_set_fits() {
        let set: Vec<u64> = (0..24).map(|i| 0x8000_0000u64 + i * 0x0101_0101).collect();
        let trace = Trace::from_values(Width::W32, (0..40_000u64).map(|i| set[(i % 24) as usize]));
        let baseline = evaluate(&mut IdentityCodec::new(Width::W32), &trace);
        let removed: Vec<f64> = [4usize, 8, 16, 32, 48]
            .iter()
            .map(|&n| {
                let (mut enc, _) = window_codec(WindowConfig::new(Width::W32, n));
                percent_energy_removed(&evaluate(&mut enc, &trace), &baseline, 1.0)
            })
            .collect();
        // Below the working-set size the cyclic trace always misses (a
        // FIFO can't hold a loop bigger than itself); at 32 entries it
        // captures everything — the knee of Figures 18/19.
        assert!(removed[4] > 70.0, "{removed:?}");
        assert!(removed[2] < removed[4], "{removed:?}");
        assert!(removed[0] < 10.0, "{removed:?}");
    }

    #[test]
    fn window_one_adds_no_penalty_on_runs() {
        // With one entry the window adds nothing beyond LAST-value — and
        // repeats are *already free* on an un-encoded bus, so the scheme
        // must at least not hurt (the very reason the paper assigns
        // code 0 to repeats).
        let trace = Trace::from_values(
            Width::W32,
            (0..10_000u64).flat_map(|i| std::iter::repeat_n(i * 0x9E3779B9, 4)),
        );
        let baseline = evaluate(&mut IdentityCodec::new(Width::W32), &trace);
        let (mut enc, _) = window_codec(WindowConfig::new(Width::W32, 1));
        let coded = evaluate(&mut enc, &trace);
        let removed = percent_energy_removed(&coded, &baseline, 1.0);
        assert!(removed > -10.0 && removed < 25.0, "removed {removed:.1}%");
    }

    #[test]
    fn reset_clears_window() {
        let mut p = WindowPredictor::new(4);
        p.observe(9);
        p.reset();
        assert_eq!(p.candidate(0), None);
        assert_eq!(p.contents().count(), 0);
    }
}
