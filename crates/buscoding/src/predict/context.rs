//! The context-based transcoder (Section 4.3, Figures 12–14, 20–25).
//!
//! Two cooperating structures track value statistics:
//!
//! * a **frequency table** of the hottest entries, kept sorted by
//!   frequency so that an entry's *position* is its code (hotter entries
//!   earn lower-weight codes); and
//! * a **staging shift register**: new values accumulate frequency
//!   counts there and are promoted into the table only if, when shifted
//!   out, their count clears a threshold and beats the table's
//!   least-frequent entry — this avoids thrashing the table's coldest
//!   slot.
//!
//! A periodic **counter division** (every `divide_period` inputs, all
//! counters halve) ages out statistics from earlier program phases
//! (Figure 25).
//!
//! The **value-based** flavor (Figure 13) keys entries on bus values;
//! the **transition-based** flavor (Figure 14) keys on (previous value →
//! value) pairs. The paper finds value-based superior at equal hardware
//! because a 32-bit bus has 2³² states but nearly 2⁶⁴ arcs, so arc
//! frequencies are more dilute.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;

use bustrace::{Width, Word};

use crate::energy::CostModel;
use crate::predict::{PredictiveDecoder, PredictiveEncoder, Predictor};

/// Configuration shared by both context-transcoder flavors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContextConfig {
    /// Bus width.
    pub width: Width,
    /// Frequency-table entries (the paper's optimum: 20–32).
    pub table_entries: usize,
    /// Staging shift-register entries (the paper's trade-off point: 8).
    pub shift_entries: usize,
    /// Inputs between counter divisions (the paper levels off at 4096).
    /// Zero disables division.
    pub divide_period: u64,
    /// Minimum staged count for a shift-register entry to be considered
    /// for promotion when it exits.
    pub promote_threshold: u64,
    /// Cost model for codebook ordering and miss decisions.
    pub cost: CostModel,
}

impl ContextConfig {
    /// Creates the paper's default configuration (table 28, shift
    /// register 8, divide every 4096, λ = 1) at the given width, sized
    /// like the Figure 32 layout.
    pub fn paper_default(width: Width) -> Self {
        ContextConfig {
            width,
            table_entries: 28,
            shift_entries: 8,
            divide_period: 4096,
            promote_threshold: 2,
            cost: CostModel::default(),
        }
    }

    /// Creates a configuration with explicit structure sizes and default
    /// aging parameters.
    ///
    /// # Panics
    ///
    /// Panics if either structure has zero entries.
    pub fn new(width: Width, table_entries: usize, shift_entries: usize) -> Self {
        assert!(
            table_entries >= 1,
            "frequency table needs at least one entry"
        );
        assert!(
            shift_entries >= 1,
            "shift register needs at least one entry"
        );
        ContextConfig {
            width,
            table_entries,
            shift_entries,
            divide_period: 4096,
            promote_threshold: 2,
            cost: CostModel::default(),
        }
    }

    /// Replaces the counter-division period (0 disables).
    #[must_use]
    pub fn with_divide_period(mut self, period: u64) -> Self {
        self.divide_period = period;
        self
    }

    /// Replaces the promotion threshold.
    #[must_use]
    pub fn with_promote_threshold(mut self, threshold: u64) -> Self {
        self.promote_threshold = threshold;
        self
    }

    /// Replaces the cost model.
    #[must_use]
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }
}

/// A sorted frequency table with staged promotion — the behavioral model
/// shared by both flavors (the key type differs).
///
/// Membership stays a linear scan on purpose: the table tops out at 64
/// entries (one cache line per eight), which a scan beats any hashed
/// index at — measured on the figure-20..25 sweeps.
#[derive(Debug, Clone)]
struct FrequencyCore<K: PartialEq + Copy> {
    table_entries: usize,
    shift_entries: usize,
    divide_period: u64,
    promote_threshold: u64,
    /// Sorted by descending frequency; position is the code rank.
    table: Vec<(K, u64)>,
    /// Newest staged entry at the back.
    sr: VecDeque<(K, u64)>,
    seen: u64,
}

impl<K: PartialEq + Copy> FrequencyCore<K> {
    fn new(cfg: &ContextConfig) -> Self {
        assert!(
            cfg.table_entries >= 1,
            "frequency table needs at least one entry"
        );
        assert!(
            cfg.shift_entries >= 1,
            "shift register needs at least one entry"
        );
        FrequencyCore {
            table_entries: cfg.table_entries,
            shift_entries: cfg.shift_entries,
            divide_period: cfg.divide_period,
            promote_threshold: cfg.promote_threshold,
            table: Vec::with_capacity(cfg.table_entries),
            sr: VecDeque::with_capacity(cfg.shift_entries),
            seen: 0,
        }
    }

    fn reset(&mut self) {
        self.table.clear();
        self.sr.clear();
        self.seen = 0;
    }

    /// Records one key observation, maintaining sortedness and staging.
    fn record(&mut self, key: K) {
        self.seen += 1;
        if self.divide_period > 0 && self.seen.is_multiple_of(self.divide_period) {
            for e in &mut self.table {
                e.1 /= 2;
            }
            for e in &mut self.sr {
                e.1 /= 2;
            }
        }
        if let Some(pos) = self.table.iter().position(|e| e.0 == key) {
            self.table[pos].1 += 1;
            // Bubble up past entries with strictly lower counts; ties
            // keep their order (the hardware's pending-bit sort makes
            // the same guarantee, Section 5.3.1).
            let mut p = pos;
            while p > 0 && self.table[p].1 > self.table[p - 1].1 {
                self.table.swap(p, p - 1);
                p -= 1;
            }
            return;
        }
        if let Some(e) = self.sr.iter_mut().find(|e| e.0 == key) {
            e.1 += 1;
            return;
        }
        // New key: stage it; a full shift register evicts its oldest
        // entry, which gets one shot at promotion into the table.
        if self.sr.len() == self.shift_entries {
            let (exit_key, exit_count) = self.sr.pop_front().expect("non-empty");
            self.maybe_promote(exit_key, exit_count);
        }
        self.sr.push_back((key, 1));
    }

    fn maybe_promote(&mut self, key: K, count: u64) {
        if count < self.promote_threshold {
            return;
        }
        if self.table.len() < self.table_entries {
            self.insert_sorted(key, count);
        } else if let Some(last) = self.table.last() {
            if count > last.1 {
                self.table.pop();
                self.insert_sorted(key, count);
            }
        }
    }

    fn insert_sorted(&mut self, key: K, count: u64) {
        let pos = self.table.partition_point(|e| e.1 >= count);
        self.table.insert(pos, (key, count));
    }

    /// Invariant check used by tests: descending counts.
    #[cfg(test)]
    fn is_sorted(&self) -> bool {
        self.table.windows(2).all(|w| w[0].1 >= w[1].1)
    }
}

/// The value-based context predictor (Figure 13): candidates are the
/// frequency-table values (hottest first), then the staged values
/// (newest first).
#[derive(Debug, Clone)]
pub struct ValueContextPredictor {
    core: FrequencyCore<Word>,
}

impl ValueContextPredictor {
    /// Creates a predictor from the configuration's structure sizes.
    pub fn new(cfg: &ContextConfig) -> Self {
        ValueContextPredictor {
            core: FrequencyCore::new(cfg),
        }
    }

    /// Current frequency-table contents (value, count), hottest first.
    pub fn table(&self) -> impl Iterator<Item = (Word, u64)> + '_ {
        self.core.table.iter().copied()
    }
}

impl Predictor for ValueContextPredictor {
    fn name(&self) -> String {
        format!(
            "context-value({}+{})",
            self.core.table_entries, self.core.shift_entries
        )
    }

    fn max_candidates(&self) -> usize {
        self.core.table_entries + self.core.shift_entries
    }

    fn candidate(&self, index: usize) -> Option<Word> {
        if index < self.core.table.len() {
            return Some(self.core.table[index].0);
        }
        let j = index - self.core.table.len();
        let n = self.core.sr.len();
        if j < n {
            Some(self.core.sr[n - 1 - j].0)
        } else {
            None
        }
    }

    /// Flat scan over the table then the staged values, newest first —
    /// the same order [`candidate`](Predictor::candidate) exposes, with
    /// one bounds check per structure instead of one dynamic lookup per
    /// candidate.
    fn rank_of(&self, value: Word, last: Option<Word>, cap: usize) -> Option<usize> {
        let mut rank = 1usize;
        for &(k, _) in &self.core.table {
            if rank >= cap {
                return None;
            }
            if Some(k) == last {
                continue;
            }
            if k == value {
                return Some(rank);
            }
            rank += 1;
        }
        for &(k, _) in self.core.sr.iter().rev() {
            if rank >= cap {
                return None;
            }
            if Some(k) == last {
                continue;
            }
            if k == value {
                return Some(rank);
            }
            rank += 1;
        }
        None
    }

    fn observe(&mut self, value: Word) {
        self.core.record(value);
    }

    fn reset(&mut self) {
        self.core.reset();
    }
}

/// The transition-based context predictor (Figure 14): entries are
/// (previous value → value) arcs; candidates are the successors of the
/// current value, hottest first.
#[derive(Debug, Clone)]
pub struct TransitionContextPredictor {
    core: FrequencyCore<(Word, Word)>,
    last: Option<Word>,
    /// Successors of `last`, rebuilt lazily at the first candidate
    /// lookup after an observation (interior mutability because
    /// [`Predictor::candidate`] takes `&self`). A rank-0 hit — a
    /// repeated word — never consults candidates, so repeat runs skip
    /// the table walk entirely; the rebuilt list is identical either
    /// way because nothing mutates between `observe` and the lookup.
    current: RefCell<Vec<Word>>,
    stale: Cell<bool>,
}

impl TransitionContextPredictor {
    /// Creates a predictor from the configuration's structure sizes.
    pub fn new(cfg: &ContextConfig) -> Self {
        TransitionContextPredictor {
            core: FrequencyCore::new(cfg),
            last: None,
            current: RefCell::new(Vec::new()),
            stale: Cell::new(false),
        }
    }

    fn rebuild_candidates(&self) {
        let mut current = self.current.borrow_mut();
        current.clear();
        self.stale.set(false);
        let Some(last) = self.last else { return };
        for &((prev, next), _) in &self.core.table {
            if prev == last {
                current.push(next);
            }
        }
        for &((prev, next), _) in self.core.sr.iter().rev() {
            if prev == last {
                current.push(next);
            }
        }
    }
}

impl Predictor for TransitionContextPredictor {
    fn name(&self) -> String {
        format!(
            "context-transition({}+{})",
            self.core.table_entries, self.core.shift_entries
        )
    }

    fn max_candidates(&self) -> usize {
        self.core.table_entries + self.core.shift_entries
    }

    fn candidate(&self, index: usize) -> Option<Word> {
        if self.stale.get() {
            self.rebuild_candidates();
        }
        self.current.borrow().get(index).copied()
    }

    /// One borrow of the rebuilt successor list instead of a
    /// borrow-and-check per candidate.
    fn rank_of(&self, value: Word, last: Option<Word>, cap: usize) -> Option<usize> {
        if self.stale.get() {
            self.rebuild_candidates();
        }
        let mut rank = 1usize;
        for &k in self.current.borrow().iter() {
            if rank >= cap {
                return None;
            }
            if Some(k) == last {
                continue;
            }
            if k == value {
                return Some(rank);
            }
            rank += 1;
        }
        None
    }

    fn observe(&mut self, value: Word) {
        if let Some(last) = self.last {
            self.core.record((last, value));
        }
        self.last = Some(value);
        self.stale.set(true);
    }

    fn reset(&mut self) {
        self.core.reset();
        self.last = None;
        self.current.borrow_mut().clear();
        self.stale.set(false);
    }
}

/// Builds a matched encoder/decoder pair for the value-based context
/// scheme.
pub fn context_value_codec(
    config: ContextConfig,
) -> (
    PredictiveEncoder<ValueContextPredictor>,
    PredictiveDecoder<ValueContextPredictor>,
) {
    let enc = PredictiveEncoder::new(
        config.width,
        ValueContextPredictor::new(&config),
        config.cost,
    );
    let dec = PredictiveDecoder::new(
        config.width,
        ValueContextPredictor::new(&config),
        config.cost,
    );
    (enc, dec)
}

/// Builds a matched encoder/decoder pair for the transition-based
/// context scheme.
pub fn context_transition_codec(
    config: ContextConfig,
) -> (
    PredictiveEncoder<TransitionContextPredictor>,
    PredictiveDecoder<TransitionContextPredictor>,
) {
    let enc = PredictiveEncoder::new(
        config.width,
        TransitionContextPredictor::new(&config),
        config.cost,
    );
    let dec = PredictiveDecoder::new(
        config.width,
        TransitionContextPredictor::new(&config),
        config.cost,
    );
    (enc, dec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{evaluate, verify_roundtrip};
    use crate::identity::IdentityCodec;
    use crate::metrics::percent_energy_removed;
    use bustrace::Trace;

    fn cfg(table: usize, sr: usize) -> ContextConfig {
        ContextConfig::new(Width::W32, table, sr)
    }

    #[test]
    fn hot_values_reach_the_table_top() {
        let mut p = ValueContextPredictor::new(&cfg(4, 2));
        // 0xAA appears constantly, with enough other traffic to push it
        // through the staging register into the table.
        for i in 0..200u64 {
            p.observe(0xAA);
            p.observe(i); // churn
        }
        assert_eq!(
            p.candidate(0),
            Some(0xAA),
            "table: {:?}",
            p.table().collect::<Vec<_>>()
        );
    }

    #[test]
    fn table_stays_sorted_under_arbitrary_traffic() {
        let mut p = ValueContextPredictor::new(&cfg(8, 4));
        let mut x = 3u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            p.observe((x >> 55) * 3); // ~512 distinct values, skewed reuse
            assert!(p.core.is_sorted());
        }
    }

    #[test]
    fn staging_prevents_cold_values_from_entering_table() {
        let mut p = ValueContextPredictor::new(&cfg(2, 2));
        // Two hot values...
        for _ in 0..50 {
            p.observe(1);
            p.observe(2);
        }
        // ...then a stream of once-only values must not evict them.
        for i in 100..200u64 {
            p.observe(i);
        }
        let table: Vec<Word> = p.table().map(|(v, _)| v).collect();
        assert!(table.contains(&1) && table.contains(&2), "table: {table:?}");
    }

    #[test]
    fn counter_division_ages_old_phases() {
        let mut aging = ValueContextPredictor::new(&cfg(2, 2));
        let mut frozen = ValueContextPredictor::new(&cfg(2, 2).with_divide_period(0));
        // Phase 1: value 7 dominates.
        for _ in 0..3000 {
            aging.observe(7);
            frozen.observe(7);
        }
        // Phase 2: value 9 dominates; interleave churn so staging flows.
        for i in 0..3000u64 {
            for p in [&mut aging, &mut frozen] {
                p.observe(9);
                p.observe(1_000_000 + (i % 64));
            }
        }
        let top_aging = aging.candidate(0);
        // With division, the new phase's hot value overtakes the stale
        // one; without, 7's huge stale count keeps the top slot.
        assert_eq!(top_aging, Some(9));
        assert_eq!(frozen.candidate(0), Some(7));
    }

    #[test]
    fn value_codec_round_trips() {
        let (mut enc, mut dec) = context_value_codec(ContextConfig::paper_default(Width::W32));
        let mut trace = Trace::new(Width::W32);
        let mut x = 5u64;
        for i in 0..10_000u64 {
            if i % 3 != 0 {
                trace.push(0x5000 + (i % 20));
            } else {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(3);
                trace.push(x >> 9);
            }
        }
        verify_roundtrip(&mut enc, &mut dec, &trace).unwrap();
    }

    #[test]
    fn transition_codec_round_trips() {
        let (mut enc, mut dec) = context_transition_codec(ContextConfig::new(Width::W32, 16, 8));
        let mut trace = Trace::new(Width::W32);
        let mut x = 55u64;
        for i in 0..10_000u64 {
            match i % 4 {
                0 => trace.push(1),
                1 => trace.push(2),
                2 => trace.push(3),
                _ => {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
                    trace.push(x >> 33);
                }
            }
        }
        verify_roundtrip(&mut enc, &mut dec, &trace).unwrap();
    }

    #[test]
    fn transition_flavor_learns_cycles() {
        let mut p = TransitionContextPredictor::new(&cfg(8, 4));
        for _ in 0..300 {
            for v in [10u64, 20, 30] {
                p.observe(v);
            }
        }
        // After seeing 10 -> 20 hundreds of times, the successor of 10
        // must be the top candidate once 10 is observed.
        p.observe(10);
        assert_eq!(p.candidate(0), Some(20));
    }

    #[test]
    fn value_flavor_beats_transition_flavor_at_equal_hardware() {
        // The paper's Figures 20-23 conclusion: more arcs than states
        // dilutes the transition table. Working-set traffic where values
        // recur but in varying orders shows the gap.
        let mut x = 9u64;
        let set: Vec<u64> = (0..40).map(|i| 0xA000 + i * 17).collect();
        let mut trace = Trace::new(Width::W32);
        for _ in 0..40_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(11);
            trace.push(set[((x >> 50) % 40) as usize]);
        }
        let baseline = evaluate(&mut IdentityCodec::new(Width::W32), &trace);
        let (mut venc, _) = context_value_codec(cfg(24, 8));
        let (mut tenc, _) = context_transition_codec(cfg(24, 8));
        let v = percent_energy_removed(&evaluate(&mut venc, &trace), &baseline, 1.0);
        let t = percent_energy_removed(&evaluate(&mut tenc, &trace), &baseline, 1.0);
        assert!(v > t, "value {v:.1}% should beat transition {t:.1}%");
    }

    #[test]
    fn transition_flavor_wins_on_markov_traffic() {
        // The converse of the paper's Figures 20-23 finding: when each
        // value has a *unique likely successor* (first-order Markov ring)
        // and all values are equally common, transition context carries
        // the information and value context does not.
        use bustrace::generators::{MarkovGen, TraceGenerator};
        let mut g = MarkovGen::ring(Width::W32, 20, 0.97, 11);
        let trace = g.generate(40_000);
        let baseline = evaluate(&mut IdentityCodec::new(Width::W32), &trace);
        let (mut tenc, _) = context_transition_codec(cfg(24, 8));
        let (mut venc, _) = context_value_codec(cfg(24, 8));
        let t = percent_energy_removed(&evaluate(&mut tenc, &trace), &baseline, 1.0);
        let v = percent_energy_removed(&evaluate(&mut venc, &trace), &baseline, 1.0);
        assert!(
            t > v,
            "transition {t:.1}% should beat value {v:.1}% on Markov traffic"
        );
        assert!(t > 60.0, "transition flavor should excel here: {t:.1}%");
    }

    #[test]
    fn removes_energy_on_skewed_traffic() {
        let mut x = 77u64;
        let set: Vec<u64> = (0..64)
            .map(|i| 0x1234_5678u64.wrapping_mul(i + 1))
            .collect();
        let mut trace = Trace::new(Width::W32);
        for _ in 0..40_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(23);
            // Zipf-ish: low ranks much more likely.
            let r = ((x >> 48) as f64 / 65536.0).powi(3);
            trace.push(set[(r * 63.0) as usize]);
        }
        let baseline = evaluate(&mut IdentityCodec::new(Width::W32), &trace);
        let (mut enc, _) = context_value_codec(cfg(28, 8));
        let removed = percent_energy_removed(&evaluate(&mut enc, &trace), &baseline, 1.0);
        assert!(removed > 30.0, "removed only {removed:.1}%");
    }

    #[test]
    fn config_builders() {
        let c = ContextConfig::paper_default(Width::W32)
            .with_divide_period(64)
            .with_promote_threshold(5)
            .with_cost(CostModel::coupling_blind());
        assert_eq!(c.divide_period, 64);
        assert_eq!(c.promote_threshold, 5);
        assert_eq!(c.cost.lambda(), 0.0);
        assert_eq!(c.table_entries, 28);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn rejects_empty_table() {
        let _ = ContextConfig::new(Width::W32, 0, 4);
    }
}
